/// \file
/// A small deductive database through knowledgebase transformations.
///
/// Two of the paper's §2.1 observations made executable:
///  * a stratified Datalog program is evaluated by "sequentially updating the
///    database with the strata of the program in their hierarchical order"
///    ([ABW88] remark) — InsertStratified does exactly that through τ;
///  * hypothetical queries are expressible through updates ([Bon88], [GM95],
///    Example 4) — Counterfactual asks "what would follow if ...".
///
/// Build & run:  cmake --build build && ./build/examples/deductive

#include <cstdio>

#include "core/kbt.h"
#include "datalog/parser.h"

int main() {
  using namespace kbt;

  // A dependency graph of services: calls(X, Y) = X depends on Y.
  Knowledgebase kb = *MakeSingletonKb(
      {{"service", 1}, {"calls", 2}},
      {{"service", {{"web"}, {"auth"}, {"db"}, {"cache"}, {"batch"}}},
       {"calls",
        {{"web", "auth"}, {"web", "cache"}, {"auth", "db"}, {"cache", "db"}}}});
  std::printf("services and call graph:\n  %s\n\n",
              FormatKnowledgebase(kb).c_str());

  // A stratified program: transitive dependencies, then (negation!) the
  // self-contained services that depend on nothing at all.
  datalog::Program program = *datalog::ParseProgram(R"(
    depends(X, Y) :- calls(X, Y).
    depends(X, Z) :- depends(X, Y), calls(Y, Z).
    standalone(X) :- service(X), !depends(X, X), !calls(X, X).
    leaf(X)       :- service(X), !haschild(X).
    haschild(X)   :- calls(X, Y).
  )");
  Knowledgebase derived = *InsertStratified(program, kb);
  const Database& world = derived.databases()[0];
  std::printf("after inserting the program stratum by stratum (the [ABW88] "
              "remark):\n");
  std::printf("  depends    = %s\n", world.RelationFor("depends")->ToString().c_str());
  std::printf("  leaf       = %s\n", world.RelationFor("leaf")->ToString().c_str());
  std::printf("  standalone = %s\n\n",
              world.RelationFor("standalone")->ToString().c_str());

  // Hypothetical query: if batch started calling web, would batch (transitively)
  // depend on db? Ask the counterfactual over the *derived* knowledgebase by
  // re-deriving under the hypothesis: nested antecedents chain updates.
  std::vector<Formula> chain = {
      *ParseSentence("calls(batch, web)"),
      // Re-derive the affected closure fragment hypothetically.
      *ParseSentence("forall x, y, z: (calls(x, y) | (Dep2(x, z) & calls(z, y)))"
                     " -> Dep2(x, y)"),
  };
  bool would_depend = *NestedCounterfactual(
      kb, chain, *ParseSentence("Dep2(batch, db)"), Modality::kNecessarily);
  std::printf("counterfactual: if batch called web, batch would depend on db? "
              "%s\n\n", would_depend ? "yes" : "no");

  // And a certainty query after an indefinite fault report: one of auth/cache
  // is down; which services CERTAINLY still have all direct dependencies up?
  Engine engine;
  Knowledgebase after_alarm =
      *engine.Insert("Down(auth) | Down(cache)", derived);
  Knowledgebase ok_services = *engine.Apply(
      "tau{ forall x: service(x) & "
      "(forall y: calls(x, y) -> !Down(y)) -> AllUp(x) } >> glb >> pi[AllUp]",
      after_alarm);
  std::printf("certainly unaffected (direct deps all up) after the alarm:\n  %s\n",
              ok_services.databases()[0].RelationFor("AllUp")->ToString().c_str());
  return 0;
}
