/// \file
/// Graph analysis through knowledgebase transformations: Examples 2, 3, 6 and 7
/// of §3 on a small road network. Each query is a composition of τ / ⊓ / ⊔ / π —
/// no special-purpose graph code, just sentences inserted under minimal change.
///
/// Build & run:  cmake --build build && ./build/examples/graph_analysis

#include <cstdio>
#include <string>

#include "core/kbt.h"

namespace {

const char* kReductionSentence =
    "(forall x1, x2: R2(x1, x2) -> R1(x1, x2)) & "
    "(forall x1, x3: (exists x2: R3(x1, x2) & R1(x2, x3)) | R1(x1, x3) "
    "<-> R3(x1, x3)) & "
    "(forall x1, x3: (exists x2: R3(x1, x2) & R2(x2, x3)) | R2(x1, x3) "
    "<-> R3(x1, x3))";

}  // namespace

int main() {
  using namespace kbt;
  Engine engine;

  // A DAG with one redundant shortcut edge a->d.
  Knowledgebase roads = *MakeSingletonKb(
      {{"R1", 2}},
      {{"R1", {{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}, {"a", "d"}}}});
  std::printf("road network: %s\n\n", roads.ToString().c_str());

  // Example 2: all transitive reductions (minimal route maps with the same
  // reachability).
  Knowledgebase reducts = *engine.Apply(
      std::string("tau{ ") + kReductionSentence + " } >> pi[R2]", roads);
  std::printf("Example 2 - transitive reductions (minimal route maps):\n  %s\n\n",
              reducts.ToString().c_str());

  // Example 3: is the edge set {a->d} contained in every reduction? (No — the
  // shortcut is redundant.) The query edge set rides along in R5.
  Knowledgebase with_query = *MakeSingletonKb(
      {{"R1", 2}, {"R5", 2}},
      {{"R1", {{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}, {"a", "d"}}},
       {"R5", {{"a", "d"}}}});
  Knowledgebase verdict = *engine.Apply(
      std::string("tau{ ") + kReductionSentence +
          " } >> pi[R2, R5] >> glb >> "
          "tau{ (forall x1, x2: R5(x1, x2) -> R2(x1, x2)) -> R4() } >> pi[R4]",
      with_query);
  bool in_every = false;
  for (const Database& db : verdict) {
    if (db.RelationFor("R4")->Contains(Tuple())) in_every = true;
  }
  std::printf("Example 3 - is a->d in every reduction? %s\n\n",
              in_every ? "yes" : "no (it is a redundant shortcut)");

  // Example 6: parity of the vertex set {a, b, c, d} — even.
  Knowledgebase vertices =
      *MakeSingletonKb({{"R1", 1}}, {{"R1", {{"a"}, {"b"}, {"c"}, {"d"}}}});
  Pipeline parity;
  parity.Tau("forall x1: R1(x1) -> R2(x1) | R3(x1)");
  parity.Tau("forall x1, x2: R2(x1) & R3(x2) -> R4(x1, x2)");
  parity.Tau(
      "(forall x1, x2, x3: R4(x1, x2) & R4(x1, x3) -> x2 = x3) & "
      "(forall x1, x2, x3: R4(x2, x1) & R4(x3, x1) -> x2 = x3)");
  parity.Tau("forall x1, x2: R4(x1, x2) | R4(x2, x1) -> R5(x1)");
  parity.Tau(DifferenceFormula("R1", "R5", "R6", 1));
  Knowledgebase parity_out = *engine.Apply(parity, vertices);
  bool even = false;
  for (const Database& db : parity_out) {
    if (db.RelationFor("R6")->empty()) even = true;
  }
  std::printf("Example 6 - |V| = 4 has even parity? %s\n\n",
              even ? "yes" : "no");

  // Example 7: does the undirected triangle a-b-c have a 3-clique? Insert the
  // bijection-based clique sentence; a world keeping the inputs unchanged
  // witnesses the clique.
  Knowledgebase clique_kb = *MakeSingletonKb(
      {{"R1", 2}, {"R2", 1}},
      {{"R1",
        {{"a", "b"}, {"b", "a"}, {"b", "c"}, {"c", "b"}, {"a", "c"},
         {"c", "a"}}},
       {"R2", {{"s1"}, {"s2"}, {"s3"}}}});
  Formula clique_sentence = *ParseSentence(
      "(forall x1: R2(x1) -> (exists x2: R5(x1, x2))) & "
      "(forall x1: R4(x1) -> (exists x2: R5(x2, x1))) & "
      "(forall x1, x2, x3: R5(x2, x1) & R5(x3, x1) -> x2 = x3) & "
      "(forall x1, x2, x3: R5(x1, x2) & R5(x1, x3) -> x2 = x3) & "
      "(forall x1, x2: R4(x1) & R4(x2) & !(x1 = x2) -> R1(x1, x2)) & "
      "(forall x1, x2: R5(x1, x2) -> R2(x1) & R4(x2))");
  Knowledgebase clique_out = *Tau(clique_sentence, clique_kb);
  bool has_triangle = false;
  for (const Database& db : clique_out) {
    if (*db.RelationFor("R1") == *clique_kb.databases()[0].RelationFor("R1") &&
        *db.RelationFor("R2") == *clique_kb.databases()[0].RelationFor("R2")) {
      has_triangle = true;
      Relation r4 = *db.RelationFor("R4");
      std::printf("Example 7 - 3-clique found: %s\n", r4.ToString().c_str());
      break;
    }
  }
  if (!has_triangle) std::printf("Example 7 - no 3-clique\n");
  return 0;
}
