/// \file
/// The Venus robots (Examples 1.1 and 4): update vs. revision, and hypothetical
/// (counterfactual) queries.
///
/// Two robot vehicles V and W orbit Venus. A garbled message said one of them
/// landed: kb = { {v}, {w} }. Then V is commanded to land and confirms. What do
/// we now know about W?
///
///   * AGM-style *revision* (a static world) keeps only the worlds that already
///     satisfied "V landed" — and wrongly concludes W is still orbiting.
///   * KM *update* (the world changed) updates each world minimally — leaving
///     W's status open, the answer the paper defends.
///
/// Build & run:  cmake --build build && ./build/examples/robots

#include <cstdio>

#include "baseline/revision.h"
#include "core/kbt.h"

int main() {
  using namespace kbt;

  Database has_v = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Database has_w = *MakeDatabase({{"R1", 1}}, {{"R1", {{"w"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({has_v, has_w});
  std::printf("initial knowledgebase (one of V, W landed):\n  %s\n\n",
              kb.ToString().c_str());

  Formula v_landed = *ParseSentence("R1(v)");

  // Update: the world changed (V really landed just now).
  Knowledgebase updated = *Tau(v_landed, kb);
  std::printf("update with \"V landed\" (Katsuno-Mendelzon, Winslett order):\n"
              "  %s\n", updated.ToString().c_str());
  Knowledgebase lub = updated.Lub();
  bool w_possible = lub.databases()[0].RelationFor("R1")->Contains(
      Tuple{Name("w")});
  std::printf("  => is W's landing still possible? %s (the paper's answer)\n\n",
              w_possible ? "yes" : "no");

  // Revision: treating the message as information about a static world.
  Knowledgebase revised = *baseline::Revise(v_landed, kb);
  std::printf("AGM-style revision with the same sentence:\n  %s\n",
              revised.ToString().c_str());
  bool w_in_revised = false;
  for (const Database& db : revised) {
    if (db.RelationFor("R1")->Contains(Tuple{Name("w")})) w_in_revised = true;
  }
  std::printf("  => revision concludes W %s landed — Example 1.1 explains why "
              "that is wrong for a changing world.\n\n",
              w_in_revised ? "may have" : "has NOT");

  // Counterfactual query (Example 4): "if V had landed, would W necessarily be
  // orbiting?" — evaluated as ⊔ τ_{R1(v)}(kb) and checking for w.
  Engine engine;
  Knowledgebase counterfactual = *engine.Apply("tau{ R1(v) } >> lub", kb);
  bool w_in_all = counterfactual.databases()[0].RelationFor("R1")->Contains(
      Tuple{Name("w")});
  std::printf("counterfactual \"V landed > W still orbiting\": %s\n",
              w_in_all ? "no - some world has W landed" : "yes");

  // Right-nested counterfactual (A > (B > C)) via nested insertions.
  Knowledgebase nested = *Tau(*ParseSentence("R1(w)"), updated);
  std::printf("nested counterfactual (V landed > (W landed > ...)):\n  %s\n",
              nested.ToString().c_str());
  return 0;
}
