/// \file
/// Indefinite information: disjunctive updates create multiple possible worlds
/// ([AbG85], cited in §1); ⊓ and ⊔ then answer certainty and possibility
/// queries over them — the "recursively indefinite database" flavor of queries
/// the introduction promises.
///
/// Scenario: a sensor reports that SOME server in a cluster failed, but not
/// which. Later reports narrow it down. Certain/possible failure sets evolve.
///
/// Build & run:  cmake --build build && ./build/examples/indefinite

#include <cstdio>

#include "core/kbt.h"

namespace {

void Report(const kbt::Knowledgebase& kb, const char* when) {
  kbt::Knowledgebase certain = kb.Glb();
  kbt::Knowledgebase possible = kb.Lub();
  std::printf("%s\n  worlds:   %zu\n  certain:  %s\n  possible: %s\n\n", when,
              kb.size(),
              certain.databases()[0].RelationFor("Failed")->ToString().c_str(),
              possible.databases()[0].RelationFor("Failed")->ToString().c_str());
}

}  // namespace

int main() {
  using namespace kbt;
  Engine engine;

  Knowledgebase kb = *MakeSingletonKb({{"Failed", 1}}, {});

  // Alarm: one of the three web servers failed.
  kb = *engine.Insert("Failed(web1) | Failed(web2) | Failed(web3)", kb);
  Report(kb, "after the alarm (one of web1..web3 failed):");

  // A second, independent alarm on the database tier.
  kb = *engine.Insert("Failed(db1) | Failed(db2)", kb);
  Report(kb, "after the database-tier alarm:");

  // A probe confirms web2 is healthy: delete it from every world.
  kb = *engine.Insert("!Failed(web2)", kb);
  Report(kb, "after confirming web2 is healthy:");

  // A probe confirms db1 failed for certain.
  kb = *engine.Insert("Failed(db1)", kb);
  Report(kb, "after confirming db1 failed:");

  // Hypothetical: if web1 were to fail now, would db1 still be the only
  // certain failure? Counterfactual via a nested transformation.
  Knowledgebase hypo = *engine.Apply("tau{ Failed(web1) } >> glb", kb);
  std::printf("hypothetically failing web1, the certain set becomes:\n  %s\n",
              hypo.databases()[0].RelationFor("Failed")->ToString().c_str());
  return 0;
}
