/// \file
/// Quickstart: the flight-network example of §1 (Example 1.2).
///
/// A knowledgebase holds the direct Air Canada routes in R1. Queries and updates
/// are the same thing — transformations:
///   * "which cities are reachable from Toronto?" inserts the transitive-closure
///     sentence (Example 1) and projects the new relation;
///   * "delete flight YYZ→YOW" inserts the sentence denying that flight.
///
/// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/kbt.h"

int main() {
  using namespace kbt;

  // The stored database: direct flights.
  StatusOr<Knowledgebase> kb = MakeSingletonKb(
      {{"R1", 2}}, {{"R1",
                     {{"toronto", "ottawa"},
                      {"ottawa", "montreal"},
                      {"montreal", "quebec"},
                      {"halifax", "toronto"}}}});
  if (!kb.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", kb.status().ToString().c_str());
    return 1;
  }
  std::printf("knowledgebase: %s\n\n", kb->ToString().c_str());

  Engine engine;

  // Query: reachability, via Example 1's transitive-closure insertion.
  StatusOr<Knowledgebase> reachable = engine.Apply(
      "tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) } "
      ">> pi[R2]",
      *kb);
  if (!reachable.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 reachable.status().ToString().c_str());
    return 1;
  }
  std::printf("reachable city pairs (R2 = transitive closure):\n  %s\n\n",
              reachable->ToString().c_str());

  // Update: delete a flight by inserting its denial (Example 1.2).
  StatusOr<Knowledgebase> updated =
      engine.Insert("!R1(toronto, ottawa)", *kb);
  if (!updated.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 updated.status().ToString().c_str());
    return 1;
  }
  std::printf("after deleting toronto->ottawa:\n  %s\n\n",
              updated->ToString().c_str());

  // Re-run the reachability query on the updated knowledgebase.
  StatusOr<Knowledgebase> reachable_after = engine.Apply(
      "tau{ forall x, y, z: (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) } "
      ">> pi[R2]",
      *updated);
  std::printf("reachable pairs after the update:\n  %s\n",
              reachable_after->ToString().c_str());
  return 0;
}
