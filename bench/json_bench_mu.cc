/// \file
/// Machine-readable benchmark harness for the μ/SAT path: grounding → Tseitin →
/// CDCL minimal-model enumeration (the co-NP core of Theorem 4.2), plus raw
/// solver workloads in the style of bench_sat_reduction. Writes BENCH_mu.json so
/// every PR that touches the solver, the circuit layer, or the Tseitin encoder
/// leaves a diffable perf trajectory next to BENCH_datalog.json.
///
/// Rows are rev-tagged (like json_bench_tau's) so revisions coexist in
/// BENCH_mu.json, and every μ workload is measured twice: with assumption-trail
/// reuse (the default) and as `<name>_noreuse` — the pre-reuse solver call
/// sequence, bit-identical to earlier revisions. reused_levels / saved_props
/// are the new trail-saving counters; rows where they are 0 don't descend
/// under assumptions (raw single-solve CDCL workloads).
///
/// Usage: json_bench_mu [output.json]   (default: BENCH_mu.json; when the file
/// should keep older revisions, write elsewhere and append by hand.)

#include <array>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sat/solver.h"

namespace kbt::bench {
namespace {

/// Revision tag stamped on every row this harness writes. Bump per PR so rows
/// from different revisions coexist in BENCH_mu.json.
constexpr const char* kRev = "pr5";

/// One measured μ/SAT workload. Solver counters come from the last run.
struct MuBenchRecord {
  std::string name;
  int n = 0;
  double ms_per_op = 0.0;
  double ops_per_sec = 0.0;
  uint64_t solve_calls = 0;
  uint64_t conflicts = 0;
  uint64_t reused_levels = 0;
  uint64_t saved_props = 0;
  size_t minimal_models = 0;
};

bool WriteMuBenchJson(const std::string& path,
                      const std::vector<MuBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const MuBenchRecord& r = records[i];
    ok = std::fprintf(
             f,
             "    {\"name\": \"%s\", \"rev\": \"%s\", \"n\": %d, "
             "\"ms_per_op\": %.4f, "
             "\"ops_per_sec\": %.3f, \"solve_calls\": %llu, "
             "\"conflicts\": %llu, \"reused_levels\": %llu, "
             "\"saved_props\": %llu, \"minimal_models\": %zu}%s\n",
             r.name.c_str(), kRev, r.n, r.ms_per_op, r.ops_per_sec,
             static_cast<unsigned long long>(r.solve_calls),
             static_cast<unsigned long long>(r.conflicts),
             static_cast<unsigned long long>(r.reused_levels),
             static_cast<unsigned long long>(r.saved_props), r.minimal_models,
             i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

MuBenchRecord Record(const std::string& name, int n, double ms,
                     const MuStats& stats) {
  MuBenchRecord r;
  r.name = name;
  r.n = n;
  r.ms_per_op = ms;
  r.ops_per_sec = ms > 0 ? 1000.0 / ms : 0.0;
  r.solve_calls = stats.sat_solve_calls;
  r.conflicts = stats.sat_conflicts;
  r.reused_levels = stats.sat_reused_levels;
  r.saved_props = stats.sat_saved_propagations;
  r.minimal_models = stats.minimal_models;
  return r;
}

/// Measures one μ call in both trail-reuse modes and appends the two rows
/// (`name` with reuse — the default configuration — and `name_noreuse`).
void MeasureMu(const std::string& name, const Formula& phi, const Database& db,
               int n, std::vector<MuBenchRecord>* out) {
  for (bool reuse : {true, false}) {
    MuOptions options;
    options.strategy = MuStrategy::kSat;
    options.reuse_assumption_trail = reuse;
    MuStats stats;
    double ms = MeasureMs([&] {
      stats = MuStats();
      auto result = Mu(phi, db, options, &stats);
      if (!result.ok()) std::abort();
    });
    out->push_back(Record(reuse ? name : name + "_noreuse", n, ms, stats));
  }
}

/// μ through the full grounding → Tseitin → CDCL enumeration pipeline.
void MuWorkload(const std::string& name, const std::string& sentence, int n,
                double degree, uint64_t seed, std::vector<MuBenchRecord>* out) {
  Knowledgebase kb = GraphKb("R", RandomEdges(n, degree, seed));
  Formula phi = *ParseFormula(sentence);
  MeasureMu(name, phi, kb.databases()[0], n, out);
}

/// φ_k = ∀x1..xk ((R(x1,x2) ∧ ... ∧ R(x_{k-1},x_k)) → S(x1,xk)): the
/// bench_expression_complexity shape, exponential grounding in k.
void MuPathDepth(int depth, std::vector<MuBenchRecord>* out) {
  std::vector<Symbol> vars;
  for (int i = 1; i <= depth; ++i) vars.push_back(Name("x" + std::to_string(i)));
  std::vector<Formula> body;
  for (int i = 0; i + 1 < depth; ++i) {
    body.push_back(Atom("R", {Term::Var(vars[static_cast<size_t>(i)]),
                              Term::Var(vars[static_cast<size_t>(i + 1)])}));
  }
  Formula head = Atom("S", {Term::Var(vars.front()), Term::Var(vars.back())});
  Formula phi = Forall(vars, Implies(And(std::move(body)), head));
  Knowledgebase kb = GraphKb("R", RandomEdges(5, 2.0, 31));
  MeasureMu("mu_path_depth", phi, kb.databases()[0], depth, out);
}

/// The orient sentence of json_bench_tau on a single dense world: a real
/// descend-and-block enumeration whose stage-2 solves pin every old atom —
/// the assumption-trail-reuse target shape.
void MuOrient(int n, double degree, uint64_t seed,
              std::vector<MuBenchRecord>* out) {
  Knowledgebase kb = GraphKb("R", RandomEdges(n, degree, seed));
  Formula phi = *ParseFormula(
      "forall x, y: (R(x, y) & !R(y, x)) -> (S(x, y) & !S(y, x))");
  MeasureMu("mu_orient", phi, kb.databases()[0], n, out);
}

/// Raw CDCL on random 3CNF at the given clause/variable ratio (the
/// bench_sat_reduction direct-solver workload, scaled up to stress the clause
/// store rather than the grounding).
MuBenchRecord DirectCdcl(const std::string& name, int num_vars, double ratio,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution sign(0.5);
  int num_clauses = static_cast<int>(ratio * num_vars);
  std::vector<std::array<sat::Lit, 3>> clauses;
  clauses.reserve(static_cast<size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    clauses.push_back({sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng))});
  }
  uint64_t conflicts = 0;
  double ms = MeasureMs([&] {
    sat::Solver solver;
    for (int i = 0; i < num_vars; ++i) solver.NewVar();
    for (const auto& clause : clauses) {
      solver.AddClause({clause[0], clause[1], clause[2]});
    }
    auto result = solver.Solve();
    static_cast<void>(result);
    conflicts = solver.stats().conflicts;
  });
  MuStats stats;
  stats.sat_solve_calls = 1;
  stats.sat_conflicts = conflicts;
  return Record(name, num_vars, ms, stats);
}

/// Descend-and-block over random 3CNF: enumerate models, pinning a canonical
/// prefix of the variables per solve — the μ descent's solver call pattern
/// isolated from grounding. Both reuse modes are measured; the reuse row's
/// reused_levels counter is the direct evidence of trail saving.
void DirectDescent(const std::string& name, int num_vars, double ratio,
                   uint64_t seed, std::vector<MuBenchRecord>* out) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution sign(0.5);
  int num_clauses = static_cast<int>(ratio * num_vars);
  std::vector<std::array<sat::Lit, 3>> clauses;
  clauses.reserve(static_cast<size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    clauses.push_back({sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng))});
  }
  for (bool reuse : {true, false}) {
    uint64_t solve_calls = 0, conflicts = 0, reused = 0, saved = 0;
    double ms = MeasureMs([&] {
      sat::Solver solver;
      sat::SolverOptions sopts;
      sopts.reuse_assumption_trail = reuse;
      solver.set_options(sopts);
      for (int i = 0; i < num_vars; ++i) solver.NewVar();
      for (const auto& clause : clauses) {
        solver.AddClause({clause[0], clause[1], clause[2]});
      }
      // Minimize-true-vars greedily, μ-style: pin the false set (canonical
      // variable order), guard each refinement with a fresh activation
      // literal placed last, block the fixpoint, repeat up to 16 models.
      // Guard retirement is deferred to the next enumeration probe exactly as
      // the μ descent does — an eager ¬act unit would surrender the retained
      // trail between refinement solves.
      std::vector<sat::Lit> assumptions;
      std::vector<sat::Lit> guard;
      std::vector<sat::Var> retired;
      for (int model = 0; model < 16; ++model) {
        for (sat::Var act : retired) solver.AddClause({sat::MkLit(act, true)});
        retired.clear();
        if (solver.Solve() == sat::SolveResult::kUnsat) break;
        std::vector<int8_t> value(static_cast<size_t>(num_vars), 0);
        for (int v = 0; v < num_vars; ++v) value[v] = solver.ModelValue(v) ? 1 : 0;
        for (;;) {
          guard.clear();
          sat::Var act = solver.NewVar();
          guard.push_back(sat::MkLit(act, true));
          for (int v = 0; v < num_vars; ++v) {
            if (value[v]) guard.push_back(sat::MkLit(v, true));
          }
          if (guard.size() == 1) break;  // Nothing left to shrink.
          solver.AddClause(guard);
          assumptions.clear();
          for (int v = 0; v < num_vars; ++v) {
            if (!value[v]) assumptions.push_back(sat::MkLit(v, true));
          }
          assumptions.push_back(sat::MkLit(act));
          sat::SolveResult r = solver.Solve(assumptions);
          retired.push_back(act);
          solver.SetPhase(act, false);
          if (r == sat::SolveResult::kUnsat) break;
          for (int v = 0; v < num_vars; ++v) {
            value[v] = solver.ModelValue(v) ? 1 : 0;
          }
        }
        // Block this minimal model exactly.
        guard.clear();
        for (int v = 0; v < num_vars; ++v) {
          guard.push_back(sat::MkLit(v, value[v] != 0));
        }
        if (!solver.AddClause(guard)) break;
      }
      solve_calls = solver.stats().solve_calls;
      conflicts = solver.stats().conflicts;
      reused = solver.stats().reused_assumption_levels;
      saved = solver.stats().saved_propagations;
    });
    MuStats stats;
    stats.sat_solve_calls = solve_calls;
    stats.sat_conflicts = conflicts;
    stats.sat_reused_levels = reused;
    stats.sat_saved_propagations = saved;
    out->push_back(
        Record(reuse ? name : name + "_noreuse", num_vars, ms, stats));
  }
}

/// The paper-motivated serving shape: one encoded base formula, a long chain
/// of hypothetical queries whose assumption vector differs from the previous
/// one by a small tail delta. With trail saving each query re-propagates only
/// the delta; without it, all `pins` levels are re-decided per query.
void AssumptionChain(const std::string& name, int num_vars, double ratio,
                     int pins, int queries, uint64_t seed,
                     std::vector<MuBenchRecord>* out) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution sign(0.5);
  int num_clauses = static_cast<int>(ratio * num_vars);
  std::vector<std::array<sat::Lit, 3>> clauses;
  clauses.reserve(static_cast<size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    clauses.push_back({sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng))});
  }
  // One fixed mutation schedule for both modes: flip one of the last 8 pins.
  std::vector<int> flip_schedule;
  std::uniform_int_distribution<int> tail(pins - 8, pins - 1);
  for (int q = 0; q < queries; ++q) flip_schedule.push_back(tail(rng));
  for (bool reuse : {true, false}) {
    MuStats stats;
    double ms = MeasureMs([&] {
      sat::Solver solver;
      sat::SolverOptions sopts;
      sopts.reuse_assumption_trail = reuse;
      solver.set_options(sopts);
      for (int i = 0; i < num_vars; ++i) solver.NewVar();
      for (const auto& clause : clauses) {
        solver.AddClause({clause[0], clause[1], clause[2]});
      }
      std::vector<sat::Lit> assumptions;
      for (int i = 0; i < pins; ++i) assumptions.push_back(sat::MkLit(i));
      for (int q = 0; q < queries; ++q) {
        size_t at = static_cast<size_t>(flip_schedule[static_cast<size_t>(q)]);
        assumptions[at] = sat::Negate(assumptions[at]);
        auto r = solver.Solve(assumptions);
        static_cast<void>(r);
      }
      stats.sat_solve_calls = solver.stats().solve_calls;
      stats.sat_conflicts = solver.stats().conflicts;
      stats.sat_reused_levels = solver.stats().reused_assumption_levels;
      stats.sat_saved_propagations = solver.stats().saved_propagations;
    });
    ms /= queries;  // Per query, the serving-rate view.
    out->push_back(
        Record(reuse ? name : name + "_noreuse", num_vars, ms, stats));
  }
}

/// Pigeonhole PHP(n+1, n): resolution-hard UNSAT, heavy on conflict analysis,
/// clause learning and the learned-clause store.
MuBenchRecord Pigeonhole(int holes) {
  uint64_t conflicts = 0;
  double ms = MeasureMs([&] {
    sat::Solver s;
    int pigeons = holes + 1;
    std::vector<std::vector<sat::Var>> grid(
        static_cast<size_t>(pigeons), std::vector<sat::Var>(static_cast<size_t>(holes)));
    for (auto& row : grid) {
      for (auto& v : row) v = s.NewVar();
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<sat::Lit> some;
      for (int h = 0; h < holes; ++h) {
        some.push_back(sat::MkLit(grid[static_cast<size_t>(p)][static_cast<size_t>(h)]));
      }
      s.AddClause(some);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          s.AddClause({sat::MkLit(grid[static_cast<size_t>(p1)][static_cast<size_t>(h)], true),
                       sat::MkLit(grid[static_cast<size_t>(p2)][static_cast<size_t>(h)], true)});
        }
      }
    }
    auto result = s.Solve();
    static_cast<void>(result);
    conflicts = s.stats().conflicts;
  });
  MuStats stats;
  stats.sat_solve_calls = 1;
  stats.sat_conflicts = conflicts;
  return Record("sat_pigeonhole", holes, ms, stats);
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_mu.json";
  std::vector<MuBenchRecord> records;
  // μ pipeline workloads (grounding + incremental Tseitin + enumeration), each
  // in reuse and _noreuse mode.
  for (int n : {8, 32}) {
    MuWorkload("mu_copy_insert", "forall x, y: R(x, y) -> S(x, y)", n, 3.0, 17,
               &records);
  }
  for (int n : {16, 64}) {
    MuWorkload("mu_vertex_drop", "forall y: !R(n0, y)", n, 4.0, 23, &records);
  }
  for (int n : {16, 64}) {
    MuWorkload("mu_choice", "R(z1, z2) | R(z3, z4) | R(z5, z6)", n, 3.0, 29,
               &records);
  }
  for (int depth : {3, 4, 5}) MuPathDepth(depth, &records);
  for (int n : {8, 12}) MuOrient(n, 3.0, 41, &records);
  // Enumeration-heavy: each R edge independently chooses an S orientation, so
  // the minimal models are the (hundreds of) incomparable choice sets — one
  // long descend-and-block run whose stage-2 solves pin every atom.
  {
    Knowledgebase kb = GraphKb("R", RandomEdges(5, 2.0, 53));
    Formula phi =
        *ParseFormula("forall x, y: R(x, y) -> (S(x, y) | S(y, x))");
    MeasureMu("mu_orient_enum", phi, kb.databases()[0], 5, &records);
  }
  // Raw solver workloads (clause arena, watchers, learned-clause store).
  records.push_back(DirectCdcl("sat_random3_easy", 120, 3.0, 67));
  records.push_back(DirectCdcl("sat_random3_hard", 60, 4.2, 67));
  // Descend-and-block over hard random 3CNF: the μ solver-call pattern
  // isolated from grounding, at two sizes.
  DirectDescent("sat_descent_hard", 60, 4.2, 67, &records);
  DirectDescent("sat_descent_wide", 120, 4.2, 71, &records);
  // The serving workload of the ISSUE's motivation: a long chain of
  // hypothetical queries, each differing from the last by one pin flip.
  AssumptionChain("sat_assumption_chain", 200, 2.5, 80, 400, 79, &records);
  records.push_back(Pigeonhole(6));
  if (!WriteMuBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const MuBenchRecord& r : records) {
    std::printf(
        "%-26s n=%-4d %10.4f ms/op %12.2f ops/s  solves=%llu conflicts=%llu "
        "reused=%llu saved=%llu models=%zu\n",
        r.name.c_str(), r.n, r.ms_per_op, r.ops_per_sec,
        static_cast<unsigned long long>(r.solve_calls),
        static_cast<unsigned long long>(r.conflicts),
        static_cast<unsigned long long>(r.reused_levels),
        static_cast<unsigned long long>(r.saved_props), r.minimal_models);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
