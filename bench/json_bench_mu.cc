/// \file
/// Machine-readable benchmark harness for the μ/SAT path: grounding → Tseitin →
/// CDCL minimal-model enumeration (the co-NP core of Theorem 4.2), plus raw
/// solver workloads in the style of bench_sat_reduction. Writes BENCH_mu.json so
/// every PR that touches the solver, the circuit layer, or the Tseitin encoder
/// leaves a diffable perf trajectory next to BENCH_datalog.json.
///
/// Usage: json_bench_mu [output.json]   (default: BENCH_mu.json)

#include <array>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sat/solver.h"

namespace kbt::bench {
namespace {

/// One measured μ/SAT workload. Solver counters come from the last run.
struct MuBenchRecord {
  std::string name;
  int n = 0;
  double ms_per_op = 0.0;
  double ops_per_sec = 0.0;
  uint64_t solve_calls = 0;
  uint64_t conflicts = 0;
  size_t minimal_models = 0;
};

bool WriteMuBenchJson(const std::string& path,
                      const std::vector<MuBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const MuBenchRecord& r = records[i];
    ok = std::fprintf(
             f,
             "    {\"name\": \"%s\", \"n\": %d, \"ms_per_op\": %.4f, "
             "\"ops_per_sec\": %.3f, \"solve_calls\": %llu, "
             "\"conflicts\": %llu, \"minimal_models\": %zu}%s\n",
             r.name.c_str(), r.n, r.ms_per_op, r.ops_per_sec,
             static_cast<unsigned long long>(r.solve_calls),
             static_cast<unsigned long long>(r.conflicts), r.minimal_models,
             i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

MuBenchRecord Record(const std::string& name, int n, double ms,
                     const MuStats& stats) {
  MuBenchRecord r;
  r.name = name;
  r.n = n;
  r.ms_per_op = ms;
  r.ops_per_sec = ms > 0 ? 1000.0 / ms : 0.0;
  r.solve_calls = stats.sat_solve_calls;
  r.conflicts = stats.sat_conflicts;
  r.minimal_models = stats.minimal_models;
  return r;
}

/// μ through the full grounding → Tseitin → CDCL enumeration pipeline.
MuBenchRecord MuWorkload(const std::string& name, const std::string& sentence,
                         int n, double degree, uint64_t seed) {
  Knowledgebase kb = GraphKb("R", RandomEdges(n, degree, seed));
  Formula phi = *ParseFormula(sentence);
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  MuStats stats;
  double ms = MeasureMs([&] {
    stats = MuStats();
    auto out = Mu(phi, kb.databases()[0], options, &stats);
    if (!out.ok()) std::abort();
  });
  return Record(name, n, ms, stats);
}

/// φ_k = ∀x1..xk ((R(x1,x2) ∧ ... ∧ R(x_{k-1},x_k)) → S(x1,xk)): the
/// bench_expression_complexity shape, exponential grounding in k.
MuBenchRecord MuPathDepth(int depth) {
  std::vector<Symbol> vars;
  for (int i = 1; i <= depth; ++i) vars.push_back(Name("x" + std::to_string(i)));
  std::vector<Formula> body;
  for (int i = 0; i + 1 < depth; ++i) {
    body.push_back(Atom("R", {Term::Var(vars[static_cast<size_t>(i)]),
                              Term::Var(vars[static_cast<size_t>(i + 1)])}));
  }
  Formula head = Atom("S", {Term::Var(vars.front()), Term::Var(vars.back())});
  Formula phi = Forall(vars, Implies(And(std::move(body)), head));
  Knowledgebase kb = GraphKb("R", RandomEdges(5, 2.0, 31));
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  MuStats stats;
  double ms = MeasureMs([&] {
    stats = MuStats();
    auto out = Mu(phi, kb.databases()[0], options, &stats);
    if (!out.ok()) std::abort();
  });
  return Record("mu_path_depth", depth, ms, stats);
}

/// Raw CDCL on random 3CNF at the given clause/variable ratio (the
/// bench_sat_reduction direct-solver workload, scaled up to stress the clause
/// store rather than the grounding).
MuBenchRecord DirectCdcl(const std::string& name, int num_vars, double ratio,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution sign(0.5);
  int num_clauses = static_cast<int>(ratio * num_vars);
  std::vector<std::array<sat::Lit, 3>> clauses;
  clauses.reserve(static_cast<size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    clauses.push_back({sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng)),
                       sat::MkLit(var(rng), sign(rng))});
  }
  uint64_t conflicts = 0;
  double ms = MeasureMs([&] {
    sat::Solver solver;
    for (int i = 0; i < num_vars; ++i) solver.NewVar();
    for (const auto& clause : clauses) {
      solver.AddClause({clause[0], clause[1], clause[2]});
    }
    auto result = solver.Solve();
    static_cast<void>(result);
    conflicts = solver.stats().conflicts;
  });
  MuStats stats;
  stats.sat_solve_calls = 1;
  stats.sat_conflicts = conflicts;
  return Record(name, num_vars, ms, stats);
}

/// Pigeonhole PHP(n+1, n): resolution-hard UNSAT, heavy on conflict analysis,
/// clause learning and the learned-clause store.
MuBenchRecord Pigeonhole(int holes) {
  uint64_t conflicts = 0;
  double ms = MeasureMs([&] {
    sat::Solver s;
    int pigeons = holes + 1;
    std::vector<std::vector<sat::Var>> grid(
        static_cast<size_t>(pigeons), std::vector<sat::Var>(static_cast<size_t>(holes)));
    for (auto& row : grid) {
      for (auto& v : row) v = s.NewVar();
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<sat::Lit> some;
      for (int h = 0; h < holes; ++h) {
        some.push_back(sat::MkLit(grid[static_cast<size_t>(p)][static_cast<size_t>(h)]));
      }
      s.AddClause(some);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          s.AddClause({sat::MkLit(grid[static_cast<size_t>(p1)][static_cast<size_t>(h)], true),
                       sat::MkLit(grid[static_cast<size_t>(p2)][static_cast<size_t>(h)], true)});
        }
      }
    }
    auto result = s.Solve();
    static_cast<void>(result);
    conflicts = s.stats().conflicts;
  });
  MuStats stats;
  stats.sat_solve_calls = 1;
  stats.sat_conflicts = conflicts;
  return Record("sat_pigeonhole", holes, ms, stats);
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_mu.json";
  std::vector<MuBenchRecord> records;
  // μ pipeline workloads (grounding + incremental Tseitin + enumeration).
  for (int n : {8, 32}) {
    records.push_back(
        MuWorkload("mu_copy_insert", "forall x, y: R(x, y) -> S(x, y)", n, 3.0, 17));
  }
  for (int n : {16, 64}) {
    records.push_back(MuWorkload("mu_vertex_drop", "forall y: !R(n0, y)", n, 4.0, 23));
  }
  for (int n : {16, 64}) {
    records.push_back(MuWorkload(
        "mu_choice", "R(z1, z2) | R(z3, z4) | R(z5, z6)", n, 3.0, 29));
  }
  for (int depth : {3, 4, 5}) records.push_back(MuPathDepth(depth));
  // Raw solver workloads (clause arena, watchers, learned-clause store).
  records.push_back(DirectCdcl("sat_random3_easy", 120, 3.0, 67));
  records.push_back(DirectCdcl("sat_random3_hard", 60, 4.2, 67));
  records.push_back(Pigeonhole(6));
  if (!WriteMuBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const MuBenchRecord& r : records) {
    std::printf(
        "%-24s n=%-4d %10.4f ms/op %12.2f ops/s  solves=%llu conflicts=%llu "
        "models=%zu\n",
        r.name.c_str(), r.n, r.ms_per_op, r.ops_per_sec,
        static_cast<unsigned long long>(r.solve_calls),
        static_cast<unsigned long long>(r.conflicts), r.minimal_models);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
