/// \file
/// Machine-readable benchmark harness for the durable store. Three costs
/// matter to a serving loop with durability on:
///
///   * wal_append_nosync  — appending a semantic record with fsync off
///                          (kManual): the pure logging overhead,
///   * wal_append_fsync   — fsync-per-commit appends (kEveryCommit) against
///                          the real filesystem: the durability floor,
///   * wal_append_group8  — group commit every 8 records: the usual
///                          throughput/durability compromise,
///   * checkpoint_write   — serializing + atomically publishing a snapshot,
///   * recover_replay     — full recovery (checkpoint load + WAL suffix
///                          replay through the engine) as a function of the
///                          suffix length.
///
/// Rows are tagged with `rev` like BENCH_tau.json so trajectories stay
/// diffable across PRs.
///
/// Usage: json_bench_store [output.json]   (default: BENCH_store.json)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "store/durable_engine.h"
#include "store/recovery.h"

namespace kbt::bench {
namespace {

constexpr const char* kRev = "pr6";

struct StoreBenchRecord {
  std::string name;
  int records = 0;  ///< WAL records involved (appends done / replayed).
  double ms_per_op = 0.0;
  double ops_per_sec = 0.0;
  uint64_t wal_bytes = 0;  ///< WAL size after the workload, when meaningful.
};

bool WriteStoreBenchJson(const std::string& path,
                         const std::vector<StoreBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const StoreBenchRecord& r = records[i];
    ok = std::fprintf(
             f,
             "    {\"name\": \"%s\", \"rev\": \"%s\", \"records\": %d, "
             "\"ms_per_op\": %.4f, \"ops_per_sec\": %.3f, "
             "\"wal_bytes\": %llu}%s\n",
             r.name.c_str(), kRev, r.records, r.ms_per_op, r.ops_per_sec,
             static_cast<unsigned long long>(r.wal_bytes),
             i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

/// Fresh scratch directory under TMPDIR (the bench measures the real
/// filesystem, fsync included).
std::string ScratchDir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/kbt_bench_store_" + tag + "_" +
                    std::to_string(static_cast<unsigned>(::getpid()));
  return dir;
}

void RemoveStoreDir(const std::string& dir) {
  store::Env* env = store::Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      Status ignored = env->RemoveFile(dir + "/" + name);
      (void)ignored;
    }
  }
  ::rmdir(dir.c_str());
}

Knowledgebase BenchKb(int domain) {
  Schema schema = *Schema::Of({{"Dom", 1}, {"R", 2}});
  Relation::Builder dom(1);
  for (int i = 0; i < domain; ++i) dom.Append({Name(V(i))});
  return Knowledgebase::Singleton(
      *Database::Create(schema, {dom.Build(), ChainEdges(domain)}));
}

/// One run of N tuple-insert commits against a fresh store in `mode`.
/// Returns the WAL size for the record.
uint64_t CommitBurst(const std::string& dir, const Knowledgebase& initial,
                     store::SyncMode mode, int n) {
  RemoveStoreDir(dir);
  store::StoreOptions options;
  options.sync_mode = mode;
  auto store = store::DurableEngine::Open(dir, initial, options);
  if (!store.ok()) std::abort();
  for (int i = 0; i < n; ++i) {
    Status s = (*store)->InsertTuples("R", {{V(i % 7), V((i + 3) % 7)}});
    if (!s.ok()) std::abort();
  }
  StatusOr<std::string> wal = store::Env::Default()->ReadFile(
      dir + "/" + store::WalFileName(0));
  return wal.ok() ? wal->size() : 0;
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_store.json";
  std::vector<StoreBenchRecord> records;
  const Knowledgebase initial = BenchKb(7);

  struct AppendMode {
    const char* name;
    store::SyncMode mode;
  };
  const AppendMode append_modes[] = {
      {"wal_append_nosync", store::SyncMode::kManual},
      {"wal_append_fsync", store::SyncMode::kEveryCommit},
      {"wal_append_group8", store::SyncMode::kGroupCommit},
  };
  constexpr int kBurst = 64;
  for (const AppendMode& mode : append_modes) {
    const std::string dir = ScratchDir(mode.name);
    uint64_t wal_bytes = 0;
    double ms = MeasureMs(
        [&] { wal_bytes = CommitBurst(dir, initial, mode.mode, kBurst); });
    RemoveStoreDir(dir);
    StoreBenchRecord r;
    r.name = mode.name;
    r.records = kBurst;
    r.ms_per_op = ms / kBurst;  // Per committed record.
    r.ops_per_sec = r.ms_per_op > 0 ? 1000.0 / r.ms_per_op : 0.0;
    r.wal_bytes = wal_bytes;
    records.push_back(r);
  }

  {
    const std::string dir = ScratchDir("checkpoint");
    RemoveStoreDir(dir);
    auto store = store::DurableEngine::Open(dir, BenchKb(24));
    if (!store.ok()) std::abort();
    double ms = MeasureMs([&] {
      if (!(*store)->Checkpoint().ok()) std::abort();
    });
    RemoveStoreDir(dir);
    StoreBenchRecord r;
    r.name = "checkpoint_write";
    r.records = 0;
    r.ms_per_op = ms;
    r.ops_per_sec = ms > 0 ? 1000.0 / ms : 0.0;
    records.push_back(r);
  }

  for (int suffix : {16, 128}) {
    const std::string dir =
        ScratchDir(("recover_" + std::to_string(suffix)).c_str());
    RemoveStoreDir(dir);
    {
      auto store = store::DurableEngine::Open(dir, initial);
      if (!store.ok()) std::abort();
      for (int i = 0; i < suffix; ++i) {
        if (!(*store)->InsertTuples("R", {{V(i % 7), V((i + 2) % 7)}}).ok()) {
          std::abort();
        }
      }
    }
    uint64_t wal_bytes = 0;
    {
      StatusOr<std::string> wal = store::Env::Default()->ReadFile(
          dir + "/" + store::WalFileName(0));
      wal_bytes = wal.ok() ? wal->size() : 0;
    }
    double ms = MeasureMs([&] {
      Engine engine;
      auto recovered =
          store::RecoverStore(store::Env::Default(), dir, engine);
      if (!recovered.ok()) std::abort();
    });
    RemoveStoreDir(dir);
    StoreBenchRecord r;
    r.name = "recover_replay_" + std::to_string(suffix);
    r.records = suffix;
    r.ms_per_op = ms;
    r.ops_per_sec = ms > 0 ? 1000.0 / ms : 0.0;
    r.wal_bytes = wal_bytes;
    records.push_back(r);
  }

  if (!WriteStoreBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const StoreBenchRecord& r : records) {
    std::printf("%-24s records=%-4d %10.4f ms/op %12.2f ops/s  wal=%llu B\n",
                r.name.c_str(), r.records, r.ms_per_op, r.ops_per_sec,
                static_cast<unsigned long long>(r.wal_bytes));
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
