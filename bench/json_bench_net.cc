/// \file
/// Machine-readable benchmark for the network layer end to end: real
/// localhost TCP through NetServer's accept loop, frame codec, and
/// per-connection workers, measured from net::Client.
///
/// Two row families:
///
///   * net_mixed — `connections` concurrent clients, each its own TCP
///     connection, running a fixed op count at `read_frac` reads (the rest
///     are serialized τ applies issued by connection 0). Reported: total
///     ops/sec and read latency percentiles — what one wire hop plus the
///     serving layer costs versus BENCH_serving's in-process rows.
///   * repl_apply — the semi-sync tax twin: a durable primary with a live
///     streaming follower (pipe-connected pull thread), one TCP client
///     issuing applies. semi_sync=0 rows return after local durability;
///     semi_sync=1 rows block until the follower's fetch acks the lsn. The
///     delta between the twins is the replication round-trip a caller buys
///     with "on two machines before the reply".
///
/// Usage: json_bench_net [output.json]   (default: BENCH_net.json)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "net/transport.h"
#include "repl/follower.h"
#include "repl/primary.h"
#include "serve/server.h"
#include "store/file.h"

namespace kbt::bench {
namespace {

constexpr const char* kRev = "pr10";

struct NetBenchRecord {
  std::string name;
  int connections = 0;
  double read_frac = 0.0;
  int semi_sync = 0;
  int ops = 0;
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

bool WriteNetBenchJson(const std::string& path,
                       const std::vector<NetBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const NetBenchRecord& r = records[i];
    ok = std::fprintf(
             f,
             "    {\"name\": \"%s\", \"rev\": \"%s\", \"connections\": %d, "
             "\"read_frac\": %.2f, \"semi_sync\": %d, \"ops\": %d, "
             "\"ops_per_sec\": %.3f, \"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
             r.name.c_str(), kRev, r.connections, r.read_frac, r.semi_sync,
             r.ops, r.ops_per_sec, r.p50_ms, r.p99_ms,
             i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

/// 3-world kb over a small domain (the serving bench's shape): reads fold
/// over worlds, writes keep the world count stable.
Knowledgebase NetKb(int domain) {
  Schema schema = *Schema::Of({{"Dom", 1}, {"R", 2}, {"P", 1}, {"Q", 1}});
  Relation::Builder dom(1);
  for (int i = 0; i < domain; ++i) dom.Append({Name(V(i))});
  Relation dom_rel = dom.Build();
  Relation edges = ChainEdges(domain);
  std::vector<Database> worlds;
  for (int w = 0; w < 3; ++w) {
    Relation::Builder p(1);
    p.Append({Name(V(w % domain))});
    Database db =
        *Database::Create(schema, {dom_rel, edges, p.Build(), Relation(1)});
    worlds.push_back(std::move(db));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// The recurring read pool, as (antecedents, consequent, necessarily)
/// triples on the wire.
struct WireRead {
  std::vector<std::string> antecedents;
  std::string consequent;
  bool necessarily = true;
};

std::vector<WireRead> ReadPool() {
  return {
      {{}, "P(n0)", false},
      {{}, "Q(n1)", true},
      {{"P(n1)"}, "P(n1)", true},
      {{"Q(n2)"}, "P(n0) | Q(n2)", false},
      {{"P(n2)", "Q(n0)"}, "Q(n0)", true},
      {{"R(n0, n2)"}, "R(n0, n2)", false},
  };
}

std::string WriteExpr(int i) {
  return "tau{Q(n" + std::to_string(i % 3) + ")}";
}

struct MixResult {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

MixResult Summarize(std::vector<double> latencies, int extra_ops,
                    double wall_ms) {
  std::sort(latencies.begin(), latencies.end());
  MixResult r;
  int executed = static_cast<int>(latencies.size()) + extra_ops;
  r.ops_per_sec = wall_ms > 0 ? 1000.0 * executed / wall_ms : 0.0;
  if (!latencies.empty()) {
    r.p50_ms = latencies[latencies.size() / 2];
    r.p99_ms = latencies[std::min(latencies.size() - 1,
                                  latencies.size() * 99 / 100)];
  }
  return r;
}

/// `connections` clients over localhost TCP, `total_ops` at `read_frac`.
/// Connection 0 owns the write budget (the write path is serialized).
MixResult RunNetMix(uint16_t port, int connections, double read_frac,
                    int total_ops) {
  using Clock = std::chrono::steady_clock;
  const std::vector<WireRead> pool = ReadPool();
  const int writes = static_cast<int>(total_ops * (1.0 - read_frac));
  const int reads = total_ops - writes;
  const int reads_per_conn = reads / connections;

  std::vector<std::vector<double>> latencies(connections);
  auto worker = [&](int c) {
    net::ClientOptions options;
    options.sleep_on_backoff = false;
    net::Client client = net::Client::Dial("127.0.0.1", port, options);
    std::vector<double>& lat = latencies[c];
    lat.reserve(reads_per_conn);
    for (int i = 0; i < reads_per_conn; ++i) {
      const WireRead& r = pool[(c + i) % pool.size()];
      auto start = Clock::now();
      auto result = client.Read(r.antecedents, r.consequent, r.necessarily);
      if (!result.ok()) std::abort();
      lat.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    }
    if (c == 0) {
      for (int i = 0; i < writes; ++i) {
        if (!client.Apply(WriteExpr(i)).ok()) std::abort();
      }
    }
  };

  auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (int c = 0; c < connections; ++c) workers.emplace_back(worker, c);
  for (std::thread& w : workers) w.join();
  double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  std::vector<double> all;
  for (std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  return Summarize(std::move(all), writes, wall_ms);
}

std::string ScratchDir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") + "/kbt_bench_net_" +
         tag + "_" + std::to_string(static_cast<unsigned>(::getpid()));
}

void RemoveStoreDir(const std::string& dir) {
  store::Env* env = store::Env::Default();
  StatusOr<std::vector<std::string>> names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      Status ignored = env->RemoveFile(dir + "/" + name);
      (void)ignored;
    }
  }
  ::rmdir(dir.c_str());
}

/// One semi-sync twin row: durable primary + streaming follower, `applies`
/// commits from a TCP client. The only difference between the twins is
/// whether each Apply waits for the follower's ack.
MixResult RunReplApplies(bool semi_sync, int applies) {
  using Clock = std::chrono::steady_clock;
  const std::string pdir = ScratchDir(semi_sync ? "p_ss" : "p");
  const std::string fdir = ScratchDir(semi_sync ? "f_ss" : "f");
  RemoveStoreDir(pdir);
  RemoveStoreDir(fdir);

  auto server = serve::Server::OpenDurable(pdir, NetKb(6));
  if (!server.ok()) std::abort();
  repl::PrimaryOptions popts;
  popts.semi_sync = semi_sync;
  popts.semi_sync_timeout_ms = 10'000;
  auto primary = repl::Primary::Attach(server->get(), popts);
  if (!primary.ok()) std::abort();

  net::NetServerOptions nopts;
  nopts.repl = primary->get();
  net::NetServer net(server->get(), nopts);
  if (!net.Start().ok()) std::abort();
  const uint16_t port = net.port();

  repl::FollowerOptions fopts;
  fopts.node_id = "bench-replica";
  fopts.dir = fdir;
  fopts.initial = NetKb(6);
  fopts.connect = [port] { return net::DialTcp("127.0.0.1", port); };
  fopts.poll_wait_ms = 1'000;
  auto follower = repl::Follower::Open(std::move(fopts));
  if (!follower.ok()) std::abort();
  if (!(*follower)->Start().ok()) std::abort();

  std::vector<double> lat;
  lat.reserve(applies);
  net::Client client = net::Client::Dial("127.0.0.1", port);
  auto start = Clock::now();
  for (int i = 0; i < applies; ++i) {
    auto t0 = Clock::now();
    if (!client.Apply(WriteExpr(i)).ok()) std::abort();
    lat.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  (*follower)->Stop();
  follower->reset();
  Status ignored = net.Shutdown();
  (void)ignored;
  primary->reset();
  server->reset();
  RemoveStoreDir(pdir);
  RemoveStoreDir(fdir);
  return Summarize(std::move(lat), 0, wall_ms);
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_net.json";
  std::vector<NetBenchRecord> records;

  // Family 1: connections × read mix over localhost TCP, in-memory server.
  constexpr int kOps = 600;
  for (double read_frac : {1.0, 0.9}) {
    for (int connections : {1, 2, 4}) {
      serve::Server server(NetKb(6));
      net::NetServer net(&server, net::NetServerOptions());
      if (!net.Start().ok()) std::abort();
      MixResult mix = RunNetMix(net.port(), connections, read_frac, kOps);
      Status ignored = net.Shutdown();
      (void)ignored;
      NetBenchRecord r;
      r.name = "net_mixed";
      r.connections = connections;
      r.read_frac = read_frac;
      r.ops = kOps;
      r.ops_per_sec = mix.ops_per_sec;
      r.p50_ms = mix.p50_ms;
      r.p99_ms = mix.p99_ms;
      records.push_back(r);
    }
  }

  // Family 2: the semi-sync tax twin rows.
  constexpr int kApplies = 200;
  for (bool semi_sync : {false, true}) {
    MixResult mix = RunReplApplies(semi_sync, kApplies);
    NetBenchRecord r;
    r.name = "repl_apply";
    r.connections = 1;
    r.read_frac = 0.0;
    r.semi_sync = semi_sync ? 1 : 0;
    r.ops = kApplies;
    r.ops_per_sec = mix.ops_per_sec;
    r.p50_ms = mix.p50_ms;
    r.p99_ms = mix.p99_ms;
    records.push_back(r);
  }

  if (!WriteNetBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const NetBenchRecord& r : records) {
    std::printf(
        "%-10s conns=%d read=%.2f semi_sync=%d %10.2f ops/s  p50=%.4f ms "
        "p99=%.4f ms\n",
        r.name.c_str(), r.connections, r.read_frac, r.semi_sync, r.ops_per_sec,
        r.p50_ms, r.p99_ms);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
