/// \file
/// E2 — §4 complexity table, row Θ (full transformation expressions), data
/// complexity (Theorem 4.3 / Lemma 4.1: ∈ PSPACE). Composite pipelines
/// τ ∘ b ∘ τ ∘ ... with b ∈ {⊓, ⊔, π}, applied to growing databases. With a fixed
/// expression the per-step machinery stays polynomial; chaining steps multiplies
/// the work by the (bounded) number of intermediate worlds.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"

namespace kbt::bench {
namespace {

/// depth-d pipeline: alternate an indefinite insert, a certainty collapse and a
/// definitional insert, then project.
Pipeline CompositePipeline(int depth) {
  Pipeline p;
  for (int i = 0; i < depth; ++i) {
    std::string layer = std::to_string(i);
    p.Tau("R(a" + layer + ", b" + layer + ") | R(b" + layer + ", a" + layer + ")");
    p.Lub();
    p.Tau("forall x, y: R(x, y) -> S" + layer + "(x, y)");
    p.Glb();
  }
  p.Project({"R"});
  return p;
}

void BM_CompositeTheta_Depth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(10, 2.0, 41));
  Pipeline pipeline = CompositePipeline(depth);
  for (auto _ : state) {
    auto out = pipeline.Apply(kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["steps"] = static_cast<double>(pipeline.steps().size());
}
BENCHMARK(BM_CompositeTheta_Depth)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_CompositeTheta_DatabaseSize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 3.0, 43));
  Pipeline pipeline = CompositePipeline(2);
  for (auto _ : state) {
    auto out = pipeline.Apply(kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CompositeTheta_DatabaseSize)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Worlds multiply through repeated indefinite inserts, then collapse: the
/// intermediate knowledgebase size (2^k worlds) dominates, illustrating why the
/// PSPACE bound walks candidate databases rather than materializing the kb.
void BM_CompositeTheta_WorldBlowup(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Pipeline p;
  for (int i = 0; i < k; ++i) {
    std::string layer = std::to_string(i);
    p.Tau("R(a" + layer + ", x) | R(a" + layer + ", y)");
  }
  p.Lub();
  Knowledgebase kb = GraphKb("R", ChainEdges(4));
  for (auto _ : state) {
    auto out = p.Apply(kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["worlds"] = std::pow(2.0, k);
}
BENCHMARK(BM_CompositeTheta_WorldBlowup)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
}  // namespace kbt::bench
