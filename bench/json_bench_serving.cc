/// \file
/// Machine-readable benchmark for the serving layer (serve::Server): mixed
/// read/write traffic with throughput and tail latency.
///
/// Each row runs a fixed operation count split over `threads` client threads
/// (each with its own pinned Session), with a deterministic fraction of the
/// operations being writes (serialized τ applies that publish new snapshots)
/// and the rest counterfactual/modal reads drawn from a small recurring
/// request pool — the shape the cache bank and batcher are built for. Reported
/// per row:
///
///   * ops_per_sec       — total operations / wall time,
///   * p50_ms / p99_ms   — read latency percentiles (reads only: writes are
///                         serialized and measured implicitly by throughput),
///   * nobatch_*         — the single-thread no-batch twin of the same mix
///                         (cache bank off, one request at a time): what the
///                         same traffic costs without the serving machinery.
///
/// Thread counts beyond the machine's cores measure oversubscription overhead,
/// honestly (the CI box is single-core; see ROADMAP perf notes).
///
/// Usage: json_bench_serving [output.json]   (default: BENCH_serving.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/server.h"

namespace kbt::bench {
namespace {

constexpr const char* kRev = "pr8";

struct ServeBenchRecord {
  std::string name;
  int threads = 0;
  double read_frac = 0.0;
  int ops = 0;
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double nobatch_ops_per_sec = 0.0;
  double nobatch_p50_ms = 0.0;
  double nobatch_p99_ms = 0.0;
};

bool WriteServeBenchJson(const std::string& path,
                         const std::vector<ServeBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const ServeBenchRecord& r = records[i];
    ok = std::fprintf(
             f,
             "    {\"name\": \"%s\", \"rev\": \"%s\", \"threads\": %d, "
             "\"read_frac\": %.2f, \"ops\": %d, \"ops_per_sec\": %.3f, "
             "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
             "\"nobatch_ops_per_sec\": %.3f, \"nobatch_p50_ms\": %.4f, "
             "\"nobatch_p99_ms\": %.4f}%s\n",
             r.name.c_str(), kRev, r.threads, r.read_frac, r.ops, r.ops_per_sec,
             r.p50_ms, r.p99_ms, r.nobatch_ops_per_sec, r.nobatch_p50_ms,
             r.nobatch_p99_ms, i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

/// Serving workload state: 3 worlds over a small domain, so reads exercise the
/// multi-world fold and writes keep the world count stable.
Knowledgebase ServingKb(int domain) {
  Schema schema = *Schema::Of({{"Dom", 1}, {"R", 2}, {"P", 1}, {"Q", 1}});
  Relation::Builder dom(1);
  for (int i = 0; i < domain; ++i) dom.Append({Name(V(i))});
  Relation dom_rel = dom.Build();
  Relation edges = ChainEdges(domain);
  std::vector<Database> worlds;
  for (int w = 0; w < 3; ++w) {
    Relation::Builder p(1);
    p.Append({Name(V(w % domain))});
    Database db = *Database::Create(
        schema, {dom_rel, edges, p.Build(), Relation(1)});
    worlds.push_back(std::move(db));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// The recurring read pool: a handful of distinct requests, so the bank's
/// per-sentence caches pay off the way a production query mix would.
std::vector<serve::ReadRequest> ReadPool() {
  std::vector<serve::ReadRequest> pool;
  auto add = [&pool](std::vector<std::string> ants, std::string cons,
                     Modality m) {
    serve::ReadRequest r;
    r.antecedents = std::move(ants);
    r.consequent = std::move(cons);
    r.modality = m;
    pool.push_back(std::move(r));
  };
  add({}, "P(n0)", Modality::kPossibly);
  add({}, "Q(n1)", Modality::kNecessarily);
  add({"P(n1)"}, "P(n1)", Modality::kNecessarily);
  add({"Q(n2)"}, "P(n0) | Q(n2)", Modality::kPossibly);
  add({"P(n2)", "Q(n0)"}, "Q(n0)", Modality::kNecessarily);
  add({"R(n0, n2)"}, "R(n0, n2)", Modality::kPossibly);
  return pool;
}

/// The cycled write pool (constants recur, so the active domain — and with it
/// the grounding-cache key space — stabilizes after one cycle).
std::string WriteExpr(int i) {
  return "tau{Q(n" + std::to_string(i % 3) + ")}";
}

struct MixResult {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Runs `total_ops` at `read_frac` over `threads` sessions. Thread 0 owns the
/// writes (the write path is serialized anyway); batching groups each thread's
/// read stream into ExecuteBatch calls of `batch` when > 1.
MixResult RunMix(serve::Server& server, int threads, double read_frac,
                 int total_ops, size_t batch) {
  using Clock = std::chrono::steady_clock;
  const std::vector<serve::ReadRequest> pool = ReadPool();
  const int writes = static_cast<int>(total_ops * (1.0 - read_frac));
  const int reads = total_ops - writes;
  const int reads_per_thread = reads / threads;

  std::vector<std::vector<double>> latencies(threads);
  auto reader = [&](int t) {
    std::unique_ptr<serve::Session> session = server.StartSession();
    std::vector<double>& lat = latencies[t];
    lat.reserve(reads_per_thread);
    int done = 0;
    while (done < reads_per_thread) {
      size_t n = std::min<size_t>(batch, reads_per_thread - done);
      std::vector<serve::ReadRequest> requests;
      requests.reserve(n);
      for (size_t j = 0; j < n; ++j) {
        requests.push_back(pool[(t + done + j) % pool.size()]);
      }
      auto start = Clock::now();
      if (n > 1) {
        auto results = server.ExecuteBatch(*session, requests);
        if (!results.ok()) std::abort();
      } else {
        auto result = session->Query(requests[0]);
        if (!result.ok()) std::abort();
      }
      double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      // Batched: attribute the batch cost evenly — the client-visible latency
      // of a request that waited for its group.
      for (size_t j = 0; j < n; ++j) lat.push_back(ms / n);
      done += static_cast<int>(n);
    }
    // Thread 0 interleaves the whole write budget after its reads, inside the
    // timed region (wall time covers both sides of the mix).
    if (t == 0) {
      for (int i = 0; i < writes; ++i) {
        if (!server.Apply(WriteExpr(i)).ok()) std::abort();
      }
    }
  };

  auto start = Clock::now();
  if (threads == 1) {
    reader(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) workers.emplace_back(reader, t);
    for (std::thread& w : workers) w.join();
  }
  double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  std::vector<double> all;
  for (std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  MixResult r;
  int executed = static_cast<int>(all.size()) + writes;
  r.ops_per_sec = wall_ms > 0 ? 1000.0 * executed / wall_ms : 0.0;
  if (!all.empty()) {
    r.p50_ms = all[all.size() / 2];
    r.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return r;
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_serving.json";
  std::vector<ServeBenchRecord> records;

  constexpr int kOps = 600;
  constexpr size_t kBatch = 8;
  const double mixes[] = {1.0, 0.95, 0.5};

  for (double read_frac : mixes) {
    // The single-thread no-batch twin: cache bank off, one request at a time.
    MixResult nobatch;
    {
      serve::ServerOptions options;
      options.use_cache_bank = false;
      serve::Server server(ServingKb(6), options);
      nobatch = RunMix(server, 1, read_frac, kOps, 1);
    }
    for (int threads : {1, 2, 4}) {
      serve::Server server(ServingKb(6));
      MixResult mix = RunMix(server, threads, read_frac, kOps, kBatch);
      ServeBenchRecord r;
      r.name = "serve_mixed";
      r.threads = threads;
      r.read_frac = read_frac;
      r.ops = kOps;
      r.ops_per_sec = mix.ops_per_sec;
      r.p50_ms = mix.p50_ms;
      r.p99_ms = mix.p99_ms;
      r.nobatch_ops_per_sec = nobatch.ops_per_sec;
      r.nobatch_p50_ms = nobatch.p50_ms;
      r.nobatch_p99_ms = nobatch.p99_ms;
      records.push_back(r);
    }
  }

  if (!WriteServeBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const ServeBenchRecord& r : records) {
    std::printf(
        "%-12s t=%d read=%.2f %10.2f ops/s  p50=%.4f ms p99=%.4f ms  "
        "(nobatch %.2f ops/s p50=%.4f p99=%.4f)\n",
        r.name.c_str(), r.threads, r.read_frac, r.ops_per_sec, r.p50_ms,
        r.p99_ms, r.nobatch_ops_per_sec, r.nobatch_p50_ms, r.nobatch_p99_ms);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
