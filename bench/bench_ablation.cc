/// \file
/// E9 — ablations of the engineering choices DESIGN.md calls out:
///
///   * CDCL enumeration vs. the reference 2^k enumeration on identical instances
///     (the scalable engine is why non-toy updates run at all);
///   * cone-blocking clauses on/off (off forces rediscovery of dominated models);
///   * semi-naive vs. naive Datalog fixpoint (rounds × re-derivation work).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace kbt::bench {
namespace {

/// "Some vertex is missing from R": k mentioned atoms, k minimal models, model
/// space 2^k − 1 — worst case for blind enumeration, easy for CDCL + cones.
void BM_Ablation_SatVsReference(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool use_sat = state.range(1) != 0;
  Database db = *Database::Create(*Schema::Of({{"R", 1}}), {UnarySet(n)});
  Formula phi = *ParseFormula("exists x: !R(x)");
  MuOptions options;
  options.strategy = use_sat ? MuStrategy::kSat : MuStrategy::kReference;
  for (auto _ : state) {
    auto out = Mu(phi, db, options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(use_sat ? "cdcl" : "reference");
}
BENCHMARK(BM_Ablation_SatVsReference)
    ->Args({6, 0})->Args({10, 0})->Args({14, 0})->Args({18, 0})
    ->Args({6, 1})->Args({10, 1})->Args({14, 1})->Args({18, 1});

void BM_Ablation_ConeBlocking(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool cones = state.range(1) != 0;
  Database db = *Database::Create(*Schema::Of({{"R", 1}}), {UnarySet(n)});
  // Partition insert: 2^n minimal models (every split of R into R2 | R3).
  Formula phi = *ParseFormula("forall x: R(x) -> R2(x) | R3(x)");
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  options.use_cone_blocking = cones;
  MuStats stats;
  for (auto _ : state) {
    auto out = Mu(phi, db, options, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(cones ? "cone-blocking" : "exact-blocking");
  state.counters["minimal_models"] = static_cast<double>(stats.minimal_models);
  state.counters["sat_calls"] = static_cast<double>(stats.sat_solve_calls);
}
BENCHMARK(BM_Ablation_ConeBlocking)
    ->Args({4, 1})->Args({6, 1})->Args({8, 1})
    ->Args({2, 0})->Args({3, 0})->Args({4, 0})  // Exact blocking: 3^n crawl.
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_SeminaiveVsNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool seminaive = state.range(1) != 0;
  Knowledgebase kb = GraphKb("R", ChainEdges(n));
  Formula phi = *ParseFormula(
      "forall x, y, z: (T(x, y) & R(y, z)) | R(x, z) -> T(x, z)");
  MuOptions options;
  options.strategy = MuStrategy::kDatalog;
  options.use_seminaive = seminaive;
  for (auto _ : state) {
    auto out = Mu(phi, kb.databases()[0], options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(seminaive ? "semi-naive" : "naive");
}
BENCHMARK(BM_Ablation_SeminaiveVsNaive)
    ->Args({16, 1})->Args({48, 1})->Args({96, 1})
    ->Args({16, 0})->Args({48, 0})->Args({96, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kbt::bench
