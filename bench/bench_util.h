#ifndef KBT_BENCH_BENCH_UTIL_H_
#define KBT_BENCH_BENCH_UTIL_H_

/// \file
/// Shared workload builders for the benchmark harness: deterministic random
/// graphs, chain graphs, and knowledgebase construction. Seeds are fixed so every
/// run measures the same instances.

#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/kbt.h"

namespace kbt::bench {

inline std::string V(int i) { return "n" + std::to_string(i); }

/// Random directed graph over n vertices with expected out-degree `degree`.
inline Relation RandomEdges(int n, double degree, uint64_t seed) {
  std::mt19937_64 rng(seed);
  double p = n > 1 ? degree / (n - 1) : 0.0;
  std::bernoulli_distribution coin(p);
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && coin(rng)) tuples.push_back(Tuple{Name(V(i)), Name(V(j))});
    }
  }
  return Relation(2, std::move(tuples));
}

/// Random DAG (edges i → j only for i < j) with expected out-degree `degree`.
inline Relation RandomDagEdges(int n, double degree, uint64_t seed) {
  std::mt19937_64 rng(seed);
  double p = n > 1 ? degree / (n - 1) : 0.0;
  std::bernoulli_distribution coin(p);
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (coin(rng)) tuples.push_back(Tuple{Name(V(i)), Name(V(j))});
    }
  }
  return Relation(2, std::move(tuples));
}

/// Chain 0 → 1 → ... → n-1.
inline Relation ChainEdges(int n) {
  std::vector<Tuple> tuples;
  for (int i = 0; i + 1 < n; ++i) tuples.push_back(Tuple{Name(V(i)), Name(V(i + 1))});
  return Relation(2, std::move(tuples));
}

/// Singleton kb over one binary relation.
inline Knowledgebase GraphKb(std::string_view relation, Relation edges) {
  Schema schema = *Schema::Of({{relation, 2}});
  return Knowledgebase::Singleton(*Database::Create(schema, {std::move(edges)}));
}

/// Unary relation {e0, ..., e_{n-1}}.
inline Relation UnarySet(int n, std::string_view prefix = "e") {
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(Tuple{Name(std::string(prefix) + std::to_string(i))});
  }
  return Relation(1, std::move(tuples));
}

}  // namespace kbt::bench

#endif  // KBT_BENCH_BENCH_UTIL_H_
