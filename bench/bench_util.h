#ifndef KBT_BENCH_BENCH_UTIL_H_
#define KBT_BENCH_BENCH_UTIL_H_

/// \file
/// Shared workload builders for the benchmark harness: deterministic random
/// graphs, chain graphs, and knowledgebase construction. Seeds are fixed so every
/// run measures the same instances.

#include <chrono>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/kbt.h"

namespace kbt::bench {

/// Runs `op` repeatedly for at least `min_wall_ms` and returns ms per op. One
/// warmup call touches caches and interner state before timing starts.
template <typename Fn>
double MeasureMs(Fn&& op, double min_wall_ms = 300.0) {
  using Clock = std::chrono::steady_clock;
  op();
  size_t iters = 0;
  auto start = Clock::now();
  double elapsed_ms = 0.0;
  do {
    op();
    ++iters;
    elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  } while (elapsed_ms < min_wall_ms);
  return elapsed_ms / static_cast<double>(iters);
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark records (BENCH_datalog.json). Kept dependency-free
// so perf trajectories can be produced in any environment and diffed across
// PRs.
// ---------------------------------------------------------------------------

/// One measured workload configuration.
struct BenchRecord {
  std::string name;           ///< Workload name, e.g. "datalog_tc".
  int n = 0;                  ///< Size parameter (vertices, domain size, ...).
  double ms_per_op = 0.0;     ///< Wall milliseconds per operation.
  double ops_per_sec = 0.0;   ///< 1000 / ms_per_op.
  size_t rounds = 0;          ///< Fixpoint rounds (datalog workloads).
  size_t derived_tuples = 0;  ///< Tuples derived beyond the EDB.
};

/// Writes records as a JSON document: {"benchmarks": [{...}, ...]}.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    ok = std::fprintf(f,
                      "    {\"name\": \"%s\", \"n\": %d, \"ms_per_op\": %.4f, "
                      "\"ops_per_sec\": %.3f, \"rounds\": %zu, "
                      "\"derived_tuples\": %zu}%s\n",
                      r.name.c_str(), r.n, r.ms_per_op, r.ops_per_sec, r.rounds,
                      r.derived_tuples, i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

inline std::string V(int i) { return "n" + std::to_string(i); }

/// Random directed graph over n vertices with expected out-degree `degree`.
inline Relation RandomEdges(int n, double degree, uint64_t seed) {
  std::mt19937_64 rng(seed);
  double p = n > 1 ? degree / (n - 1) : 0.0;
  std::bernoulli_distribution coin(p);
  Relation::Builder edges(2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && coin(rng)) edges.Append({Name(V(i)), Name(V(j))});
    }
  }
  return edges.Build();
}

/// Random DAG (edges i → j only for i < j) with expected out-degree `degree`.
inline Relation RandomDagEdges(int n, double degree, uint64_t seed) {
  std::mt19937_64 rng(seed);
  double p = n > 1 ? degree / (n - 1) : 0.0;
  std::bernoulli_distribution coin(p);
  Relation::Builder edges(2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (coin(rng)) edges.Append({Name(V(i)), Name(V(j))});
    }
  }
  return edges.Build();
}

/// Chain 0 → 1 → ... → n-1.
inline Relation ChainEdges(int n) {
  Relation::Builder edges(2);
  edges.Reserve(n > 0 ? n - 1 : 0);
  for (int i = 0; i + 1 < n; ++i) edges.Append({Name(V(i)), Name(V(i + 1))});
  return edges.Build();
}

/// Singleton kb over one binary relation.
inline Knowledgebase GraphKb(std::string_view relation, Relation edges) {
  Schema schema = *Schema::Of({{relation, 2}});
  return Knowledgebase::Singleton(*Database::Create(schema, {std::move(edges)}));
}

/// Unary relation {e0, ..., e_{n-1}}.
inline Relation UnarySet(int n, std::string_view prefix = "e") {
  Relation::Builder tuples(1);
  tuples.Reserve(static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) {
    tuples.Append({Name(std::string(prefix) + std::to_string(i))});
  }
  return tuples.Build();
}

}  // namespace kbt::bench

#endif  // KBT_BENCH_BENCH_UTIL_H_
