/// \file
/// E5 — Theorem 4.7: quantifier-free (ground) transformations have PTIME data
/// complexity. The reference enumeration touches only the ≤|φ| ground atoms of the
/// sentence, so runtime is flat-to-linear in database size — and, for contrast,
/// exponential in the number of *mentioned* atoms (the expression-complexity
/// direction, Theorem 4.9).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace kbt::bench {
namespace {

/// A ground batch update touching k edges: insert k/2, delete k/2.
Formula GroundBatch(int k) {
  std::vector<Formula> parts;
  for (int i = 0; i < k; ++i) {
    Formula atom = Atom("R", {Term::Const(V(i)), Term::Const(V(i + 1))});
    parts.push_back(i % 2 == 0 ? atom : Not(atom));
  }
  return And(std::move(parts));
}

void BM_QuantifierFree_DatabaseScaling(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 4.0, 47));
  Formula phi = GroundBatch(6);
  for (auto _ : state) {
    MuOptions options;  // Auto picks the Theorem 4.7 reference path.
    MuStats stats;
    auto out = Mu(phi, kb.databases()[0], options, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["db_tuples"] =
      static_cast<double>(kb.databases()[0].TupleCount());
}
BENCHMARK(BM_QuantifierFree_DatabaseScaling)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_QuantifierFree_DisjunctionWidth(benchmark::State& state) {
  // k-way disjunction of fresh facts: k minimal models, 2^k assignments in the
  // reference enumeration — exponential in |φ|, polynomial in the data.
  int k = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(12, 2.0, 53));
  std::vector<Formula> options_list;
  for (int i = 0; i < k; ++i) {
    options_list.push_back(
        Atom("R", {Term::Const("f" + std::to_string(i)), Term::Const("g")}));
  }
  Formula phi = Or(std::move(options_list));
  MuOptions options;
  options.strategy = MuStrategy::kReference;
  for (auto _ : state) {
    auto out = Mu(phi, kb.databases()[0], options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QuantifierFree_DisjunctionWidth)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_QuantifierFree_SatVsReference(benchmark::State& state) {
  // Same ground workload through the CDCL engine: confirms the fast path is the
  // right default for ground sentences.
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 4.0, 47));
  Formula phi = GroundBatch(6);
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  for (auto _ : state) {
    auto out = Mu(phi, kb.databases()[0], options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QuantifierFree_SatVsReference)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace kbt::bench
