/// \file
/// E8 — Theorem 5.1: SF ⊆ ST1. An existential second-order query (graph
/// 2-colorability) evaluated as the π ⊔ τ transformation over the knowledgebase of
/// all candidate colorings (2^n worlds, exactly the construction in the proof),
/// next to a direct polynomial BFS baseline. The exponential-vs-linear gap is the
/// price the uniform construction pays for total generality.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"

namespace kbt::bench {
namespace {

Knowledgebase AllColorings(const Database& db) {
  std::vector<Value> domain = db.ActiveDomain();
  Schema extended = *db.schema().Union(*Schema::Of({{"S", 1}}));
  std::vector<Database> worlds;
  for (uint64_t mask = 0; mask < (uint64_t{1} << domain.size()); ++mask) {
    std::vector<Tuple> tuples;
    for (size_t i = 0; i < domain.size(); ++i) {
      if ((mask >> i) & 1) tuples.push_back(Tuple{domain[i]});
    }
    Database world = *db.ExtendTo(extended);
    world = *world.WithRelation("S", Relation(1, std::move(tuples)));
    worlds.push_back(std::move(world));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

Relation EvenCycle(int n) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(Tuple{Name(V(i)), Name(V((i + 1) % n))});
    tuples.push_back(Tuple{Name(V((i + 1) % n)), Name(V(i))});
  }
  return Relation(2, std::move(tuples));
}

void BM_SecondOrder_BipartiteViaSt1(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = *Database::Create(*Schema::Of({{"E", 2}}), {EvenCycle(n)});
  Knowledgebase kb = AllColorings(db);
  Engine engine;
  const char* expr =
      "tau{ (forall x, y: E(x, y) -> !(S(x) <-> S(y))) -> Ans() } "
      ">> lub >> pi[Ans]";
  for (auto _ : state) {
    auto out = engine.Apply(expr, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["worlds"] = std::pow(2.0, n);
}
BENCHMARK(BM_SecondOrder_BipartiteViaSt1)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_SecondOrder_DirectBfsBaseline(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  for (auto _ : state) {
    std::vector<int> color(static_cast<size_t>(n), -1);
    bool ok = true;
    for (int s = 0; s < n && ok; ++s) {
      if (color[static_cast<size_t>(s)] != -1) continue;
      color[static_cast<size_t>(s)] = 0;
      std::vector<int> queue{s};
      while (!queue.empty() && ok) {
        int u = queue.back();
        queue.pop_back();
        for (auto [a, b] : edges) {
          int v = a == u ? b : (b == u ? a : -1);
          if (v < 0) continue;
          if (color[static_cast<size_t>(v)] == -1) {
            color[static_cast<size_t>(v)] = 1 - color[static_cast<size_t>(u)];
            queue.push_back(v);
          } else if (color[static_cast<size_t>(v)] ==
                     color[static_cast<size_t>(u)]) {
            ok = false;
          }
        }
      }
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SecondOrder_DirectBfsBaseline)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
}  // namespace kbt::bench
