/// \file
/// E4 — Theorem 4.2: 3CNF satisfiability as a fixed π(τ(·)) transformation (the
/// lower-bound witness: data complexity of composite expressions is NP/co-NP-hard).
/// The transformation enumerates all 2^n assignment worlds, so runtime doubles per
/// variable — that exponential *is* the hardness construction, shown next to the
/// raw CDCL time on the identical instance.

#include <benchmark/benchmark.h>

#include <array>
#include <random>

#include <cmath>

#include "bench_util.h"
#include "sat/solver.h"

namespace kbt::bench {
namespace {

struct Cnf3 {
  int num_vars;
  std::vector<std::array<std::pair<int, bool>, 3>> clauses;
};

Cnf3 RandomCnf(int num_vars, int num_clauses, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Cnf3 out;
  out.num_vars = num_vars;
  std::uniform_int_distribution<int> var(0, num_vars - 1);
  std::bernoulli_distribution sign(0.5);
  for (int i = 0; i < num_clauses; ++i) {
    out.clauses.push_back({std::make_pair(var(rng), sign(rng)),
                           std::make_pair(var(rng), sign(rng)),
                           std::make_pair(var(rng), sign(rng))});
  }
  return out;
}

Knowledgebase ReductionKb(const Cnf3& cnf) {
  std::vector<Tuple> lits, clauses;
  for (size_t c = 0; c < cnf.clauses.size(); ++c) {
    clauses.push_back(Tuple{Name("c" + std::to_string(c))});
    for (auto [v, positive] : cnf.clauses[c]) {
      lits.push_back(Tuple{Name("c" + std::to_string(c)),
                           Name("x" + std::to_string(v)),
                           Name(positive ? "0" : "1")});
    }
  }
  return Knowledgebase::Singleton(*Database::Create(
      *Schema::Of({{"Clause", 1}, {"LitOpp", 3}}),
      {Relation(1, std::move(clauses)), Relation(3, std::move(lits))}));
}

const char* kReductionExpr =
    "tau{ (forall c, v, t: LitOpp(c, v, t) -> R2(v, 0) | R2(v, 1)) & "
    "     (forall c: Clause(c) & "
    "        (forall v, t: LitOpp(c, v, t) -> R2(v, t)) -> R3()) } >> pi[R3]";

void BM_SatReduction_Transformation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Cnf3 cnf = RandomCnf(n, static_cast<int>(4.2 * n), 67);
  Knowledgebase kb = ReductionKb(cnf);
  Engine engine;
  bool satisfiable = false;
  for (auto _ : state) {
    auto out = engine.Apply(kReductionExpr, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    satisfiable = false;
    for (const Database& db : *out) {
      if (db.RelationFor("R3")->empty()) satisfiable = true;
    }
    benchmark::DoNotOptimize(satisfiable);
  }
  state.counters["sat"] = satisfiable ? 1 : 0;
  state.counters["worlds"] = std::pow(2.0, n);
}
BENCHMARK(BM_SatReduction_Transformation)->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);

void BM_SatReduction_DirectCdcl(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Cnf3 cnf = RandomCnf(n, static_cast<int>(4.2 * n), 67);
  for (auto _ : state) {
    sat::Solver solver;
    std::vector<sat::Var> vars;
    for (int i = 0; i < n; ++i) vars.push_back(solver.NewVar());
    for (const auto& clause : cnf.clauses) {
      std::vector<sat::Lit> c;
      for (auto [v, positive] : clause) {
        c.push_back(sat::MkLit(vars[static_cast<size_t>(v)], !positive));
      }
      solver.AddClause(c);
    }
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_SatReduction_DirectCdcl)->DenseRange(2, 8);

}  // namespace
}  // namespace kbt::bench
