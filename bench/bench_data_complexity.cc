/// \file
/// E1 — §4 complexity table, row (τ, π), data complexity (Theorem 4.1: ∈ co-NP).
///
/// Fixed sentences, growing databases. The membership-test machinery (grounding +
/// one CDCL enumeration per input world) is polynomial per candidate model, so on
/// benign sentences the measured curves grow polynomially; the co-NP worst case is
/// exhibited separately by bench_sat_reduction. Series:
///
///   * Copy        — ∀x,y (R(x,y) → S(x,y)), forced through the CDCL engine.
///   * VertexDrop  — ∀y ¬R(v0, y): delete all out-edges of one vertex.
///   * ChoiceK     — a k-way disjunctive insert (k fixed): output worlds stay k.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace kbt::bench {
namespace {

MuOptions SatOnly() {
  MuOptions o;
  o.strategy = MuStrategy::kSat;
  return o;
}

void BM_DataComplexity_CopyInsert(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 3.0, 17));
  Formula phi = *ParseFormula("forall x, y: R(x, y) -> S(x, y)");
  for (auto _ : state) {
    auto out = Tau(phi, kb, SatOnly());
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["tuples"] = static_cast<double>(
      kb.databases()[0].TupleCount());
}
BENCHMARK(BM_DataComplexity_CopyInsert)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_DataComplexity_VertexDrop(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 4.0, 23));
  Formula phi = *ParseFormula("forall y: !R(n0, y)");
  for (auto _ : state) {
    auto out = Tau(phi, kb, SatOnly());
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DataComplexity_VertexDrop)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DataComplexity_DisjunctiveChoice(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 3.0, 29));
  // Three-way indefinite insert (fixed k): output has up to 3 worlds.
  Formula phi = *ParseFormula("R(z1, z2) | R(z3, z4) | R(z5, z6)");
  for (auto _ : state) {
    auto out = Tau(phi, kb, SatOnly());
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DataComplexity_DisjunctiveChoice)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace kbt::bench
