/// \file
/// E6 — Theorem 4.8: Datalog-restricted transformations have PTIME data
/// complexity. Transitive-closure insertion (Example 1's sentence):
///
///   * through the Theorem 4.8 fast path (semi-naive least fixpoint) on graphs up
///     to 512 vertices — polynomial growth;
///   * through the generic CDCL engine on small graphs — the gap *is* the theorem;
///   * a stratified-negation program via sequential strata (the paper's [ABW88]
///     remark), exercised end to end.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace kbt::bench {
namespace {

const char* kTcSentence =
    "forall x, y, z: (T(x, y) & R(y, z)) | R(x, z) -> T(x, z)";

void BM_Datalog_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 3.0, 59));
  Formula phi = *ParseFormula(kTcSentence);
  MuOptions options;
  options.strategy = MuStrategy::kDatalog;
  MuStats stats;
  for (auto _ : state) {
    auto out = Mu(phi, kb.databases()[0], options, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derived"] = static_cast<double>(stats.datalog_derived_tuples);
  state.counters["rounds"] = static_cast<double>(stats.datalog_rounds);
}
BENCHMARK(BM_Datalog_TransitiveClosure)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_Datalog_TransitiveClosureViaGenericEngine(benchmark::State& state) {
  // The same sentence forced through grounding + CDCL: correct but super-
  // polynomially slower; the crossover against the fast path is the point.
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 3.0, 59));
  Formula phi = *ParseFormula(kTcSentence);
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  options.max_ground_nodes = 50'000'000;
  for (auto _ : state) {
    auto out = Mu(phi, kb.databases()[0], options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Datalog_TransitiveClosureViaGenericEngine)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_Datalog_StratifiedProgramStrata(benchmark::State& state) {
  // reach + unreachable via stratified negation, as a standalone program.
  int n = static_cast<int>(state.range(0));
  datalog::Program program = *datalog::ParseProgram(R"(
    reach(Y) :- start(X), edge(X, Y).
    reach(Y) :- reach(X), edge(X, Y).
    unreachable(X) :- node(X), !reach(X).
  )");
  std::vector<Tuple> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(Tuple{Name(V(i))});
  Database db = *Database::Create(
      *Schema::Of({{"node", 1}, {"start", 1}, {"edge", 2}}),
      {Relation(1, std::move(nodes)),
       Relation(1, {Tuple{Name(V(0))}}),
       RandomEdges(n, 2.0, 61)});
  for (auto _ : state) {
    auto out = datalog::Evaluate(program, db);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Datalog_StratifiedProgramStrata)
    ->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kbt::bench
