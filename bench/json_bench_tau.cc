/// \file
/// Machine-readable benchmark harness for the τ executor: the world-parallel
/// fan-out over exec/ (per-worker solver pools, domain-keyed grounding and
/// frozen-CNF-prefix caches, hash-based union). Each workload is measured —
///
///   * pr2     — the pre-executor loop (fresh μ per world, repeated pairwise
///               UnionWith), reconstructed here as the baseline,
///   * t1_nocache  — threads=1, all domain-keyed sharing off (per-world
///                   grounding AND per-world Tseitin encoding),
///   * t1_noprefix — threads=1 with the grounding cache but no prefix
///                   sharing (the PR 3 configuration),
///   * t1      — threads=1, grounding cache + frozen-CNF-prefix solver forks,
///   * t2/t4   — Tau with 2 and 4 worker threads (all sharing on),
///
/// and tagged with `rev` so rows can be appended to BENCH_tau.json next to
/// earlier revisions' rows — the perf trajectory stays diffable across PRs.
/// speedup_vs_pr2 is the headline number; the cache and prefix hit counters
/// separate grounding reuse, encoding reuse and thread scaling (on a
/// single-core host the first two are the entire win).
///
/// Usage: json_bench_tau [output.json]   (default: BENCH_tau.json; when the
/// file should keep older revisions, write elsewhere and append by hand.)

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"

namespace kbt::bench {
namespace {

/// Revision tag stamped on every row this harness writes. Bump per PR so rows
/// from different revisions coexist in BENCH_tau.json.
constexpr const char* kRev = "pr7";

struct TauBenchRecord {
  std::string name;
  int worlds = 0;
  int threads = 1;
  double ms_per_op = 0.0;
  double ops_per_sec = 0.0;
  double speedup_vs_pr2 = 1.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t prefix_hits = 0;
  uint64_t prefix_misses = 0;
  uint64_t reused_levels = 0;  ///< Assumption levels retained across descent
                               ///< solves (sat::Solver trail saving, PR 5).
  size_t output_databases = 0;
  /// Resident bytes per world of the input kb in the delta-structured
  /// representation (shared base + overlays, buffers deduplicated) vs what the
  /// same worlds cost as independent flat databases (PR 7).
  size_t mem_bytes_per_world = 0;
  size_t flat_bytes_per_world = 0;
};

/// Bytes the kb's worlds would occupy as independent flat databases: every
/// relation buffer charged to every world that references it.
size_t FlatHeapBytes(const Knowledgebase& kb) {
  size_t total = 0;
  for (size_t i = 0; i < kb.size(); ++i) {
    Database world = kb.World(i);
    for (size_t p = 0; p < world.schema().size(); ++p) {
      total += world.relation_at(p).HeapBytes();
    }
  }
  return total;
}

void StampMemoryColumns(const Knowledgebase& kb, TauBenchRecord* r) {
  if (kb.empty()) return;
  r->mem_bytes_per_world = kb.ApproxHeapBytes() / kb.size();
  r->flat_bytes_per_world = FlatHeapBytes(kb) / kb.size();
}

bool WriteTauBenchJson(const std::string& path,
                       const std::vector<TauBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fprintf(f, "{\n  \"benchmarks\": [\n") >= 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const TauBenchRecord& r = records[i];
    ok = std::fprintf(
             f,
             "    {\"name\": \"%s\", \"rev\": \"%s\", \"worlds\": %d, "
             "\"threads\": %d, "
             "\"ms_per_op\": %.4f, \"ops_per_sec\": %.3f, "
             "\"speedup_vs_pr2\": %.2f, \"cache_hits\": %llu, "
             "\"cache_misses\": %llu, \"prefix_hits\": %llu, "
             "\"prefix_misses\": %llu, \"reused_levels\": %llu, "
             "\"output_databases\": %zu, \"mem_bytes_per_world\": %zu, "
             "\"flat_bytes_per_world\": %zu}%s\n",
             r.name.c_str(), kRev, r.worlds, r.threads, r.ms_per_op,
             r.ops_per_sec, r.speedup_vs_pr2,
             static_cast<unsigned long long>(r.cache_hits),
             static_cast<unsigned long long>(r.cache_misses),
             static_cast<unsigned long long>(r.prefix_hits),
             static_cast<unsigned long long>(r.prefix_misses),
             static_cast<unsigned long long>(r.reused_levels),
             r.output_databases, r.mem_bytes_per_world, r.flat_bytes_per_world,
             i + 1 < records.size() ? "," : "") >= 0 &&
         ok;
  }
  ok = std::fprintf(f, "  ]\n}\n") >= 0 && ok;
  return std::fclose(f) == 0 && ok;
}

/// The pre-executor τ loop, kept as the measurement baseline: a fresh μ per
/// world (no shared grounding, no solver reuse) and repeated pairwise union
/// (each step re-sorting the accumulated result).
Knowledgebase TauPr2Baseline(const Formula& sentence, const Knowledgebase& kb,
                             const MuOptions& options) {
  Knowledgebase result;
  bool first = true;
  for (const Database& db : kb) {
    Knowledgebase models = *Mu(sentence, db, options);
    if (first) {
      result = std::move(models);
      first = false;
    } else {
      result = *result.UnionWith(models);
    }
  }
  return result;
}

/// All 2^n S-colorings of an even cycle over E — the Theorem 5.1 construction
/// measured by bench_second_order. Every world shares one active domain.
Knowledgebase AllColorings(int n) {
  Relation::Builder edges(2);
  for (int i = 0; i < n; ++i) {
    edges.Append({Name(V(i)), Name(V((i + 1) % n))});
    edges.Append({Name(V((i + 1) % n)), Name(V(i))});
  }
  Database db = *Database::Create(*Schema::Of({{"E", 2}}), {edges.Build()});
  std::vector<Value> domain = db.ActiveDomain();
  Schema extended = *db.schema().Union(*Schema::Of({{"S", 1}}));
  std::vector<Database> worlds;
  for (uint64_t mask = 0; mask < (uint64_t{1} << domain.size()); ++mask) {
    Relation::Builder s(1);
    for (size_t i = 0; i < domain.size(); ++i) {
      if ((mask >> i) & 1) s.Append({domain[i]});
    }
    Database world = *db.ExtendTo(extended);
    world = *world.WithRelation("S", s.Build());
    worlds.push_back(std::move(world));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// W random worlds over {Dom/1, R/2} with Dom pinning one shared active
/// domain, so the grounding cache collapses W groundings into one.
Knowledgebase RandomWorlds(int num_worlds, int domain_size, uint64_t seed) {
  Schema schema = *Schema::Of({{"Dom", 1}, {"R", 2}});
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(0.35);
  Relation::Builder dom(1);
  for (int i = 0; i < domain_size; ++i) dom.Append({Name(V(i))});
  Relation dom_rel = dom.Build();
  std::vector<Database> worlds;
  for (int w = 0; w < num_worlds; ++w) {
    Relation::Builder r(2);
    for (int i = 0; i < domain_size; ++i) {
      for (int j = 0; j < domain_size; ++j) {
        if (coin(rng)) r.Append({Name(V(i)), Name(V(j))});
      }
    }
    worlds.push_back(*Database::Create(schema, {dom_rel, r.Build()}));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// The prefix-sharing sweet spot: many worlds over one shared active domain,
/// each differing from a base world by only a few R tuples. Per world, τ's SAT
/// path re-derives just the defaults and the (small) model deltas; grounding,
/// Tseitin encoding and strategy planning are all shared.
Knowledgebase DeltaWorlds(int num_worlds, int domain_size, int flips,
                          uint64_t seed) {
  Schema schema = *Schema::Of({{"Dom", 1}, {"R", 2}});
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(0.35);
  std::uniform_int_distribution<int> pick(0, domain_size - 1);
  Relation::Builder dom(1);
  for (int i = 0; i < domain_size; ++i) dom.Append({Name(V(i))});
  Relation dom_rel = dom.Build();
  Relation::Builder base_b(2);
  for (int i = 0; i < domain_size; ++i) {
    for (int j = 0; j < domain_size; ++j) {
      if (coin(rng)) base_b.Append({Name(V(i)), Name(V(j))});
    }
  }
  Relation base = base_b.Build();
  std::vector<Database> worlds;
  for (int w = 0; w < num_worlds; ++w) {
    Relation r = base;
    for (int f = 0; f < flips; ++f) {
      Value t[2] = {Name(V(pick(rng))), Name(V(pick(rng)))};
      TupleView tuple(t, 2);
      r = r.Contains(tuple) ? r.WithoutTuple(tuple) : r.WithTuple(tuple);
    }
    worlds.push_back(*Database::Create(schema, {dom_rel, std::move(r)}));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// Measures one (workload, sentence) pair across the execution modes and
/// appends the records.
void MeasureWorkload(const std::string& name, const Formula& sentence,
                     const Knowledgebase& kb, std::vector<TauBenchRecord>* out) {
  MuOptions mu;
  double pr2_ms = MeasureMs([&] {
    Knowledgebase r = TauPr2Baseline(sentence, kb, mu);
    static_cast<void>(r);
  });
  {
    TauBenchRecord r;
    r.name = name + "_pr2";
    r.worlds = static_cast<int>(kb.size());
    r.threads = 1;
    r.ms_per_op = pr2_ms;
    r.ops_per_sec = pr2_ms > 0 ? 1000.0 / pr2_ms : 0.0;
    r.output_databases = TauPr2Baseline(sentence, kb, mu).size();
    StampMemoryColumns(kb, &r);
    out->push_back(r);
  }

  struct Mode {
    const char* suffix;
    size_t threads;
    bool cache;
    bool prefix;
  };
  const Mode modes[] = {
      {"_t1_nocache", 1, false, false},
      {"_t1_noprefix", 1, true, false},
      {"_t1", 1, true, true},
      {"_t2", 2, true, true},
      {"_t4", 4, true, true},
  };
  for (const Mode& mode : modes) {
    TauOptions options;
    options.mu = mu;
    options.threads = mode.threads;
    options.use_ground_cache = mode.cache;
    options.use_cnf_prefix = mode.prefix;
    TauStats stats;
    double ms = MeasureMs([&] {
      stats = TauStats();
      auto r = Tau(sentence, kb, options, &stats);
      if (!r.ok()) std::abort();
    });
    TauBenchRecord r;
    r.name = name + mode.suffix;
    r.worlds = static_cast<int>(kb.size());
    r.threads = static_cast<int>(stats.threads_used);
    r.ms_per_op = ms;
    r.ops_per_sec = ms > 0 ? 1000.0 / ms : 0.0;
    r.speedup_vs_pr2 = ms > 0 ? pr2_ms / ms : 0.0;
    r.cache_hits = stats.ground_cache_hits;
    r.cache_misses = stats.ground_cache_misses;
    r.prefix_hits = stats.cnf_cache_hits;
    r.prefix_misses = stats.cnf_cache_misses;
    r.reused_levels = stats.mu.sat_reused_levels;
    r.output_databases = stats.output_databases;
    StampMemoryColumns(kb, &r);
    out->push_back(r);
  }
}

/// W distinct worlds over {Dom/1, R/2}, world w differing from a shared base
/// exactly at the R cells indexed by the set bits of w — deltas of O(log W)
/// tuples, distinct by construction, so the kb keeps all W worlds. The
/// many-worlds memory scenario: resident size must scale with Σ deltas, not
/// W × database.
Knowledgebase ManyDeltaWorlds(int num_worlds, int domain_size) {
  Schema schema = *Schema::Of({{"Dom", 1}, {"R", 2}});
  std::mt19937_64 rng(20260808);
  std::bernoulli_distribution coin(0.35);
  Relation::Builder dom(1);
  for (int i = 0; i < domain_size; ++i) dom.Append({Name(V(i))});
  Relation dom_rel = dom.Build();
  Relation::Builder base_b(2);
  for (int i = 0; i < domain_size; ++i) {
    for (int j = 0; j < domain_size; ++j) {
      if (coin(rng)) base_b.Append({Name(V(i)), Name(V(j))});
    }
  }
  Relation base = base_b.Build();
  const int cells = domain_size * domain_size;
  std::vector<Database> worlds;
  worlds.reserve(num_worlds);
  for (int w = 0; w < num_worlds; ++w) {
    Relation r = base;
    for (int bit = 0; bit < 31 && (w >> bit) != 0; ++bit) {
      if (((w >> bit) & 1) == 0) continue;
      int cell = bit % cells;
      Value t[2] = {Name(V(cell / domain_size)), Name(V(cell % domain_size))};
      TupleView tuple(t, 2);
      r = r.Contains(tuple) ? r.WithoutTuple(tuple) : r.WithTuple(tuple);
    }
    worlds.push_back(*Database::Create(schema, {dom_rel, std::move(r)}));
  }
  return *Knowledgebase::FromDatabases(std::move(worlds));
}

/// The many-worlds rows: memory columns on thousands of worlds plus one timed
/// τ on the cheap ground-insert path (the pr2 baseline's quadratic pairwise
/// union is hopeless at this scale, so speedup_vs_pr2 is left at 1).
void MeasureManyWorlds(const std::string& name, const Formula& sentence,
                       const Knowledgebase& kb,
                       std::vector<TauBenchRecord>* out) {
  for (size_t threads : {1u, 4u}) {
    TauOptions options;
    options.threads = threads;
    TauStats stats;
    double ms = MeasureMs([&] {
      stats = TauStats();
      auto r = Tau(sentence, kb, options, &stats);
      if (!r.ok()) std::abort();
    });
    TauBenchRecord r;
    r.name = name + (threads == 1 ? "_t1" : "_t4");
    r.worlds = static_cast<int>(kb.size());
    r.threads = static_cast<int>(stats.threads_used);
    r.ms_per_op = ms;
    r.ops_per_sec = ms > 0 ? 1000.0 / ms : 0.0;
    r.cache_hits = stats.ground_cache_hits;
    r.cache_misses = stats.ground_cache_misses;
    r.prefix_hits = stats.cnf_cache_hits;
    r.prefix_misses = stats.cnf_cache_misses;
    r.output_databases = stats.output_databases;
    StampMemoryColumns(kb, &r);
    out->push_back(r);
  }
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_tau.json";
  std::vector<TauBenchRecord> records;

  // The bench_second_order construction: 2^n same-domain worlds, μ resolved by
  // the auto dispatcher (definitional here), union-dominated at large n.
  Formula bipartite = *ParseSentence(
      "(forall x, y: E(x, y) -> !(S(x) <-> S(y))) -> Ans()");
  MeasureWorkload("tau_colorings_n6", bipartite, AllColorings(6), &records);
  MeasureWorkload("tau_colorings_n8", bipartite, AllColorings(8), &records);

  // SAT-strategy μ per world (head is a conjunction — no fast path applies):
  // grounding cache + per-worker solver reuse carry this one.
  Formula orient = *ParseSentence(
      "forall x, y: (R(x, y) & !R(y, x)) -> (S(x, y) & !S(y, x))");
  MeasureWorkload("tau_sat_orient_w8", orient, RandomWorlds(8, 4, 101), &records);
  MeasureWorkload("tau_sat_orient_w32", orient, RandomWorlds(32, 4, 103),
                  &records);

  // Ground insert over many worlds: the Theorem 4.7 reference path, one shared
  // grounding for the whole fan-out.
  Formula ground_insert = *ParseSentence("R(n0, n1) & !R(n1, n0)");
  MeasureWorkload("tau_ground_insert_w32", ground_insert, RandomWorlds(32, 4, 107),
                  &records);

  // Many worlds, few deltas: 64 worlds over a 6-value domain differing from
  // one base by ≤2 tuples — the prefix-sharing sweet spot. The frozen prefix
  // amortizes the (domain²-sized) encoding across all worlds; per-world cost
  // is the defaults pass plus the (tiny) enumeration.
  MeasureWorkload("tau_sat_delta_w64", orient, DeltaWorlds(64, 6, 2, 113),
                  &records);

  // Thousands of worlds, each a few tuples off one shared base: the
  // delta-structured representation's memory case (PR 7). mem_bytes_per_world
  // must stay O(delta) while flat_bytes_per_world scales with the database.
  MeasureManyWorlds("tau_many_worlds_w1024", ground_insert,
                    ManyDeltaWorlds(1024, 32), &records);
  MeasureManyWorlds("tau_many_worlds_w4096", ground_insert,
                    ManyDeltaWorlds(4096, 32), &records);

  if (!WriteTauBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const TauBenchRecord& r : records) {
    std::printf(
        "%-28s worlds=%-5d threads=%d %10.4f ms/op %8.2fx vs pr2  "
        "cache %llu/%llu  prefix %llu/%llu  reused=%llu  out=%zu  "
        "mem/world=%zuB flat/world=%zuB\n",
        r.name.c_str(), r.worlds, r.threads, r.ms_per_op, r.speedup_vs_pr2,
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses),
        static_cast<unsigned long long>(r.prefix_hits),
        static_cast<unsigned long long>(r.prefix_misses),
        static_cast<unsigned long long>(r.reused_levels), r.output_databases,
        r.mem_bytes_per_world, r.flat_bytes_per_world);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
