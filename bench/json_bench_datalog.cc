/// \file
/// Machine-readable benchmark harness: runs the Datalog fast-path and SAT-path
/// workloads of bench_datalog_ptime / bench_data_complexity and writes
/// BENCH_datalog.json (ops/sec plus fixpoint rounds and derived-tuple counts),
/// so every PR leaves a diffable perf trajectory. Dependency-free (no Google
/// Benchmark): each workload is repeated until it has run for a minimum wall
/// time, and the mean per-op time is recorded.
///
/// Usage: json_bench_datalog [output.json]   (default: BENCH_datalog.json)

#include <cstdio>

#include "bench_util.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace kbt::bench {
namespace {

BenchRecord Record(const std::string& name, int n, double ms_per_op,
                   size_t rounds, size_t derived) {
  BenchRecord r;
  r.name = name;
  r.n = n;
  r.ms_per_op = ms_per_op;
  r.ops_per_sec = ms_per_op > 0 ? 1000.0 / ms_per_op : 0.0;
  r.rounds = rounds;
  r.derived_tuples = derived;
  return r;
}

/// E6 fast path: transitive-closure insertion via Theorem 4.8 (semi-naive).
BenchRecord DatalogTransitiveClosure(int n) {
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 3.0, 59));
  Formula phi = *ParseFormula(
      "forall x, y, z: (T(x, y) & R(y, z)) | R(x, z) -> T(x, z)");
  MuOptions options;
  options.strategy = MuStrategy::kDatalog;
  MuStats stats;
  double ms = MeasureMs([&] {
    auto out = Mu(phi, kb.databases()[0], options, &stats);
    if (!out.ok()) std::abort();
  });
  return Record("datalog_tc", n, ms, stats.datalog_rounds,
                stats.datalog_derived_tuples);
}

/// E6 stratified-negation program, evaluated directly.
BenchRecord DatalogStratified(int n) {
  datalog::Program program = *datalog::ParseProgram(R"(
    reach(Y) :- start(X), edge(X, Y).
    reach(Y) :- reach(X), edge(X, Y).
    unreachable(X) :- node(X), !reach(X).
  )");
  Database db = *Database::Create(
      *Schema::Of({{"node", 1}, {"start", 1}, {"edge", 2}}),
      {UnarySet(n, "n"), Relation(1, {Tuple{Name(V(0))}}),
       RandomEdges(n, 2.0, 61)});
  datalog::EvalStats stats;
  double ms = MeasureMs([&] {
    stats = datalog::EvalStats();
    auto out = datalog::Evaluate(program, db, {}, &stats);
    if (!out.ok()) std::abort();
  });
  return Record("datalog_stratified", n, ms, stats.rounds, stats.derived_tuples);
}

/// E1 SAT path: copy-insert through grounding + CDCL (Theorem 4.1 membership
/// machinery).
BenchRecord DataComplexity(const std::string& name, const std::string& sentence,
                           int n, double degree, uint64_t seed) {
  Knowledgebase kb = GraphKb("R", RandomEdges(n, degree, seed));
  Formula phi = *ParseFormula(sentence);
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  double ms = MeasureMs([&] {
    auto out = Tau(phi, kb, options);
    if (!out.ok()) std::abort();
  });
  return Record(name, n, ms, 0, 0);
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_datalog.json";
  std::vector<BenchRecord> records;
  for (int n : {32, 64, 128, 256}) records.push_back(DatalogTransitiveClosure(n));
  for (int n : {64, 256}) records.push_back(DatalogStratified(n));
  for (int n : {8, 32}) {
    records.push_back(DataComplexity("data_complexity_copy",
                                     "forall x, y: R(x, y) -> S(x, y)", n, 3.0, 17));
  }
  for (int n : {16, 64}) {
    records.push_back(
        DataComplexity("data_complexity_vertex_drop", "forall y: !R(n0, y)", n, 4.0, 23));
  }
  for (int n : {16, 64}) {
    records.push_back(DataComplexity("data_complexity_choice",
                                     "R(z1, z2) | R(z3, z4) | R(z5, z6)", n, 3.0, 29));
  }
  if (!WriteBenchJson(path, records)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  for (const BenchRecord& r : records) {
    std::printf("%-28s n=%-4d %10.4f ms/op %12.2f ops/s  rounds=%zu derived=%zu\n",
                r.name.c_str(), r.n, r.ms_per_op, r.ops_per_sec, r.rounds,
                r.derived_tuples);
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace kbt::bench

int main(int argc, char** argv) { return kbt::bench::Main(argc, argv); }
