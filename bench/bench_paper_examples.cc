/// \file
/// E7 — the §3 example transformations as scaling benchmarks. The polynomial ones
/// (transitive closure) scale comfortably; the NP-hard encodings (reductions,
/// partitions, cliques) blow up by design — the paper's §3 point is expressive
/// power, not tractability, and the curves document exactly where the wall is.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace kbt::bench {
namespace {

void BM_Example1_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R1", RandomEdges(n, 2.5, 71));
  Engine engine;
  const char* expr =
      "tau{ forall x1, x2, x3: (R2(x1, x2) & R1(x2, x3)) | R1(x1, x3) "
      "-> R2(x1, x3) } >> pi[R2]";
  for (auto _ : state) {
    auto out = engine.Apply(expr, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example1_TransitiveClosure)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Example2_TransitiveReductions(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // DAG inputs: Example 2's sentence is exact on DAGs (see the caveat test).
  Knowledgebase kb = GraphKb("R1", RandomDagEdges(n, 1.8, 73));
  Engine engine;
  const char* expr =
      "tau{ (forall x1, x2: R2(x1, x2) -> R1(x1, x2)) & "
      "(forall x1, x3: (exists x2: R3(x1, x2) & R1(x2, x3)) | R1(x1, x3) "
      "<-> R3(x1, x3)) & "
      "(forall x1, x3: (exists x2: R3(x1, x2) & R2(x2, x3)) | R2(x1, x3) "
      "<-> R3(x1, x3)) } >> pi[R2]";
  for (auto _ : state) {
    auto out = engine.Apply(expr, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example2_TransitiveReductions)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_Example4_RobotsCounterfactual(benchmark::State& state) {
  Database has_v = *MakeDatabase({{"R1", 1}}, {{"R1", {{"v"}}}});
  Database has_w = *MakeDatabase({{"R1", 1}}, {{"R1", {{"w"}}}});
  Knowledgebase kb = *Knowledgebase::FromDatabases({has_v, has_w});
  Engine engine;
  for (auto _ : state) {
    auto out = engine.Apply("tau{ R1(v) } >> lub", kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example4_RobotsCounterfactual);

void BM_Example5_MonochromaticTriangle(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Complete graph K_n (symmetric).
  std::vector<Tuple> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) edges.push_back(Tuple{Name(V(i)), Name(V(j))});
    }
  }
  Knowledgebase kb = GraphKb("R1", Relation(2, std::move(edges)));
  Engine engine;
  Pipeline p;
  p.Tau(CopyFormula("R1", "R4", 2));
  p.Tau(
      "(forall x1, x2: R1(x1, x2) -> R2(x1, x2) | R3(x1, x2)) & "
      "(forall x1, x2, x3: R2(x1, x2) & R2(x2, x3) -> !R2(x1, x3)) & "
      "(forall x1, x2, x3: R3(x1, x2) & R3(x2, x3) -> !R3(x1, x3)) & "
      "(forall x1, x2: R1(x1, x2) <-> R1(x2, x1)) & "
      "(forall x1, x2: R2(x1, x2) <-> R2(x2, x1)) & "
      "(forall x1, x2: R3(x1, x2) <-> R3(x2, x1))");
  p.Tau(DifferenceFormula("R4", "R1", "R5", 2));
  p.Tau("R6() <-> (forall x1, x2: !R5(x1, x2))");
  p.Lub().Project({"R6"});
  for (auto _ : state) {
    auto out = engine.Apply(p, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example5_MonochromaticTriangle)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Example6_Parity(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 1}}), {UnarySet(n)}));
  Engine engine;
  Pipeline p;
  p.Tau("forall x1: R1(x1) -> R2(x1) | R3(x1)");
  p.Tau("forall x1, x2: R2(x1) & R3(x2) -> R4(x1, x2)");
  p.Tau(
      "(forall x1, x2, x3: R4(x1, x2) & R4(x1, x3) -> x2 = x3) & "
      "(forall x1, x2, x3: R4(x2, x1) & R4(x3, x1) -> x2 = x3)");
  p.Tau("forall x1, x2: R4(x1, x2) | R4(x2, x1) -> R5(x1)");
  p.Tau(DifferenceFormula("R1", "R5", "R6", 1));
  for (auto _ : state) {
    auto out = engine.Apply(p, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example6_Parity)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Example7_CliqueDetection(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = 3;
  std::vector<Tuple> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && (i + j) % 3 != 0) {
        edges.push_back(Tuple{Name(V(i)), Name(V(j))});
      }
    }
  }
  std::vector<Tuple> seeds;
  for (int i = 0; i < k; ++i) seeds.push_back(Tuple{Name("s" + std::to_string(i))});
  Knowledgebase kb = Knowledgebase::Singleton(
      *Database::Create(*Schema::Of({{"R1", 2}, {"R2", 1}}),
                        {Relation(2, std::move(edges)), Relation(1, seeds)}));
  Formula phi = *ParseFormula(
      "(forall x1: R2(x1) -> (exists x2: R5(x1, x2))) & "
      "(forall x1: R4(x1) -> (exists x2: R5(x2, x1))) & "
      "(forall x1, x2, x3: R5(x2, x1) & R5(x3, x1) -> x2 = x3) & "
      "(forall x1, x2, x3: R5(x1, x2) & R5(x1, x3) -> x2 = x3) & "
      "(forall x1, x2: R4(x1) & R4(x2) & !(x1 = x2) -> R1(x1, x2)) & "
      "(forall x1, x2: R5(x1, x2) -> R2(x1) & R4(x2))");
  for (auto _ : state) {
    auto out = Tau(phi, kb);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example7_CliqueDetection)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kbt::bench
