/// \file
/// E3 — §4 complexity table, row (τ, π), expression complexity (Theorem 4.4:
/// ∈ co-NEXPTIME). Fixed small database, growing sentence: the grounding is
/// O(|φ|·|B|^depth), so runtime rises exponentially with quantifier depth and
/// polynomially with |B| at fixed depth — both series below.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace kbt::bench {
namespace {

/// φ_k = ∀x1...xk ((R(x1,x2) ∧ R(x2,x3) ∧ ... ∧ R(x_{k-1},x_k)) → S(x1,xk)).
Formula PathFormula(int k) {
  std::vector<Symbol> vars;
  for (int i = 1; i <= k; ++i) vars.push_back(Name("x" + std::to_string(i)));
  std::vector<Formula> body;
  for (int i = 0; i + 1 < k; ++i) {
    body.push_back(Atom("R", {Term::Var(vars[static_cast<size_t>(i)]),
                              Term::Var(vars[static_cast<size_t>(i + 1)])}));
  }
  Formula head = Atom("S", {Term::Var(vars.front()), Term::Var(vars.back())});
  return Forall(vars, Implies(And(std::move(body)), head));
}

void BM_ExpressionComplexity_QuantifierDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(5, 2.0, 31));
  Formula phi = PathFormula(depth);
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  options.max_ground_nodes = 50'000'000;
  for (auto _ : state) {
    auto out = Tau(phi, kb, options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["formula_size"] = static_cast<double>(FormulaSize(phi));
}
BENCHMARK(BM_ExpressionComplexity_QuantifierDepth)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_ExpressionComplexity_DomainAtFixedDepth(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Knowledgebase kb = GraphKb("R", RandomEdges(n, 2.0, 37));
  Formula phi = PathFormula(3);
  MuOptions options;
  options.strategy = MuStrategy::kSat;
  for (auto _ : state) {
    auto out = Tau(phi, kb, options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ExpressionComplexity_DomainAtFixedDepth)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

}  // namespace
}  // namespace kbt::bench
