#ifndef KBT_BASE_CANCEL_H_
#define KBT_BASE_CANCEL_H_

/// \file
/// Cooperative deadline / cancellation tokens.
///
/// A CancelToken is the one object a request's cancellation state lives in:
/// an atomic flag (flipped by Cancel(), e.g. when a server drains), an
/// optional monotonic deadline, and an optional parent token (so a
/// per-request deadline token also observes a server-wide drain token).
/// Workers poll Expired() at natural loop boundaries — per SAT conflict
/// batch, per τ world, per chain step — and unwind with kDeadlineExceeded.
/// Nothing blocks on a token and nothing is preempted: cancellation is
/// cooperative, which is what lets the SAT solver stop at a clean decision
/// boundary and stay reusable.
///
/// Expired() reads a steady clock when a deadline is set, so callers on hot
/// paths poll it once per O(hundreds) of iterations, not per iteration. The
/// flag-only check (cancelled()) is a relaxed atomic load and safe anywhere.
///
/// Thread-safety: Cancel()/cancelled()/Expired() may be called from any
/// thread. set_deadline/set_parent are setup-time only (before the token is
/// shared).

#include <atomic>
#include <chrono>

namespace kbt {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms the deadline `timeout` from now. A zero/negative timeout expires
  /// immediately.
  void set_deadline_after(std::chrono::steady_clock::duration timeout) {
    deadline_ = std::chrono::steady_clock::now() + timeout;
    has_deadline_ = true;
  }
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Chains this token below `parent`: Expired() also reports true once the
  /// parent expires. `parent` must outlive this token; may be nullptr.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  /// Fires the token: every Expired()/cancelled() call from now on returns
  /// true. Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Flag-only check (no clock read): true once Cancel() was called.
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Full check: the flag, the deadline (one steady-clock read when armed),
  /// and the parent chain.
  bool Expired() const {
    if (cancelled()) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return true;
    }
    return parent_ != nullptr && parent_->Expired();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace kbt

#endif  // KBT_BASE_CANCEL_H_
