#include "base/interner.h"

#include <cassert>

namespace kbt {

Symbol Interner::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

bool Interner::Lookup(std::string_view name, Symbol* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return false;
  *out = it->second;
  return true;
}

const std::string& Interner::NameOf(Symbol id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < names_.size());
  return names_[id];
}

size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

Interner& Names() {
  static Interner* interner = new Interner();
  return *interner;
}

}  // namespace kbt
