#ifndef KBT_BASE_STATUS_H_
#define KBT_BASE_STATUS_H_

/// \file
/// Error handling for the kbt library.
///
/// Following the Google / Arrow / RocksDB house style, fallible public APIs do not
/// throw; they return a Status, or a StatusOr<T> when they also produce a value.

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace kbt {

/// Machine-readable error category, modeled after the canonical status space used by
/// Google client libraries and RocksDB.
enum class StatusCode {
  kOk = 0,
  /// Caller supplied a malformed argument (bad schema, arity mismatch, ...).
  kInvalidArgument = 1,
  /// Input text failed to parse (formula, datalog program, expression).
  kParseError = 2,
  /// An instance exceeded a configured resource guard (grounding budget, atom budget).
  kResourceExhausted = 3,
  /// A looked-up entity (relation symbol, variable) does not exist.
  kNotFound = 4,
  /// An operation is not supported for this input class (e.g. fast path preconditions).
  kUnsupported = 5,
  /// Internal invariant violation; indicates a bug in the library itself.
  kInternal = 6,
  /// A storage-layer syscall failed (open, write, fsync, rename, ...). The
  /// operation may be retried after the underlying condition clears.
  kIOError = 7,
  /// Stored bytes are unrecoverably missing or corrupt (bad magic, CRC
  /// mismatch, truncation past the committed prefix). Unlike kIOError this is
  /// a statement about the data, not the device.
  kDataLoss = 8,
  /// The operation's deadline expired (or its cancellation token fired) before
  /// it completed. The work was abandoned cooperatively: no partial state is
  /// visible and the operation may be retried with a larger deadline.
  kDeadlineExceeded = 9,
  /// The service cannot take the request right now (overloaded, draining, or
  /// the connection failed before the request was accepted). Safe to retry
  /// after backing off — the request was rejected, not half-executed.
  kUnavailable = 10,
  /// The node is a read-only replica (or a fenced ex-primary): writes are
  /// refused here by design, not by overload. Retrying at the same node is
  /// pointless; the error may carry a redirect hint naming the writable
  /// primary.
  kReadOnly = 11,
  /// The caller's replication epoch is stale: a newer primary exists and this
  /// request came from (or was meant for) a deposed one. The request was
  /// refused to keep divergence structurally impossible; the caller must
  /// re-handshake (or re-seed) before continuing.
  kFenced = 12,
};

/// Human-readable name of a StatusCode ("ok", "invalid-argument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus, for errors, a message.
///
/// Statuses are cheap to copy in the OK case (no allocation). The class is final and
/// immutable after construction.
class Status final {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be kOk;
  /// use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an kInvalidArgument status with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a kParseError status with the given message.
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  /// Returns a kResourceExhausted status with the given message.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Returns a kNotFound status with the given message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a kUnsupported status with the given message.
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  /// Returns a kInternal status with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a kIOError status with the given message.
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  /// Returns a kDataLoss status with the given message.
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  /// Returns a kDeadlineExceeded status with the given message.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  /// Returns a kUnavailable status with the given message.
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  /// Returns a kReadOnly status with the given message.
  static Status ReadOnly(std::string message) {
    return Status(StatusCode::kReadOnly, std::move(message));
  }
  /// Returns a kFenced status with the given message.
  static Status Fenced(std::string message) {
    return Status(StatusCode::kFenced, std::move(message));
  }
  /// Returns a kIOError carrying the errno of a failed syscall:
  /// "<context>: <strerror(errno_value)> (errno <errno_value>)".
  static Status IOErrorFromErrno(std::string_view context, int errno_value);

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A Status or a value of type T: the return type of fallible value-producing APIs.
///
/// Typical use:
/// \code
///   StatusOr<Formula> f = ParseFormula("forall x: R(x) -> S(x)");
///   if (!f.ok()) return f.status();
///   Use(*f);
/// \endcode
template <typename T>
class StatusOr final {
 public:
  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }
  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status out of the current function.
#define KBT_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::kbt::Status kbt_status_tmp_ = (expr);        \
    if (!kbt_status_tmp_.ok()) return kbt_status_tmp_; \
  } while (false)

/// Evaluates a StatusOr expression, propagating errors and otherwise moving the value
/// into `lhs` (which must name a declaration, e.g. `auto x`).
#define KBT_ASSIGN_OR_RETURN(lhs, expr)                       \
  KBT_ASSIGN_OR_RETURN_IMPL_(KBT_STATUS_CONCAT_(kbt_sor_, __LINE__), lhs, expr)

#define KBT_STATUS_CONCAT_INNER_(a, b) a##b
#define KBT_STATUS_CONCAT_(a, b) KBT_STATUS_CONCAT_INNER_(a, b)
#define KBT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace kbt

#endif  // KBT_BASE_STATUS_H_
