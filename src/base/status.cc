#include "base/status.h"

#include <cstring>

namespace kbt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kReadOnly:
      return "read-only";
    case StatusCode::kFenced:
      return "fenced";
  }
  return "unknown";
}

Status Status::IOErrorFromErrno(std::string_view context, int errno_value) {
  std::string message(context);
  message += ": ";
  message += std::strerror(errno_value);
  message += " (errno ";
  message += std::to_string(errno_value);
  message += ")";
  return Status(StatusCode::kIOError, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace kbt
