#ifndef KBT_BASE_HASH_H_
#define KBT_BASE_HASH_H_

/// \file
/// Small hash-combining utilities used by tuples, formulas and circuits.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace kbt {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Final avalanche (murmur3 fmix64). HashCombine output over near-sequential
/// inputs (dense ids, interned symbols) is itself near-sequential; open-addressed
/// tables with linear probing need this finalizer to avoid primary clustering.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hashes a range of hashable elements into one value.
template <typename It>
size_t HashRange(It first, It last, size_t seed = 0xcbf29ce484222325ULL) {
  std::hash<typename std::iterator_traits<It>::value_type> hasher;
  for (It it = first; it != last; ++it) seed = HashCombine(seed, hasher(*it));
  return seed;
}

}  // namespace kbt

#endif  // KBT_BASE_HASH_H_
