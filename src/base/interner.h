#ifndef KBT_BASE_INTERNER_H_
#define KBT_BASE_INTERNER_H_

/// \file
/// String interning for domain elements and relation symbols.
///
/// The paper's language L is built from countable sets A (domain elements) and R
/// (relation symbols). We intern both kinds of names into dense 32-bit ids so that
/// tuples, relations and ground atoms compare and hash in O(1) per component.
///
/// A single process-wide interner (Names()) is used by default: ids are stable for the
/// lifetime of the process, which makes databases built independently comparable. The
/// class itself is reusable for isolated universes in tests.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace kbt {

/// A dense id for an interned name. Value 0 is a valid id (the first interned name).
using Symbol = uint32_t;

/// Bidirectional map between strings and dense Symbol ids. Thread-safe.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  /// Returns the id for `name` if already interned, otherwise -1 cast to Symbol-width
  /// sentinel via found=false.
  bool Lookup(std::string_view name, Symbol* out) const;

  /// Returns the string for `id`. `id` must have been produced by this interner.
  const std::string& NameOf(Symbol id) const;

  /// Number of interned names.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Symbol> index_;
  /// Deque, not vector: NameOf hands out references that must survive
  /// concurrent interning from executor workers (deque never relocates
  /// existing elements on growth).
  std::deque<std::string> names_;
};

/// The process-wide interner used by all kbt value and relation names.
Interner& Names();

/// Convenience: intern `name` in the process-wide interner.
inline Symbol Name(std::string_view name) { return Names().Intern(name); }

/// Convenience: the string for `id` in the process-wide interner.
inline const std::string& NameOf(Symbol id) { return Names().NameOf(id); }

}  // namespace kbt

#endif  // KBT_BASE_INTERNER_H_
