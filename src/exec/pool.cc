#include "exec/pool.h"

#include <algorithm>
#include <memory>

namespace kbt::exec {

ThreadPool::ThreadPool(size_t workers) {
  size_t n = std::max<size_t>(1, workers);
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<TaskQueue>());
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(size_t q, Task task) {
  {
    // The increment happens before the task is visible in any queue, so a
    // thief's decrement after a successful pop can never underflow the
    // counter. The lock pairs the increment with the cv wait predicate: a
    // worker checking the predicate either sees the new count or has not yet
    // started waiting, so no wakeup is lost. A worker that sees the count
    // before the push lands merely retries its scan once.
    std::lock_guard<std::mutex> lock(mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  queues_[q % queues_.size()]->PushBottom(std::move(task));
  work_cv_.notify_one();
}

void ThreadPool::Submit(Task task) {
  Enqueue(next_queue_.fetch_add(1, std::memory_order_relaxed), std::move(task));
}

bool ThreadPool::TryGet(size_t id, Task* out) {
  if (queues_[id]->PopBottom(out)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  size_t n = queues_.size();
  for (size_t k = 1; k < n; ++k) {
    if (queues_[(id + k) % n]->StealTop(out)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t id) {
  Task task;
  while (true) {
    if (TryGet(id, &task)) {
      try {
        task(id);
      } catch (...) {
        // A throwing task must not unwind the worker loop: that would leak
        // every queued task and (being noexcept) terminate the process.
        // Failure reporting is the task's own business (result slots,
        // ParallelFor's error capture); here the exception is contained.
      }
      task = nullptr;  // Release captures before parking.
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    // Drain semantics: exit only once stopped AND no task remains unclaimed.
    if (stop_ && pending_.load(std::memory_order_relaxed) == 0) return;
    work_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_relaxed) == 0) return;
  }
}

Status ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t index, size_t worker)>& body) {
  if (n == 0) return Status::OK();
  size_t num_workers = queues_.size();
  // More chunks than workers, so a worker finishing its share early can steal
  // the tail of a slow sibling's; capped at n so chunks are never empty.
  size_t chunks = std::min(n, num_workers * 4);

  struct ForState {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining;
    std::string error;  // First exception message; empty = clean run.
    bool threw = false;
  };
  auto state = std::make_shared<ForState>();
  state->remaining = chunks;

  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = n * c / chunks;
    size_t end = n * (c + 1) / chunks;
    Enqueue(c, [state, begin, end, &body](size_t worker) {
      std::string error;
      bool threw = false;
      try {
        for (size_t i = begin; i < end; ++i) body(i, worker);
      } catch (const std::exception& e) {
        threw = true;
        error = e.what();
      } catch (...) {
        threw = true;
        error = "non-standard exception";
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (threw && !state->threw) {
        state->threw = true;
        state->error = std::move(error);
      }
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  if (state->threw) {
    return Status::Internal("parallel-for body threw: " + state->error);
  }
  return Status::OK();
}

}  // namespace kbt::exec
