#ifndef KBT_EXEC_GROUND_CACHE_H_
#define KBT_EXEC_GROUND_CACHE_H_

/// \file
/// A domain-keyed cache of groundings, shared across the worlds of one τ call.
///
/// Grounding a sentence φ over an active domain B is a pure function of (φ, B) —
/// the member database contributes only B (its values plus φ's constants) and the
/// per-atom default values. Worlds of a knowledgebase frequently share B exactly
/// (the 2^n-world constructions of Theorem 5.1 all do), so τ grounds once per
/// distinct domain and each world re-derives only its defaults and phase hints.
/// The cached Grounding (circuit + atom table + the root's mentioned variables)
/// is immutable after construction and read concurrently by all workers.
///
/// Keying, exactly-once computation and error caching live in
/// exec/once_cache.h (shared with CnfCache); this wrapper supplies the value
/// type and the grounding build.

#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.h"
#include "exec/once_cache.h"
#include "logic/grounder.h"

namespace kbt::exec {

/// An immutable grounding plus the precomputed mentioned-variable set
/// (CollectVars of the root) every strategy needs right after grounding.
struct CachedGrounding {
  Grounding grounding;
  std::vector<int> mentioned;  ///< Sorted external var ids reachable from root.
  /// Child → parent adjacency of the circuit, for incremental default
  /// re-evaluation across the worlds sharing this grounding (PR 7).
  CircuitUsers users;
};

/// Grounds `sentence` over `domain` and wraps the result in the immutable
/// CachedGrounding shape (mentioned vars precomputed). The single constructor
/// for cache entries and for uncached per-call groundings alike, so both paths
/// precompute the same fields.
StatusOr<std::shared_ptr<const CachedGrounding>> MakeCachedGrounding(
    const Formula& sentence, const std::vector<Value>& domain,
    const GrounderOptions& options);

class GroundingCache {
 public:
  using Stats = DomainKeyedOnceCache<CachedGrounding>::Stats;

  /// Returns the grounding of `sentence` over `domain`, computing it on first
  /// use. Concurrent callers with the same domain block until the one grounding
  /// completes (grounding twice would waste exactly the work the cache exists
  /// to save). `sentence` must be the same formula on every call — the cache
  /// key deliberately omits it.
  StatusOr<std::shared_ptr<const CachedGrounding>> GetOrGround(
      const Formula& sentence, const std::vector<Value>& domain,
      const GrounderOptions& options) {
    return cache_.GetOrCompute(domain, [&] {
      return MakeCachedGrounding(sentence, domain, options);
    });
  }

  Stats stats() const { return cache_.stats(); }
  /// Number of distinct domains seen.
  size_t entries() const { return cache_.entries(); }
  /// Caps distinct cached domains with LRU eviction (0 = unbounded). Bounds
  /// growth under domain churn; lookups still return identical values.
  void set_max_entries(size_t n) { cache_.set_max_entries(n); }
  /// Estimated bytes held by completed entries (circuit nodes, atom table,
  /// adjacency — a sizing heuristic, not an exact meter).
  size_t approx_bytes() const {
    return cache_.ApproxBytes([](const CachedGrounding& g) {
      return g.grounding.circuit.size() * 16 + g.grounding.atoms.size() * 24 +
             g.mentioned.size() * sizeof(int) +
             g.users.offset.size() * sizeof(uint32_t) +
             g.users.data.size() * sizeof(int32_t);
    });
  }

 private:
  DomainKeyedOnceCache<CachedGrounding> cache_;
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_GROUND_CACHE_H_
