#ifndef KBT_EXEC_ONCE_CACHE_H_
#define KBT_EXEC_ONCE_CACHE_H_

/// \file
/// The domain-keyed exactly-once cache shared by GroundingCache and CnfCache.
///
/// Both caches follow the same concurrency discipline: entries are created
/// under a map lock but computed outside it, with a per-entry mutex giving
/// exactly-once computation — concurrent lookups of one domain block until
/// the single computation finishes rather than recomputing redundantly, and
/// errors are cached like values. This header is the one implementation of
/// that discipline; the concrete caches supply only the value type and the
/// build function.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "rel/tuple.h"

namespace kbt::exec {

/// Exactly-once cache from an active domain (sorted `std::vector<Value>`) to
/// a shared immutable `V`. One cache instance serves one sentence — the
/// sentence is deliberately not part of the key; callers create a fresh cache
/// per τ call.
template <typename V>
class DomainKeyedOnceCache {
 public:
  DomainKeyedOnceCache() = default;
  DomainKeyedOnceCache(const DomainKeyedOnceCache&) = delete;
  DomainKeyedOnceCache& operator=(const DomainKeyedOnceCache&) = delete;

  struct Stats {
    uint64_t hits = 0;    ///< Lookups served by an existing entry.
    uint64_t misses = 0;  ///< Lookups that created (and computed) an entry.
  };

  /// Returns the cached value for `domain`, computing it via `build` on first
  /// use. `build` is `StatusOr<std::shared_ptr<const V>>()`; a failed build is
  /// cached too (repeat lookups return the same status without recomputing).
  template <typename BuildFn>
  StatusOr<std::shared_ptr<const V>> GetOrCompute(
      const std::vector<Value>& domain, BuildFn&& build) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<Entry>& slot = map_[domain];
      if (slot == nullptr) {
        slot = std::make_shared<Entry>();
        ++stats_.misses;
      } else {
        ++stats_.hits;
      }
      entry = slot;
    }
    // The first thread to take the entry lock computes; latecomers wait on
    // the same lock and find the result. The map lock is never held while
    // computing.
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (!entry->done) {
      StatusOr<std::shared_ptr<const V>> built = build();
      if (built.ok()) {
        entry->value = std::move(*built);
      } else {
        entry->status = built.status();
      }
      entry->done = true;
    }
    if (!entry->status.ok()) return entry->status;
    return entry->value;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Number of distinct domains seen.
  size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct DomainHash {
    size_t operator()(const std::vector<Value>& domain) const {
      size_t seed = 0x517cc1b7;
      for (Value v : domain) seed = HashCombine(seed, v);
      return static_cast<size_t>(Mix64(seed));
    }
  };
  /// One per distinct domain. The entry mutex serializes the single
  /// computation; `done` flips exactly once, after which value/status are
  /// immutable.
  struct Entry {
    std::mutex mu;
    bool done = false;
    Status status;
    std::shared_ptr<const V> value;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::vector<Value>, std::shared_ptr<Entry>, DomainHash> map_;
  Stats stats_;
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_ONCE_CACHE_H_
