#ifndef KBT_EXEC_ONCE_CACHE_H_
#define KBT_EXEC_ONCE_CACHE_H_

/// \file
/// The domain-keyed exactly-once cache shared by GroundingCache and CnfCache.
///
/// Both caches follow the same concurrency discipline: entries are created
/// under a map lock but computed outside it, with a per-entry mutex giving
/// exactly-once computation — concurrent lookups of one domain block until
/// the single computation finishes rather than recomputing redundantly, and
/// errors are cached like values. This header is the one implementation of
/// that discipline; the concrete caches supply only the value type and the
/// build function.
///
/// Boundedness: a serving workload with a churning active domain (every
/// commit growing or shifting the domain) makes each lookup a fresh key, so
/// an unbounded map grows linearly with commits. set_max_entries caps the
/// table with LRU eviction — borrowers keep their shared_ptr, so eviction
/// never invalidates a computation in flight — and ApproxBytes lets owners
/// budget by memory rather than entry count.

#include <cstdint>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "rel/tuple.h"

namespace kbt::exec {

/// Exactly-once cache from an active domain (sorted `std::vector<Value>`) to
/// a shared immutable `V`. One cache instance serves one sentence — the
/// sentence is deliberately not part of the key; callers create a fresh cache
/// per τ call.
template <typename V>
class DomainKeyedOnceCache {
 public:
  DomainKeyedOnceCache() = default;
  DomainKeyedOnceCache(const DomainKeyedOnceCache&) = delete;
  DomainKeyedOnceCache& operator=(const DomainKeyedOnceCache&) = delete;

  struct Stats {
    uint64_t hits = 0;    ///< Lookups served by an existing entry.
    uint64_t misses = 0;  ///< Lookups that created (and computed) an entry.
    uint64_t evictions = 0;  ///< Entries dropped by the max_entries LRU cap.
  };

  /// Caps the number of cached domains (0 = unbounded, the default). Beyond
  /// the cap the least-recently-used entry is dropped when a new one is
  /// created. Setting a cap only changes *retention*: every lookup still
  /// returns the same value it would have computed uncached.
  void set_max_entries(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_entries_ = n;
  }

  /// Returns the cached value for `domain`, computing it via `build` on first
  /// use. `build` is `StatusOr<std::shared_ptr<const V>>()`; a failed build is
  /// cached too (repeat lookups return the same status without recomputing).
  template <typename BuildFn>
  StatusOr<std::shared_ptr<const V>> GetOrCompute(
      const std::vector<Value>& domain, BuildFn&& build) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(domain);
      if (it == map_.end()) {
        ++stats_.misses;
        if (max_entries_ > 0 && map_.size() >= max_entries_) {
          // Evict the coldest domain. A borrower mid-computation keeps its
          // own shared_ptr<Entry>; only the cache's reference goes away.
          map_.erase(lru_.back());
          lru_.pop_back();
          ++stats_.evictions;
        }
        lru_.push_front(domain);
        auto slot = std::make_shared<Entry>();
        slot->lru_pos = lru_.begin();
        it = map_.emplace(domain, std::move(slot)).first;
      } else {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second->lru_pos);
      }
      entry = it->second;
    }
    // The first thread to take the entry lock computes; latecomers wait on
    // the same lock and find the result. The map lock is never held while
    // computing.
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (!entry->done.load(std::memory_order_relaxed)) {
      StatusOr<std::shared_ptr<const V>> built = build();
      if (built.ok()) {
        entry->value = std::move(*built);
      } else {
        entry->status = built.status();
      }
      // Release pairs with ApproxBytes's acquire: a reader that observes
      // done=true also observes the completed value.
      entry->done.store(true, std::memory_order_release);
    }
    if (!entry->status.ok()) return entry->status;
    return entry->value;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Number of distinct domains seen.
  size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  /// Estimated bytes held by completed entries, as Σ cost(value). Entries
  /// still computing (or that failed) count zero. `cost` must not lock this
  /// cache.
  template <typename CostFn>
  size_t ApproxBytes(CostFn&& cost) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& [key, entry] : map_) {
      total += key.capacity() * sizeof(Value);
      if (entry->done.load(std::memory_order_acquire) && entry->status.ok() &&
          entry->value != nullptr) {
        total += cost(*entry->value);
      }
    }
    return total;
  }

 private:
  struct DomainHash {
    size_t operator()(const std::vector<Value>& domain) const {
      size_t seed = 0x517cc1b7;
      for (Value v : domain) seed = HashCombine(seed, v);
      return static_cast<size_t>(Mix64(seed));
    }
  };
  /// One per distinct domain. The entry mutex serializes the single
  /// computation; `done` flips exactly once, after which value/status are
  /// immutable.
  struct Entry {
    std::mutex mu;
    std::atomic<bool> done{false};
    Status status;
    std::shared_ptr<const V> value;
    std::list<std::vector<Value>>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  size_t max_entries_ = 0;
  std::unordered_map<std::vector<Value>, std::shared_ptr<Entry>, DomainHash> map_;
  /// Domains in recency order; back() is the eviction candidate.
  std::list<std::vector<Value>> lru_;
  Stats stats_;
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_ONCE_CACHE_H_
