#ifndef KBT_EXEC_TASK_H_
#define KBT_EXEC_TASK_H_

/// \file
/// Units of work for the executor and the per-worker queues they wait in.
///
/// τ_φ(kb) replaces every member database with μ(φ, db) — the members are
/// independent, so the natural execution model is a fixed set of workers pulling
/// world-chunks from queues. A task is invoked with the id of the worker that
/// ultimately runs it (not the one it was submitted to), so tasks can index
/// per-worker resource pools (solver, encoder, scratch buffers) even after being
/// stolen.

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace kbt::exec {

/// A unit of work. The argument is the id of the worker executing the task —
/// stable for the task's whole run, so it can be used to index per-worker
/// resources owned outside the pool.
using Task = std::function<void(size_t worker)>;

/// A work-stealing deque of tasks: the owning worker pushes and pops at the
/// bottom (LIFO, keeping its cache warm), thieves steal from the top (FIFO,
/// taking the oldest — and for parallel-for chunks, largest-remaining — work).
/// Mutex-guarded: contention is per-queue, not global, and the executor's unit
/// of work (a μ call) dwarfs the lock cost by orders of magnitude.
class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  void PushBottom(Task task) {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }

  /// Owner pop: newest task first. Returns false when empty.
  bool PopBottom(Task* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    *out = std::move(tasks_.back());
    tasks_.pop_back();
    return true;
  }

  /// Thief pop: oldest task first. Returns false when empty.
  bool StealTop(Task* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    *out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_TASK_H_
