#include "exec/ground_cache.h"

#include "base/hash.h"

namespace kbt::exec {

size_t GroundingCache::DomainHash::operator()(
    const std::vector<Value>& domain) const {
  size_t seed = 0x517cc1b7;
  for (Value v : domain) seed = HashCombine(seed, v);
  return static_cast<size_t>(Mix64(seed));
}

StatusOr<std::shared_ptr<const CachedGrounding>> MakeCachedGrounding(
    const Formula& sentence, const std::vector<Value>& domain,
    const GrounderOptions& options) {
  auto cached = std::make_shared<CachedGrounding>();
  KBT_ASSIGN_OR_RETURN(cached->grounding,
                       GroundSentence(sentence, domain, options));
  cached->mentioned =
      cached->grounding.circuit.CollectVars(cached->grounding.root);
  return std::shared_ptr<const CachedGrounding>(std::move(cached));
}

StatusOr<std::shared_ptr<const CachedGrounding>> GroundingCache::GetOrGround(
    const Formula& sentence, const std::vector<Value>& domain,
    const GrounderOptions& options) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = map_[domain];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
      ++stats_.misses;
    } else {
      ++stats_.hits;
    }
    entry = slot;
  }
  // The first thread to take the entry lock grounds; latecomers wait on the
  // same lock and find the result. The map lock is never held while grounding.
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (!entry->done) {
    StatusOr<std::shared_ptr<const CachedGrounding>> ground =
        MakeCachedGrounding(sentence, domain, options);
    if (ground.ok()) {
      entry->value = std::move(*ground);
    } else {
      entry->status = ground.status();
    }
    entry->done = true;
  }
  if (!entry->status.ok()) return entry->status;
  return entry->value;
}

GroundingCache::Stats GroundingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t GroundingCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace kbt::exec
