#include "exec/ground_cache.h"

namespace kbt::exec {

StatusOr<std::shared_ptr<const CachedGrounding>> MakeCachedGrounding(
    const Formula& sentence, const std::vector<Value>& domain,
    const GrounderOptions& options) {
  auto cached = std::make_shared<CachedGrounding>();
  KBT_ASSIGN_OR_RETURN(cached->grounding,
                       GroundSentence(sentence, domain, options));
  cached->mentioned =
      cached->grounding.circuit.CollectVars(cached->grounding.root);
  cached->users = cached->grounding.circuit.BuildUsers();
  return std::shared_ptr<const CachedGrounding>(std::move(cached));
}

}  // namespace kbt::exec
