#ifndef KBT_EXEC_CNF_CACHE_H_
#define KBT_EXEC_CNF_CACHE_H_

/// \file
/// A domain-keyed cache of frozen CNF prefixes, shared across the worlds of one
/// τ call.
///
/// PR 3's GroundingCache shares the *circuit* of φ between worlds with equal
/// active domains, but every world still re-runs the Tseitin transformation:
/// one AddClause per gate, each with its sort/dedup pass and root-level unit
/// propagation. That encoding is itself a pure function of (φ, B) — the member
/// database contributes nothing to it — so the encoded solver state can be
/// computed once and *forked* into per-world solvers.
///
/// A FrozenCnf bundles the shared grounding with a sat::Solver::Frozen
/// snapshot taken right after asserting the circuit root, plus the dense
/// atom-id → solver-var table the enumerator needs. Per world, the enumerator
/// calls Solver::InitFromFrozen (bulk copies of the flat clause arena and
/// flattened watcher lists) and layers only the world's phase hints, descent
/// constraints and blocking clauses on top — bit-identical to re-encoding from
/// scratch, minus the per-world encoding cost.
///
/// Like GroundingCache, one cache instance serves one sentence (the key is the
/// domain alone) and entries are computed exactly once under concurrency —
/// both properties come from the shared machinery in exec/once_cache.h.

#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.h"
#include "exec/ground_cache.h"
#include "exec/once_cache.h"
#include "sat/solver.h"

namespace kbt::exec {

/// An immutable encoded prefix: the shared grounding, the solver state after
/// Tseitin-encoding and asserting its root, and the atom → solver-var table.
struct FrozenCnf {
  /// The grounding the prefix encodes (kept alive with the prefix; the
  /// enumerator borrows its circuit, atom table and mentioned-var set).
  std::shared_ptr<const CachedGrounding> grounding;
  /// Solver state right after `TseitinEncoder(circuit).Assert(root)` — the
  /// clause arena, watch lists and root-level trail, frozen at level 0.
  sat::Solver::Frozen prefix;
  /// Dense ground-atom id → solver variable (-1 when the atom has no var, i.e.
  /// is not mentioned by the root).
  std::vector<sat::Var> atom_var;
  /// Dense circuit-node id → solver literal (-1 = unencoded), the Tseitin
  /// encoder's table at freeze time. The enumerator seeds per-world branching
  /// phases for gate variables from it.
  std::vector<sat::Lit> node_lit;
};

/// Builds the frozen prefix of `sentence` over `domain`: grounds (through
/// `ground_cache` when non-null, so the circuit is shared with non-SAT
/// strategies of the same τ call), encodes into a scratch solver, freezes.
/// The single constructor for cache entries and uncached builds alike.
StatusOr<std::shared_ptr<const FrozenCnf>> MakeFrozenCnf(
    const Formula& sentence, const std::vector<Value>& domain,
    const GrounderOptions& options, GroundingCache* ground_cache);

class CnfCache {
 public:
  using Stats = DomainKeyedOnceCache<FrozenCnf>::Stats;

  /// Returns the frozen CNF prefix of `sentence` over `domain`, building it on
  /// first use. Concurrent callers with the same domain block until the one
  /// build completes. `sentence` must be the same formula on every call — the
  /// cache key deliberately omits it. `ground_cache` (optional) supplies the
  /// shared grounding.
  StatusOr<std::shared_ptr<const FrozenCnf>> GetOrBuild(
      const Formula& sentence, const std::vector<Value>& domain,
      const GrounderOptions& options, GroundingCache* ground_cache) {
    return cache_.GetOrCompute(domain, [&] {
      return MakeFrozenCnf(sentence, domain, options, ground_cache);
    });
  }

  Stats stats() const { return cache_.stats(); }
  /// Number of distinct domains seen.
  size_t entries() const { return cache_.entries(); }
  /// Caps distinct cached domains with LRU eviction (0 = unbounded). Bounds
  /// growth under domain churn; lookups still return identical values.
  void set_max_entries(size_t n) { cache_.set_max_entries(n); }
  /// Estimated bytes held by completed entries. Counts the frozen solver
  /// state and the dense tables; the shared grounding is *not* counted (it is
  /// billed to the GroundingCache that owns it).
  size_t approx_bytes() const {
    return cache_.ApproxBytes([](const FrozenCnf& f) {
      return f.prefix.arena_words() * sizeof(uint32_t) +
             static_cast<size_t>(f.prefix.num_vars()) * 40 +
             f.atom_var.size() * sizeof(sat::Var) +
             f.node_lit.size() * sizeof(sat::Lit);
    });
  }

 private:
  DomainKeyedOnceCache<FrozenCnf> cache_;
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_CNF_CACHE_H_
