#include "exec/cnf_cache.h"

#include "sat/tseitin.h"

namespace kbt::exec {

StatusOr<std::shared_ptr<const FrozenCnf>> MakeFrozenCnf(
    const Formula& sentence, const std::vector<Value>& domain,
    const GrounderOptions& options, GroundingCache* ground_cache) {
  auto cnf = std::make_shared<FrozenCnf>();
  if (ground_cache != nullptr) {
    KBT_ASSIGN_OR_RETURN(cnf->grounding,
                         ground_cache->GetOrGround(sentence, domain, options));
  } else {
    KBT_ASSIGN_OR_RETURN(cnf->grounding,
                         MakeCachedGrounding(sentence, domain, options));
  }
  const Grounding& g = cnf->grounding->grounding;
  // A root of ⊥ has no models: the enumerator bails out before touching a
  // solver, so the prefix stays empty (and costs nothing to build).
  if (g.root != g.circuit.FalseNode()) {
    // Encode into a scratch solver exactly as the enumerator would, then
    // freeze. Encoding the root creates the solver variable of every atom
    // mentioned by it (left-to-right, as a fresh per-world encoder does), so
    // the snapshot below is byte-identical to the per-world state at the same
    // point.
    sat::Solver solver;
    sat::TseitinEncoder encoder(&g.circuit, &solver);
    encoder.Assert(g.root);
    cnf->atom_var.assign(g.atoms.size(), -1);
    for (int atom_id : cnf->grounding->mentioned) {
      cnf->atom_var[static_cast<size_t>(atom_id)] = encoder.VarForAtom(atom_id);
    }
    cnf->node_lit = encoder.node_lits();
    solver.Freeze(&cnf->prefix);
  }
  return std::shared_ptr<const FrozenCnf>(std::move(cnf));
}

}  // namespace kbt::exec
