#ifndef KBT_EXEC_POOL_H_
#define KBT_EXEC_POOL_H_

/// \file
/// A work-stealing thread pool for world-parallel τ execution.
///
/// Design: one TaskQueue per worker. A worker services its own queue bottom-first
/// and, when empty, steals the oldest task from a sibling queue; blocked workers
/// park on a condition variable until work arrives or the pool stops. External
/// submissions round-robin across the queues, and ParallelFor partitions an index
/// range into more chunks than workers so stealing can rebalance skewed work
/// (worlds whose μ call is expensive next to trivial siblings).
///
/// Tasks receive the id of the worker that runs them, so callers can maintain
/// per-worker resource pools (one Solver + encoder + scratch per worker, the
/// PR 2 incremental machinery instantiated per thread instead of per process).
///
/// The pool makes no fairness or ordering promises; τ's determinism comes from
/// writing results into per-world slots, not from execution order.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"
#include "exec/task.h"

namespace kbt::exec {

class ThreadPool {
 public:
  /// Starts `workers` threads (at least one).
  explicit ThreadPool(size_t workers);

  /// Stops and joins. Pending submitted tasks are drained first, so every task
  /// submitted before destruction runs exactly once.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Enqueues a standalone task (round-robin across worker queues). A task
  /// that throws does not take its worker (or the process) down: the
  /// exception is swallowed at the worker loop — tasks that can fail should
  /// report through their own channel (e.g. a result slot).
  void Submit(Task task);

  /// Runs body(index, worker) for every index in [0, n), blocking until all
  /// have completed. Indices are partitioned into contiguous chunks (several
  /// per worker) that idle workers steal. `body` must not call back into
  /// ParallelFor on the same pool.
  ///
  /// Degrades gracefully when a body call throws: the exception is contained
  /// to its chunk (the chunk's remaining indices are skipped, other chunks
  /// still run), the pool stays usable, and the first exception is reported
  /// as a kInternal Status. Callers that capture failures per index slot see
  /// OK here and read the slots.
  Status ParallelFor(size_t n,
                     const std::function<void(size_t index, size_t worker)>& body);

  /// Number of tasks executed by a worker other than the one whose queue they
  /// were pushed to (monotone; for tests and instrumentation).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop(size_t id);
  /// Pops a task from `id`'s queue, or steals one. Decrements pending_ on
  /// success.
  bool TryGet(size_t id, Task* out);
  /// Publishes a task to queue `q` and wakes a worker.
  void Enqueue(size_t q, Task task);

  std::vector<std::unique_ptr<TaskQueue>> queues_;  // One per worker.
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  /// Tasks pushed but not yet picked up. Guarded by mu_ for the cv protocol
  /// (atomic so TryGet can decrement without the lock).
  std::atomic<size_t> pending_{0};
  bool stop_ = false;  // Guarded by mu_.

  std::atomic<size_t> next_queue_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_POOL_H_
