#ifndef KBT_EXEC_SCRATCH_H_
#define KBT_EXEC_SCRATCH_H_

/// \file
/// Per-worker world scratch for the τ fan-out.
///
/// The μ/SAT enumerator used to allocate ~15 member vectors plus a model
/// materializer per world; on small worlds that constant factor dominated the
/// actual solving. A WorldScratch owns those buffers and is pooled per worker
/// id — exactly like the per-worker sat::Solver pools of exec/pool — so one
/// world's enumeration borrows warm, already-sized storage and the next world
/// on the same worker reuses it. A scratch is owned by one worker at a time;
/// nothing here is thread-safe or meant to be shared.
///
/// The element types are plain ints / bytes (atom ids, sat::Var and sat::Lit
/// are all int typedefs), keeping exec/ free of core/ and sat/ dependencies.
/// Strategy-private cached state with a real type — the μ/SAT enumerator's
/// ModelMaterializer — parks behind the type-erased Attachment slot.

#include <cstdint>
#include <memory>
#include <vector>

namespace kbt::exec {

/// Reusable per-world buffers, keyed by worker id by the τ executor. μ borrows
/// one exclusively for the duration of a world's update (MuExecContext).
struct WorldScratch {
  /// Base class for strategy-owned cached state exec/ must not know the type
  /// of. Owners downcast (dynamic_cast) and replace the slot when the type is
  /// not theirs.
  struct Attachment {
    virtual ~Attachment() = default;
  };

  // --- μ/SAT enumerator per-world tables (sized per grounding). ---
  std::vector<int> old_atoms;          ///< Mentioned atom ids over σ(db).
  std::vector<int> new_atoms;          ///< Mentioned atom ids outside σ(db).
  std::vector<int> atom_var;           ///< Atom id → sat::Var (dense, -1 unset).
  std::vector<int8_t> default_value;   ///< Atom id → default-world value.
  std::vector<int8_t> value;           ///< Atom id → current model snapshot.
  std::vector<int8_t> node_value;      ///< Circuit-evaluation scratch.

  // --- Incremental default evaluation (PR 7): the previous world's defaults
  // and circuit evaluation, valid for the grounding identified by eval_owner.
  // When the next world on this worker shares that grounding, only the
  // changed-default cone of the circuit is re-evaluated. ---
  std::vector<int8_t> prev_default;    ///< Defaults node_value was computed at.
  std::vector<int> dirty_atoms;        ///< Atoms whose default changed.
  std::vector<int> eval_heap;          ///< ReevaluateInto worklist scratch.
  std::shared_ptr<const void> eval_owner;  ///< Grounding node_value belongs to.

  // --- μ/SAT descend-and-block loop scratch. ---
  std::vector<int> deviating;          ///< Atoms deviating from the default.
  std::vector<int> clause_lits;        ///< Clause under construction (sat::Lit).
  std::vector<int> core_lits;          ///< Blocking-core literals (sat::Lit).
  std::vector<int> assumption_lits;    ///< Assumption vector (sat::Lit).
  std::vector<int> retired_acts;       ///< Activation vars awaiting retirement.

  /// Strategy-private slot (the μ/SAT enumerator's ModelMaterializer lives
  /// here so its group/merge buffers survive across worlds too).
  std::unique_ptr<Attachment> attachment;
};

}  // namespace kbt::exec

#endif  // KBT_EXEC_SCRATCH_H_
