#include "datalog/from_fo.h"

#include <set>

#include "logic/analysis.h"

namespace kbt::datalog {

using kbt::Formula;
using kbt::FormulaKind;
using kbt::StatusOr;

namespace {

/// Collects conjuncts of a (possibly nested) conjunction.
void FlattenAnd(const Formula& f, std::vector<Formula>* out) {
  if (f->kind() == FormulaKind::kAnd) {
    for (const Formula& c : f->children()) FlattenAnd(c, out);
  } else {
    out->push_back(f);
  }
}

/// Collects disjuncts of a (possibly nested) disjunction.
void FlattenOr(const Formula& f, std::vector<Formula>* out) {
  if (f->kind() == FormulaKind::kOr) {
    for (const Formula& c : f->children()) FlattenOr(c, out);
  } else {
    out->push_back(f);
  }
}

/// Translates one conjunctive body into literals/constraints. Returns false when
/// a conjunct is outside the fragment.
bool TranslateBody(const Formula& body, Rule* rule) {
  std::vector<Formula> parts;
  FlattenAnd(body, &parts);
  for (const Formula& p : parts) {
    switch (p->kind()) {
      case FormulaKind::kAtom:
        rule->body.push_back(
            Literal{DlAtom{p->relation(), p->terms()}, /*negated=*/false});
        break;
      case FormulaKind::kEquals:
        rule->constraints.push_back(
            Constraint{p->terms()[0], p->terms()[1], /*negated=*/false});
        break;
      case FormulaKind::kNot: {
        const Formula& inner = p->children()[0];
        if (inner->kind() != FormulaKind::kEquals) return false;  // ¬R(x): not Horn.
        rule->constraints.push_back(
            Constraint{inner->terms()[0], inner->terms()[1], /*negated=*/true});
        break;
      }
      case FormulaKind::kTrue:
        break;  // Neutral.
      default:
        return false;
    }
  }
  return true;
}

/// Translates one universally closed conjunct into rules; false if out of fragment.
bool TranslateClause(Formula f, Program* program) {
  while (f->kind() == FormulaKind::kForall) f = f->children()[0];
  if (f->kind() == FormulaKind::kAtom) {
    program->rules.push_back(Rule{DlAtom{f->relation(), f->terms()}, {}, {}});
    return true;
  }
  if (f->kind() != FormulaKind::kImplies) return false;
  const Formula& head = f->children()[1];
  if (head->kind() != FormulaKind::kAtom) return false;
  DlAtom head_atom{head->relation(), head->terms()};
  // The body may be a disjunction of conjunctions: distribute.
  std::vector<Formula> disjuncts;
  FlattenOr(f->children()[0], &disjuncts);
  for (const Formula& d : disjuncts) {
    Rule rule;
    rule.head = head_atom;
    if (!TranslateBody(d, &rule)) return false;
    program->rules.push_back(std::move(rule));
  }
  return true;
}

}  // namespace

StatusOr<std::optional<Program>> FromFirstOrder(const kbt::Formula& sentence) {
  if (!kbt::IsSentence(sentence)) {
    return kbt::Status::InvalidArgument("FromFirstOrder requires a sentence");
  }
  std::vector<Formula> conjuncts;
  FlattenAnd(sentence, &conjuncts);
  Program program;
  for (const Formula& c : conjuncts) {
    if (!TranslateClause(c, &program)) return std::optional<Program>{};
  }
  return std::optional<Program>{std::move(program)};
}

}  // namespace kbt::datalog
