#include "datalog/to_fo.h"

#include <set>

namespace kbt::datalog {

using kbt::Formula;

Formula RuleToFirstOrder(const Rule& rule) {
  std::vector<Formula> body;
  for (const Literal& l : rule.body) {
    Formula atom = kbt::Atom(l.atom.predicate, l.atom.args);
    body.push_back(l.negated ? kbt::Not(std::move(atom)) : std::move(atom));
  }
  for (const Constraint& c : rule.constraints) {
    Formula eq = kbt::Equals(c.lhs, c.rhs);
    body.push_back(c.negated ? kbt::Not(std::move(eq)) : std::move(eq));
  }
  Formula head = kbt::Atom(rule.head.predicate, rule.head.args);
  Formula core = body.empty() ? head
                              : kbt::Implies(kbt::And(std::move(body)), head);

  // Universal closure over every variable of the rule, in first-occurrence order.
  std::vector<Symbol> vars;
  std::set<Symbol> seen;
  auto note = [&](const Term& t) {
    if (t.is_variable() && seen.insert(t.symbol).second) vars.push_back(t.symbol);
  };
  for (const Literal& l : rule.body) {
    for (const Term& t : l.atom.args) note(t);
  }
  for (const Constraint& c : rule.constraints) {
    note(c.lhs);
    note(c.rhs);
  }
  for (const Term& t : rule.head.args) note(t);
  return kbt::Forall(vars, std::move(core));
}

kbt::StatusOr<Formula> ToFirstOrder(const Program& program) {
  if (program.rules.empty()) {
    return kbt::Status::InvalidArgument("cannot convert an empty program");
  }
  std::vector<Formula> conjuncts;
  conjuncts.reserve(program.rules.size());
  for (const Rule& r : program.rules) conjuncts.push_back(RuleToFirstOrder(r));
  return kbt::And(std::move(conjuncts));
}

}  // namespace kbt::datalog
