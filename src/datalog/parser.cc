#include "datalog/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace kbt::datalog {

namespace {

using kbt::Status;
using kbt::StatusOr;

class ProgramParser {
 public:
  explicit ProgramParser(std::string_view text) : text_(text) {}

  StatusOr<Program> Parse() {
    Program program;
    SkipSpace();
    while (pos_ < text_.size()) {
      KBT_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules.push_back(std::move(rule));
      SkipSpace();
    }
    return program;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " + std::to_string(pos_));
  }

  StatusOr<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<Term> ParseTerm() {
    KBT_ASSIGN_OR_RETURN(std::string ident, ParseIdent());
    if (std::isupper(static_cast<unsigned char>(ident[0]))) {
      return Term::Var(ident);
    }
    return Term::Const(ident);
  }

  StatusOr<DlAtom> ParseAtom() {
    KBT_ASSIGN_OR_RETURN(std::string pred, ParseIdent());
    DlAtom atom;
    atom.predicate = kbt::Name(pred);
    if (!Eat('(')) return Error("expected '(' after predicate name");
    if (Eat(')')) return atom;
    do {
      KBT_ASSIGN_OR_RETURN(Term t, ParseTerm());
      atom.args.push_back(t);
    } while (Eat(','));
    if (!Eat(')')) return Error("expected ')' after atom arguments");
    return atom;
  }

  StatusOr<Rule> ParseRule() {
    Rule rule;
    KBT_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (Eat('.')) return rule;  // Fact.
    if (!EatWord(":-")) return Error("expected ':-' or '.' after rule head");
    do {
      SkipSpace();
      if (pos_ < text_.size() && (text_[pos_] == '!' || text_[pos_] == '\\')) {
        // Negated literal: !p(...) (also accepts "\+" Prolog-style).
        if (text_[pos_] == '\\') {
          if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '+') {
            return Error("expected '\\+'");
          }
          pos_ += 2;
        } else {
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            return Error("unexpected '!=' without left-hand term");
          }
        }
        KBT_ASSIGN_OR_RETURN(DlAtom atom, ParseAtom());
        rule.body.push_back(Literal{std::move(atom), true});
        continue;
      }
      // Lookahead: term (= | !=) term, or atom.
      size_t save = pos_;
      KBT_ASSIGN_OR_RETURN(std::string ident, ParseIdent());
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '(') {
        pos_ = save;
        KBT_ASSIGN_OR_RETURN(DlAtom atom, ParseAtom());
        rule.body.push_back(Literal{std::move(atom), false});
        continue;
      }
      // Constraint.
      Term lhs = std::isupper(static_cast<unsigned char>(ident[0]))
                     ? Term::Var(ident)
                     : Term::Const(ident);
      bool negated;
      if (EatWord("!=")) {
        negated = true;
      } else if (Eat('=')) {
        negated = false;
      } else {
        return Error("expected '=', '!=' or '(' after identifier");
      }
      KBT_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      rule.constraints.push_back(Constraint{lhs, rhs, negated});
    } while (Eat(','));
    if (!Eat('.')) return Error("expected '.' at end of rule");
    return rule;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text) {
  ProgramParser parser(text);
  return parser.Parse();
}

}  // namespace kbt::datalog
