#ifndef KBT_DATALOG_TO_FO_H_
#define KBT_DATALOG_TO_FO_H_

/// \file
/// The reverse bridge: Datalog rules to first-order sentences, so programs can be
/// "inserted" through τ. Each rule becomes its universal closure
/// ∀x̄ (body⁺ ∧ ¬body⁻ ∧ constraints → head); a program becomes the conjunction.
/// Positive programs land in the Theorem 4.8 fast path; rules with (stratified)
/// negation go through the generic engine — core/stratified.h drives them stratum
/// by stratum, which is the paper's [ABW88] remark made executable.

#include "base/status.h"
#include "datalog/ast.h"
#include "logic/formula.h"

namespace kbt::datalog {

/// The universal closure of one rule.
kbt::Formula RuleToFirstOrder(const Rule& rule);

/// Conjunction of all rules' closures. Fails on an empty program.
kbt::StatusOr<kbt::Formula> ToFirstOrder(const Program& program);

}  // namespace kbt::datalog

#endif  // KBT_DATALOG_TO_FO_H_
