#ifndef KBT_DATALOG_PARSER_H_
#define KBT_DATALOG_PARSER_H_

/// \file
/// Parser for the usual concrete Datalog syntax:
///
///   path(X, Y) :- edge(X, Y).
///   path(X, Z) :- path(X, Y), edge(Y, Z).
///   unreachable(X, Y) :- node(X), node(Y), !path(X, Y).
///   neq(X, Y) :- node(X), node(Y), X != Y.
///   fact(a, b).
///   % comments run to end of line
///
/// Identifiers starting with an uppercase letter are variables; all other
/// identifiers (and numbers) are constants. (This is the classic Datalog convention;
/// note it differs from the FO formula syntax, where quantification decides.)

#include <string_view>

#include "base/status.h"
#include "datalog/ast.h"

namespace kbt::datalog {

/// Parses a whole program.
kbt::StatusOr<Program> ParseProgram(std::string_view text);

}  // namespace kbt::datalog

#endif  // KBT_DATALOG_PARSER_H_
