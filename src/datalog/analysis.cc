#include "datalog/analysis.h"

#include <algorithm>
#include <map>
#include <set>

namespace kbt::datalog {

using kbt::RelationDecl;
using kbt::Schema;
using kbt::Status;
using kbt::StatusOr;

Status CheckSafety(const Program& program) {
  for (const Rule& rule : program.rules) {
    std::set<Symbol> positive_vars;
    for (const Literal& l : rule.body) {
      if (l.negated) continue;
      for (const Term& t : l.atom.args) {
        if (t.is_variable()) positive_vars.insert(t.symbol);
      }
    }
    auto check_term = [&](const Term& t, const char* where) -> Status {
      if (t.is_variable() && positive_vars.count(t.symbol) == 0) {
        return Status::InvalidArgument(
            std::string("unsafe rule (variable ") + kbt::NameOf(t.symbol) + " in " +
            where + " not bound by a positive body literal): " + rule.ToString());
      }
      return Status::OK();
    };
    for (const Term& t : rule.head.args) {
      KBT_RETURN_IF_ERROR(check_term(t, "head"));
    }
    for (const Literal& l : rule.body) {
      if (!l.negated) continue;
      for (const Term& t : l.atom.args) {
        KBT_RETURN_IF_ERROR(check_term(t, "negated literal"));
      }
    }
    for (const Constraint& c : rule.constraints) {
      KBT_RETURN_IF_ERROR(check_term(c.lhs, "constraint"));
      KBT_RETURN_IF_ERROR(check_term(c.rhs, "constraint"));
    }
  }
  return Status::OK();
}

StatusOr<Schema> ProgramSchema(const Program& program) {
  Schema schema;
  auto note = [&](const DlAtom& atom) -> Status {
    std::optional<size_t> arity = schema.ArityOf(atom.predicate);
    if (arity) {
      if (*arity != atom.args.size()) {
        return Status::InvalidArgument("predicate " + kbt::NameOf(atom.predicate) +
                                       " used at two arities");
      }
      return Status::OK();
    }
    return schema.Append(RelationDecl{atom.predicate, atom.args.size()});
  };
  for (const Rule& rule : program.rules) {
    KBT_RETURN_IF_ERROR(note(rule.head));
    for (const Literal& l : rule.body) {
      KBT_RETURN_IF_ERROR(note(l.atom));
    }
  }
  return schema;
}

StatusOr<std::vector<std::vector<Symbol>>> Stratify(const Program& program) {
  std::vector<Symbol> idb = program.HeadPredicates();
  auto is_idb = [&](Symbol p) {
    return std::find(idb.begin(), idb.end(), p) != idb.end();
  };

  // stratum[p] computed by iterated relaxation:
  //   p :- ... q ...   =>  stratum[p] >= stratum[q]
  //   p :- ... !q ...  =>  stratum[p] >= stratum[q] + 1
  // A negative cycle forces a stratum beyond |idb| and is reported.
  std::map<Symbol, size_t> stratum;
  for (Symbol p : idb) stratum[p] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      size_t& head_stratum = stratum[rule.head.predicate];
      for (const Literal& l : rule.body) {
        if (!is_idb(l.atom.predicate)) continue;
        size_t need = stratum[l.atom.predicate] + (l.negated ? 1 : 0);
        if (head_stratum < need) {
          head_stratum = need;
          if (head_stratum > idb.size()) {
            return Status::InvalidArgument(
                "program is not stratifiable (cyclic negation through " +
                kbt::NameOf(rule.head.predicate) + ")");
          }
          changed = true;
        }
      }
    }
  }

  size_t max_stratum = 0;
  for (Symbol p : idb) max_stratum = std::max(max_stratum, stratum[p]);
  std::vector<std::vector<Symbol>> out(max_stratum + 1);
  for (Symbol p : idb) out[stratum[p]].push_back(p);
  return out;
}

}  // namespace kbt::datalog
