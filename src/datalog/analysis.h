#ifndef KBT_DATALOG_ANALYSIS_H_
#define KBT_DATALOG_ANALYSIS_H_

/// \file
/// Static checks on Datalog programs: range-restriction (safety), predicate arities,
/// and stratification of negation.

#include <vector>

#include "base/status.h"
#include "datalog/ast.h"
#include "rel/schema.h"

namespace kbt::datalog {

/// Verifies the program is *safe*: every variable in a rule head, in a negated
/// literal, or in a constraint occurs in some positive body literal of that rule.
kbt::Status CheckSafety(const Program& program);

/// Collects the arity of every predicate used in the program; fails when a
/// predicate is used at two arities.
kbt::StatusOr<kbt::Schema> ProgramSchema(const Program& program);

/// Splits IDB predicates into strata such that (a) a predicate's rules only use
/// predicates of lower-or-equal strata positively and (b) strictly lower strata
/// under negation. Fails with kInvalidArgument when negation is cyclic (the program
/// is not stratifiable). EDB predicates are assigned stratum 0 implicitly.
/// Result: strata[i] lists the IDB predicates of stratum i, in dependency order.
kbt::StatusOr<std::vector<std::vector<Symbol>>> Stratify(const Program& program);

}  // namespace kbt::datalog

#endif  // KBT_DATALOG_ANALYSIS_H_
