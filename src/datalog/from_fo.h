#ifndef KBT_DATALOG_FROM_FO_H_
#define KBT_DATALOG_FROM_FO_H_

/// \file
/// Detection of the Datalog-restricted fragment of §4.3: first-order sentences that
/// are conjunctions of universally closed function-free Horn clauses.
///
/// Accepted conjunct shapes (after stripping the ∀ prefix):
///
///   * an atom (a fact; must be ground for safety),
///   * body → head, where head is an atom and body is a conjunction — or a
///     disjunction of conjunctions, which distributes into several clauses, the
///     shape the paper's transitive-closure sentence of Example 1 uses:
///     ∀x1x2x3 ((R2 x1x2 ∧ R1 x2x3) ∨ R1 x1x3 → R2 x1x3) —
///     of positive atoms, equalities, and inequalities.
///
/// Anything else (negated body atoms, ↔, ∃, disjunctive heads) is rejected with
/// nullopt so the caller can fall back to the generic engine.

#include <optional>

#include "base/status.h"
#include "datalog/ast.h"
#include "logic/formula.h"

namespace kbt::datalog {

/// Extracts a Datalog program from `sentence`, or nullopt when the sentence is not
/// in the fragment. A successfully extracted program is syntactically faithful:
/// models of the sentence over a fixed domain = models of the program's clauses.
kbt::StatusOr<std::optional<Program>> FromFirstOrder(const kbt::Formula& sentence);

}  // namespace kbt::datalog

#endif  // KBT_DATALOG_FROM_FO_H_
