#ifndef KBT_DATALOG_EVAL_H_
#define KBT_DATALOG_EVAL_H_

/// \file
/// Bottom-up Datalog evaluation: naive and semi-naive fixpoint computation, stratum
/// by stratum.
///
/// Theorem 4.8's PTIME bound rests on "Datalog programs have a unique least model
/// that can be computed using naive evaluation in PTIME"; semi-naive is the standard
/// differential refinement and is the default here (bench/bench_ablation.cc measures
/// the gap). Stratified negation implements the paper's remark that the iterative
/// fixpoint of a stratified program is obtained by updating with the strata in
/// hierarchical order.

#include "base/status.h"
#include "datalog/ast.h"
#include "rel/database.h"

namespace kbt::datalog {

struct EvalOptions {
  /// Use semi-naive (differential) evaluation; naive otherwise.
  bool use_seminaive = true;
};

struct EvalStats {
  /// Fixpoint rounds summed over strata.
  size_t rounds = 0;
  /// Tuples newly derived (beyond the EDB).
  size_t derived_tuples = 0;
  /// Rule instantiation attempts (join probes at the outermost level).
  size_t rule_evaluations = 0;
};

/// Computes the least model of `program` over the extensional database `edb`.
///
/// The result contains every relation of `edb` unchanged plus one relation per IDB
/// predicate (appended in first-appearance order). A head predicate already present
/// in `edb` keeps its stored tuples as additional facts. The program must be safe
/// and stratifiable.
kbt::StatusOr<kbt::Database> Evaluate(const Program& program, const kbt::Database& edb,
                                      const EvalOptions& options = EvalOptions(),
                                      EvalStats* stats = nullptr);

}  // namespace kbt::datalog

#endif  // KBT_DATALOG_EVAL_H_
