#include "datalog/ast.h"

#include <algorithm>

#include "logic/printer.h"

namespace kbt::datalog {

std::string DlAtom::ToString() const {
  std::string out = NameOf(predicate);
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += kbt::ToString(args[i]);
  }
  out += ")";
  return out;
}

std::string Literal::ToString() const {
  return negated ? "!" + atom.ToString() : atom.ToString();
}

std::string Constraint::ToString() const {
  return kbt::ToString(lhs) + (negated ? " != " : " = ") + kbt::ToString(rhs);
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (body.empty() && constraints.empty()) return out + ".";
  out += " :- ";
  bool first = true;
  for (const Literal& l : body) {
    if (!first) out += ", ";
    out += l.ToString();
    first = false;
  }
  for (const Constraint& c : constraints) {
    if (!first) out += ", ";
    out += c.ToString();
    first = false;
  }
  return out + ".";
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

std::vector<Symbol> Program::HeadPredicates() const {
  std::vector<Symbol> out;
  for (const Rule& r : rules) {
    if (std::find(out.begin(), out.end(), r.head.predicate) == out.end()) {
      out.push_back(r.head.predicate);
    }
  }
  return out;
}

}  // namespace kbt::datalog
