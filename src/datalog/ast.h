#ifndef KBT_DATALOG_AST_H_
#define KBT_DATALOG_AST_H_

/// \file
/// Datalog programs: conjunctions of function-free Horn clauses, optionally with
/// stratified negation and (in)equality constraints.
///
/// §4.3 singles out "Datalog-restricted transformations" — transformation
/// expressions whose sentences are conjunctions of function-free Horn clauses — and
/// Theorem 4.8 shows their data complexity drops to PTIME because inserting a Datalog
/// program yields the unique least fixpoint. This module is that PTIME substrate; it
/// also supports stratified negation so the paper's remark on iterated-fixpoint
/// evaluation of stratified programs ([ABW88]) can be exercised through τ.

#include <string>
#include <vector>

#include "logic/formula.h"
#include "rel/schema.h"

namespace kbt::datalog {

using kbt::Symbol;
using kbt::Term;

/// A predicate applied to terms, e.g. path(X, Y) or edge(X, a).
struct DlAtom {
  Symbol predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

/// A body literal: an atom, possibly negated (negation must be stratified).
struct Literal {
  DlAtom atom;
  bool negated = false;

  std::string ToString() const;
};

/// A builtin (in)equality constraint between two terms, e.g. X != Y.
struct Constraint {
  Term lhs;
  Term rhs;
  bool negated = false;  ///< false: lhs = rhs; true: lhs != rhs.

  std::string ToString() const;
};

/// One Horn clause: head :- body, constraints. A rule with an empty body is a fact.
struct Rule {
  DlAtom head;
  std::vector<Literal> body;
  std::vector<Constraint> constraints;

  std::string ToString() const;
};

/// A Datalog program.
struct Program {
  std::vector<Rule> rules;

  std::string ToString() const;

  /// All predicates appearing in rule heads (the IDB), in first-appearance order.
  std::vector<Symbol> HeadPredicates() const;
};

}  // namespace kbt::datalog

#endif  // KBT_DATALOG_AST_H_
