#include "datalog/eval.h"

#include <algorithm>
#include <map>
#include <set>

#include "datalog/analysis.h"

namespace kbt::datalog {

using kbt::Database;
using kbt::Relation;
using kbt::RelationDecl;
using kbt::Schema;
using kbt::Status;
using kbt::StatusOr;
using kbt::Tuple;
using kbt::Value;

namespace {

/// A variable binding environment: small scoped stack, linear lookup (rules have
/// few variables).
class Env {
 public:
  bool Lookup(Symbol var, Value* out) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->first == var) {
        *out = it->second;
        return true;
      }
    }
    return false;
  }
  void Push(Symbol var, Value v) { entries_.emplace_back(var, v); }
  size_t Mark() const { return entries_.size(); }
  void PopTo(size_t mark) { entries_.resize(mark); }

 private:
  std::vector<std::pair<Symbol, Value>> entries_;
};

/// Tuples of `r` whose first `prefix.size()` components equal `prefix`
/// (relations are lexicographically sorted, so this is an equal_range).
std::pair<std::vector<Tuple>::const_iterator, std::vector<Tuple>::const_iterator>
PrefixRange(const Relation& r, const std::vector<Value>& prefix) {
  auto cmp_lo = [&](const Tuple& t, int) {
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (t[i] != prefix[i]) return t[i] < prefix[i];
    }
    return false;  // Equal prefix: not less.
  };
  auto cmp_hi = [&](int, const Tuple& t) {
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (t[i] != prefix[i]) return prefix[i] < t[i];
    }
    return false;  // Equal prefix: not greater.
  };
  auto lo = std::lower_bound(r.begin(), r.end(), 0, cmp_lo);
  auto hi = std::upper_bound(r.begin(), r.end(), 0, cmp_hi);
  return {lo, hi};
}

class RuleRunner {
 public:
  RuleRunner(const Rule& rule, const std::map<Symbol, Relation>& relations,
             EvalStats* stats)
      : rule_(rule), relations_(relations), stats_(stats) {
    for (const Literal& l : rule.body) {
      (l.negated ? negatives_ : positives_).push_back(&l);
    }
  }

  /// Runs the rule and appends derived head tuples to `out`. When `delta_pred` is
  /// set, exactly one positive literal over that predicate is instantiated from
  /// `delta` instead of the full relation — called once per delta position by the
  /// semi-naive driver.
  Status Run(const Relation* delta, size_t delta_position, std::vector<Tuple>* out) {
    delta_ = delta;
    delta_position_ = delta_position;
    out_ = out;
    if (stats_ != nullptr) ++stats_->rule_evaluations;
    Env env;
    return Recurse(0, &env);
  }

 private:
  StatusOr<const Relation*> RelationOf(Symbol pred) const {
    auto it = relations_.find(pred);
    if (it == relations_.end()) {
      return Status::Internal("datalog eval: relation missing for " +
                              kbt::NameOf(pred));
    }
    return &it->second;
  }

  Status Recurse(size_t i, Env* env) {
    if (i == positives_.size()) return Finish(env);
    const Literal& lit = *positives_[i];
    const Relation* rel;
    if (delta_ != nullptr && i == delta_position_) {
      rel = delta_;
    } else {
      KBT_ASSIGN_OR_RETURN(rel, RelationOf(lit.atom.predicate));
    }
    if (rel->arity() != lit.atom.args.size()) {
      return Status::InvalidArgument("arity mismatch for " +
                                     kbt::NameOf(lit.atom.predicate));
    }
    // Longest bound prefix for a sorted-range probe.
    std::vector<Value> prefix;
    for (const Term& t : lit.atom.args) {
      Value v;
      if (t.is_constant()) {
        prefix.push_back(t.symbol);
      } else if (env->Lookup(t.symbol, &v)) {
        prefix.push_back(v);
      } else {
        break;
      }
    }
    auto [lo, hi] = PrefixRange(*rel, prefix);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& tuple = *it;
      size_t mark = env->Mark();
      bool match = true;
      for (size_t j = prefix.size(); j < tuple.arity(); ++j) {
        const Term& t = lit.atom.args[j];
        if (t.is_constant()) {
          if (tuple[j] != t.symbol) {
            match = false;
            break;
          }
        } else {
          Value bound;
          if (env->Lookup(t.symbol, &bound)) {
            if (bound != tuple[j]) {
              match = false;
              break;
            }
          } else {
            env->Push(t.symbol, tuple[j]);
          }
        }
      }
      if (match) {
        KBT_RETURN_IF_ERROR(Recurse(i + 1, env));
      }
      env->PopTo(mark);
    }
    return Status::OK();
  }

  StatusOr<Value> Resolve(const Term& t, Env* env) const {
    if (t.is_constant()) return t.symbol;
    Value v;
    if (!env->Lookup(t.symbol, &v)) {
      return Status::InvalidArgument("unsafe rule: unbound variable " +
                                     kbt::NameOf(t.symbol));
    }
    return v;
  }

  Status Finish(Env* env) {
    for (const Constraint& c : rule_.constraints) {
      KBT_ASSIGN_OR_RETURN(Value lhs, Resolve(c.lhs, env));
      KBT_ASSIGN_OR_RETURN(Value rhs, Resolve(c.rhs, env));
      if ((lhs == rhs) == c.negated) return Status::OK();
    }
    for (const Literal* l : negatives_) {
      KBT_ASSIGN_OR_RETURN(const Relation* rel, RelationOf(l->atom.predicate));
      std::vector<Value> values;
      values.reserve(l->atom.args.size());
      for (const Term& t : l->atom.args) {
        KBT_ASSIGN_OR_RETURN(Value v, Resolve(t, env));
        values.push_back(v);
      }
      if (rel->Contains(Tuple(std::move(values)))) return Status::OK();
    }
    std::vector<Value> head;
    head.reserve(rule_.head.args.size());
    for (const Term& t : rule_.head.args) {
      KBT_ASSIGN_OR_RETURN(Value v, Resolve(t, env));
      head.push_back(v);
    }
    out_->emplace_back(std::move(head));
    return Status::OK();
  }

  const Rule& rule_;
  const std::map<Symbol, Relation>& relations_;
  EvalStats* stats_;
  std::vector<const Literal*> positives_;
  std::vector<const Literal*> negatives_;
  const Relation* delta_ = nullptr;
  size_t delta_position_ = 0;
  std::vector<Tuple>* out_ = nullptr;
};

}  // namespace

StatusOr<Database> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options, EvalStats* stats) {
  KBT_RETURN_IF_ERROR(CheckSafety(program));
  KBT_ASSIGN_OR_RETURN(Schema program_schema, ProgramSchema(program));
  KBT_ASSIGN_OR_RETURN(std::vector<std::vector<Symbol>> strata, Stratify(program));

  // Output schema: EDB relations first, then unseen IDB predicates.
  KBT_ASSIGN_OR_RETURN(Schema out_schema, edb.schema().Union(program_schema));

  // Working relation store.
  std::map<Symbol, Relation> store;
  for (const RelationDecl& d : out_schema.decls()) {
    std::optional<size_t> pos = edb.schema().PositionOf(d.symbol);
    store.emplace(d.symbol,
                  pos ? edb.relation_at(*pos) : Relation(d.arity));
  }

  std::vector<Symbol> idb = program.HeadPredicates();
  for (size_t stratum = 0; stratum < strata.size(); ++stratum) {
    const std::vector<Symbol>& stratum_preds = strata[stratum];
    auto in_stratum = [&](Symbol p) {
      return std::find(stratum_preds.begin(), stratum_preds.end(), p) !=
             stratum_preds.end();
    };
    std::vector<const Rule*> rules;
    for (const Rule& r : program.rules) {
      if (in_stratum(r.head.predicate)) rules.push_back(&r);
    }
    if (rules.empty()) continue;

    if (!options.use_seminaive) {
      // Naive: re-derive everything until no growth.
      bool grew = true;
      while (grew) {
        grew = false;
        if (stats != nullptr) ++stats->rounds;
        for (const Rule* r : rules) {
          std::vector<Tuple> derived;
          RuleRunner runner(*r, store, stats);
          KBT_RETURN_IF_ERROR(runner.Run(nullptr, 0, &derived));
          Relation& head = store.at(r->head.predicate);
          Relation fresh = Relation(head.arity(), std::move(derived)).Difference(head);
          if (!fresh.empty()) {
            if (stats != nullptr) stats->derived_tuples += fresh.size();
            head = head.Union(fresh);
            grew = true;
          }
        }
      }
      continue;
    }

    // Semi-naive. Round 0 evaluates every rule in full (this seeds facts and
    // captures contributions of lower strata); afterwards only rules with a
    // recursive positive literal re-fire, instantiated through the deltas.
    std::map<Symbol, Relation> delta;
    if (stats != nullptr) ++stats->rounds;
    for (const Rule* r : rules) {
      std::vector<Tuple> derived;
      RuleRunner runner(*r, store, stats);
      KBT_RETURN_IF_ERROR(runner.Run(nullptr, 0, &derived));
      Relation& head = store.at(r->head.predicate);
      Relation fresh = Relation(head.arity(), std::move(derived)).Difference(head);
      if (!fresh.empty()) {
        if (stats != nullptr) stats->derived_tuples += fresh.size();
        head = head.Union(fresh);
        auto [it, inserted] = delta.emplace(r->head.predicate, fresh);
        if (!inserted) it->second = it->second.Union(fresh);
      }
    }
    while (!delta.empty()) {
      if (stats != nullptr) ++stats->rounds;
      std::map<Symbol, Relation> next_delta;
      for (const Rule* r : rules) {
        // One pass per recursive positive literal, fed by that literal's delta.
        size_t positive_index = 0;
        for (const Literal& l : r->body) {
          if (l.negated) continue;
          size_t this_index = positive_index++;
          auto dit = delta.find(l.atom.predicate);
          if (dit == delta.end() || !in_stratum(l.atom.predicate)) continue;
          std::vector<Tuple> derived;
          RuleRunner runner(*r, store, stats);
          KBT_RETURN_IF_ERROR(runner.Run(&dit->second, this_index, &derived));
          if (derived.empty()) continue;
          Relation& head = store.at(r->head.predicate);
          Relation fresh =
              Relation(head.arity(), std::move(derived)).Difference(head);
          if (fresh.empty()) continue;
          if (stats != nullptr) stats->derived_tuples += fresh.size();
          head = head.Union(fresh);
          auto [it, inserted] = next_delta.emplace(r->head.predicate, fresh);
          if (!inserted) it->second = it->second.Union(fresh);
        }
      }
      delta = std::move(next_delta);
    }
  }

  // Assemble the output database.
  std::vector<Relation> out_relations;
  out_relations.reserve(out_schema.size());
  for (const RelationDecl& d : out_schema.decls()) {
    out_relations.push_back(store.at(d.symbol));
  }
  return Database::Create(std::move(out_schema), std::move(out_relations));
}

}  // namespace kbt::datalog
