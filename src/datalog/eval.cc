#include "datalog/eval.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/analysis.h"

namespace kbt::datalog {

using kbt::Database;
using kbt::Relation;
using kbt::RelationDecl;
using kbt::Schema;
using kbt::Status;
using kbt::StatusOr;
using kbt::TupleView;
using kbt::Value;

namespace {

/// Hash-index over one relation: power-of-two bucket heads chained through a
/// per-row next array, keyed by the hash of the values at a fixed set of key
/// positions. Probes verify candidate rows against the key values, so bucket
/// collisions only cost a few comparisons. Build reuses the flat head/next
/// buffers, so re-indexing a fresh relation (the semi-naive delta every round)
/// allocates nothing once the buffers have grown to size.
struct HashIndex {
  static constexpr uint32_t kEnd = 0xFFFFFFFFu;

  std::vector<size_t> positions;
  std::vector<uint32_t> heads;  ///< Bucket heads (power-of-two size).
  std::vector<uint32_t> next;   ///< next[r] chains rows within a bucket.

  static size_t HashKey(const Value* values, size_t count) {
    return kbt::TupleViewHash{}(TupleView(values, count));
  }

  void Build(const Relation& rel, const std::vector<size_t>& key_positions) {
    // Row ids are 32-bit (debug-asserted; see Relation::Builder::Build).
    assert(rel.size() < UINT32_MAX && "relation exceeds 32-bit row ids");
    positions.assign(key_positions.begin(), key_positions.end());
    size_t capacity = 4;
    while (capacity < rel.size() * 2) capacity *= 2;
    heads.assign(capacity, kEnd);
    next.resize(rel.size());
    size_t mask = capacity - 1;
    key_scratch_.resize(positions.size());
    Value* key = key_scratch_.data();
    for (size_t r = 0; r < rel.size(); ++r) {
      TupleView row = rel[r];
      for (size_t i = 0; i < positions.size(); ++i) key[i] = row[positions[i]];
      size_t slot = HashKey(key, positions.size()) & mask;
      next[r] = heads[slot];
      heads[slot] = static_cast<uint32_t>(r);
    }
  }

  /// First row id of the bucket for `key`, or kEnd. Follow with next[].
  uint32_t Head(const Value* key) const {
    return heads[HashKey(key, positions.size()) & (heads.size() - 1)];
  }

 private:
  std::vector<Value> key_scratch_;  ///< Build-time key buffer.
};

/// A relation plus a version stamp so cached indexes notice updates.
struct StoredRel {
  Relation rel;
  uint64_t version = 0;
};

/// Caches hash indexes per (relation identity, key-position mask), invalidated
/// by version stamps. Masks cover argument positions 0..63; a literal with a
/// bound position ≥ 64 is marked non-indexable at compile time and handled by
/// the scan path, never by this cache. Stored relations only — semi-naive
/// deltas use each runner's own scratch index (they change every round, so
/// caching them only churned this map).
class IndexCache {
 public:
  const HashIndex& For(Symbol pred, const Relation& rel, uint64_t version,
                       uint64_t mask, const std::vector<size_t>& positions) {
    Entry& e = entries_[Key{pred, mask}];
    if (e.version != version || !e.valid) {
      e.index.Build(rel, positions);
      e.version = version;
      e.valid = true;
    }
    return e.index;
  }

 private:
  struct Key {
    Symbol pred;
    uint64_t mask;
    friend bool operator==(const Key& a, const Key& b) {
      return a.pred == b.pred && a.mask == b.mask;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return kbt::HashCombine(k.pred, k.mask);
    }
  };
  struct Entry {
    HashIndex index;
    uint64_t version = 0;
    bool valid = false;
  };
  std::unordered_map<Key, Entry, KeyHash> entries_;
};

/// A term reference resolved at compile time: either a constant value or a
/// positional variable slot.
struct SlotRef {
  bool is_const;
  Value value;    // is_const
  uint16_t slot;  // !is_const
};

/// One compiled body literal. Argument positions are split into:
///  * key positions — constants or variables bound by earlier literals; these
///    form the probe key of the hash index (no per-row re-check needed);
///  * binds — first occurrences of variables, written from the matching row;
///  * checks — repeated occurrences within the same literal, verified after the
///    binds of that row are written.
struct CompiledLiteral {
  Symbol pred = 0;
  size_t arity = 0;
  std::vector<size_t> key_positions;
  std::vector<SlotRef> key_refs;  // Parallel to key_positions.
  uint64_t key_mask = 0;
  /// False when a key position does not fit the 64-bit mask: such literals use
  /// the scan path so distinct position sets can never alias one cached index.
  bool indexable = true;
  std::vector<std::pair<size_t, uint16_t>> binds;   // position → slot to write.
  std::vector<std::pair<size_t, uint16_t>> checks;  // position → slot to equal.
};

/// A fully-bound literal reference (negatives): every argument resolvable once
/// the positive join completes.
struct CompiledAtomRef {
  Symbol pred = 0;
  std::vector<SlotRef> args;
};

struct CompiledConstraint {
  bool negated;
  SlotRef lhs, rhs;
};

/// A rule compiled to positional variable slots: no name lookups at join time.
struct CompiledRule {
  const Rule* rule = nullptr;
  size_t num_slots = 0;
  std::vector<CompiledLiteral> positives;
  std::vector<CompiledAtomRef> negatives;
  std::vector<CompiledConstraint> constraints;
  Symbol head_pred = 0;
  size_t head_arity = 0;
  std::vector<SlotRef> head;
};

StatusOr<uint16_t> SlotOf(std::unordered_map<Symbol, uint16_t>* slots,
                          Symbol var, bool* fresh) {
  auto [it, inserted] = slots->try_emplace(
      var, static_cast<uint16_t>(slots->size()));
  if (inserted && slots->size() > UINT16_MAX) {
    return Status::InvalidArgument("rule has too many variables");
  }
  *fresh = inserted;
  return it->second;
}

StatusOr<SlotRef> ResolveRef(const std::unordered_map<Symbol, uint16_t>& slots,
                             const Term& t) {
  if (t.is_constant()) return SlotRef{true, t.symbol, 0};
  auto it = slots.find(t.symbol);
  if (it == slots.end()) {
    return Status::InvalidArgument("unsafe rule: unbound variable " +
                                   kbt::NameOf(t.symbol));
  }
  return SlotRef{false, 0, it->second};
}

StatusOr<CompiledRule> Compile(const Rule& rule,
                               const std::unordered_map<Symbol, size_t>& arities) {
  CompiledRule out;
  out.rule = &rule;
  std::unordered_map<Symbol, uint16_t> slots;
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    auto ait = arities.find(l.atom.predicate);
    if (ait == arities.end()) {
      return Status::Internal("datalog eval: relation missing for " +
                              kbt::NameOf(l.atom.predicate));
    }
    if (ait->second != l.atom.args.size()) {
      return Status::InvalidArgument("arity mismatch for " +
                                     kbt::NameOf(l.atom.predicate));
    }
    CompiledLiteral cl;
    cl.pred = l.atom.predicate;
    cl.arity = l.atom.args.size();
    for (size_t pos = 0; pos < l.atom.args.size(); ++pos) {
      const Term& t = l.atom.args[pos];
      if (t.is_constant()) {
        cl.key_positions.push_back(pos);
        cl.key_refs.push_back(SlotRef{true, t.symbol, 0});
        if (pos < 64) {
          cl.key_mask |= uint64_t{1} << pos;
        } else {
          cl.indexable = false;
        }
        continue;
      }
      bool fresh = false;
      KBT_ASSIGN_OR_RETURN(uint16_t slot, SlotOf(&slots, t.symbol, &fresh));
      if (fresh) {
        cl.binds.emplace_back(pos, slot);
      } else if (std::any_of(cl.binds.begin(), cl.binds.end(),
                             [&](const auto& b) { return b.second == slot; })) {
        // Bound earlier in this same literal: verify after the row is read.
        cl.checks.emplace_back(pos, slot);
      } else {
        cl.key_positions.push_back(pos);
        cl.key_refs.push_back(SlotRef{false, 0, slot});
        if (pos < 64) {
          cl.key_mask |= uint64_t{1} << pos;
        } else {
          cl.indexable = false;
        }
      }
    }
    out.positives.push_back(std::move(cl));
  }
  for (const Literal& l : rule.body) {
    if (!l.negated) continue;
    auto ait = arities.find(l.atom.predicate);
    if (ait == arities.end()) {
      return Status::Internal("datalog eval: relation missing for " +
                              kbt::NameOf(l.atom.predicate));
    }
    if (ait->second != l.atom.args.size()) {
      return Status::InvalidArgument("arity mismatch for " +
                                     kbt::NameOf(l.atom.predicate));
    }
    CompiledAtomRef ref;
    ref.pred = l.atom.predicate;
    ref.args.reserve(l.atom.args.size());
    for (const Term& t : l.atom.args) {
      KBT_ASSIGN_OR_RETURN(SlotRef r, ResolveRef(slots, t));
      ref.args.push_back(r);
    }
    out.negatives.push_back(std::move(ref));
  }
  for (const Constraint& c : rule.constraints) {
    CompiledConstraint cc;
    cc.negated = c.negated;
    KBT_ASSIGN_OR_RETURN(cc.lhs, ResolveRef(slots, c.lhs));
    KBT_ASSIGN_OR_RETURN(cc.rhs, ResolveRef(slots, c.rhs));
    out.constraints.push_back(cc);
  }
  out.head_pred = rule.head.predicate;
  out.head_arity = rule.head.args.size();
  out.head.reserve(rule.head.args.size());
  for (const Term& t : rule.head.args) {
    KBT_ASSIGN_OR_RETURN(SlotRef r, ResolveRef(slots, t));
    out.head.push_back(r);
  }
  out.num_slots = slots.size();
  return out;
}

/// Executes one compiled rule against the store. Scratch buffers are owned by
/// the runner and reused across rounds: the join loop performs no per-tuple
/// heap allocation — rows are TupleViews into the relations' flat buffers and
/// derived heads are appended to a flat Relation::Builder.
class RuleRunner {
 public:
  RuleRunner(CompiledRule compiled,
             const std::unordered_map<Symbol, StoredRel>* store,
             IndexCache* indexes, EvalStats* stats)
      : compiled_(std::move(compiled)),
        indexes_(indexes),
        stats_(stats),
        slots_(compiled_.num_slots),
        out_(compiled_.head_arity) {
    size_t max_arity = compiled_.head_arity;
    key_bufs_.reserve(compiled_.positives.size());
    // Store entries are created up front and never erased, so StoredRel
    // addresses are stable for the whole evaluation (node-based map): resolve
    // each literal's slot once here instead of per join step.
    for (const CompiledLiteral& l : compiled_.positives) {
      max_arity = std::max(max_arity, l.arity);
      key_bufs_.emplace_back(l.key_positions.size());
      pos_rels_.push_back(&store->at(l.pred));
    }
    for (const CompiledAtomRef& n : compiled_.negatives) {
      max_arity = std::max(max_arity, n.args.size());
      neg_rels_.push_back(&store->at(n.pred));
    }
    scratch_.resize(max_arity);
  }

  Symbol head_pred() const { return compiled_.head_pred; }
  const Rule& rule() const { return *compiled_.rule; }

  /// Runs the join. When `delta` is set, the positive literal at
  /// `delta_position` is instantiated from `delta` instead of the stored
  /// relation (semi-naive differentiation). Derived tuples not already in
  /// `current_head` are collected; Take() returns them deduplicated.
  Status Run(const Relation* delta, size_t delta_position,
             const Relation* current_head) {
    delta_ = delta;
    delta_position_ = delta_position;
    current_head_ = current_head;
    delta_index_valid_ = false;  // New delta contents: rebuild on first probe.
    if (stats_ != nullptr) ++stats_->rule_evaluations;
    return Recurse(0);
  }

  /// Returns the derived head tuples accumulated since the last Take.
  Relation Take() { return out_.Build(); }

 private:
  const Relation& RelationAt(size_t i) const {
    if (delta_ != nullptr && i == delta_position_) return *delta_;
    return pos_rels_[i]->rel;
  }

  Status Recurse(size_t i) {
    if (i == compiled_.positives.size()) return Finish();
    const CompiledLiteral& lit = compiled_.positives[i];
    const Relation& rel = RelationAt(i);

    if (lit.key_positions.empty() || rel.size() <= 1 || !lit.indexable) {
      // No bound arguments, a trivially small relation, or key positions
      // beyond the index mask width: scan.
      for (size_t r = 0; r < rel.size(); ++r) {
        KBT_RETURN_IF_ERROR(TryRow(i, lit, rel[r], /*check_keys=*/true));
      }
      return Status::OK();
    }

    // Compute the probe key from constants and already-bound slots. Each
    // literal owns its buffer: the key must survive the recursive calls made
    // while iterating this literal's matches.
    Value* key = key_bufs_[i].data();
    for (size_t k = 0; k < lit.key_refs.size(); ++k) {
      const SlotRef& ref = lit.key_refs[k];
      key[k] = ref.is_const ? ref.value : slots_[ref.slot];
    }

    if (lit.key_positions.size() == lit.arity && lit.binds.empty() &&
        lit.checks.empty()) {
      // Fully bound literal: a membership test. Key positions are argument
      // positions 0..arity-1 in order, so the key is the row itself.
      if (rel.Contains(TupleView(key, lit.arity))) {
        return Recurse(i + 1);
      }
      return Status::OK();
    }

    // Probe the hash index on the bound positions.
    const HashIndex& index = IndexFor(i, lit, rel);
    for (uint32_t r = index.Head(key); r != HashIndex::kEnd; r = index.next[r]) {
      TupleView row = rel[r];
      bool match = true;
      for (size_t k = 0; k < lit.key_positions.size(); ++k) {
        if (row[lit.key_positions[k]] != key[k]) {
          match = false;
          break;
        }
      }
      if (!match) continue;  // Bucket hash collision.
      KBT_RETURN_IF_ERROR(TryRow(i, lit, row, /*check_keys=*/false));
    }
    return Status::OK();
  }

  const HashIndex& IndexFor(size_t i, const CompiledLiteral& lit,
                            const Relation& rel) {
    if (delta_ != nullptr && i == delta_position_) {
      // The delta relation changes every semi-naive round; indexing it through
      // the shared cache churned one entry per (rule, round). Each runner
      // instead owns a scratch index whose flat buffers are reused across
      // rounds — Build allocates nothing once they have grown.
      if (!delta_index_valid_) {
        delta_index_.Build(rel, lit.key_positions);
        delta_index_valid_ = true;
      }
      return delta_index_;
    }
    return indexes_->For(lit.pred, rel, pos_rels_[i]->version, lit.key_mask,
                         lit.key_positions);
  }

  Status TryRow(size_t i, const CompiledLiteral& lit, TupleView row,
                bool check_keys) {
    if (check_keys) {
      for (size_t k = 0; k < lit.key_positions.size(); ++k) {
        const SlotRef& ref = lit.key_refs[k];
        Value expected = ref.is_const ? ref.value : slots_[ref.slot];
        if (row[lit.key_positions[k]] != expected) return Status::OK();
      }
    }
    for (const auto& [pos, slot] : lit.binds) slots_[slot] = row[pos];
    for (const auto& [pos, slot] : lit.checks) {
      if (row[pos] != slots_[slot]) return Status::OK();
    }
    return Recurse(i + 1);
  }

  Value Resolve(const SlotRef& ref) const {
    return ref.is_const ? ref.value : slots_[ref.slot];
  }

  Status Finish() {
    for (const CompiledConstraint& c : compiled_.constraints) {
      if ((Resolve(c.lhs) == Resolve(c.rhs)) == c.negated) return Status::OK();
    }
    for (size_t j = 0; j < compiled_.negatives.size(); ++j) {
      const CompiledAtomRef& n = compiled_.negatives[j];
      for (size_t k = 0; k < n.args.size(); ++k) {
        scratch_[k] = Resolve(n.args[k]);
      }
      if (neg_rels_[j]->rel.Contains(TupleView(scratch_.data(), n.args.size()))) {
        return Status::OK();
      }
    }
    if (compiled_.head_arity == 0) {
      if (current_head_ == nullptr || current_head_->empty()) {
        out_.Append(TupleView());
      }
      return Status::OK();
    }
    Value* row = out_.AppendRow();
    for (size_t k = 0; k < compiled_.head_arity; ++k) {
      row[k] = Resolve(compiled_.head[k]);
    }
    if (current_head_ != nullptr &&
        current_head_->Contains(TupleView(row, compiled_.head_arity))) {
      out_.DropLastRow();  // Already derived in an earlier round.
    }
    return Status::OK();
  }

 private:
  CompiledRule compiled_;
  IndexCache* indexes_;
  EvalStats* stats_;
  std::vector<const StoredRel*> pos_rels_;  // Parallel to compiled_.positives.
  std::vector<const StoredRel*> neg_rels_;  // Parallel to compiled_.negatives.
  std::vector<Value> slots_;
  std::vector<std::vector<Value>> key_bufs_;  // One probe-key buffer per literal.
  std::vector<Value> scratch_;  // Negative-literal membership buffer (Finish only).
  Relation::Builder out_;
  const Relation* delta_ = nullptr;
  size_t delta_position_ = 0;
  const Relation* current_head_ = nullptr;
  /// Per-rule scratch index over the current delta relation (see IndexFor).
  HashIndex delta_index_;
  bool delta_index_valid_ = false;
};

}  // namespace

StatusOr<Database> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options, EvalStats* stats) {
  KBT_RETURN_IF_ERROR(CheckSafety(program));
  KBT_ASSIGN_OR_RETURN(Schema program_schema, ProgramSchema(program));
  KBT_ASSIGN_OR_RETURN(std::vector<std::vector<Symbol>> strata, Stratify(program));

  // Output schema: EDB relations first, then unseen IDB predicates.
  KBT_ASSIGN_OR_RETURN(Schema out_schema, edb.schema().Union(program_schema));

  // Working relation store with version stamps for index invalidation.
  std::unordered_map<Symbol, StoredRel> store;
  std::unordered_map<Symbol, size_t> arities;
  store.reserve(out_schema.size());
  for (const RelationDecl& d : out_schema.decls()) {
    std::optional<size_t> pos = edb.schema().PositionOf(d.symbol);
    store.emplace(d.symbol,
                  StoredRel{pos ? edb.relation_at(*pos) : Relation(d.arity), 0});
    arities.emplace(d.symbol, d.arity);
  }
  auto update_head = [&store](Symbol pred, const Relation& fresh) {
    StoredRel& s = store.at(pred);
    s.rel = s.rel.Union(fresh);
    ++s.version;
  };

  IndexCache indexes;

  for (size_t stratum = 0; stratum < strata.size(); ++stratum) {
    std::unordered_set<Symbol> stratum_preds(strata[stratum].begin(),
                                             strata[stratum].end());
    std::vector<RuleRunner> runners;
    for (const Rule& r : program.rules) {
      if (stratum_preds.count(r.head.predicate) == 0) continue;
      KBT_ASSIGN_OR_RETURN(CompiledRule compiled, Compile(r, arities));
      runners.emplace_back(std::move(compiled), &store, &indexes, stats);
    }
    if (runners.empty()) continue;

    if (!options.use_seminaive) {
      // Naive: re-derive everything until no growth.
      bool grew = true;
      while (grew) {
        grew = false;
        if (stats != nullptr) ++stats->rounds;
        for (RuleRunner& runner : runners) {
          const Relation& head = store.at(runner.head_pred()).rel;
          KBT_RETURN_IF_ERROR(runner.Run(nullptr, 0, &head));
          Relation fresh = runner.Take();
          if (!fresh.empty()) {
            if (stats != nullptr) stats->derived_tuples += fresh.size();
            update_head(runner.head_pred(), fresh);
            grew = true;
          }
        }
      }
      continue;
    }

    // Semi-naive. Round 0 evaluates every rule in full (this seeds facts and
    // captures contributions of lower strata); afterwards only rules with a
    // recursive positive literal re-fire, instantiated through the deltas.
    std::unordered_map<Symbol, Relation> delta;
    if (stats != nullptr) ++stats->rounds;
    for (RuleRunner& runner : runners) {
      const Relation& head = store.at(runner.head_pred()).rel;
      KBT_RETURN_IF_ERROR(runner.Run(nullptr, 0, &head));
      Relation fresh = runner.Take();
      if (!fresh.empty()) {
        if (stats != nullptr) stats->derived_tuples += fresh.size();
        update_head(runner.head_pred(), fresh);
        auto [it, inserted] = delta.emplace(runner.head_pred(), fresh);
        if (!inserted) it->second = it->second.Union(fresh);
      }
    }
    while (!delta.empty()) {
      if (stats != nullptr) ++stats->rounds;
      std::unordered_map<Symbol, Relation> next_delta;
      for (RuleRunner& runner : runners) {
        // One pass per recursive positive literal, fed by that literal's delta.
        size_t positive_index = 0;
        for (const Literal& l : runner.rule().body) {
          if (l.negated) continue;
          size_t this_index = positive_index++;
          auto dit = delta.find(l.atom.predicate);
          if (dit == delta.end() || stratum_preds.count(l.atom.predicate) == 0) {
            continue;
          }
          const Relation& head = store.at(runner.head_pred()).rel;
          KBT_RETURN_IF_ERROR(runner.Run(&dit->second, this_index, &head));
          Relation fresh = runner.Take();
          if (fresh.empty()) continue;
          if (stats != nullptr) stats->derived_tuples += fresh.size();
          update_head(runner.head_pred(), fresh);
          auto [it, inserted] = next_delta.emplace(runner.head_pred(), fresh);
          if (!inserted) it->second = it->second.Union(fresh);
        }
      }
      delta = std::move(next_delta);
    }
  }

  // Assemble the output database.
  std::vector<Relation> out_relations;
  out_relations.reserve(out_schema.size());
  for (const RelationDecl& d : out_schema.decls()) {
    out_relations.push_back(std::move(store.at(d.symbol).rel));
  }
  return Database::Create(std::move(out_schema), std::move(out_relations));
}

}  // namespace kbt::datalog
