#include "repl/meta.h"

#include <cstring>

#include "store/crc32.h"

namespace kbt::repl {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (data.size() - *pos < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(data[*pos + i])) << (8 * i);
  }
  *pos += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (data.size() - *pos < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i])) << (8 * i);
  }
  *pos += 8;
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("replmeta: " + what);
}

}  // namespace

std::string EncodeReplMeta(const ReplMeta& meta) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(meta.history.size()));
  for (const auto& [epoch, start_lsn] : meta.history) {
    PutU64(&payload, epoch);
    PutU64(&payload, start_lsn);
  }
  std::string out;
  out.append(kReplMetaMagic, sizeof(kReplMetaMagic));
  PutU8(&out, kReplMetaVersion);
  PutU32(&out, store::Crc32c(payload));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

StatusOr<ReplMeta> DecodeReplMeta(std::string_view bytes) {
  const size_t header = sizeof(kReplMetaMagic) + 1 + 4 + 4;
  if (bytes.size() < header) return Corrupt("truncated header");
  if (std::memcmp(bytes.data(), kReplMetaMagic, sizeof(kReplMetaMagic)) != 0) {
    return Corrupt("bad magic");
  }
  size_t pos = sizeof(kReplMetaMagic);
  const uint8_t version = static_cast<uint8_t>(bytes[pos++]);
  if (version != kReplMetaVersion) {
    return Corrupt("unknown version " + std::to_string(version));
  }
  uint32_t crc = 0;
  uint32_t payload_len = 0;
  if (!GetU32(bytes, &pos, &crc) || !GetU32(bytes, &pos, &payload_len)) {
    return Corrupt("truncated header");
  }
  if (bytes.size() - pos != payload_len) {
    return Corrupt("payload length mismatch");
  }
  std::string_view payload = bytes.substr(pos);
  if (store::Crc32c(payload) != crc) return Corrupt("payload CRC mismatch");

  size_t ppos = 0;
  uint32_t count = 0;
  if (!GetU32(payload, &ppos, &count)) return Corrupt("truncated payload");
  if (static_cast<uint64_t>(count) * 16 != payload.size() - ppos) {
    return Corrupt("entry count mismatch");
  }
  ReplMeta meta;
  meta.history.reserve(count);
  uint64_t prev_epoch = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t epoch = 0;
    uint64_t start_lsn = 0;
    if (!GetU64(payload, &ppos, &epoch) || !GetU64(payload, &ppos, &start_lsn)) {
      return Corrupt("truncated entry");
    }
    if (i > 0 && epoch <= prev_epoch) {
      return Corrupt("epochs not strictly increasing");
    }
    prev_epoch = epoch;
    meta.history.emplace_back(epoch, start_lsn);
  }
  return meta;
}

Status WriteReplMeta(store::Env* env, const std::string& dir,
                     const ReplMeta& meta) {
  const std::string path = dir + "/" + kReplMetaFileName;
  const std::string tmp = path + ".tmp";
  KBT_ASSIGN_OR_RETURN(std::unique_ptr<store::File> file,
                       env->NewTruncatedFile(tmp));
  KBT_RETURN_IF_ERROR(file->Append(EncodeReplMeta(meta)));
  KBT_RETURN_IF_ERROR(file->Sync());
  KBT_RETURN_IF_ERROR(file->Close());
  KBT_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  return env->SyncDir(dir);
}

StatusOr<ReplMeta> ReadReplMeta(store::Env* env, const std::string& dir) {
  const std::string path = dir + "/" + kReplMetaFileName;
  if (!env->FileExists(path)) {
    return Status::NotFound("no replmeta in " + dir);
  }
  KBT_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  return DecodeReplMeta(bytes);
}

}  // namespace kbt::repl
