#ifndef KBT_REPL_PRIMARY_H_
#define KBT_REPL_PRIMARY_H_

/// \file
/// The primary side of WAL-shipping replication.
///
/// A Primary attaches to a durable serve::Server and implements
/// net::ReplHandler: followers subscribe, then long-poll record batches whose
/// `after_lsn` doubles as their durable ack. Records come from an in-memory
/// feed of recent commits (filled by the store's commit listener) with a
/// disk fallback that reads the store's own wal-<C> files — a follower that
/// fell behind the feed is caught up from the log, and one that fell behind
/// the GC horizon is re-seeded from a checkpoint (chunked transfer).
///
/// Epoch fencing — both directions, so divergence is structurally impossible:
///   * A subscriber announcing an epoch *newer* than ours proves a promotion
///     happened elsewhere: this primary is deposed. It fences itself (the
///     serve::Server flips read-only) and refuses with kFenced — a deposed
///     primary never ships another record or takes another client write.
///   * A subscriber announcing an *older* epoch is checked against the
///     persisted epoch history (repl/meta.h): its log is either a prefix of
///     this lineage (safe: ship records) or contains records a deposed
///     primary committed past the fork (unsafe: re-seed from checkpoint).
///
/// Semi-sync: with PrimaryOptions.semi_sync the serve::Server's commit waiter
/// is installed; every Apply blocks — after its commit is locally durable and
/// published, outside the writer lock — until some follower acks the lsn or
/// the timeout fires. The timeout error means "durable here, on no replica
/// yet", never a rollback.
///
/// GC retention: the store's retain-lsn hook reports the minimum acked lsn
/// over subscribers, so Checkpoint() keeps every file a live follower still
/// needs (store/durable_engine.cc).
///
/// Thread-safety: handlers run on net worker threads; the commit listener and
/// retain hook run under the serve writer lock. One internal mutex guards all
/// replication state (lock order: writer lock → repl mutex, never reversed —
/// nothing here calls back into Apply).

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/cancel.h"
#include "base/status.h"
#include "net/frame.h"
#include "net/repl_handler.h"
#include "repl/meta.h"
#include "serve/server.h"
#include "store/wal.h"

#include <condition_variable>

namespace kbt::repl {

struct PrimaryOptions {
  /// Advertised in subscribe replies (diagnostics only).
  std::string node_id = "primary";
  /// Install the semi-sync commit waiter on the serve::Server.
  bool semi_sync = false;
  /// Semi-sync: how long a commit waits for a follower ack before returning
  /// the typed kDeadlineExceeded ("durable locally, unreplicated") error.
  uint64_t semi_sync_timeout_ms = 5'000;
  /// Recent commits kept in the in-memory feed; older fetches fall back to
  /// reading the store's wal files.
  size_t feed_capacity = 1024;
  /// Server-side clamp on a fetch's long-poll wait.
  uint32_t max_wait_ms = 10'000;
  /// Batch bounds when the fetch leaves them 0.
  uint32_t default_max_records = 128;
  uint32_t default_max_bytes = 1u << 20;
  /// Checkpoint transfer chunk bound (and clamp on the fetch's max_bytes).
  uint32_t ckpt_chunk_bytes = 256u * 1024;
};

class Primary : public net::ReplHandler {
 public:
  /// Attaches to `server` (borrowed; must outlive this; must be durable —
  /// kUnsupported otherwise). Loads the store's epoch history, creating one
  /// (epoch 1 starting at the current lsn) for a store never replicated
  /// before, and installs the commit listener, retain hook and (semi_sync)
  /// commit waiter. Attach before serving traffic.
  static StatusOr<std::unique_ptr<Primary>> Attach(serve::Server* server,
                                                   PrimaryOptions options);

  ~Primary() override;
  Primary(const Primary&) = delete;
  Primary& operator=(const Primary&) = delete;

  // net::ReplHandler ---------------------------------------------------------
  StatusOr<net::WireReplSubscribeReply> HandleSubscribe(
      const net::WireReplSubscribe& sub) override;
  StatusOr<net::WireReplRecords> HandleFetch(
      const net::WireReplFetch& fetch, const CancelToken* cancel) override;
  StatusOr<net::WireReplCkptChunk> HandleCkptFetch(
      const net::WireReplCkptFetch& fetch) override;

  /// The current epoch (from the persisted history).
  uint64_t epoch() const;
  /// True once a newer-epoch subscriber deposed this primary.
  bool fenced() const;

  /// Semi-sync wait for `lsn` (the installed commit waiter; public for
  /// tests). OK when some subscriber acked ≥ lsn within the timeout.
  Status WaitSemiSync(uint64_t lsn);

  /// Forgets a subscriber, releasing its GC retention pin. A dead follower
  /// otherwise pins log files forever; operators drop it explicitly.
  void DropSubscriber(const std::string& follower_id);

  struct Stats {
    uint64_t epoch = 0;
    bool fenced = false;
    uint64_t subscribers = 0;
    uint64_t min_acked_lsn = 0;  ///< 0 when no subscribers.
    uint64_t fetches = 0;
    uint64_t records_shipped = 0;
    uint64_t snapshot_seeds = 0;     ///< Subscribes answered "re-seed".
    uint64_t fenced_refusals = 0;    ///< Stale-epoch requests refused.
    uint64_t semi_sync_timeouts = 0;
  };
  Stats stats() const;

 private:
  Primary(serve::Server* server, PrimaryOptions options);

  /// Commit listener body (runs under the serve writer lock).
  void OnCommit(uint64_t lsn, const store::WalRecord& record);

  /// Records after `after_lsn` read from the store's wal files (the feed
  /// fallback). kNotFound when after_lsn is below the GC horizon.
  StatusOr<net::WireReplRecords> FetchFromDisk(uint64_t after_lsn,
                                               size_t max_records,
                                               size_t max_bytes);

  /// Marks this primary deposed: fences the serve::Server read-only and
  /// refuses all further replication traffic. Requires mu_.
  void FenceLocked(uint64_t newer_epoch);

  struct Subscriber {
    uint64_t acked_lsn = 0;
    uint64_t epoch = 0;
  };

  serve::Server* server_;
  store::DurableEngine* store_;
  const PrimaryOptions options_;

  mutable std::mutex mu_;
  ReplMeta meta_;
  bool fenced_ = false;
  /// The committed lsn mirrored by OnCommit (the store's own counter is
  /// written under the writer lock; handlers read this copy instead).
  uint64_t last_lsn_ = 0;
  /// Recent commits, contiguous, front = feed_start_lsn_ + 1.
  std::deque<store::WalRecord> feed_;
  uint64_t feed_start_lsn_ = 0;  ///< lsn *before* the feed's first record.
  std::unordered_map<std::string, Subscriber> subscribers_;
  std::condition_variable records_cv_;  ///< Signaled per commit (long-polls).
  std::condition_variable acks_cv_;     ///< Signaled per ack (semi-sync).

  uint64_t fetches_ = 0;
  uint64_t records_shipped_ = 0;
  uint64_t snapshot_seeds_ = 0;
  uint64_t fenced_refusals_ = 0;
  uint64_t semi_sync_timeouts_ = 0;
};

}  // namespace kbt::repl

#endif  // KBT_REPL_PRIMARY_H_
