#include "repl/follower.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "store/checkpoint.h"
#include "store/recovery.h"

namespace kbt::repl {

namespace {

/// Frames to skip per exchange before declaring the stream desynced (a
/// duplicated reply from a network fault echoes a stale seq).
constexpr int kMaxStaleReplies = 4;

/// Transport-level corruption (garbage bytes, desync, truncation) means THIS
/// CONNECTION is unusable — not that the replica's data diverged. Demote it
/// to kUnavailable so the caller redials instead of declaring data loss;
/// kDataLoss stays reserved for semantic verdicts (a typed refusal from the
/// primary, a checkpoint image that fails validation).
Status DemoteTransportError(Status s) {
  if (s.code() == StatusCode::kDataLoss) {
    return Status::Unavailable("connection corrupt: " +
                               std::string(s.message()));
  }
  return s;
}

}  // namespace

Follower::Follower(FollowerOptions options)
    : options_(std::move(options)),
      env_(options_.store.env != nullptr ? options_.store.env
                                         : store::Env::Default()) {}

Follower::~Follower() { Stop(); }

StatusOr<std::unique_ptr<Follower>> Follower::Open(FollowerOptions options) {
  if (!options.connect) {
    return Status::InvalidArgument("FollowerOptions.connect is required");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("FollowerOptions.dir is required");
  }
  auto follower = std::unique_ptr<Follower>(new Follower(std::move(options)));
  KBT_RETURN_IF_ERROR(follower->env_->CreateDir(follower->options_.dir));

  StatusOr<ReplMeta> meta =
      ReadReplMeta(follower->env_, follower->options_.dir);
  if (meta.ok()) {
    follower->meta_ = std::move(*meta);
  } else if (meta.status().code() != StatusCode::kNotFound) {
    return meta.status();
  }
  follower->epoch_.store(follower->meta_.epoch(), std::memory_order_release);

  // A directory with a checkpoint is prior state to resume from; without one
  // the follower is fresh and the primary will seed it.
  KBT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       follower->env_->ListDir(follower->options_.dir));
  bool has_state = false;
  for (const std::string& name : names) {
    if (store::ParseStoreLsnSuffix(name, "checkpoint").has_value()) {
      has_state = true;
      break;
    }
  }
  if (has_state) KBT_RETURN_IF_ERROR(follower->OpenServer());

  // The handshake runs synchronously: an open Follower is already a
  // consistent, caught-up-enough read replica.
  KBT_RETURN_IF_ERROR(follower->Connect());
  KBT_RETURN_IF_ERROR(follower->Subscribe());
  follower->opened_ = true;
  return follower;
}

Status Follower::OpenServer() {
  KBT_ASSIGN_OR_RETURN(
      server_, serve::Server::OpenDurable(options_.dir, options_.initial,
                                          options_.store, options_.serve));
  server_->SetReadOnly(true, options_.redirect_hint);
  applied_lsn_.store(server_->store()->lsn(), std::memory_order_release);
  return Status::OK();
}

Status Follower::Connect() {
  StatusOr<std::unique_ptr<net::Transport>> t = options_.connect();
  if (!t.ok()) return t.status();
  {
    std::lock_guard<std::mutex> lock(transport_mu_);
    transport_ = std::move(*t);
  }
  subscribed_ = false;
  return Status::OK();
}

Status Follower::Exchange(uint8_t type, const std::string& payload,
                          uint8_t expected_reply, std::string* reply_payload,
                          bool* typed) {
  *typed = false;
  std::shared_ptr<net::Transport> t;
  {
    std::lock_guard<std::mutex> lock(transport_mu_);
    t = transport_;
  }
  if (t == nullptr) return Status::Unavailable("not connected to a primary");

  const uint16_t seq = next_seq_;
  if (++next_seq_ == 0) next_seq_ = 1;  // 0 marks out-of-exchange frames.

  auto drop = [&] {
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (transport_ == t) transport_.reset();
    subscribed_ = false;
  };

  Status s = net::WriteFrame(*t, type, payload, seq);
  if (!s.ok()) {
    drop();
    return DemoteTransportError(std::move(s));
  }
  for (int stale = 0; stale <= kMaxStaleReplies; ++stale) {
    uint8_t rtype = 0;
    std::string rpayload;
    uint16_t rseq = 0;
    s = net::ReadFrame(*t, &rtype, &rpayload, &rseq);
    if (!s.ok()) {
      drop();
      return DemoteTransportError(std::move(s));
    }
    // A reply carrying a previous exchange's seq is a duplicated frame
    // (retransmission-style fault): discard it and keep reading.
    if (rseq != seq) continue;
    if (rtype == static_cast<uint8_t>(net::FrameType::kError)) {
      StatusOr<net::WireError> err = net::DecodeError(rpayload);
      if (!err.ok()) {
        drop();
        return DemoteTransportError(err.status());
      }
      *typed = true;
      return net::StatusFromError(*err);
    }
    if (rtype != expected_reply) {
      drop();
      return Status::Unavailable("unexpected reply frame type " +
                                 std::to_string(rtype));
    }
    *reply_payload = std::move(rpayload);
    return Status::OK();
  }
  drop();
  return Status::Unavailable("no reply matched the request seq");
}

Status Follower::Subscribe() {
  net::WireReplSubscribe sub;
  sub.follower_id = options_.node_id;
  sub.has_state = server_ != nullptr ? 1 : 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    sub.epoch = meta_.epoch();
  }
  sub.start_lsn =
      server_ != nullptr ? applied_lsn_.load(std::memory_order_acquire) : 0;

  std::string payload;
  bool typed = false;
  KBT_RETURN_IF_ERROR(
      Exchange(static_cast<uint8_t>(net::FrameType::kReplSubscribe),
               net::EncodeReplSubscribe(sub),
               static_cast<uint8_t>(net::FrameType::kReplSubscribeReply),
               &payload, &typed));
  StatusOr<net::WireReplSubscribeReply> decoded =
      net::DecodeReplSubscribeReply(payload);
  if (!decoded.ok()) {
    std::lock_guard<std::mutex> lock(transport_mu_);
    transport_.reset();
    return DemoteTransportError(decoded.status());
  }
  net::WireReplSubscribeReply reply = std::move(*decoded);
  if (reply.epoch_history.empty() ||
      reply.epoch_history.back().first != reply.epoch) {
    return Status::DataLoss("subscribe reply epoch history is inconsistent");
  }

  if (reply.need_snapshot != 0) {
    if (opened_ && !options_.reseed_after_open) {
      // The embedder holds server() somewhere long-lived; swapping it out
      // under them is worse than stopping. kLost here means "restart me".
      return Status::DataLoss(
          "catch-up needs a re-seed but reseed_after_open is off; restart "
          "the follower");
    }
    KBT_RETURN_IF_ERROR(InstallSnapshot(reply.snapshot_lsn));
  } else if (server_ == nullptr) {
    return Status::DataLoss(
        "primary offered records to a follower with no state");
  }

  // Adopt the primary's lineage durably before applying anything under it.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    meta_.history = reply.epoch_history;
    KBT_RETURN_IF_ERROR(WriteReplMeta(env_, options_.dir, meta_));
    primary_lsn_ = reply.primary_lsn;
  }
  epoch_.store(reply.epoch, std::memory_order_release);
  server_->SetReadOnly(true, options_.redirect_hint);
  subscribed_ = true;
  return Status::OK();
}

Status Follower::InstallSnapshot(uint64_t snapshot_lsn) {
  std::string image;
  uint64_t total = 0;
  do {
    net::WireReplCkptFetch fetch;
    fetch.lsn = snapshot_lsn;
    fetch.offset = image.size();
    std::string payload;
    bool typed = false;
    KBT_RETURN_IF_ERROR(
        Exchange(static_cast<uint8_t>(net::FrameType::kReplCkptFetch),
                 net::EncodeReplCkptFetch(fetch),
                 static_cast<uint8_t>(net::FrameType::kReplCkptChunk),
                 &payload, &typed));
    StatusOr<net::WireReplCkptChunk> decoded =
        net::DecodeReplCkptChunk(payload);
    if (!decoded.ok()) {
      std::lock_guard<std::mutex> lock(transport_mu_);
      transport_.reset();
      return DemoteTransportError(decoded.status());
    }
    net::WireReplCkptChunk chunk = std::move(*decoded);
    if (chunk.lsn != snapshot_lsn || chunk.offset != image.size()) {
      // A mid-transfer GC or primary restart can reshuffle chunks; retrying
      // the whole transfer on a fresh subscribe is always safe.
      return Status::Unavailable("checkpoint chunk out of order; retrying");
    }
    if (chunk.bytes.empty() && chunk.total_size > image.size()) {
      return Status::Unavailable("empty checkpoint chunk mid-transfer");
    }
    image.append(chunk.bytes);
    total = chunk.total_size;
  } while (image.size() < total);

  // Validate the whole image *before* touching local state: a corrupted
  // transfer must not cost the store we already have.
  KBT_ASSIGN_OR_RETURN(store::CheckpointContents contents,
                       store::DecodeCheckpoint(image));
  if (contents.lsn != snapshot_lsn) {
    return Status::DataLoss("checkpoint image lsn " +
                            std::to_string(contents.lsn) +
                            " does not match offered lsn " +
                            std::to_string(snapshot_lsn));
  }

  // Replace local state: close the store, clear superseded files, land the
  // new checkpoint atomically, recover from it.
  server_.reset();
  KBT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       env_->ListDir(options_.dir));
  for (const std::string& name : names) {
    const bool old_store_file =
        store::ParseStoreLsnSuffix(name, "checkpoint").has_value() ||
        store::ParseStoreLsnSuffix(name, "wal").has_value() ||
        name.ends_with(".tmp");
    if (old_store_file) {
      KBT_RETURN_IF_ERROR(env_->RemoveFile(options_.dir + "/" + name));
    }
  }
  const std::string path =
      options_.dir + "/" + store::CheckpointFileName(snapshot_lsn);
  const std::string tmp = path + ".tmp";
  KBT_ASSIGN_OR_RETURN(std::unique_ptr<store::File> file,
                       env_->NewTruncatedFile(tmp));
  KBT_RETURN_IF_ERROR(file->Append(image));
  KBT_RETURN_IF_ERROR(file->Sync());
  KBT_RETURN_IF_ERROR(file->Close());
  KBT_RETURN_IF_ERROR(env_->RenameFile(tmp, path));
  KBT_RETURN_IF_ERROR(env_->SyncDir(options_.dir));

  KBT_RETURN_IF_ERROR(OpenServer());
  if (applied_lsn_.load(std::memory_order_acquire) != snapshot_lsn) {
    return Status::DataLoss("recovered lsn does not match installed snapshot");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++snapshot_installs_;
  }
  return Status::OK();
}

Status Follower::PollOnce() {
  const FollowerState state = state_.load(std::memory_order_acquire);
  if (state == FollowerState::kLost) {
    return Status::DataLoss("follower has diverged; replication is over");
  }
  if (state == FollowerState::kPromoted) {
    return Status::InvalidArgument("follower was promoted; it leads now");
  }

  {
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (transport_ == nullptr) subscribed_ = false;
  }
  bool connected;
  {
    std::lock_guard<std::mutex> lock(transport_mu_);
    connected = transport_ != nullptr;
  }
  if (!connected) {
    Status c = Connect();
    if (!c.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++reconnects_;
      }
      Backoff();
      return Status::OK();  // Survivable; retry next round.
    }
  }
  if (!subscribed_) {
    Status s = Subscribe();
    if (!s.ok()) {
      if (s.code() == StatusCode::kDataLoss) return Lost(std::move(s));
      // kFenced (the peer is deposed, or has not caught up to a promotion),
      // transport errors, a missing checkpoint: all survivable — back off
      // and retry, possibly against a different primary next round.
      Backoff();
      return Status::OK();
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++resubscribes_;
  }

  net::WireReplFetch fetch;
  fetch.follower_id = options_.node_id;
  fetch.epoch = epoch_.load(std::memory_order_acquire);
  fetch.after_lsn = applied_lsn_.load(std::memory_order_acquire);
  fetch.wait_ms = options_.poll_wait_ms;
  std::string payload;
  bool typed = false;
  Status s = Exchange(static_cast<uint8_t>(net::FrameType::kReplFetch),
                      net::EncodeReplFetch(fetch),
                      static_cast<uint8_t>(net::FrameType::kReplRecords),
                      &payload, &typed);
  if (!s.ok()) {
    if (typed) {
      switch (s.code()) {
        case StatusCode::kFenced:
          // Our epoch is stale (a promotion we have not adopted) or the peer
          // is deposed. Resubscribing sorts out which: it either hands us
          // the new lineage or keeps refusing while we back off.
          subscribed_ = false;
          break;
        case StatusCode::kNotFound:
          // Fell below the GC horizon: resubscribe, which will re-seed.
          subscribed_ = false;
          break;
        case StatusCode::kInvalidArgument:
          // The primary restarted and forgot us: subscribe again.
          subscribed_ = false;
          break;
        case StatusCode::kDataLoss:
          return Lost(std::move(s));
        default:
          break;
      }
    }
    Backoff();
    return Status::OK();
  }
  StatusOr<net::WireReplRecords> batch = net::DecodeReplRecords(payload);
  if (!batch.ok()) {
    // A malformed batch after a CRC-valid frame: drop the connection and
    // resync with a fresh exchange.
    std::lock_guard<std::mutex> lock(transport_mu_);
    transport_.reset();
    subscribed_ = false;
    Backoff();
    return Status::OK();
  }
  return ApplyBatch(*batch);
}

Status Follower::ApplyBatch(const net::WireReplRecords& batch) {
  const uint64_t my_epoch = epoch_.load(std::memory_order_acquire);
  if (batch.epoch < my_epoch) {
    // A deposed primary's parting shots. Refuse the whole batch unapplied
    // and drop the connection — this peer is behind the lineage we adopted.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stale_batches_refused_;
    }
    std::lock_guard<std::mutex> lock(transport_mu_);
    transport_.reset();
    subscribed_ = false;
    return Status::OK();
  }
  if (batch.epoch > my_epoch) {
    // A promotion we have not adopted: resubscribe to persist the new
    // lineage before applying records committed under it.
    subscribed_ = false;
    return Status::OK();
  }

  const uint64_t expect = applied_lsn_.load(std::memory_order_acquire) + 1;
  if (!batch.records.empty() && batch.start_lsn > expect) {
    // A gap cannot be applied; resubscribe to re-plan catch-up.
    subscribed_ = false;
    return Status::OK();
  }
  size_t applied = 0;
  if (!batch.records.empty()) {
    const uint64_t skip64 = expect - batch.start_lsn;
    if (skip64 < batch.records.size()) {
      for (size_t i = static_cast<size_t>(skip64); i < batch.records.size();
           ++i) {
        store::WalRecord record;
        record.kind = static_cast<store::WalRecordKind>(batch.records[i].first);
        record.payload = batch.records[i].second;
        StatusOr<uint64_t> version = server_->ApplyReplicated(record);
        if (!version.ok()) {
          // A record the primary committed failed to commit here: the stores
          // can no longer be bit-identical. Terminal — reopening the
          // follower (fresh recovery) is the way back.
          return Lost(version.status());
        }
        applied_lsn_.store(server_->store()->lsn(), std::memory_order_release);
        ++applied;
      }
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  primary_lsn_ = batch.primary_lsn;
  if (applied > 0) {
    ++batches_applied_;
    records_applied_ += applied;
  }
  return Status::OK();
}

Status Follower::Lost(Status why) {
  state_.store(FollowerState::kLost, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  return why;
}

void Follower::Backoff() {
  if (!options_.sleep_on_backoff) return;
  if (stop_.load(std::memory_order_acquire)) return;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(options_.reconnect_backoff_ms));
}

Status Follower::Start() {
  if (pull_thread_.joinable()) return Status::OK();
  if (state_.load(std::memory_order_acquire) == FollowerState::kLost) {
    return Status::DataLoss("follower has diverged; reopen to re-seed");
  }
  if (state_.load(std::memory_order_acquire) == FollowerState::kPromoted) {
    return Status::InvalidArgument("follower was promoted; it leads now");
  }
  stop_.store(false, std::memory_order_release);
  state_.store(FollowerState::kStreaming, std::memory_order_release);
  pull_thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      if (!PollOnce().ok()) break;
    }
    FollowerState expected = FollowerState::kStreaming;
    state_.compare_exchange_strong(expected, FollowerState::kIdle);
  });
  return Status::OK();
}

void Follower::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    // Unblock a parked long-poll; the transport survives for the next round.
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (transport_ != nullptr) transport_->Shutdown();
  }
  if (pull_thread_.joinable()) pull_thread_.join();
  {
    // The shut-down transport is dead either way; drop it so a later
    // Start()/PollOnce dials fresh.
    std::lock_guard<std::mutex> lock(transport_mu_);
    transport_.reset();
  }
  subscribed_ = false;
  FollowerState expected = FollowerState::kStreaming;
  state_.compare_exchange_strong(expected, FollowerState::kIdle);
}

StatusOr<uint64_t> Follower::Promote() {
  Stop();
  if (state_.load(std::memory_order_acquire) == FollowerState::kLost) {
    return Status::DataLoss("cannot promote a diverged follower");
  }
  if (server_ == nullptr) {
    return Status::InvalidArgument("cannot promote before any state exists");
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  const uint64_t new_epoch = meta_.epoch() + 1;
  meta_.history.emplace_back(new_epoch,
                             applied_lsn_.load(std::memory_order_acquire));
  Status persisted = WriteReplMeta(env_, options_.dir, meta_);
  if (!persisted.ok()) {
    // The fork point must be durable before any write is accepted; without
    // it a later reconciliation could not place this lineage.
    meta_.history.pop_back();
    return persisted;
  }
  epoch_.store(new_epoch, std::memory_order_release);
  server_->SetReadOnly(false);
  state_.store(FollowerState::kPromoted, std::memory_order_release);
  return new_epoch;
}

Follower::Stats Follower::stats() const {
  Stats s;
  s.state = state_.load(std::memory_order_acquire);
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.applied_lsn = applied_lsn_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.primary_lsn = primary_lsn_;
  s.batches_applied = batches_applied_;
  s.records_applied = records_applied_;
  s.reconnects = reconnects_;
  s.resubscribes = resubscribes_;
  s.snapshot_installs = snapshot_installs_;
  s.stale_batches_refused = stale_batches_refused_;
  return s;
}

}  // namespace kbt::repl
