#ifndef KBT_REPL_FOLLOWER_H_
#define KBT_REPL_FOLLOWER_H_

/// \file
/// The replica side of WAL-shipping replication.
///
/// A Follower owns a durable serve::Server of its own: it subscribes to a
/// primary over any net::Transport, pulls record batches, and commits each
/// one through serve::Server::ApplyReplicated — the exact replay path crash
/// recovery uses — so its state is bit-identical to the primary's at every
/// acked lsn *by construction*, and every applied record is on the
/// follower's own WAL before the next fetch acks it. Reads are served from
/// the follower's published snapshots like any server's; writes are refused
/// with a typed kReadOnly error carrying a redirect hint to the primary.
///
/// Catch-up: the subscribe reply says whether the follower's position is
/// still fetchable from the primary's log (stream records) or below its GC
/// horizon / fresh / forked by a promotion it missed (install a checkpoint —
/// chunked transfer — then stream from there). Installing a snapshot
/// replaces the follower's serve::Server; sessions on the old one must be
/// recreated.
///
/// Fencing: the follower persists the primary's epoch history at subscribe
/// and stamps its adopted epoch on every fetch. A batch from an older epoch
/// (a deposed primary's parting shots) is refused without applying anything;
/// the primary symmetrically refuses fetches from epochs it has superseded.
///
/// Promote() ends replication: it appends a new epoch (starting at the
/// applied lsn) to the persisted history *before* accepting writes, so any
/// later primary can place this lineage's fork point exactly.
///
/// Driving it: Start() spawns a pull thread (production); tests call
/// PollOnce() directly for deterministic single-threaded rounds. Transient
/// trouble (connection died, primary restarted, fell below the horizon)
/// heals inside PollOnce via reconnect/resubscribe; only divergence — real
/// data loss — is terminal (state kLost).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "base/status.h"
#include "net/frame.h"
#include "net/transport.h"
#include "rel/knowledgebase.h"
#include "repl/meta.h"
#include "serve/server.h"
#include "store/durable_engine.h"

namespace kbt::repl {

struct FollowerOptions {
  /// This follower's identity at the primary (subscription key).
  std::string node_id = "replica";
  /// The follower's own store directory.
  std::string dir;
  /// Schema seed for a fresh store; ignored once the first checkpoint is
  /// installed (recovery takes over).
  Knowledgebase initial{Schema()};
  store::StoreOptions store;
  serve::ServerOptions serve;
  /// (Re)connects to the primary; each call is one fresh connection. Tests
  /// hand in pipe/fault transports, production wraps net::DialTcp.
  std::function<StatusOr<std::unique_ptr<net::Transport>>()> connect;
  /// Long-poll window per fetch (server clamps its own bound).
  uint32_t poll_wait_ms = 1'000;
  /// Pause between reconnect/resubscribe attempts.
  uint64_t reconnect_backoff_ms = 50;
  /// Advertised to writing clients in kReadOnly rejections ("host:port" of
  /// the primary; empty = no hint).
  std::string redirect_hint;
  /// Test hook: false makes backoffs immediate (deterministic runs).
  bool sleep_on_backoff = true;
  /// When false, a re-seed demanded *after* Open (falling below the GC
  /// horizon mid-life) is terminal (kLost) instead of replacing server_ in
  /// place — for embedders that hand server() to something long-lived (the
  /// net front) and would rather restart than chase a swapped pointer. The
  /// initial catch-up inside Open may always install a snapshot.
  bool reseed_after_open = true;
};

enum class FollowerState : uint8_t {
  kIdle = 0,       ///< Opened/stopped; not pulling.
  kStreaming = 1,  ///< Pull thread running.
  kLost = 2,       ///< Diverged from the primary; replication is over.
  kPromoted = 3,   ///< Promote() succeeded; this store now leads.
};

class Follower {
 public:
  /// Connects, subscribes, and catches up (installing a checkpoint when the
  /// primary says so) — synchronously, so an open Follower is a consistent
  /// read replica before any thread starts. Fails on any handshake error;
  /// transient errors *after* open heal inside the pull loop instead.
  static StatusOr<std::unique_ptr<Follower>> Open(FollowerOptions options);

  ~Follower();
  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Spawns the pull thread. Idempotent while running.
  Status Start();

  /// Stops and joins the pull thread (unblocking a parked long-poll via
  /// transport shutdown). Idempotent.
  void Stop();

  /// One fetch→apply round on the calling thread, including reconnect and
  /// resubscribe repair. Returns OK for everything survivable (the next call
  /// retries); a terminal status — divergence, a local commit failure —
  /// flips the state to kLost and is returned. Not thread-safe against
  /// Start()'s thread; use one driving mode at a time.
  Status PollOnce();

  /// Failover: stop pulling, persist a new epoch beginning at the applied
  /// lsn, then open for writes. Returns the new epoch. The durable order —
  /// history first, writes after — is what lets any later primary find this
  /// fork point.
  StatusOr<uint64_t> Promote();

  /// The follower's own server (reads; writes get kReadOnly until Promote).
  /// Replaced when a re-seed installs a fresh checkpoint — do not cache
  /// across PollOnce calls.
  serve::Server* server() { return server_.get(); }

  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  FollowerState state() const {
    return state_.load(std::memory_order_acquire);
  }

  struct Stats {
    FollowerState state = FollowerState::kIdle;
    uint64_t epoch = 0;
    uint64_t applied_lsn = 0;
    /// The primary's lsn as of the last batch (lag = primary_lsn - applied).
    uint64_t primary_lsn = 0;
    uint64_t batches_applied = 0;
    uint64_t records_applied = 0;
    uint64_t reconnects = 0;
    uint64_t resubscribes = 0;
    uint64_t snapshot_installs = 0;
    /// Batches from a deposed primary's stale epoch, refused unapplied.
    uint64_t stale_batches_refused = 0;
  };
  Stats stats() const;

 private:
  explicit Follower(FollowerOptions options);

  /// One request–reply over the pinned connection. A transport-level failure
  /// drops the connection (PollOnce redials); a typed error frame becomes
  /// its Status with *typed = true.
  Status Exchange(uint8_t type, const std::string& payload,
                  uint8_t expected_reply, std::string* reply_payload,
                  bool* typed);

  /// Dials options_.connect and pins the transport.
  Status Connect();
  /// Subscribe over the pinned transport: adopt the primary's epoch history
  /// (persisted), install a checkpoint when told to, sync applied_lsn_.
  Status Subscribe();
  /// Chunked checkpoint download + atomic install + store reopen.
  Status InstallSnapshot(uint64_t snapshot_lsn);
  /// (Re)opens server_ over the follower's store directory, read-only.
  Status OpenServer();
  Status ApplyBatch(const net::WireReplRecords& batch);
  void Backoff();
  /// Terminal failure: flip to kLost and stop pulling.
  Status Lost(Status why);

  FollowerOptions options_;
  store::Env* env_;

  std::unique_ptr<serve::Server> server_;

  /// Pinned connection; shared so Stop() can Shutdown() it (thread-safe on
  /// the transport) while the pull thread blocks inside Exchange.
  std::mutex transport_mu_;
  std::shared_ptr<net::Transport> transport_;
  bool subscribed_ = false;  ///< Pull-thread-only (like seq_).
  bool opened_ = false;      ///< Open() finished (re-seed policy boundary).
  uint16_t next_seq_ = 1;

  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<FollowerState> state_{FollowerState::kIdle};
  std::atomic<bool> stop_{false};
  std::thread pull_thread_;

  mutable std::mutex stats_mu_;
  ReplMeta meta_;  // Guarded by stats_mu_ after Open.
  uint64_t primary_lsn_ = 0;
  uint64_t batches_applied_ = 0;
  uint64_t records_applied_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t resubscribes_ = 0;
  uint64_t snapshot_installs_ = 0;
  uint64_t stale_batches_refused_ = 0;
};

}  // namespace kbt::repl

#endif  // KBT_REPL_FOLLOWER_H_
