#ifndef KBT_REPL_META_H_
#define KBT_REPL_META_H_

/// \file
/// The replication epoch-history file: the one piece of durable state the
/// replication layer adds to a store directory.
///
/// An *epoch* names one primary's reign; every promotion starts a new one.
/// The history records, oldest first, each epoch together with the lsn at
/// which it began — the full promotion lineage of the data the store holds.
/// The current epoch is the last entry (an empty history reads as epoch 0:
/// "never attached to any replication group").
///
/// The lineage is what makes divergence *structurally* detectable instead of
/// hoped-away: when a subscriber announces (epoch e, lsn s), the primary
/// finds the first history entry with epoch > e. If s is at or below that
/// entry's start lsn, the subscriber's log is a prefix of this lineage and
/// record shipping from s is safe; if s is beyond it, the subscriber
/// committed records under a deposed primary that this lineage never adopted
/// — those records are not a prefix of anything here, and the follower must
/// be re-seeded (or refused), never "caught up" across the fork.
///
/// File layout (little-endian):
///
///   magic "KBTREPL" (7 bytes), u8 version,
///   u32 crc32c(payload), u32 payload_len,
///   payload: u32 entry_count, entry_count × (u64 epoch, u64 start_lsn)
///
/// Writes are crash-atomic (tmp + sync + rename + dir sync), same as
/// checkpoints: a crash leaves the old or the new history, never a torn one.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"
#include "store/file.h"

namespace kbt::repl {

inline constexpr char kReplMetaFileName[] = "replmeta";
inline constexpr char kReplMetaMagic[7] = {'K', 'B', 'T', 'R', 'E', 'P', 'L'};
inline constexpr uint8_t kReplMetaVersion = 1;

struct ReplMeta {
  /// (epoch, start_lsn) per promotion, oldest first, epochs strictly
  /// increasing. Empty = epoch 0, never part of a replication group.
  std::vector<std::pair<uint64_t, uint64_t>> history;

  /// The current epoch (the last entry's; 0 when empty).
  uint64_t epoch() const { return history.empty() ? 0 : history.back().first; }

  friend bool operator==(const ReplMeta& a, const ReplMeta& b) {
    return a.history == b.history;
  }
};

/// The file image of `meta`.
std::string EncodeReplMeta(const ReplMeta& meta);

/// Parses a replmeta file image. Any defect — bad magic/version/CRC,
/// truncation, trailing bytes, non-increasing epochs — is kDataLoss.
StatusOr<ReplMeta> DecodeReplMeta(std::string_view bytes);

/// Durably (crash-atomically) writes `meta` as `dir`/replmeta.
Status WriteReplMeta(store::Env* env, const std::string& dir,
                     const ReplMeta& meta);

/// Reads `dir`/replmeta. kNotFound when the file does not exist (a store
/// that was never part of a replication group).
StatusOr<ReplMeta> ReadReplMeta(store::Env* env, const std::string& dir);

}  // namespace kbt::repl

#endif  // KBT_REPL_META_H_
