#include "repl/primary.h"

#include <algorithm>
#include <chrono>

#include "store/recovery.h"

namespace kbt::repl {

namespace {

/// Smallest wal-<lsn> and largest checkpoint-<lsn> in a store directory.
/// The wal minimum is the GC horizon: records with lsn > horizon are
/// fetchable from files; the checkpoint maximum is what a re-seeding
/// follower installs.
struct DirScan {
  uint64_t horizon_lsn = 0;
  uint64_t snapshot_lsn = 0;
  bool any_wal = false;
  bool any_checkpoint = false;
};

DirScan ScanStoreDir(const std::vector<std::string>& names) {
  DirScan scan;
  for (const std::string& name : names) {
    std::optional<uint64_t> wal = store::ParseStoreLsnSuffix(name, "wal");
    if (wal.has_value() && (!scan.any_wal || *wal < scan.horizon_lsn)) {
      scan.horizon_lsn = *wal;
      scan.any_wal = true;
    }
    std::optional<uint64_t> ckpt =
        store::ParseStoreLsnSuffix(name, "checkpoint");
    if (ckpt.has_value() &&
        (!scan.any_checkpoint || *ckpt > scan.snapshot_lsn)) {
      scan.snapshot_lsn = *ckpt;
      scan.any_checkpoint = true;
    }
  }
  return scan;
}

}  // namespace

Primary::Primary(serve::Server* server, PrimaryOptions options)
    : server_(server), store_(server->store()), options_(std::move(options)) {}

Primary::~Primary() {
  // The hooks capture `this`; detach them so a server outliving its Primary
  // never calls into freed state.
  if (store_ != nullptr) {
    store_->SetCommitListener(nullptr);
    store_->SetRetainLsnHook(nullptr);
  }
  server_->SetCommitWaiter(nullptr);
}

StatusOr<std::unique_ptr<Primary>> Primary::Attach(serve::Server* server,
                                                   PrimaryOptions options) {
  store::DurableEngine* store = server->store();
  if (store == nullptr) {
    return Status::Unsupported(
        "replication needs a durable server (no WAL to ship in-memory)");
  }
  auto primary =
      std::unique_ptr<Primary>(new Primary(server, std::move(options)));

  StatusOr<ReplMeta> meta = ReadReplMeta(store->env(), store->dir());
  if (meta.ok()) {
    primary->meta_ = std::move(*meta);
  } else if (meta.status().code() == StatusCode::kNotFound) {
    // First time this store leads a replication group: epoch 1 begins at the
    // current committed lsn.
    primary->meta_.history = {{1, store->lsn()}};
    KBT_RETURN_IF_ERROR(
        WriteReplMeta(store->env(), store->dir(), primary->meta_));
  } else {
    return meta.status();
  }

  primary->last_lsn_ = store->lsn();
  primary->feed_start_lsn_ = primary->last_lsn_;

  Primary* p = primary.get();
  store->SetCommitListener([p](uint64_t lsn, const store::WalRecord& record) {
    p->OnCommit(lsn, record);
  });
  store->SetRetainLsnHook([p]() -> std::optional<uint64_t> {
    std::lock_guard<std::mutex> lock(p->mu_);
    if (p->subscribers_.empty()) return std::nullopt;
    uint64_t min_acked = UINT64_MAX;
    for (const auto& entry : p->subscribers_) {
      min_acked = std::min(min_acked, entry.second.acked_lsn);
    }
    return min_acked;
  });
  if (primary->options_.semi_sync) {
    server->SetCommitWaiter([p](uint64_t lsn) { return p->WaitSemiSync(lsn); });
  }
  return primary;
}

void Primary::OnCommit(uint64_t lsn, const store::WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  last_lsn_ = lsn;
  feed_.push_back(record);
  while (feed_.size() > options_.feed_capacity) {
    feed_.pop_front();
    ++feed_start_lsn_;
  }
  records_cv_.notify_all();
}

void Primary::FenceLocked(uint64_t newer_epoch) {
  fenced_ = true;
  // A deposed primary stops taking client writes immediately; it has no
  // redirect to offer (the promotion happened away from it).
  server_->SetReadOnly(true, "");
  (void)newer_epoch;
}

StatusOr<net::WireReplSubscribeReply> Primary::HandleSubscribe(
    const net::WireReplSubscribe& sub) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sub.epoch > meta_.epoch()) {
    // The subscriber saw a newer epoch than ours: a promotion happened while
    // we were away. This primary is deposed — fence before refusing.
    FenceLocked(sub.epoch);
    ++fenced_refusals_;
    return Status::Fenced("primary at epoch " + std::to_string(meta_.epoch()) +
                          " deposed by subscriber at epoch " +
                          std::to_string(sub.epoch));
  }
  if (fenced_) {
    ++fenced_refusals_;
    return Status::Fenced("this primary is deposed; find the new one");
  }

  KBT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       store_->env()->ListDir(store_->dir()));
  const DirScan scan = ScanStoreDir(names);

  net::WireReplSubscribeReply reply;
  reply.primary_id = options_.node_id;
  reply.epoch = meta_.epoch();
  reply.primary_lsn = last_lsn_;
  reply.horizon_lsn = scan.horizon_lsn;
  reply.epoch_history = meta_.history;

  bool need_snapshot = false;
  if (sub.has_state == 0) {
    // A fresh follower always seeds from a checkpoint: the primary's own
    // initial state (checkpoint-0, or later after GC) is not in any WAL.
    need_snapshot = true;
  } else {
    // Safety rule against the epoch history: the subscriber's log is a safe
    // prefix iff its lsn does not extend past the first promotion its epoch
    // did not witness.
    auto fork = std::find_if(
        meta_.history.begin(), meta_.history.end(),
        [&](const auto& entry) { return entry.first > sub.epoch; });
    if (fork == meta_.history.end()) {
      // Same epoch as us: a subscriber ahead of the primary holds records
      // this lineage never committed. No re-seed can reconcile silently —
      // surface it as the data loss it is.
      if (sub.start_lsn > last_lsn_) {
        return Status::DataLoss(
            "follower " + sub.follower_id + " at lsn " +
            std::to_string(sub.start_lsn) + " is ahead of primary lsn " +
            std::to_string(last_lsn_) + " in the same epoch " +
            std::to_string(sub.epoch) + "; refusing to diverge");
      }
    } else if (sub.start_lsn > fork->second) {
      // The subscriber committed under a deposed primary past the fork at
      // lsn fork->second; those records were never adopted here. Re-seed.
      need_snapshot = true;
    }
    if (!need_snapshot && sub.start_lsn < scan.horizon_lsn) {
      // Safe prefix, but the records it needs were garbage-collected.
      need_snapshot = true;
    }
  }

  if (need_snapshot) {
    if (!scan.any_checkpoint) {
      return Status::NotFound("no checkpoint in " + store_->dir() +
                              " to seed follower " + sub.follower_id);
    }
    reply.need_snapshot = 1;
    reply.snapshot_lsn = scan.snapshot_lsn;
    ++snapshot_seeds_;
  }

  // Register (or reset) the subscriber. Its ack starts at the lsn it will
  // resume from, which pins the files it still needs against GC.
  Subscriber s;
  s.acked_lsn = need_snapshot ? reply.snapshot_lsn : sub.start_lsn;
  s.epoch = meta_.epoch();
  subscribers_[sub.follower_id] = s;
  acks_cv_.notify_all();
  return reply;
}

StatusOr<net::WireReplRecords> Primary::HandleFetch(
    const net::WireReplFetch& fetch, const CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  ++fetches_;
  if (fetch.epoch > meta_.epoch()) {
    FenceLocked(fetch.epoch);
    ++fenced_refusals_;
    return Status::Fenced("primary deposed by fetch at epoch " +
                          std::to_string(fetch.epoch));
  }
  if (fenced_) {
    ++fenced_refusals_;
    return Status::Fenced("this primary is deposed; find the new one");
  }
  if (fetch.epoch < meta_.epoch()) {
    ++fenced_refusals_;
    return Status::Fenced("fetch at stale epoch " +
                          std::to_string(fetch.epoch) + " (current " +
                          std::to_string(meta_.epoch()) + "); resubscribe");
  }
  auto it = subscribers_.find(fetch.follower_id);
  if (it == subscribers_.end()) {
    return Status::InvalidArgument("unknown follower " + fetch.follower_id +
                                   "; subscribe first");
  }

  // The fetch position is the durable ack: everything ≤ after_lsn is on the
  // follower's own WAL. This drives semi-sync waits and the GC pin.
  if (fetch.after_lsn > it->second.acked_lsn) {
    it->second.acked_lsn = fetch.after_lsn;
    acks_cv_.notify_all();
  }

  // Long-poll: park until records exist, the wait budget runs out, or the
  // server drains. Short slices keep the drain token's latency bounded even
  // though a commit notifies the condvar directly.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::min<uint32_t>(fetch.wait_ms,
                                                   options_.max_wait_ms));
  while (last_lsn_ <= fetch.after_lsn && !fenced_) {
    if (cancel != nullptr && cancel->cancelled()) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    records_cv_.wait_for(
        lock, std::min<std::chrono::steady_clock::duration>(
                  deadline - now, std::chrono::milliseconds(20)));
  }

  const size_t max_records = std::min<size_t>(
      fetch.max_records != 0 ? fetch.max_records : options_.default_max_records,
      net::kMaxReplBatch);
  const size_t max_bytes =
      fetch.max_bytes != 0 ? fetch.max_bytes : options_.default_max_bytes;

  net::WireReplRecords reply;
  reply.epoch = meta_.epoch();
  reply.start_lsn = fetch.after_lsn + 1;
  reply.primary_lsn = last_lsn_;
  if (last_lsn_ <= fetch.after_lsn) return reply;  // Empty poll.

  if (fetch.after_lsn >= feed_start_lsn_) {
    // The records are still in the in-memory feed.
    size_t idx = fetch.after_lsn - feed_start_lsn_;
    size_t bytes = 0;
    while (idx < feed_.size() && reply.records.size() < max_records) {
      const store::WalRecord& r = feed_[idx];
      if (!reply.records.empty() && bytes + r.payload.size() > max_bytes) break;
      reply.records.emplace_back(static_cast<uint8_t>(r.kind), r.payload);
      bytes += r.payload.size();
      ++idx;
    }
    records_shipped_ += reply.records.size();
    return reply;
  }

  // Feed fallback: read the store's own wal files. Drop the lock for the IO;
  // the reply's epoch/primary_lsn snapshot from above stays consistent (a
  // batch is valid for the epoch it names).
  lock.unlock();
  StatusOr<net::WireReplRecords> disk =
      FetchFromDisk(fetch.after_lsn, max_records, max_bytes);
  if (!disk.ok()) return disk.status();
  disk->epoch = reply.epoch;
  disk->primary_lsn = reply.primary_lsn;
  lock.lock();
  records_shipped_ += disk->records.size();
  return disk;
}

StatusOr<net::WireReplRecords> Primary::FetchFromDisk(uint64_t after_lsn,
                                                      size_t max_records,
                                                      size_t max_bytes) {
  KBT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       store_->env()->ListDir(store_->dir()));
  // The records after `after_lsn` start in wal-<W> for the largest W ≤
  // after_lsn: that file holds records W+1… .
  bool found = false;
  uint64_t wal_lsn = 0;
  for (const std::string& name : names) {
    std::optional<uint64_t> w = store::ParseStoreLsnSuffix(name, "wal");
    if (w.has_value() && *w <= after_lsn && (!found || *w > wal_lsn)) {
      wal_lsn = *w;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("records after lsn " + std::to_string(after_lsn) +
                            " are below the GC horizon; re-seed");
  }
  KBT_ASSIGN_OR_RETURN(
      std::string bytes,
      store_->env()->ReadFile(store_->dir() + "/" +
                              store::WalFileName(wal_lsn)));
  KBT_ASSIGN_OR_RETURN(store::WalContents contents, store::ReadWal(bytes));
  const uint64_t skip = after_lsn - contents.start_lsn;
  if (skip > contents.records.size()) {
    // A gap: this file ends before after_lsn and the next one starts later
    // (its predecessor was collected). Only a re-seed can bridge it.
    return Status::NotFound("wal gap after lsn " + std::to_string(after_lsn) +
                            "; re-seed");
  }
  net::WireReplRecords reply;
  reply.start_lsn = after_lsn + 1;
  size_t total = 0;
  for (size_t i = skip;
       i < contents.records.size() && reply.records.size() < max_records;
       ++i) {
    const store::WalRecord& r = contents.records[i];
    if (!reply.records.empty() && total + r.payload.size() > max_bytes) break;
    reply.records.emplace_back(static_cast<uint8_t>(r.kind), r.payload);
    total += r.payload.size();
  }
  if (reply.records.empty()) {
    // The file exists but holds none of the wanted records (after_lsn is at
    // its end and the successor file was collected — or never existed yet
    // because those records are only in the feed's dropped range).
    return Status::NotFound("records after lsn " + std::to_string(after_lsn) +
                            " unavailable on disk; re-seed");
  }
  return reply;
}

StatusOr<net::WireReplCkptChunk> Primary::HandleCkptFetch(
    const net::WireReplCkptFetch& fetch) {
  const std::string path =
      store_->dir() + "/" + store::CheckpointFileName(fetch.lsn);
  if (!store_->env()->FileExists(path)) {
    return Status::NotFound("no checkpoint at lsn " +
                            std::to_string(fetch.lsn) + "; resubscribe");
  }
  KBT_ASSIGN_OR_RETURN(std::string bytes, store_->env()->ReadFile(path));
  if (fetch.offset > bytes.size()) {
    return Status::InvalidArgument("checkpoint chunk offset " +
                                   std::to_string(fetch.offset) +
                                   " beyond file size " +
                                   std::to_string(bytes.size()));
  }
  const size_t cap = std::min<size_t>(
      fetch.max_bytes != 0 ? fetch.max_bytes : options_.ckpt_chunk_bytes,
      options_.ckpt_chunk_bytes);
  net::WireReplCkptChunk chunk;
  chunk.lsn = fetch.lsn;
  chunk.offset = fetch.offset;
  chunk.total_size = bytes.size();
  chunk.bytes = bytes.substr(fetch.offset, cap);
  return chunk;
}

Status Primary::WaitSemiSync(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.semi_sync_timeout_ms);
  while (true) {
    for (const auto& entry : subscribers_) {
      if (entry.second.acked_lsn >= lsn) return Status::OK();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ++semi_sync_timeouts_;
      return Status::DeadlineExceeded(
          "commit at lsn " + std::to_string(lsn) +
          " is durable locally but unacked by any replica after " +
          std::to_string(options_.semi_sync_timeout_ms) + "ms");
    }
    acks_cv_.wait_until(lock, deadline);
  }
}

void Primary::DropSubscriber(const std::string& follower_id) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.erase(follower_id);
}

uint64_t Primary::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return meta_.epoch();
}

bool Primary::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

Primary::Stats Primary::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.epoch = meta_.epoch();
  s.fenced = fenced_;
  s.subscribers = subscribers_.size();
  if (!subscribers_.empty()) {
    uint64_t min_acked = UINT64_MAX;
    for (const auto& entry : subscribers_) {
      min_acked = std::min(min_acked, entry.second.acked_lsn);
    }
    s.min_acked_lsn = min_acked;
  }
  s.fetches = fetches_;
  s.records_shipped = records_shipped_;
  s.snapshot_seeds = snapshot_seeds_;
  s.fenced_refusals = fenced_refusals_;
  s.semi_sync_timeouts = semi_sync_timeouts_;
  return s;
}

}  // namespace kbt::repl
