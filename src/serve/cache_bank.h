#ifndef KBT_SERVE_CACHE_BANK_H_
#define KBT_SERVE_CACHE_BANK_H_

/// \file
/// Per-sentence executor caches for the serving read path.
///
/// τ's GroundingCache/CnfCache are keyed by active domain for one *fixed*
/// sentence (the key deliberately omits it), and a grounding is a pure
/// function of (φ, B) — independent of the snapshot version. A serving layer
/// therefore keeps one cache pair per distinct sentence text and reuses it
/// across requests, sessions and snapshots: the first request for a sentence
/// grounds and Tseitin-encodes, every later same-domain request forks the
/// frozen prefix. This is what makes batching same-sentence reads pay — the
/// batch leader fills the entry, the rest of the batch rides it.
///
/// Correctness of sharing: every user of an entry evaluates the entry's own
/// canonical Formula (parsed once, stored in the entry), never its private
/// re-parse — so two textual spellings that print alike can never mix two
/// circuit structures inside one cache.
///
/// The bank is bounded two ways. Across sentences, entries are evicted LRU
/// beyond `capacity`. Within a sentence, the grounding/CNF caches are keyed
/// by active domain — a workload whose domain churns (every commit growing
/// the domain) makes each read a fresh key, so unbounded per-sentence caches
/// grow linearly with commits. `entry_max_domains` caps the domains inside a
/// sentence's caches (LRU), and `entry_byte_budget` evicts the whole
/// sentence entry when its memory estimate exceeds the budget — the next
/// request rebuilds it fresh. Entries are handed out as shared_ptr, so
/// eviction never invalidates a request in flight.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/status.h"
#include "exec/cnf_cache.h"
#include "exec/ground_cache.h"
#include "logic/formula.h"

namespace kbt::serve {

/// One sentence's shared executor state. Immutable apart from the caches,
/// which are internally synchronized (exec/once_cache.h).
struct SentenceCaches {
  /// The canonical parse of the sentence text. All τ calls that borrow these
  /// caches must evaluate exactly this formula.
  Formula sentence = nullptr;
  exec::GroundingCache ground;
  exec::CnfCache cnf;

  /// Estimated bytes held by both caches (heuristic; see the caches).
  size_t ApproxBytes() const {
    return ground.approx_bytes() + cnf.approx_bytes();
  }
};

class QueryCacheBank {
 public:
  /// `capacity` bounds the number of distinct sentences cached (≥ 1).
  /// `entry_byte_budget` (0 = unbounded) evicts a sentence entry whose caches
  /// exceed the budget; `entry_max_domains` (0 = unbounded) caps the domains
  /// cached inside each sentence's grounding/CNF caches.
  explicit QueryCacheBank(size_t capacity = 64, size_t entry_byte_budget = 0,
                          size_t entry_max_domains = 0);

  /// Returns the shared entry for `sentence_text`, parsing and inserting it on
  /// first use. The key is the canonical rendering of the parse, so textual
  /// variants of one formula ("P(a)&Q(b)" vs "P(a) & Q(b)") share one entry.
  /// Thread-safe; concurrent callers for one sentence converge on one entry.
  StatusOr<std::shared_ptr<SentenceCaches>> Get(std::string_view sentence_text);

  /// Entry lookups that found an existing entry / created one.
  uint64_t hits() const;
  uint64_t misses() const;
  size_t entries() const;
  /// Sentence entries evicted because their caches outgrew the byte budget.
  uint64_t budget_evictions() const;

 private:
  struct Slot {
    std::shared_ptr<SentenceCaches> caches;
    std::list<std::string>::iterator lru_pos;  ///< Position in lru_ (front = hottest).
  };

  mutable std::mutex mu_;
  const size_t capacity_;
  const size_t entry_byte_budget_;
  const size_t entry_max_domains_;
  std::unordered_map<std::string, Slot> entries_;
  /// Canonical keys in recency order; back() is the eviction candidate.
  std::list<std::string> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t budget_evictions_ = 0;
};

}  // namespace kbt::serve

#endif  // KBT_SERVE_CACHE_BANK_H_
