#include "serve/snapshot.h"

#include <utility>

namespace kbt::serve {

SnapshotRegistry::SnapshotRegistry(Knowledgebase initial) {
  auto snap = std::make_shared<Snapshot>();
  snap->version = 0;
  snap->kb = std::move(initial);
  current_.store(std::shared_ptr<const Snapshot>(std::move(snap)),
                 std::memory_order_release);
}

std::shared_ptr<const Snapshot> SnapshotRegistry::Publish(Knowledgebase next) {
  auto snap = std::make_shared<Snapshot>();
  snap->version = Current()->version + 1;
  snap->kb = std::move(next);
  std::shared_ptr<const Snapshot> published(std::move(snap));
  current_.store(published, std::memory_order_release);
  return published;
}

}  // namespace kbt::serve
