#include "serve/cache_bank.h"

#include <algorithm>
#include <utility>

#include "logic/parser.h"
#include "logic/printer.h"

namespace kbt::serve {

QueryCacheBank::QueryCacheBank(size_t capacity, size_t entry_byte_budget,
                               size_t entry_max_domains)
    : capacity_(std::max<size_t>(1, capacity)),
      entry_byte_budget_(entry_byte_budget),
      entry_max_domains_(entry_max_domains) {}

StatusOr<std::shared_ptr<SentenceCaches>> QueryCacheBank::Get(
    std::string_view sentence_text) {
  // Parse and canonicalize outside the lock — the lock only guards the map.
  KBT_ASSIGN_OR_RETURN(Formula parsed, ParseSentence(sentence_text));
  std::string key = kbt::ToString(parsed);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Budget check on the hot entry: ApproxBytes walks the entry's domain
    // maps (their own locks; never held while this bank lock is taken
    // elsewhere, so the order bank → cache is acyclic). Over budget, the
    // entry is dropped and rebuilt fresh — in-flight borrowers keep theirs.
    if (entry_byte_budget_ > 0 &&
        it->second.caches->ApproxBytes() > entry_byte_budget_) {
      ++budget_evictions_;
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    } else {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.caches;
    }
  }
  ++misses_;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());  // In-flight borrowers keep their shared_ptr.
    lru_.pop_back();
  }
  auto caches = std::make_shared<SentenceCaches>();
  caches->sentence = std::move(parsed);
  if (entry_max_domains_ > 0) {
    caches->ground.set_max_entries(entry_max_domains_);
    caches->cnf.set_max_entries(entry_max_domains_);
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Slot{caches, lru_.begin()});
  return caches;
}

uint64_t QueryCacheBank::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t QueryCacheBank::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t QueryCacheBank::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t QueryCacheBank::budget_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_evictions_;
}

}  // namespace kbt::serve
