#include "serve/cache_bank.h"

#include <algorithm>
#include <utility>

#include "logic/parser.h"
#include "logic/printer.h"

namespace kbt::serve {

QueryCacheBank::QueryCacheBank(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

StatusOr<std::shared_ptr<SentenceCaches>> QueryCacheBank::Get(
    std::string_view sentence_text) {
  // Parse and canonicalize outside the lock — the lock only guards the map.
  KBT_ASSIGN_OR_RETURN(Formula parsed, ParseSentence(sentence_text));
  std::string key = kbt::ToString(parsed);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.caches;
  }
  ++misses_;
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());  // In-flight borrowers keep their shared_ptr.
    lru_.pop_back();
  }
  auto caches = std::make_shared<SentenceCaches>();
  caches->sentence = std::move(parsed);
  lru_.push_front(key);
  entries_.emplace(std::move(key), Slot{caches, lru_.begin()});
  return caches;
}

uint64_t QueryCacheBank::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t QueryCacheBank::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t QueryCacheBank::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace kbt::serve
