#ifndef KBT_SERVE_SERVER_H_
#define KBT_SERVE_SERVER_H_

/// \file
/// The in-process hypothetical-query server: the first user-facing surface of
/// the engine (ROADMAP "serving layer" item; a socket protocol can front this
/// later without touching the semantics).
///
/// Roles:
///   * ONE logical writer. Apply/Checkpoint serialize on a writer mutex, run
///     the transformation through a core Engine — or a store::DurableEngine,
///     so commits hit the WAL before acknowledgment — and atomically publish
///     the result as a new immutable snapshot (serve/snapshot.h).
///   * MANY readers. Each Session pins a sat::Solver + exec::WorldScratch for
///     its thread, acquires the current snapshot with one atomic load, and
///     evaluates modal queries / (nested) counterfactuals against it — never
///     blocking on the writer, MVCC-style. Reads of one session ride the
///     previous call's warm solver arena and scratch buffers.
///   * A cache bank shared by all readers (serve/cache_bank.h): per-sentence
///     grounding + frozen-CNF caches, so repeated and batched reads of one
///     sentence ground/encode once and fork thereafter.
///
/// Batching: ExecuteBatch groups a vector of read requests by their antecedent
/// chain, so within a group the first request fills the per-sentence caches
/// (one grounding, one CNF prefix per active domain) and the rest fork — the
/// same-domain batching the ROADMAP asks for, measured in
/// bench/json_bench_serving.cc against its one-at-a-time twin.
///
/// Consistency model: a read sees exactly one published snapshot (its
/// ReadResult carries the version); a write is visible to reads that acquire
/// after its Publish. Writes are serialized, so versions are a total order.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/cancel.h"
#include "base/status.h"
#include "core/engine.h"
#include "core/hypothetical.h"
#include "exec/scratch.h"
#include "sat/solver.h"
#include "serve/cache_bank.h"
#include "serve/snapshot.h"
#include "store/durable_engine.h"

namespace kbt::serve {

struct ServerOptions {
  /// Engine options for the write path and the μ options of reads. The τ
  /// thread/cache settings apply to write-path transformations; reads run
  /// sequentially on their calling thread unless read_threads > 1.
  EngineOptions engine;
  /// Distinct sentences the shared cache bank holds (LRU beyond it).
  size_t cache_bank_capacity = 64;
  /// Off = every read builds per-call executor state (the no-batch baseline;
  /// bench twin `_nobatch`).
  bool use_cache_bank = true;
  /// τ worker threads for read-path chains (>1 borrows the engine's persistent
  /// pool — useful for many-world snapshots; 1 = on the session's thread).
  size_t read_threads = 1;
  /// Durable mode: write a checkpoint (and rotate the WAL) automatically every
  /// N commits. 0 = only explicit Checkpoint() calls.
  size_t checkpoint_every = 0;
  /// Per-read SAT conflict budget (0 = unlimited): a read whose μ descents
  /// spend more than this many conflicts in one world fails with
  /// kDeadlineExceeded even without a deadline — the server-side guard
  /// against a single pathological query holding a session forever.
  uint64_t read_sat_conflict_budget = 0;
  /// Byte budget for one sentence's caches in the bank (0 = unbounded).
  /// See QueryCacheBank; bounds per-sentence growth under domain churn.
  size_t cache_entry_byte_budget = 0;
  /// Max distinct domains cached inside one sentence entry (0 = unbounded).
  size_t cache_entry_max_domains = 0;
};

/// One read: insert the antecedents left to right (hypothetically — the
/// snapshot is never modified), then check the consequent under the modality.
/// No antecedents = plain modal query.
struct ReadRequest {
  std::vector<std::string> antecedents;
  std::string consequent;
  Modality modality = Modality::kNecessarily;
  /// Relative deadline for this read, milliseconds; 0 = none. When it expires
  /// mid-evaluation the read fails with kDeadlineExceeded, the session solver
  /// is left at a usable root, and the session may be reused immediately.
  uint64_t deadline_ms = 0;
  /// External cancellation (e.g. a server-wide drain token); nullable, must
  /// outlive the call. Combined with the deadline via token parenting. When
  /// neither this nor deadline_ms nor a budget is set, the read path is
  /// bit-identical to the pre-deadline build.
  const CancelToken* cancel = nullptr;
};

struct ReadResult {
  bool holds = false;
  /// The snapshot version the request evaluated against.
  uint64_t snapshot_version = 0;
};

class Server;

/// One client's pinned read state: a solver whose arena stays warm across the
/// session's queries and the enumerator's scratch buffers. NOT thread-safe —
/// a session belongs to one thread at a time (create one per client thread).
/// Must not outlive its Server.
class Session {
 public:
  /// Evaluates one read against the current snapshot.
  StatusOr<ReadResult> Query(const ReadRequest& request);

  /// Sugar: modal query ("does `sentence` necessarily/possibly hold?").
  StatusOr<ReadResult> Holds(std::string_view sentence,
                             Modality modality = Modality::kNecessarily);

  /// Forwards to the server's serialized write path; returns the new version.
  StatusOr<uint64_t> Apply(std::string_view expression);

  uint64_t id() const { return id_; }

 private:
  friend class Server;
  Session(Server* server, uint64_t id) : server_(server), id_(id) {}

  Server* server_;
  uint64_t id_;
  sat::Solver solver_;
  exec::WorldScratch scratch_;
};

class Server {
 public:
  /// In-memory server starting from `initial` (version 0).
  explicit Server(Knowledgebase initial, ServerOptions options = ServerOptions());

  /// Durable server: opens (or recovers) the store in `dir` and publishes its
  /// committed state as version 0. Every Apply commits through the WAL before
  /// the snapshot advances.
  static StatusOr<std::unique_ptr<Server>> OpenDurable(
      const std::string& dir, const Knowledgebase& initial,
      store::StoreOptions store_options = store::StoreOptions(),
      ServerOptions options = ServerOptions());

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates a session. Thread-safe; the session itself is single-threaded.
  std::unique_ptr<Session> StartSession();

  /// Serialized write path: applies the transformation to the current state,
  /// commits it (durable mode), and publishes the new snapshot. Returns the
  /// published version. Readers are never blocked: they stay on the previous
  /// snapshot until Publish lands.
  StatusOr<uint64_t> Apply(std::string_view expression);
  StatusOr<uint64_t> Apply(const Pipeline& pipeline);

  /// Durable mode: checkpoint + WAL rotation (no-op without a store).
  Status Checkpoint();
  /// Durable mode: group-commit/manual-mode durability barrier.
  Status Sync();

  /// Replication: commits a record shipped from a primary (through the same
  /// ApplyWalRecord path recovery replays — see DurableEngine) and publishes
  /// the result as a new snapshot, so replica reads see every acked lsn.
  /// Works in read-only mode — that is its purpose. Durable mode only.
  /// Returns the published snapshot version.
  StatusOr<uint64_t> ApplyReplicated(const store::WalRecord& record);

  /// Read-only mode (a follower, or a fenced ex-primary): Apply is refused
  /// with a typed kReadOnly error carrying `redirect_hint` ("host:port" of
  /// the writable primary; may be empty). ApplyReplicated still commits.
  /// Thread-safe; flipped by follower promote and primary fencing.
  void SetReadOnly(bool read_only, std::string redirect_hint = "");
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }
  /// The redirect advertised with kReadOnly rejections (empty = none).
  std::string redirect_hint() const;

  /// Replication: semi-sync hook. When set, Apply — after its commit is
  /// durable and published — calls the waiter with the commit's lsn *outside*
  /// the writer lock (follower acks must not queue behind it) and propagates
  /// its error to the caller. The commit itself stays durable and visible
  /// either way: a semi-sync timeout means "not yet on any replica", never
  /// "rolled back". Setup-time only (attach before serving traffic).
  void SetCommitWaiter(std::function<Status(uint64_t lsn)> waiter) {
    commit_waiter_ = std::move(waiter);
  }

  /// The current snapshot (wait-free; see SnapshotRegistry).
  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    return registry_.Current();
  }

  /// Executes a batch of reads against ONE snapshot, grouped by antecedent
  /// chain so each group shares its sentence caches (the leader grounds and
  /// encodes; the rest fork). Results are positionally aligned with
  /// `requests`. Runs on the calling thread with `session`'s pinned solver;
  /// pass the calling thread's session.
  StatusOr<std::vector<ReadResult>> ExecuteBatch(
      Session& session, const std::vector<ReadRequest>& requests);

  struct ServerStats {
    uint64_t commits = 0;
    uint64_t reads = 0;
    uint64_t batches = 0;
    /// Cache-bank entry lookups (hit = sentence already resolved).
    uint64_t bank_hits = 0;
    uint64_t bank_misses = 0;
    /// Sentence entries evicted for exceeding the byte budget (bounded-bank
    /// mode only).
    uint64_t bank_budget_evictions = 0;
    uint64_t snapshot_version = 0;
    /// Deadline/budget activity across all sessions: reads that failed with
    /// kDeadlineExceeded, solver interrupt-token polls, and solves abandoned
    /// by a budget/token trip (sat::Solver::Stats counters, aggregated).
    uint64_t deadlines_exceeded = 0;
    uint64_t sat_interrupt_checks = 0;
    uint64_t sat_budget_trips = 0;
  };
  ServerStats stats() const;

  const ServerOptions& options() const { return options_; }
  /// Durable-mode store handle (nullptr in-memory). Exposed for tests and the
  /// shell's `lsn`/introspection commands; writes must still go through Apply.
  store::DurableEngine* store() { return durable_.get(); }

 private:
  friend class Session;

  Server(ServerOptions options, Knowledgebase initial);

  /// The engine behind the write path (owned or the durable store's).
  Engine& engine();

  /// Resolves the read-path pool once, at construction (so readers never touch
  /// the engine's lazily-created pool member concurrently with the writer):
  /// the engine's persistent pool when the sizes agree, else a server-owned one.
  void InitReadPool();

  /// Read-path core: resolves the request against `snap` with `session`'s
  /// pinned state, through the cache bank when enabled.
  StatusOr<ReadResult> ExecuteRead(Session& session, const Snapshot& snap,
                                   const ReadRequest& request);

  /// Write-path tail under writer_mu_: publish + stats + auto-checkpoint.
  StatusOr<uint64_t> FinishCommit(Knowledgebase result);

  /// kReadOnly (with the redirect hint in the message) when read-only.
  Status RefuseWhenReadOnly();

  ServerOptions options_;
  SnapshotRegistry registry_;
  QueryCacheBank bank_;

  /// Writer state, all under writer_mu_.
  std::mutex writer_mu_;
  std::unique_ptr<Engine> own_engine_;            ///< In-memory mode.
  std::unique_ptr<store::DurableEngine> durable_; ///< Durable mode.
  size_t commits_since_checkpoint_ = 0;

  /// Read-path pool (nullptr when read_threads <= 1); fixed after init.
  exec::ThreadPool* read_pool_ = nullptr;
  std::unique_ptr<exec::ThreadPool> own_read_pool_;

  /// Read-only gate + redirect hint (hint under its own mutex: it changes on
  /// promote/fence while reads of it ride error paths on worker threads).
  std::atomic<bool> read_only_{false};
  mutable std::mutex hint_mu_;
  std::string redirect_hint_;
  std::function<Status(uint64_t)> commit_waiter_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> deadlines_exceeded_{0};
  std::atomic<uint64_t> sat_interrupt_checks_{0};
  std::atomic<uint64_t> sat_budget_trips_{0};
};

}  // namespace kbt::serve

#endif  // KBT_SERVE_SERVER_H_
