#ifndef KBT_SERVE_SNAPSHOT_H_
#define KBT_SERVE_SNAPSHOT_H_

/// \file
/// MVCC snapshot registry: the reader/writer decoupling point of the serving
/// layer.
///
/// A Snapshot is one published version of the knowledgebase — an immutable
/// value plus its version number. The registry holds the current snapshot
/// behind a single atomic shared_ptr: readers acquire it with one atomic load
/// (Current) and keep the acquired version alive for as long as they hold the
/// pointer, writers build the successor state *outside* the registry (the
/// expensive part — τ, μ, durability) and then Publish it with one atomic
/// store. Readers therefore never wait on a writer: while a transformation is
/// in flight every Current() call returns the previous version, and the switch
/// to the new one is a pointer swap, not a data copy.
///
/// Knowledgebase itself is a value type whose guts (base Database, overlays,
/// flat cache) are shared immutably via shared_ptr, so handing one kb to many
/// concurrent readers costs nothing and is data-race-free by construction —
/// with one exception: the lazily-built flat `databases()` view is filled
/// under an internal mutex on first use. Snapshot readers that stick to
/// World(i)/base()/overlays() (everything the serving read path uses) never
/// touch it.

#include <atomic>
#include <cstdint>
#include <memory>

#include "rel/knowledgebase.h"

namespace kbt::serve {

/// One immutable published version. `kb` never changes after publication;
/// readers share the object through the registry's shared_ptr.
struct Snapshot {
  uint64_t version = 0;
  Knowledgebase kb;
};

/// The single writer → many readers handoff. All methods are thread-safe;
/// Current() is wait-free with respect to writers (one atomic shared_ptr
/// load). Publish calls must be externally serialized (the Server's writer
/// lock does this) — the registry enforces monotone versions but not write
/// ordering.
class SnapshotRegistry {
 public:
  /// Installs `initial` as version 0.
  explicit SnapshotRegistry(Knowledgebase initial);

  /// The current snapshot. Never null; never blocks on a writer.
  std::shared_ptr<const Snapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Atomically publishes `next` as the new current snapshot and returns it.
  /// The previous snapshot stays alive until its last reader drops it.
  std::shared_ptr<const Snapshot> Publish(Knowledgebase next);

  /// Version of the current snapshot.
  uint64_t version() const { return Current()->version; }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> current_;
};

}  // namespace kbt::serve

#endif  // KBT_SERVE_SNAPSHOT_H_
