#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <utility>

#include "exec/pool.h"
#include "logic/parser.h"

namespace kbt::serve {

namespace {

/// Batch grouping key: requests with the same antecedent chain hit the same
/// bank entries back to back. \x1f cannot appear in concrete syntax.
std::string ChainKey(const ReadRequest& request) {
  std::string key;
  for (const std::string& text : request.antecedents) {
    key += text;
    key += '\x1f';
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session

StatusOr<ReadResult> Session::Query(const ReadRequest& request) {
  std::shared_ptr<const Snapshot> snap = server_->registry_.Current();
  return server_->ExecuteRead(*this, *snap, request);
}

StatusOr<ReadResult> Session::Holds(std::string_view sentence,
                                    Modality modality) {
  ReadRequest request;
  request.consequent = std::string(sentence);
  request.modality = modality;
  return Query(request);
}

StatusOr<uint64_t> Session::Apply(std::string_view expression) {
  return server_->Apply(expression);
}

// ---------------------------------------------------------------------------
// Server

Server::Server(ServerOptions options, Knowledgebase initial)
    : options_(std::move(options)),
      registry_(std::move(initial)),
      bank_(options_.cache_bank_capacity, options_.cache_entry_byte_budget,
            options_.cache_entry_max_domains) {}

Server::Server(Knowledgebase initial, ServerOptions options)
    : Server(std::move(options), std::move(initial)) {
  own_engine_ = std::make_unique<Engine>(options_.engine);
  InitReadPool();
}

StatusOr<std::unique_ptr<Server>> Server::OpenDurable(
    const std::string& dir, const Knowledgebase& initial,
    store::StoreOptions store_options, ServerOptions options) {
  KBT_ASSIGN_OR_RETURN(
      std::unique_ptr<store::DurableEngine> store,
      store::DurableEngine::Open(dir, initial, store_options, options.engine));
  // The store's recovered state — not `initial` — is version 0: reopening a
  // server resumes exactly where the committed log left off.
  Knowledgebase committed = store->kb();
  auto server = std::unique_ptr<Server>(
      new Server(std::move(options), std::move(committed)));
  server->durable_ = std::move(store);
  server->InitReadPool();
  return server;
}

Server::~Server() = default;

Engine& Server::engine() {
  return durable_ != nullptr ? durable_->engine() : *own_engine_;
}

void Server::InitReadPool() {
  if (options_.read_threads <= 1) return;
  size_t engine_threads =
      options_.engine.tau_threads != 0
          ? options_.engine.tau_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  if (engine_threads == options_.read_threads) {
    // Created here, before any concurrency exists; the writer's equal-sized
    // PoolFor calls return this same pool without touching its storage.
    read_pool_ = engine().SharedPool();
  } else {
    own_read_pool_ = std::make_unique<exec::ThreadPool>(options_.read_threads);
    read_pool_ = own_read_pool_.get();
  }
}

std::unique_ptr<Session> Server::StartSession() {
  return std::unique_ptr<Session>(
      new Session(this, next_session_id_.fetch_add(1, std::memory_order_relaxed)));
}

Status Server::RefuseWhenReadOnly() {
  if (!read_only()) return Status::OK();
  std::string hint = redirect_hint();
  std::string message = "server is read-only (replica)";
  if (!hint.empty()) message += "; primary at " + hint;
  return Status::ReadOnly(std::move(message));
}

StatusOr<uint64_t> Server::Apply(std::string_view expression) {
  uint64_t version = 0;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    KBT_RETURN_IF_ERROR(RefuseWhenReadOnly());
    Knowledgebase result;
    if (durable_ != nullptr) {
      KBT_ASSIGN_OR_RETURN(result, durable_->Apply(expression));
      lsn = durable_->lsn();
    } else {
      KBT_ASSIGN_OR_RETURN(
          result, own_engine_->Apply(expression, registry_.Current()->kb));
    }
    KBT_ASSIGN_OR_RETURN(version, FinishCommit(std::move(result)));
  }
  // Semi-sync wait happens OUTSIDE the writer lock: follower acks (and other
  // writers) must not queue behind this client's wait. An error here reports
  // "durable locally, not yet on any replica" — the commit stands.
  if (commit_waiter_ != nullptr && durable_ != nullptr) {
    KBT_RETURN_IF_ERROR(commit_waiter_(lsn));
  }
  return version;
}

StatusOr<uint64_t> Server::Apply(const Pipeline& pipeline) {
  uint64_t version = 0;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    KBT_RETURN_IF_ERROR(RefuseWhenReadOnly());
    Knowledgebase result;
    if (durable_ != nullptr) {
      KBT_ASSIGN_OR_RETURN(result, durable_->Apply(pipeline));
      lsn = durable_->lsn();
    } else {
      KBT_ASSIGN_OR_RETURN(
          result, own_engine_->Apply(pipeline, registry_.Current()->kb));
    }
    KBT_ASSIGN_OR_RETURN(version, FinishCommit(std::move(result)));
  }
  if (commit_waiter_ != nullptr && durable_ != nullptr) {
    KBT_RETURN_IF_ERROR(commit_waiter_(lsn));
  }
  return version;
}

StatusOr<uint64_t> Server::ApplyReplicated(const store::WalRecord& record) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (durable_ == nullptr) {
    return Status::Unsupported("ApplyReplicated requires a durable store");
  }
  KBT_RETURN_IF_ERROR(durable_->ApplyReplicated(record));
  return FinishCommit(durable_->kb());
}

void Server::SetReadOnly(bool read_only, std::string redirect_hint) {
  {
    std::lock_guard<std::mutex> lock(hint_mu_);
    redirect_hint_ = std::move(redirect_hint);
  }
  read_only_.store(read_only, std::memory_order_release);
}

std::string Server::redirect_hint() const {
  std::lock_guard<std::mutex> lock(hint_mu_);
  return redirect_hint_;
}

StatusOr<uint64_t> Server::FinishCommit(Knowledgebase result) {
  // Durability (when on) already happened inside the store's Apply; only now
  // does the new state become visible to readers.
  std::shared_ptr<const Snapshot> snap = registry_.Publish(std::move(result));
  commits_.fetch_add(1, std::memory_order_relaxed);
  if (durable_ != nullptr && options_.checkpoint_every > 0 &&
      ++commits_since_checkpoint_ >= options_.checkpoint_every) {
    KBT_RETURN_IF_ERROR(durable_->Checkpoint());
    commits_since_checkpoint_ = 0;
  }
  return snap->version;
}

Status Server::Checkpoint() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (durable_ == nullptr) return Status::OK();
  KBT_RETURN_IF_ERROR(durable_->Checkpoint());
  commits_since_checkpoint_ = 0;
  return Status::OK();
}

Status Server::Sync() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (durable_ == nullptr) return Status::OK();
  return durable_->Sync();
}

StatusOr<ReadResult> Server::ExecuteRead(Session& session, const Snapshot& snap,
                                         const ReadRequest& request) {
  reads_.fetch_add(1, std::memory_order_relaxed);

  // Resolve the antecedent chain. Bank entries are held for the duration of
  // the call so LRU eviction cannot pull a formula out from under a step.
  std::vector<std::shared_ptr<SentenceCaches>> entries;
  std::vector<Formula> local_parses;
  std::vector<ChainStep> steps;
  steps.reserve(request.antecedents.size());
  if (options_.use_cache_bank) {
    entries.reserve(request.antecedents.size());
    for (const std::string& text : request.antecedents) {
      KBT_ASSIGN_OR_RETURN(std::shared_ptr<SentenceCaches> entry,
                           bank_.Get(text));
      ChainStep step;
      step.antecedent = &entry->sentence;
      step.ground_cache = &entry->ground;
      step.cnf_cache = &entry->cnf;
      steps.push_back(step);
      entries.push_back(std::move(entry));
    }
  } else {
    local_parses.reserve(request.antecedents.size());
    for (const std::string& text : request.antecedents) {
      KBT_ASSIGN_OR_RETURN(Formula parsed, ParseSentence(text));
      local_parses.push_back(parsed);
    }
    for (const Formula& parsed : local_parses) {
      ChainStep step;
      step.antecedent = &parsed;
      steps.push_back(step);
    }
  }
  KBT_ASSIGN_OR_RETURN(Formula consequent, ParseSentence(request.consequent));

  TauOptions tau_options;
  tau_options.mu = options_.engine.mu;
  tau_options.threads = options_.read_threads;
  tau_options.use_ground_cache = options_.engine.tau_ground_cache;
  tau_options.use_cnf_prefix = options_.engine.tau_cnf_prefix;
  tau_options.pool = read_pool_;
  tau_options.solver = &session.solver_;
  tau_options.scratch = &session.scratch_;

  // Deadline plumbing. The per-request token lives on this stack frame; μ
  // disarms the solver before unwinding, so no reference outlives the call.
  // When no deadline, external token or budget is configured, none of this
  // is passed down and the read path is bit-identical to the limit-free one.
  CancelToken token;
  bool limited = request.deadline_ms > 0 || request.cancel != nullptr;
  if (limited) {
    if (request.deadline_ms > 0) {
      token.set_deadline_after(std::chrono::milliseconds(request.deadline_ms));
    }
    token.set_parent(request.cancel);
    tau_options.mu.cancel = &token;
  }
  if (options_.read_sat_conflict_budget > 0) {
    tau_options.mu.sat_conflict_budget = options_.read_sat_conflict_budget;
    limited = true;
  }

  TauStats tau_stats;
  StatusOr<bool> holds = NestedCounterfactualExec(
      snap.kb, steps, consequent, request.modality, tau_options,
      limited ? &tau_stats : nullptr);
  if (limited) {
    sat_interrupt_checks_.fetch_add(tau_stats.mu.sat_interrupt_checks,
                                    std::memory_order_relaxed);
    sat_budget_trips_.fetch_add(tau_stats.mu.sat_budget_trips,
                                std::memory_order_relaxed);
    if (!holds.ok() &&
        holds.status().code() == StatusCode::kDeadlineExceeded) {
      deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  KBT_RETURN_IF_ERROR(holds.status());
  ReadResult result;
  result.holds = *holds;
  result.snapshot_version = snap.version;
  return result;
}

StatusOr<std::vector<ReadResult>> Server::ExecuteBatch(
    Session& session, const std::vector<ReadRequest>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  // One snapshot for the whole batch: every answer is consistent with one
  // version, whatever the writer does meanwhile.
  std::shared_ptr<const Snapshot> snap = registry_.Current();

  // Group same-chain requests back to back. The group leader grounds and
  // encodes into the shared bank entries; the rest of its group forks the
  // frozen prefixes while they are hot. Results stay positionally aligned.
  std::vector<size_t> order(requests.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<std::string> keys;
  keys.reserve(requests.size());
  for (const ReadRequest& request : requests) keys.push_back(ChainKey(request));
  std::stable_sort(order.begin(), order.end(),
                   [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });

  std::vector<ReadResult> results(requests.size());
  for (size_t i : order) {
    KBT_ASSIGN_OR_RETURN(results[i], ExecuteRead(session, *snap, requests[i]));
  }
  return results;
}

Server::ServerStats Server::stats() const {
  ServerStats stats;
  stats.commits = commits_.load(std::memory_order_relaxed);
  stats.reads = reads_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.bank_hits = bank_.hits();
  stats.bank_misses = bank_.misses();
  stats.bank_budget_evictions = bank_.budget_evictions();
  stats.snapshot_version = registry_.version();
  stats.deadlines_exceeded = deadlines_exceeded_.load(std::memory_order_relaxed);
  stats.sat_interrupt_checks =
      sat_interrupt_checks_.load(std::memory_order_relaxed);
  stats.sat_budget_trips = sat_budget_trips_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace kbt::serve
