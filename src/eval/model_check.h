#ifndef KBT_EVAL_MODEL_CHECK_H_
#define KBT_EVAL_MODEL_CHECK_H_

/// \file
/// Satisfaction db ⊨ φ, the interpretation of equations (4)–(8) in §2, and
/// first-order query evaluation (answer sets of formulas with free variables).
///
/// Quantifiers range over a finite domain supplied by the caller. When omitted, the
/// active domain — the values of db plus the constants of φ — is used, matching the
/// proof of Theorem 4.1. The interpretation is defined only when σ(db) dominates
/// σ(φ); undeclared relations are an error, not false.

#include <vector>

#include "base/status.h"
#include "logic/formula.h"
#include "rel/database.h"
#include "rel/knowledgebase.h"

namespace kbt {

/// db ⊨ φ with quantifiers ranging over `domain`. φ must be a sentence.
StatusOr<bool> Satisfies(const Database& db, const Formula& f,
                         const std::vector<Value>& domain);

/// db ⊨ φ over the active domain (values of db ∪ constants of φ).
StatusOr<bool> Satisfies(const Database& db, const Formula& f);

/// kb ⊨ φ: every member database satisfies φ (each over its own active domain).
/// True for the empty kb. Used by KM postulate (ii).
StatusOr<bool> KbSatisfies(const Knowledgebase& kb, const Formula& f);

/// The answer set of φ under db: the tuples (v_1, ..., v_k) over `domain` such that
/// db ⊨ φ[x_1/v_1, ..., x_k/v_k], where `vars` = (x_1, ..., x_k) must cover all free
/// variables of φ. Variables beyond the free ones are allowed (cartesian padding).
StatusOr<Relation> EvaluateQuery(const Database& db, const Formula& f,
                                 const std::vector<Symbol>& vars,
                                 const std::vector<Value>& domain);

/// Computes the active domain for (db, φ): values of db ∪ constants of φ, sorted.
std::vector<Value> ActiveDomain(const Database& db, const Formula& f);

}  // namespace kbt

#endif  // KBT_EVAL_MODEL_CHECK_H_
