#include "eval/model_check.h"

#include <algorithm>
#include <utility>

#include "logic/analysis.h"

namespace kbt {

namespace {

class Checker {
 public:
  Checker(const Database& db, const std::vector<Value>& domain)
      : db_(db), domain_(domain) {}

  StatusOr<bool> Check(const Formula& f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kAtom: {
        std::optional<size_t> pos = db_.schema().PositionOf(f->relation());
        if (!pos) {
          return Status::InvalidArgument(
              "σ(db) does not dominate σ(φ): unknown relation " +
              NameOf(f->relation()));
        }
        const Relation& r = db_.relation_at(*pos);
        if (r.arity() != f->terms().size()) {
          return Status::InvalidArgument("arity mismatch for relation " +
                                         NameOf(f->relation()));
        }
        scratch_.clear();
        scratch_.reserve(f->terms().size());
        for (const Term& t : f->terms()) {
          KBT_ASSIGN_OR_RETURN(Value v, Resolve(t));
          scratch_.push_back(v);
        }
        return r.Contains(TupleView(scratch_.data(), scratch_.size()));
      }
      case FormulaKind::kEquals: {
        KBT_ASSIGN_OR_RETURN(Value lhs, Resolve(f->terms()[0]));
        KBT_ASSIGN_OR_RETURN(Value rhs, Resolve(f->terms()[1]));
        return lhs == rhs;
      }
      case FormulaKind::kNot: {
        KBT_ASSIGN_OR_RETURN(bool inner, Check(f->children()[0]));
        return !inner;
      }
      case FormulaKind::kAnd: {
        for (const Formula& c : f->children()) {
          KBT_ASSIGN_OR_RETURN(bool v, Check(c));
          if (!v) return false;
        }
        return true;
      }
      case FormulaKind::kOr: {
        for (const Formula& c : f->children()) {
          KBT_ASSIGN_OR_RETURN(bool v, Check(c));
          if (v) return true;
        }
        return false;
      }
      case FormulaKind::kImplies: {
        KBT_ASSIGN_OR_RETURN(bool a, Check(f->children()[0]));
        if (!a) return true;
        return Check(f->children()[1]);
      }
      case FormulaKind::kIff: {
        KBT_ASSIGN_OR_RETURN(bool a, Check(f->children()[0]));
        KBT_ASSIGN_OR_RETURN(bool b, Check(f->children()[1]));
        return a == b;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        bool universal = f->kind() == FormulaKind::kForall;
        Symbol var = f->variable();
        // Push a binding frame; Resolve scans from the back, so the new frame
        // shadows any outer binding of the same name until popped.
        env_.emplace_back(var, Value{});
        size_t frame = env_.size() - 1;
        StatusOr<bool> result = universal;
        for (Value v : domain_) {
          env_[frame].second = v;
          result = Check(f->children()[0]);
          if (!result.ok()) break;
          if (*result != universal) break;  // Short-circuit.
        }
        env_.pop_back();
        return result;
      }
    }
    return Status::Internal("unknown formula kind");
  }

  void Bind(Symbol var, Value value) {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == var) {
        it->second = value;
        return;
      }
    }
    env_.emplace_back(var, value);
  }

 private:
  StatusOr<Value> Resolve(const Term& t) {
    if (t.is_constant()) return t.symbol;
    // Reverse linear scan of the binding stack: the environment is only ever a
    // handful of quantifier frames deep, and the flat layout beats hashing on
    // the per-atom hot path. The innermost (latest) binding wins.
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == t.symbol) return it->second;
    }
    return Status::InvalidArgument("unbound variable: " + NameOf(t.symbol));
  }

  const Database& db_;
  const std::vector<Value>& domain_;
  std::vector<std::pair<Symbol, Value>> env_;  ///< Flat binding stack.
  std::vector<Value> scratch_;  // Atom-argument buffer; no alloc per atom check.
};

}  // namespace

std::vector<Value> ActiveDomain(const Database& db, const Formula& f) {
  std::vector<Value> domain = db.ActiveDomain();
  std::vector<Value> consts = ConstantsOf(f);
  domain.insert(domain.end(), consts.begin(), consts.end());
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

StatusOr<bool> Satisfies(const Database& db, const Formula& f,
                         const std::vector<Value>& domain) {
  if (!IsSentence(f)) {
    return Status::InvalidArgument("Satisfies requires a sentence");
  }
  Checker checker(db, domain);
  return checker.Check(f);
}

StatusOr<bool> Satisfies(const Database& db, const Formula& f) {
  return Satisfies(db, f, ActiveDomain(db, f));
}

StatusOr<bool> KbSatisfies(const Knowledgebase& kb, const Formula& f) {
  // Worlds are materialized one at a time (copy-on-write against the shared
  // base) instead of flattening the whole kb into its cache.
  for (size_t i = 0; i < kb.size(); ++i) {
    Database db = kb.World(i);
    KBT_ASSIGN_OR_RETURN(bool v, Satisfies(db, f));
    if (!v) return false;
  }
  return true;
}

StatusOr<Relation> EvaluateQuery(const Database& db, const Formula& f,
                                 const std::vector<Symbol>& vars,
                                 const std::vector<Value>& domain) {
  std::set<Symbol> free = FreeVariables(f);
  for (Symbol v : vars) free.erase(v);
  if (!free.empty()) {
    return Status::InvalidArgument("EvaluateQuery: free variables not covered");
  }
  Relation::Builder rows(vars.size());
  // Enumerate |domain|^|vars| assignments; fine for the moderate arities the
  // examples and Theorem 5.1 benchmarks use. (An empty variable list checks the
  // sentence itself: the 0-ary answer is {()} or {}.)
  std::vector<size_t> idx(vars.size(), 0);
  std::vector<Value> values(vars.size());
  bool empty_domain = domain.empty() && !vars.empty();
  if (empty_domain) return Relation(vars.size());
  // One checker for the whole enumeration: Bind overwrites the previous
  // assignment and quantifier cases save/restore their variable, so no state
  // leaks between iterations.
  Checker checker(db, domain);
  while (true) {
    for (size_t i = 0; i < vars.size(); ++i) {
      values[i] = domain[idx[i]];
      checker.Bind(vars[i], values[i]);
    }
    KBT_ASSIGN_OR_RETURN(bool v, checker.Check(f));
    if (v) rows.Append(TupleView(values.data(), values.size()));
    // Advance the odometer.
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < domain.size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
    if (vars.empty()) break;
  }
  return rows.Build();
}

}  // namespace kbt
