#ifndef KBT_SAT_TSEITIN_H_
#define KBT_SAT_TSEITIN_H_

/// \file
/// Tseitin transformation: boolean circuits to CNF.
///
/// Every circuit node gets a solver literal; gate semantics are encoded with full
/// (both-direction) clauses, so the CNF models restricted to the atom variables are
/// exactly the circuit's satisfying assignments — a bijection the minimal-model
/// enumeration in core/mu_sat.cc relies on (auxiliary gate variables are functionally
/// determined by the atom variables).

#include <unordered_map>

#include "logic/circuit.h"
#include "sat/solver.h"

namespace kbt::sat {

/// Encodes circuit nodes into a Solver. The circuit's external variables (ground
/// atom ids) map to dedicated solver variables, created on demand.
class TseitinEncoder {
 public:
  /// Both `circuit` and `solver` must outlive the encoder.
  TseitinEncoder(const Circuit* circuit, Solver* solver)
      : circuit_(circuit), solver_(solver) {}

  /// Returns a literal equivalent to circuit node `node_id`, adding gate clauses as
  /// needed (idempotent per node).
  Lit LitFor(int node_id);

  /// Solver variable for circuit/external variable `var_id` (a ground-atom id),
  /// created on first use.
  Var VarForAtom(int var_id);

  /// Asserts that node `node_id` is true (adds its literal as a unit clause).
  void Assert(int node_id);

  /// The atom-id → solver-var map built so far.
  const std::unordered_map<int, Var>& atom_vars() const { return atom_vars_; }

 private:
  const Circuit* circuit_;
  Solver* solver_;
  std::unordered_map<int, Lit> node_lits_;
  std::unordered_map<int, Var> atom_vars_;
  Var const_true_ = -1;
};

}  // namespace kbt::sat

#endif  // KBT_SAT_TSEITIN_H_
