#ifndef KBT_SAT_TSEITIN_H_
#define KBT_SAT_TSEITIN_H_

/// \file
/// Tseitin transformation: boolean circuits to CNF, incrementally.
///
/// Every circuit node gets a solver literal; gate semantics are encoded with full
/// (both-direction) clauses, so the CNF models restricted to the atom variables are
/// exactly the circuit's satisfying assignments — a bijection the minimal-model
/// enumeration in core/mu_sat.cc relies on (auxiliary gate variables are functionally
/// determined by the atom variables).
///
/// The encoder is incremental: node → literal and atom → variable maps are dense
/// tables that persist across calls, so encoding a root, growing the circuit, and
/// encoding again only emits clauses for the nodes not seen before. The μ engine
/// keeps one encoder and one solver alive for an entire minimization descent and
/// model enumeration; nothing is ever re-encoded.

#include <vector>

#include "logic/circuit.h"
#include "sat/solver.h"

namespace kbt::sat {

/// Encodes circuit nodes into a Solver. The circuit's external variables (ground
/// atom ids) map to dedicated solver variables, created on demand.
class TseitinEncoder {
 public:
  /// Both `circuit` and `solver` must outlive the encoder. The circuit may keep
  /// growing after construction; the encoder picks up new nodes on the next
  /// LitFor/Assert call.
  TseitinEncoder(const Circuit* circuit, Solver* solver)
      : circuit_(circuit), solver_(solver) {}

  /// Returns a literal equivalent to circuit node `node_id`, adding gate clauses
  /// as needed. Idempotent per node across calls: already-encoded subcircuits
  /// contribute no new clauses.
  Lit LitFor(int node_id);

  /// Solver variable for circuit/external variable `var_id` (a ground-atom id),
  /// created on first use.
  Var VarForAtom(int var_id);

  /// Asserts that node `node_id` is true (adds its literal as a unit clause).
  void Assert(int node_id);

  /// Number of circuit nodes encoded so far.
  size_t encoded_nodes() const { return encoded_nodes_; }

  /// The dense node-id → literal table (kUnencoded = -1 for nodes not yet
  /// encoded). Borrowed; valid until the next LitFor/Assert call. The μ
  /// enumerator reads it to seed gate-variable phases from a model candidate.
  const std::vector<Lit>& node_lits() const { return lit_of_; }

  static constexpr Lit kUnencoded = -1;

 private:
  static constexpr Var kNoVar = -1;

  const Circuit* circuit_;
  Solver* solver_;
  /// Dense node-id → literal table (kUnencoded until encoded). Grown lazily to
  /// the circuit's current size, preserving earlier entries — the incremental
  /// core.
  std::vector<Lit> lit_of_;
  /// Dense atom-id → solver-var table (kNoVar until created).
  std::vector<Var> var_of_atom_;
  size_t encoded_nodes_ = 0;
  Var const_true_ = kNoVar;

  std::vector<int> dfs_;          ///< Explicit DFS stack (no recursion).
  std::vector<Lit> clause_tmp_;   ///< Gate-clause scratch buffer.
};

}  // namespace kbt::sat

#endif  // KBT_SAT_TSEITIN_H_
