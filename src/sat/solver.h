#ifndef KBT_SAT_SOLVER_H_
#define KBT_SAT_SOLVER_H_

/// \file
/// A from-scratch CDCL SAT solver.
///
/// The knowledgebase update operator μ (eq. 9) needs to enumerate Winslett-minimal
/// models of a grounded sentence — a co-NP-hard task (Theorem 4.2). The engine in
/// core/mu_sat.cc drives this solver through a descend-and-block loop; the solver
/// itself is a conventional conflict-driven clause-learning design:
///
///   * two-watched-literal propagation,
///   * first-UIP conflict analysis with learned clauses,
///   * VSIDS-style variable activities with phase saving,
///   * Luby restarts,
///   * solving under assumptions (for the minimization descent), and
///   * incremental clause addition between Solve() calls (for blocking clauses and
///     activation-literal-guarded constraints).
///
/// No exceptions, no dependencies; deterministic given the same sequence of calls.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kbt::sat {

/// A 0-based propositional variable.
using Var = int;

/// A literal: 2*var for the positive phase, 2*var+1 for the negative phase.
using Lit = int;

inline Lit MkLit(Var v, bool negated = false) { return 2 * v + (negated ? 1 : 0); }
inline Var VarOf(Lit l) { return l >> 1; }
inline bool IsNegated(Lit l) { return (l & 1) != 0; }
inline Lit Negate(Lit l) { return l ^ 1; }

enum class SolveResult { kSat, kUnsat };

/// Truth value of a variable or literal: kUndef until assigned.
enum class LBool : int8_t { kFalse = -1, kUndef = 0, kTrue = 1 };

/// The CDCL solver. Create variables with NewVar, add clauses, then Solve —
/// possibly repeatedly, with further clauses and different assumptions in between.
class Solver {
 public:
  Solver() = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var NewVar();

  /// Number of variables created.
  int num_vars() const { return static_cast<int>(values_.size()); }

  /// Adds a clause (a disjunction of literals over existing variables).
  /// Tautologies are silently dropped; duplicate literals are merged; the empty
  /// clause makes the solver permanently unsatisfiable. Returns false iff the
  /// solver is already known unsatisfiable after this call.
  bool AddClause(std::vector<Lit> lits);

  /// Solves the current formula under the given assumption literals. Further
  /// clauses may be added afterwards and Solve called again.
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Value of `v` in the model found by the last Solve (which must have returned
  /// kSat and not been followed by AddClause).
  bool ModelValue(Var v) const { return model_[static_cast<size_t>(v)] == 1; }

  /// Sets the branching phase hint for `v` (the polarity tried first). Phase
  /// saving overwrites it as search proceeds. The μ engine seeds old atoms with
  /// their database value and new atoms with false, so first models start near
  /// the Winslett minimum and descents are short.
  void SetPhase(Var v, bool value) {
    saved_phase_[static_cast<size_t>(v)] = value ? 1 : -1;
  }

  /// True once the clause set has been proven unsatisfiable outright (no
  /// assumptions involved).
  bool inconsistent() const { return !ok_; }

  /// Cumulative search statistics.
  struct Stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learned_clauses = 0;
    uint64_t solve_calls = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
  };
  using ClauseRef = int;
  static constexpr ClauseRef kNoClause = -1;

  LBool ValueOf(Lit l) const {
    LBool v = values_[static_cast<size_t>(VarOf(l))];
    if (v == LBool::kUndef) return LBool::kUndef;
    bool is_true = (v == LBool::kTrue) != IsNegated(l);
    return is_true ? LBool::kTrue : LBool::kFalse;
  }

  void Enqueue(Lit l, ClauseRef reason);
  ClauseRef Propagate();
  void Attach(ClauseRef cref);
  void CancelUntil(int level);
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void Analyze(ClauseRef confl, std::vector<Lit>* learned, int* bt_level);
  void BumpVar(Var v);
  void DecayActivities();
  Var PickBranchVar();
  static int LubyUnit(int i);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  /// watches_[lit] = clauses to inspect when `lit` becomes true (they watch ¬lit).
  std::vector<std::vector<ClauseRef>> watches_;
  std::vector<LBool> values_;
  std::vector<int> levels_;
  std::vector<ClauseRef> reasons_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::pair<double, Var>> order_heap_;  // Lazy max-heap by activity.
  std::vector<int8_t> saved_phase_;

  std::vector<int8_t> model_;
  std::vector<int8_t> seen_;  // Scratch for Analyze.

  Stats stats_;
};

}  // namespace kbt::sat

#endif  // KBT_SAT_SOLVER_H_
