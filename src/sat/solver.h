#ifndef KBT_SAT_SOLVER_H_
#define KBT_SAT_SOLVER_H_

/// \file
/// A from-scratch CDCL SAT solver over a flat clause arena.
///
/// The knowledgebase update operator μ (eq. 9) needs to enumerate Winslett-minimal
/// models of a grounded sentence — a co-NP-hard task (Theorem 4.2). The engine in
/// core/mu_sat.cc drives this solver through a descend-and-block loop; the solver
/// itself is a conventional conflict-driven clause-learning design:
///
///   * two-watched-literal propagation with blocker literals,
///   * first-UIP conflict analysis with learned clauses,
///   * VSIDS-style variable activities with phase saving,
///   * Luby restarts,
///   * LBD-aware learned-clause database reduction with arena garbage collection,
///   * solving under assumptions (for the minimization descent),
///   * incremental clause addition between Solve() calls (for blocking clauses and
///     activation-literal-guarded constraints), and
///   * forking from a frozen prefix (Freeze / InitFromFrozen): the encoded state
///     of a shared CNF is snapshotted once and bulk-copied into per-world
///     solvers instead of replaying AddClause per world (see exec/cnf_cache).
///
/// Every clause — problem and learned — lives in one contiguous `uint32_t` arena
/// addressed by `ClauseRef` offsets; there is no per-clause heap allocation. A
/// clause is laid out as a header word (size, learned flag), then for learned
/// clauses an activity word and an LBD word, then the literals. Long
/// descend-and-block runs stay bounded: when the learned store outgrows its
/// budget, glue clauses (LBD ≤ 2) are kept and the rest is halved worst-first
/// (highest LBD, then lowest activity), compacting the arena in place.
///
/// No exceptions, no dependencies; deterministic given the same sequence of calls.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "base/cancel.h"

namespace kbt::sat {

/// A 0-based propositional variable.
using Var = int;

/// A literal: 2*var for the positive phase, 2*var+1 for the negative phase.
using Lit = int;

inline Lit MkLit(Var v, bool negated = false) { return 2 * v + (negated ? 1 : 0); }
inline Var VarOf(Lit l) { return l >> 1; }
inline bool IsNegated(Lit l) { return (l & 1) != 0; }
inline Lit Negate(Lit l) { return l ^ 1; }

/// kUnknown is returned only when a budget or interrupt token is armed (see
/// SetBudget/SetInterrupt) and trips mid-search: the question was abandoned,
/// not answered. The solver backtracks to the root and stays fully usable —
/// clauses, activities and learned state are all intact.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Behavioral knobs, set once per solver (between Solve calls; typically right
/// after construction / Reset / InitFromFrozen).
struct SolverOptions {
  /// Incremental solving under assumptions via trail saving (MiniSat/Glucose
  /// incremental mode): assumption decision levels persist across Solve()
  /// calls, and the next call backtracks only to the first level whose
  /// assumption differs from the previous vector instead of to level 0 —
  /// per-solve cost becomes proportional to the assumption *delta*. Callers
  /// that keep a stable assumption-vector prefix (the μ descent orders its
  /// atom pins canonically and puts activation literals last) re-enqueue and
  /// re-propagate only what changed. With the knob on, AddClause between
  /// solves becomes trail-aware: it backtracks only to the deepest level at
  /// which the new clause has two watchable literals. Off (the default) is
  /// bit-identical to the classic behavior: every Solve starts and ends at
  /// decision level 0.
  bool reuse_assumption_trail = false;
};

/// Truth value of a variable or literal: kUndef until assigned.
enum class LBool : int8_t { kFalse = -1, kUndef = 0, kTrue = 1 };

/// Offset of a clause in the solver's arena (index of its header word).
using ClauseRef = uint32_t;
inline constexpr ClauseRef kNoClause = 0xFFFFFFFFu;

/// The CDCL solver. Create variables with NewVar, add clauses, then Solve —
/// possibly repeatedly, with further clauses and different assumptions in between.
class Solver {
 private:
  /// A watch-list entry: the clause plus a cached "blocker" literal from the
  /// clause. If the blocker is already true the clause is satisfied and the
  /// arena is never touched — the common case during propagation. (Declared
  /// up front so Frozen below can flatten watch lists.)
  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  /// A branch-order heap node; see the heap comment further down. (Declared up
  /// front so Frozen below can snapshot the heap.)
  struct HeapNode {
    double activity;
    Var var;
    friend bool operator<(const HeapNode& a, const HeapNode& b) {
      return a.activity < b.activity ||
             (a.activity == b.activity && a.var < b.var);
    }
  };

 public:
  Solver() = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Cumulative search statistics.
  struct Stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learned_clauses = 0;
    uint64_t solve_calls = 0;
    uint64_t db_reductions = 0;      ///< Learned-DB reduction passes.
    uint64_t learned_deleted = 0;    ///< Learned clauses dropped by reduction.
    uint64_t minimized_literals = 0; ///< Literals shrunk from learned clauses
                                     ///< by self-subsumption in Analyze.
    uint64_t glue_clauses = 0;       ///< Learned clauses born with LBD ≤ 2
                                     ///< (kept unconditionally by ReduceDb).
    uint64_t reused_assumption_levels = 0;  ///< Assumption decision levels
                                            ///< retained across Solve calls
                                            ///< (reuse_assumption_trail only).
    uint64_t saved_propagations = 0;        ///< Trail literals kept enqueued by
                                            ///< reuse instead of re-propagated.
    uint64_t interrupt_checks = 0;  ///< Times the interrupt token was polled
                                    ///< (0 unless SetInterrupt armed one).
    uint64_t budget_trips = 0;      ///< Solve calls abandoned as kUnknown by a
                                    ///< budget or interrupt trip.
  };

  /// An immutable snapshot of a solver at decision level 0 with no assumptions
  /// outstanding: the clause arena, flattened watch lists, root-level trail and
  /// per-variable tables, byte for byte. Taken once per shared CNF prefix and
  /// bulk-copied into per-world solvers via InitFromFrozen — the "encode once,
  /// fork many" primitive behind exec/cnf_cache. Opaque outside Solver except
  /// for the size accessors.
  class Frozen {
   public:
    Frozen() = default;

    /// Number of variables in the frozen state.
    int num_vars() const { return static_cast<int>(values.size()); }
    /// Stored clauses (problem + learned) in the frozen state.
    size_t num_clauses() const { return num_problem_clauses + learned.size(); }
    /// Arena words occupied by the frozen state.
    size_t arena_words() const { return arena.size(); }

   private:
    friend class Solver;
    bool ok = true;
    std::vector<uint32_t> arena;
    size_t wasted_words = 0;
    size_t num_problem_clauses = 0;
    std::vector<ClauseRef> learned;
    size_t reduce_limit = 0;
    uint32_t clause_act_inc = 0;
    /// Watch lists flattened into one buffer: list `i` is
    /// watch_data[watch_begin[i], watch_begin[i + 1]).
    std::vector<uint32_t> watch_begin;
    std::vector<Watcher> watch_data;
    std::vector<LBool> values;
    std::vector<int> levels;
    std::vector<ClauseRef> reasons;
    std::vector<Lit> trail;
    size_t propagate_head = 0;
    std::vector<double> activity;
    double var_inc = 1.0;
    std::vector<HeapNode> heap;
    std::vector<int> heap_pos;
    std::vector<int8_t> saved_phase;
    std::vector<int8_t> model;
    Stats frozen_stats;
  };

  /// Snapshots the complete solver state into `out`. Must be called at decision
  /// level 0 (i.e. between Solve calls); the snapshot is independent of this
  /// solver and may be shared read-only across threads.
  void Freeze(Frozen* out) const;

  /// Replaces this solver's entire state with a copy of `frozen`, reusing the
  /// allocated capacity of the arena, watcher lists and per-variable tables
  /// (the fork analogue of Reset). Given the same subsequent sequence of
  /// NewVar/AddClause/SetPhase/Solve calls, a forked solver behaves
  /// bit-identically to the solver the snapshot was taken from — and hence to a
  /// fresh solver that replayed the frozen prefix clause by clause.
  void InitFromFrozen(const Frozen& frozen);

  /// Creates a fresh variable and returns it.
  Var NewVar();

  /// Returns the solver to its freshly-constructed state while keeping the
  /// allocated capacity of the clause arena, watcher lists and per-variable
  /// tables. The τ executor's per-worker solver pools reuse one Solver across
  /// many worlds: given the same sequence of NewVar/AddClause/Solve calls, a
  /// reset solver behaves bit-identically to a fresh one.
  void Reset();

  /// Number of variables created.
  int num_vars() const { return static_cast<int>(values_.size()); }

  /// Sets the behavioral knobs. Configuration, not solver state: it survives
  /// Reset and InitFromFrozen (both of which drop any retained trail, so
  /// toggling there is always safe). Turning reuse off mid-stream backtracks
  /// to level 0 on the next Solve.
  void set_options(const SolverOptions& options) { options_ = options; }
  const SolverOptions& options() const { return options_; }

  /// Adds a clause (a disjunction of literals over existing variables).
  /// Tautologies are silently dropped; duplicate literals are merged; the empty
  /// clause makes the solver permanently unsatisfiable. Returns false iff the
  /// solver is already known unsatisfiable after this call. The literals are
  /// copied into the arena; the caller's buffer is not retained.
  ///
  /// With reuse_assumption_trail on, the solver may sit at a non-zero decision
  /// level between Solve calls; AddClause then backtracks only as far as the
  /// new clause requires — to level 0 for a unit, otherwise to the deepest
  /// level at which the clause has two non-false literals to watch (blocking
  /// clauses over already-released atoms typically cost no backtracking at
  /// all). Only root-level assignments are used to simplify the clause, so the
  /// stored clause is the same one the level-0 path would store.
  bool AddClause(std::span<const Lit> lits);
  bool AddClause(std::initializer_list<Lit> lits) {
    return AddClause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool AddClause(const std::vector<Lit>& lits) {
    return AddClause(std::span<const Lit>(lits.data(), lits.size()));
  }

  /// Asserts a batch of unit clauses (root facts) in one propagation round.
  /// Equivalent to adding each unit via AddClause — unit propagation reaches
  /// the same fixpoint regardless of enqueue order — but skips the per-clause
  /// sort/simplify machinery and runs propagation once instead of once per
  /// unit. Surrenders any retained assumption trail (a unit is a root fact).
  /// Returns false iff the solver becomes (or already was) unsatisfiable.
  bool AssertUnitsAtRoot(std::span<const Lit> units);
  bool AssertUnitsAtRoot(const std::vector<Lit>& units) {
    return AssertUnitsAtRoot(std::span<const Lit>(units.data(), units.size()));
  }

  /// Solves the current formula under the given assumption literals. Further
  /// clauses may be added afterwards and Solve called again. With
  /// reuse_assumption_trail on, the assumption levels shared with the previous
  /// call's vector are not re-decided or re-propagated (see SolverOptions).
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Undoes every decision level, including assumption levels retained by
  /// reuse_assumption_trail. Call when the retained trail has no further value
  /// — e.g. the μ descent just ended and only assumption-free probes or bulk
  /// clause additions follow — so later AddClause calls take the cheap level-0
  /// path instead of computing trail-aware placements. No-op at level 0.
  void BacktrackToRoot() {
    CancelUntil(0);
    last_assumptions_.clear();
  }

  /// Value of `v` in the model found by the last Solve (which must have returned
  /// kSat and not been followed by AddClause).
  bool ModelValue(Var v) const { return model_[static_cast<size_t>(v)] == 1; }

  /// Sets the branching phase hint for `v` (the polarity tried first). Phase
  /// saving overwrites it as search proceeds. The μ engine seeds old atoms with
  /// their database value and new atoms with false, so first models start near
  /// the Winslett minimum and descents are short.
  void SetPhase(Var v, bool value) {
    saved_phase_[static_cast<size_t>(v)] = value ? 1 : -1;
  }

  /// True once the clause set has been proven unsatisfiable outright (no
  /// assumptions involved).
  bool inconsistent() const { return !ok_; }

  /// Number of clauses currently in the arena (problem + learned; units are
  /// propagated at the root level and never stored).
  size_t num_clauses() const { return num_problem_clauses_ + learned_.size(); }
  /// Number of stored problem (non-learned) clauses.
  size_t num_problem_clauses() const { return num_problem_clauses_; }
  /// Number of learned clauses currently retained.
  size_t num_learned_clauses() const { return learned_.size(); }

  /// Arms cumulative search budgets, measured from the current stats: after
  /// `conflicts` further conflicts (or `propagations` further propagations; 0 =
  /// unlimited for either) any in-flight or later Solve returns kUnknown at
  /// its next check point, backtracked to the root and reusable. Budgets are
  /// per-request state, not configuration: Reset and InitFromFrozen clear
  /// them (callers arm them after forking). With no budget and no interrupt
  /// armed the search is bit-identical to a limit-free solver.
  void SetBudget(uint64_t conflicts, uint64_t propagations);
  /// Arms a cooperative interrupt token, polled at Solve entry and every 64th
  /// conflict; an expired token makes Solve return kUnknown exactly like a
  /// budget trip. `token` must outlive the armed solves; nullptr disarms.
  void SetInterrupt(const CancelToken* token);
  /// Disarms budgets and the interrupt token.
  void ClearLimits();
  /// Conflicts remaining before the armed conflict budget trips (0 when no
  /// conflict budget is armed or it has already tripped).
  uint64_t conflicts_until_budget() const {
    return conflict_limit_ > stats_.conflicts ? conflict_limit_ - stats_.conflicts
                                              : 0;
  }

  /// Learned-clause budget before the next DB reduction (grows geometrically
  /// afterwards). Lower it to bound memory on long descend-and-block runs — or
  /// in tests, to exercise reduction on small instances.
  void SetReduceLimit(size_t limit) { reduce_limit_ = limit; }
  /// Arena words in use (headers + activities + literals).
  size_t arena_words() const { return arena_.size() - wasted_words_; }

  const Stats& stats() const { return stats_; }

 private:
  // Arena clause layout, starting at the ClauseRef offset:
  //   word 0          — header: (size << 3) | forward << 2 | deleted << 1 | learned
  //   word 1          — activity (learned clauses only)
  //   word 2          — LBD: distinct decision levels at learn time (learned only)
  //   next `size`     — the literals
  // During garbage collection the header of a surviving clause is overwritten
  // with (new_offset << 3) | forward so watcher lists and reason pointers can be
  // remapped in one pass.
  uint32_t SizeOf(ClauseRef c) const { return arena_[c] >> 3; }
  bool IsLearned(ClauseRef c) const { return (arena_[c] & 0x1) != 0; }
  uint32_t LitsOffset(ClauseRef c) const { return c + 1 + (IsLearned(c) ? 2 : 0); }
  Lit* LitsOf(ClauseRef c) {
    return reinterpret_cast<Lit*>(arena_.data() + LitsOffset(c));
  }
  const Lit* LitsOf(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(arena_.data() + LitsOffset(c));
  }
  uint32_t& ActivityOf(ClauseRef c) { return arena_[c + 1]; }
  uint32_t ActivityOf(ClauseRef c) const { return arena_[c + 1]; }
  uint32_t LbdOf(ClauseRef c) const { return arena_[c + 2]; }

  LBool ValueOf(Lit l) const {
    LBool v = values_[static_cast<size_t>(VarOf(l))];
    if (v == LBool::kUndef) return LBool::kUndef;
    bool is_true = (v == LBool::kTrue) != IsNegated(l);
    return is_true ? LBool::kTrue : LBool::kFalse;
  }

  ClauseRef AllocClause(std::span<const Lit> lits, bool learned, uint32_t lbd = 0);
  /// AddClause tail for a non-zero decision level (reuse_assumption_trail):
  /// `lits` is the root-simplified clause (≥ 2 literals, no root-true literal).
  /// Backtracks to the deepest level with two watchable literals and attaches.
  bool AddClauseAboveRoot();
  /// Distinct decision levels among the literals (computed before backtracking,
  /// while levels_ still reflects the conflict).
  uint32_t ComputeLbd(std::span<const Lit> lits);
  void Enqueue(Lit l, ClauseRef reason);
  ClauseRef Propagate();
  void Attach(ClauseRef cref);
  void CancelUntil(int level);
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void Analyze(ClauseRef confl, std::vector<Lit>* learned, int* bt_level);
  /// True when `q` can be dropped from the learned clause because its reason's
  /// other literals are all already in the clause (seen) or fixed at level 0 —
  /// one self-subsumption resolution step that only shrinks the clause.
  bool LitRedundant(Lit q) const;
  void BumpVar(Var v);
  void BumpClause(ClauseRef cref);
  void DecayActivities();
  Var PickBranchVar();
  // Indexed binary max-heap of (activity, var) nodes (MiniSat-style): every
  // variable is in the heap at most once (heap_pos_ tracks its slot, -1 =
  // absent), bumps update the node's cached activity and sift it up in place,
  // and backtracking re-inserts unassigned vars. The previous lazy heap pushed
  // a fresh pair per bump and per unassignment; descend-and-block runs
  // ballooned it with stale duplicates and PickBranchVar dominated μ's profile
  // (≈half the runtime). The activity is cached inside the node so sifts
  // compare contiguous memory instead of chasing activity_. Ties break toward
  // the larger variable id — the order the lazy pair-heap popped — keeping the
  // known-good branching trajectory; deterministic either way.
  void HeapSwap(size_t i, size_t j);
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  void HeapInsert(Var v);
  /// True when `cref` is the reason of a currently assigned variable (such
  /// clauses must survive DB reduction).
  bool IsReason(ClauseRef cref) const;
  /// Drops the low-activity half of the learned clauses and compacts the arena.
  /// Must be called at decision level 0.
  void ReduceDb();
  /// Compacts the arena in place, dropping deleted clauses and remapping watcher
  /// lists, reason pointers and the learned list.
  void GarbageCollect();
  static int LubyUnit(int i);

  /// True when an armed budget or interrupt token has tripped. `poll_token`
  /// gates the (comparatively expensive) token check so the hot loop polls it
  /// only every 64th conflict; budget comparisons run on every call.
  bool Interrupted(bool poll_token);
  /// Abandons the current Solve: backtracks to the root, clears the saved
  /// assumption trail (it no longer matches an answered question), bumps
  /// budget_trips and returns kUnknown. The solver stays fully usable.
  SolveResult AbortSolve();

  bool ok_ = true;
  /// The clause arena. All clauses, problem and learned, live here.
  std::vector<uint32_t> arena_;
  size_t wasted_words_ = 0;        ///< Words occupied by deleted clauses.
  size_t num_problem_clauses_ = 0;
  std::vector<ClauseRef> learned_;  ///< Refs of retained learned clauses.
  /// Learned-clause budget before the next ReduceDb; grows geometrically.
  size_t reduce_limit_ = 2048;
  /// Per-bump clause activity increment; grows ~1.5% per conflict so earlier
  /// bumps decay geometrically relative to recent ones.
  uint32_t clause_act_inc_ = 16;

  /// watches_[lit] = watchers to inspect when `lit` becomes true (they watch ¬lit).
  std::vector<std::vector<Watcher>> watches_;
  std::vector<LBool> values_;
  std::vector<int> levels_;
  std::vector<ClauseRef> reasons_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<HeapNode> heap_;  // Indexed max-heap of candidate branch vars.
  std::vector<int> heap_pos_;   // Var → slot in heap_, -1 when absent.
  std::vector<int8_t> saved_phase_;

  SolverOptions options_;
  /// Cooperative limits (SetBudget/SetInterrupt). limits_active_ is the single
  /// off-path guard: when false, Solve takes no limit branches at all and the
  /// search is bit-identical to a limit-free build. The limits are absolute
  /// stats thresholds (0 = unlimited), cleared by Reset/InitFromFrozen.
  bool limits_active_ = false;
  uint64_t conflict_limit_ = 0;
  uint64_t propagation_limit_ = 0;
  const CancelToken* interrupt_ = nullptr;
  /// The previous Solve's assumption vector (reuse_assumption_trail only):
  /// compared against the next call's vector to find the shared prefix whose
  /// decision levels — still on the trail — can be kept.
  std::vector<Lit> last_assumptions_;

  std::vector<int8_t> model_;
  std::vector<int8_t> seen_;  // Scratch for Analyze.
  std::vector<Lit> add_tmp_;  // Scratch for AddClause (sort/dedup buffer).
  std::vector<Lit> learned_tmp_;  // Scratch for the learned clause in Solve.
  std::vector<int8_t> level_seen_;  // Scratch for ComputeLbd (per-level marks).
  std::vector<int> level_seen_clear_;  // Levels to unmark after ComputeLbd.

  Stats stats_;
};

}  // namespace kbt::sat

#endif  // KBT_SAT_SOLVER_H_
