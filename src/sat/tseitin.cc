#include "sat/tseitin.h"

#include <cassert>

namespace kbt::sat {

Var TseitinEncoder::VarForAtom(int var_id) {
  size_t idx = static_cast<size_t>(var_id);
  if (idx >= var_of_atom_.size()) var_of_atom_.resize(idx + 1, kNoVar);
  if (var_of_atom_[idx] != kNoVar) return var_of_atom_[idx];
  Var v = solver_->NewVar();
  var_of_atom_[idx] = v;
  return v;
}

Lit TseitinEncoder::LitFor(int node_id) {
  if (lit_of_.size() < circuit_->size()) {
    lit_of_.resize(circuit_->size(), kUnencoded);  // Pick up circuit growth.
  }
  if (lit_of_[static_cast<size_t>(node_id)] != kUnencoded) {
    return lit_of_[static_cast<size_t>(node_id)];
  }

  // Iterative post-order: a node is encoded once all its children are. Children
  // may be pushed more than once; the cached-literal check skips repeats.
  dfs_.clear();
  dfs_.push_back(node_id);
  while (!dfs_.empty()) {
    int id = dfs_.back();
    size_t idx = static_cast<size_t>(id);
    if (lit_of_[idx] != kUnencoded) {
      dfs_.pop_back();
      continue;
    }
    const Circuit::Node n = circuit_->node(id);
    switch (n.kind) {
      case Circuit::NodeKind::kConst: {
        if (const_true_ == kNoVar) {
          const_true_ = solver_->NewVar();
          solver_->AddClause({MkLit(const_true_)});
        }
        lit_of_[idx] = n.var == 1 ? MkLit(const_true_) : MkLit(const_true_, true);
        ++encoded_nodes_;
        dfs_.pop_back();
        break;
      }
      case Circuit::NodeKind::kVar:
        lit_of_[idx] = MkLit(VarForAtom(n.var));
        ++encoded_nodes_;
        dfs_.pop_back();
        break;
      case Circuit::NodeKind::kNot: {
        Lit c = lit_of_[static_cast<size_t>(n.children[0])];
        if (c == kUnencoded) {
          dfs_.push_back(n.children[0]);
          break;
        }
        lit_of_[idx] = Negate(c);
        ++encoded_nodes_;
        dfs_.pop_back();
        break;
      }
      case Circuit::NodeKind::kAnd:
      case Circuit::NodeKind::kOr: {
        // Push unencoded children in reverse so they encode left-to-right —
        // solver variables are then created in the same order as a recursive
        // descent, keeping decision heuristics (and thus enumeration order)
        // stable.
        bool ready = true;
        for (size_t i = n.children.size(); i-- > 0;) {
          int c = n.children[i];
          if (lit_of_[static_cast<size_t>(c)] == kUnencoded) {
            dfs_.push_back(c);
            ready = false;
          }
        }
        if (!ready) break;
        Var g = solver_->NewVar();
        Lit lit = MkLit(g);
        clause_tmp_.clear();
        if (n.kind == Circuit::NodeKind::kAnd) {
          // g → c_i for each i; (⋀ c_i) → g.
          clause_tmp_.push_back(lit);
          for (int c : n.children) {
            Lit cl = lit_of_[static_cast<size_t>(c)];
            solver_->AddClause({Negate(lit), cl});
            clause_tmp_.push_back(Negate(cl));
          }
        } else {
          // c_i → g for each i; g → (⋁ c_i).
          clause_tmp_.push_back(Negate(lit));
          for (int c : n.children) {
            Lit cl = lit_of_[static_cast<size_t>(c)];
            solver_->AddClause({lit, Negate(cl)});
            clause_tmp_.push_back(cl);
          }
        }
        solver_->AddClause(clause_tmp_);
        lit_of_[idx] = lit;
        ++encoded_nodes_;
        dfs_.pop_back();
        break;
      }
    }
  }
  return lit_of_[static_cast<size_t>(node_id)];
}

void TseitinEncoder::Assert(int node_id) {
  solver_->AddClause({LitFor(node_id)});
}

}  // namespace kbt::sat
