#include "sat/tseitin.h"

#include <cassert>
#include <vector>

namespace kbt::sat {

Var TseitinEncoder::VarForAtom(int var_id) {
  auto it = atom_vars_.find(var_id);
  if (it != atom_vars_.end()) return it->second;
  Var v = solver_->NewVar();
  atom_vars_.emplace(var_id, v);
  return v;
}

Lit TseitinEncoder::LitFor(int node_id) {
  auto it = node_lits_.find(node_id);
  if (it != node_lits_.end()) return it->second;

  const Circuit::Node& n = circuit_->node(node_id);
  Lit lit = 0;
  switch (n.kind) {
    case Circuit::NodeKind::kConst: {
      if (const_true_ < 0) {
        const_true_ = solver_->NewVar();
        solver_->AddClause({MkLit(const_true_)});
      }
      lit = n.var == 1 ? MkLit(const_true_) : MkLit(const_true_, true);
      break;
    }
    case Circuit::NodeKind::kVar:
      lit = MkLit(VarForAtom(n.var));
      break;
    case Circuit::NodeKind::kNot:
      lit = Negate(LitFor(n.children[0]));
      break;
    case Circuit::NodeKind::kAnd: {
      std::vector<Lit> child_lits;
      child_lits.reserve(n.children.size());
      for (int c : n.children) child_lits.push_back(LitFor(c));
      Var g = solver_->NewVar();
      lit = MkLit(g);
      // g → c_i for each i; (⋀ c_i) → g.
      std::vector<Lit> back{lit};
      for (Lit cl : child_lits) {
        solver_->AddClause({Negate(lit), cl});
        back.push_back(Negate(cl));
      }
      solver_->AddClause(std::move(back));
      break;
    }
    case Circuit::NodeKind::kOr: {
      std::vector<Lit> child_lits;
      child_lits.reserve(n.children.size());
      for (int c : n.children) child_lits.push_back(LitFor(c));
      Var g = solver_->NewVar();
      lit = MkLit(g);
      // c_i → g for each i; g → (⋁ c_i).
      std::vector<Lit> fwd{Negate(lit)};
      for (Lit cl : child_lits) {
        solver_->AddClause({lit, Negate(cl)});
        fwd.push_back(cl);
      }
      solver_->AddClause(std::move(fwd));
      break;
    }
  }
  node_lits_.emplace(node_id, lit);
  return lit;
}

void TseitinEncoder::Assert(int node_id) {
  solver_->AddClause({LitFor(node_id)});
}

}  // namespace kbt::sat
