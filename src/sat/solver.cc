#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace kbt::sat {

// Header layout (see solver.h): size << 3 | forward << 2 | deleted << 1 | learned.
namespace {
constexpr uint32_t kHdrLearned = 0x1;
constexpr uint32_t kHdrDeleted = 0x2;
constexpr uint32_t kHdrForward = 0x4;
}  // namespace

Var Solver::NewVar() {
  Var v = num_vars();
  values_.push_back(LBool::kUndef);
  levels_.push_back(0);
  reasons_.push_back(kNoClause);
  activity_.push_back(0.0);
  saved_phase_.push_back(0);
  seen_.push_back(0);
  // After Reset the watch lists persist (cleared, capacity kept); only grow
  // the outer vector past the high-water mark.
  if (watches_.size() < values_.size() * 2) {
    watches_.emplace_back();
    watches_.emplace_back();
  }
  heap_pos_.push_back(-1);
  HeapInsert(v);
  return v;
}

void Solver::HeapSwap(size_t i, size_t j) {
  std::swap(heap_[i], heap_[j]);
  heap_pos_[static_cast<size_t>(heap_[i].var)] = static_cast<int>(i);
  heap_pos_[static_cast<size_t>(heap_[j].var)] = static_cast<int>(j);
}

void Solver::HeapSiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!(heap_[parent] < heap_[i])) break;
    HeapSwap(parent, i);
    i = parent;
  }
}

void Solver::HeapSiftDown(size_t i) {
  for (;;) {
    size_t best = i;
    size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < heap_.size() && heap_[best] < heap_[l]) best = l;
    if (r < heap_.size() && heap_[best] < heap_[r]) best = r;
    if (best == i) return;
    HeapSwap(i, best);
    i = best;
  }
}

void Solver::HeapInsert(Var v) {
  if (heap_pos_[static_cast<size_t>(v)] >= 0) return;  // Already queued.
  heap_pos_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(HeapNode{activity_[static_cast<size_t>(v)], v});
  HeapSiftUp(heap_.size() - 1);
}

void Solver::Reset() {
  ok_ = true;
  arena_.clear();
  wasted_words_ = 0;
  num_problem_clauses_ = 0;
  learned_.clear();
  reduce_limit_ = 2048;
  clause_act_inc_ = 16;
  for (std::vector<Watcher>& wl : watches_) wl.clear();
  values_.clear();
  levels_.clear();
  reasons_.clear();
  trail_.clear();
  trail_lim_.clear();
  propagate_head_ = 0;
  activity_.clear();
  var_inc_ = 1.0;
  heap_.clear();
  heap_pos_.clear();
  saved_phase_.clear();
  model_.clear();
  seen_.clear();
  level_seen_.clear();
  level_seen_clear_.clear();
  last_assumptions_.clear();  // options_ survives: configuration, not state.
  ClearLimits();  // Budgets are per-request state, like the assumptions.
  stats_ = Stats();
}

void Solver::Freeze(Frozen* out) const {
  assert(DecisionLevel() == 0 && "Freeze only between Solve calls");
  out->ok = ok_;
  out->arena = arena_;
  out->wasted_words = wasted_words_;
  out->num_problem_clauses = num_problem_clauses_;
  out->learned = learned_;
  out->reduce_limit = reduce_limit_;
  out->clause_act_inc = clause_act_inc_;
  // Flatten the watch lists: one contiguous Watcher buffer plus offsets, so
  // InitFromFrozen restores each list with a bulk assign instead of growing
  // per-entry. Only the lists of live variables are meaningful.
  size_t lists = values_.size() * 2;
  out->watch_begin.clear();
  out->watch_begin.reserve(lists + 1);
  out->watch_data.clear();
  for (size_t i = 0; i < lists; ++i) {
    out->watch_begin.push_back(static_cast<uint32_t>(out->watch_data.size()));
    out->watch_data.insert(out->watch_data.end(), watches_[i].begin(),
                           watches_[i].end());
  }
  out->watch_begin.push_back(static_cast<uint32_t>(out->watch_data.size()));
  out->values = values_;
  out->levels = levels_;
  out->reasons = reasons_;
  out->trail = trail_;
  out->propagate_head = propagate_head_;
  out->activity = activity_;
  out->var_inc = var_inc_;
  out->heap = heap_;
  out->heap_pos = heap_pos_;
  out->saved_phase = saved_phase_;
  out->model = model_;
  out->frozen_stats = stats_;
}

void Solver::InitFromFrozen(const Frozen& frozen) {
  ok_ = frozen.ok;
  arena_.assign(frozen.arena.begin(), frozen.arena.end());
  wasted_words_ = frozen.wasted_words;
  num_problem_clauses_ = frozen.num_problem_clauses;
  learned_.assign(frozen.learned.begin(), frozen.learned.end());
  reduce_limit_ = frozen.reduce_limit;
  clause_act_inc_ = frozen.clause_act_inc;
  // A default-constructed Frozen (never frozen into — e.g. the cached prefix
  // of a ⊥-rooted grounding) has an empty offset table, not the one-sentinel
  // table Freeze writes; treat it as zero lists rather than underflowing.
  size_t lists = frozen.watch_begin.empty() ? 0 : frozen.watch_begin.size() - 1;
  if (watches_.size() < lists) watches_.resize(lists);
  for (size_t i = 0; i < lists; ++i) {
    watches_[i].assign(frozen.watch_data.begin() + frozen.watch_begin[i],
                       frozen.watch_data.begin() + frozen.watch_begin[i + 1]);
  }
  // A reused worker solver may carry lists beyond the frozen variable count;
  // NewVar only appends past the high-water mark, so clear the tail.
  for (size_t i = lists; i < watches_.size(); ++i) watches_[i].clear();
  values_.assign(frozen.values.begin(), frozen.values.end());
  levels_.assign(frozen.levels.begin(), frozen.levels.end());
  reasons_.assign(frozen.reasons.begin(), frozen.reasons.end());
  trail_.assign(frozen.trail.begin(), frozen.trail.end());
  trail_lim_.clear();
  propagate_head_ = frozen.propagate_head;
  activity_.assign(frozen.activity.begin(), frozen.activity.end());
  var_inc_ = frozen.var_inc;
  heap_.assign(frozen.heap.begin(), frozen.heap.end());
  heap_pos_.assign(frozen.heap_pos.begin(), frozen.heap_pos.end());
  saved_phase_.assign(frozen.saved_phase.begin(), frozen.saved_phase.end());
  model_.assign(frozen.model.begin(), frozen.model.end());
  seen_.assign(frozen.values.size(), 0);
  level_seen_clear_.clear();
  last_assumptions_.clear();  // The frozen state has no retained trail.
  ClearLimits();  // Callers arm per-request budgets after forking.
  stats_ = frozen.frozen_stats;
}

void Solver::SetBudget(uint64_t conflicts, uint64_t propagations) {
  conflict_limit_ = conflicts == 0 ? 0 : stats_.conflicts + conflicts;
  propagation_limit_ =
      propagations == 0 ? 0 : stats_.propagations + propagations;
  limits_active_ =
      conflict_limit_ != 0 || propagation_limit_ != 0 || interrupt_ != nullptr;
}

void Solver::SetInterrupt(const CancelToken* token) {
  interrupt_ = token;
  limits_active_ =
      conflict_limit_ != 0 || propagation_limit_ != 0 || interrupt_ != nullptr;
}

void Solver::ClearLimits() {
  limits_active_ = false;
  conflict_limit_ = 0;
  propagation_limit_ = 0;
  interrupt_ = nullptr;
}

bool Solver::Interrupted(bool poll_token) {
  if (conflict_limit_ != 0 && stats_.conflicts >= conflict_limit_) return true;
  if (propagation_limit_ != 0 && stats_.propagations >= propagation_limit_) {
    return true;
  }
  if (poll_token && interrupt_ != nullptr) {
    ++stats_.interrupt_checks;
    if (interrupt_->Expired()) return true;
  }
  return false;
}

SolveResult Solver::AbortSolve() {
  CancelUntil(0);
  // The retained trail no longer corresponds to an answered question; a later
  // Solve must not reuse it as if the abandoned search had completed.
  last_assumptions_.clear();
  ++stats_.budget_trips;
  return SolveResult::kUnknown;
}

ClauseRef Solver::AllocClause(std::span<const Lit> lits, bool learned,
                              uint32_t lbd) {
  assert(lits.size() >= 2);
  ClauseRef cref = static_cast<ClauseRef>(arena_.size());
  uint32_t size = static_cast<uint32_t>(lits.size());
  arena_.push_back((size << 3) | (learned ? kHdrLearned : 0));
  if (learned) {
    arena_.push_back(clause_act_inc_);  // Initial activity.
    arena_.push_back(lbd);
    learned_.push_back(cref);
  } else {
    ++num_problem_clauses_;
  }
  for (Lit l : lits) arena_.push_back(static_cast<uint32_t>(l));
  return cref;
}

uint32_t Solver::ComputeLbd(std::span<const Lit> lits) {
  if (level_seen_.size() < trail_lim_.size() + 1) {
    level_seen_.resize(trail_lim_.size() + 1, 0);
  }
  uint32_t lbd = 0;
  for (Lit l : lits) {
    int level = levels_[static_cast<size_t>(VarOf(l))];
    if (!level_seen_[static_cast<size_t>(level)]) {
      level_seen_[static_cast<size_t>(level)] = 1;
      level_seen_clear_.push_back(level);
      ++lbd;
    }
  }
  for (int level : level_seen_clear_) level_seen_[static_cast<size_t>(level)] = 0;
  level_seen_clear_.clear();
  return lbd;
}

bool Solver::AddClause(std::span<const Lit> lits) {
  if (!ok_) return false;
  assert((DecisionLevel() == 0 || options_.reuse_assumption_trail) &&
         "AddClause above level 0 requires reuse_assumption_trail");
  const bool above_root = DecisionLevel() > 0;
  add_tmp_.assign(lits.begin(), lits.end());
  std::sort(add_tmp_.begin(), add_tmp_.end());
  add_tmp_.erase(std::unique(add_tmp_.begin(), add_tmp_.end()), add_tmp_.end());
  // Drop tautologies; remove false literals; detect satisfied clauses. The
  // surviving literals are compacted in place — no allocation per clause.
  // Above the root (a retained assumption trail) only level-0 assignments may
  // simplify: deeper values are revocable search state, not facts, so the
  // stored clause is exactly the one the level-0 path would store.
  size_t keep = 0;
  for (size_t i = 0; i < add_tmp_.size(); ++i) {
    Lit l = add_tmp_[i];
    if (i + 1 < add_tmp_.size() && add_tmp_[i + 1] == Negate(l) &&
        VarOf(add_tmp_[i + 1]) == VarOf(l)) {
      return true;  // l and ¬l adjacent after sorting: tautology.
    }
    LBool v = ValueOf(l);
    if (v != LBool::kUndef && above_root &&
        levels_[static_cast<size_t>(VarOf(l))] != 0) {
      add_tmp_[keep++] = l;  // Assigned above the root: keep verbatim.
      continue;
    }
    if (v == LBool::kTrue) return true;  // Satisfied at top level.
    if (v == LBool::kFalse) continue;    // Falsified at top level: drop literal.
    add_tmp_[keep++] = l;
  }
  add_tmp_.resize(keep);
  if (add_tmp_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_tmp_.size() == 1) {
    // A unit is a root fact: surrender any retained trail and propagate it at
    // level 0 (no-op backtrack on the classic path).
    CancelUntil(0);
    Enqueue(add_tmp_[0], kNoClause);
    if (Propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  if (arena_.empty()) arena_.reserve(1024);
  if (DecisionLevel() > 0) return AddClauseAboveRoot();
  Attach(AllocClause(add_tmp_, /*learned=*/false));
  return true;
}

bool Solver::AssertUnitsAtRoot(std::span<const Lit> units) {
  if (!ok_) return false;
  CancelUntil(0);
  last_assumptions_.clear();
  for (Lit l : units) {
    LBool v = ValueOf(l);
    if (v == LBool::kTrue) continue;  // Already a root fact.
    if (v == LBool::kFalse) {
      ok_ = false;
      return false;
    }
    Enqueue(l, kNoClause);
  }
  if (Propagate() != kNoClause) ok_ = false;
  return ok_;
}

bool Solver::AddClauseAboveRoot() {
  // Backtrack only to the level the new clause can watch at: a literal's
  // falsification level is the level it was assigned false at (+∞ when
  // non-false); after backtracking to one level below the second-deepest
  // falsification level, the two deepest literals are both non-false and
  // become the watches. Two already-non-false literals cost no backtracking.
  constexpr int kInf = std::numeric_limits<int>::max();
  size_t i1 = 0, i2 = 1;
  int f1 = -1, f2 = -1;
  for (size_t i = 0; i < add_tmp_.size(); ++i) {
    int f = ValueOf(add_tmp_[i]) == LBool::kFalse
                ? levels_[static_cast<size_t>(VarOf(add_tmp_[i]))]
                : kInf;
    if (f > f1) {
      f2 = f1;
      i2 = i1;
      f1 = f;
      i1 = i;
    } else if (f > f2) {
      f2 = f;
      i2 = i;
    }
  }
  if (f2 != kInf) CancelUntil(f2 - 1);  // f2 ≥ 1: root-false literals dropped.
  std::swap(add_tmp_[0], add_tmp_[i1]);
  if (i2 == 0) i2 = i1;
  std::swap(add_tmp_[1], add_tmp_[i2]);
  Attach(AllocClause(add_tmp_, /*learned=*/false));
  return true;
}

void Solver::Attach(ClauseRef cref) {
  const Lit* lits = LitsOf(cref);
  assert(SizeOf(cref) >= 2);
  watches_[static_cast<size_t>(Negate(lits[0]))].push_back({cref, lits[1]});
  watches_[static_cast<size_t>(Negate(lits[1]))].push_back({cref, lits[0]});
}

void Solver::Enqueue(Lit l, ClauseRef reason) {
  assert(ValueOf(l) == LBool::kUndef);
  Var v = VarOf(l);
  values_[static_cast<size_t>(v)] = IsNegated(l) ? LBool::kFalse : LBool::kTrue;
  levels_[static_cast<size_t>(v)] = DecisionLevel();
  reasons_[static_cast<size_t>(v)] = reason;
  trail_.push_back(l);
}

ClauseRef Solver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    std::vector<Watcher>& watch_list = watches_[static_cast<size_t>(p)];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      Watcher w = watch_list[i];
      // Blocker fast path: a cached literal from the clause; if it is already
      // true the clause is satisfied without touching the arena.
      if (ValueOf(w.blocker) == LBool::kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      ClauseRef cref = w.cref;
      Lit* lits = LitsOf(cref);
      uint32_t size = SizeOf(cref);
      Lit false_lit = Negate(p);
      // Normalize: the falsified watched literal goes to slot 1.
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);
      Lit first = lits[0];
      if (first != w.blocker && ValueOf(first) == LBool::kTrue) {
        watch_list[keep++] = {cref, first};  // Satisfied; refresh the blocker.
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (uint32_t j = 2; j < size; ++j) {
        if (ValueOf(lits[j]) != LBool::kFalse) {
          std::swap(lits[1], lits[j]);
          watches_[static_cast<size_t>(Negate(lits[1]))].push_back({cref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // No replacement: unit or conflicting.
      watch_list[keep++] = {cref, first};
      if (ValueOf(first) == LBool::kFalse) {
        // Conflict. Keep the remaining watchers, restore list, report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return cref;
      }
      Enqueue(first, cref);
    }
    watch_list.resize(keep);
  }
  return kNoClause;
}

void Solver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  int target = trail_lim_[static_cast<size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= target; --i) {
    Var v = VarOf(trail_[static_cast<size_t>(i)]);
    saved_phase_[static_cast<size_t>(v)] =
        values_[static_cast<size_t>(v)] == LBool::kTrue ? 1 : -1;
    values_[static_cast<size_t>(v)] = LBool::kUndef;
    reasons_[static_cast<size_t>(v)] = kNoClause;
    HeapInsert(v);
  }
  trail_.resize(static_cast<size_t>(target));
  trail_lim_.resize(static_cast<size_t>(level));
  propagate_head_ = trail_.size();
}

void Solver::BumpVar(Var v) {
  double& a = activity_[static_cast<size_t>(v)];
  a += var_inc_;
  if (a > 1e100) {
    // Uniform rescale preserves relative order, so the heap stays valid; the
    // cached node activities rescale along.
    for (double& x : activity_) x *= 1e-100;
    for (HeapNode& n : heap_) n.activity *= 1e-100;
    var_inc_ *= 1e-100;
  }
  // Activity only grows: the entry can only need to move toward the root.
  int pos = heap_pos_[static_cast<size_t>(v)];
  if (pos >= 0) {
    heap_[static_cast<size_t>(pos)].activity = a;
    HeapSiftUp(static_cast<size_t>(pos));
  }
}

void Solver::BumpClause(ClauseRef cref) {
  if (!IsLearned(cref)) return;
  uint32_t& a = ActivityOf(cref);
  a += clause_act_inc_;
  if (a > (uint32_t{1} << 30)) {
    // Rescale every learned activity and the increment; relative order (and
    // the recency weighting) is preserved.
    for (ClauseRef c : learned_) ActivityOf(c) >>= 16;
    clause_act_inc_ = std::max(clause_act_inc_ >> 16, uint32_t{16});
  }
}

void Solver::DecayActivities() {
  var_inc_ /= 0.95;
  // Growing the increment ~1.5% per conflict decays older clause bumps
  // geometrically (MiniSat-style), so ReduceDb ranks by recent usefulness
  // rather than lifetime bump count.
  clause_act_inc_ += clause_act_inc_ >> 6;
}

void Solver::Analyze(ClauseRef confl, std::vector<Lit>* learned, int* bt_level) {
  learned->clear();
  learned->push_back(0);  // Slot for the asserting (1UIP) literal.
  int counter = 0;
  Lit p = -1;
  size_t trail_index = trail_.size();
  std::vector<Var> to_clear;

  ClauseRef reason = confl;
  do {
    assert(reason != kNoClause);
    BumpClause(reason);  // Useful clauses survive DB reduction longer.
    const Lit* lits = LitsOf(reason);
    uint32_t size = SizeOf(reason);
    // On the first pass p == -1 and all literals are examined; afterwards the
    // asserting literal at lits[0] equals p and is skipped.
    for (uint32_t j = (p == -1 ? 0 : 1); j < size; ++j) {
      Lit q = lits[j];
      Var v = VarOf(q);
      if (seen_[static_cast<size_t>(v)] || levels_[static_cast<size_t>(v)] == 0) {
        continue;
      }
      seen_[static_cast<size_t>(v)] = 1;
      to_clear.push_back(v);
      BumpVar(v);
      if (levels_[static_cast<size_t>(v)] == DecisionLevel()) {
        ++counter;
      } else {
        learned->push_back(q);
      }
    }
    // Select the next trail literal marked seen.
    while (trail_index > 0 && !seen_[static_cast<size_t>(VarOf(trail_[trail_index - 1]))]) {
      --trail_index;
    }
    assert(trail_index > 0);
    --trail_index;
    p = trail_[trail_index];
    Var pv = VarOf(p);
    seen_[static_cast<size_t>(pv)] = 0;
    reason = reasons_[static_cast<size_t>(pv)];
    --counter;
  } while (counter > 0);
  (*learned)[0] = Negate(p);

  // Learned-clause minimization by self-subsumption: a literal whose reason's
  // other literals are all already in the clause (or level 0) is resolved away
  // without adding anything. Removed literals keep their seen_ mark for the
  // rest of the loop, which closes the check transitively — a literal may be
  // judged redundant through other removed literals (Sörensson–Biere local
  // minimization).
  size_t kept = 1;
  for (size_t i = 1; i < learned->size(); ++i) {
    Lit q = (*learned)[i];
    if (LitRedundant(q)) {
      ++stats_.minimized_literals;
    } else {
      (*learned)[kept++] = q;
    }
  }
  learned->resize(kept);

  // Backtrack level: second-highest level in the learned clause.
  if (learned->size() == 1) {
    *bt_level = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < learned->size(); ++i) {
      if (levels_[static_cast<size_t>(VarOf((*learned)[i]))] >
          levels_[static_cast<size_t>(VarOf((*learned)[max_i]))]) {
        max_i = i;
      }
    }
    std::swap((*learned)[1], (*learned)[max_i]);
    *bt_level = levels_[static_cast<size_t>(VarOf((*learned)[1]))];
  }
  for (Var v : to_clear) seen_[static_cast<size_t>(v)] = 0;
}

bool Solver::LitRedundant(Lit q) const {
  ClauseRef reason = reasons_[static_cast<size_t>(VarOf(q))];
  if (reason == kNoClause) return false;  // Decision or assumption.
  const Lit* lits = LitsOf(reason);
  uint32_t size = SizeOf(reason);
  for (uint32_t j = 0; j < size; ++j) {
    Var v = VarOf(lits[j]);
    if (v == VarOf(q)) continue;  // The propagated literal itself.
    if (!seen_[static_cast<size_t>(v)] && levels_[static_cast<size_t>(v)] != 0) {
      return false;
    }
  }
  return true;
}

Var Solver::PickBranchVar() {
  while (!heap_.empty()) {
    Var v = heap_[0].var;
    heap_pos_[static_cast<size_t>(v)] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_pos_[static_cast<size_t>(heap_[0].var)] = 0;
      HeapSiftDown(0);
    }
    if (values_[static_cast<size_t>(v)] == LBool::kUndef) return v;
  }
  return -1;
}

bool Solver::IsReason(ClauseRef cref) const {
  // While a clause is some variable's reason, its asserting literal sits in
  // slot 0 (Propagate never displaces a true watched literal).
  Lit l0 = LitsOf(cref)[0];
  return ValueOf(l0) == LBool::kTrue &&
         reasons_[static_cast<size_t>(VarOf(l0))] == cref;
}

void Solver::ReduceDb() {
  assert(DecisionLevel() == 0);
  ++stats_.db_reductions;
  // Worst clauses first: highest LBD, then lowest activity within a tier —
  // glucose-style ranking, so victims are the clauses that span many decision
  // levels AND have not recently been useful. stable_sort keeps deletion
  // deterministic across platforms when both keys tie.
  std::stable_sort(learned_.begin(), learned_.end(),
                   [this](ClauseRef a, ClauseRef b) {
                     if (LbdOf(a) != LbdOf(b)) return LbdOf(a) > LbdOf(b);
                     return ActivityOf(a) < ActivityOf(b);
                   });
  size_t target = learned_.size() / 2;
  size_t removed = 0;
  for (ClauseRef cref : learned_) {
    if (removed >= target) break;
    if (LbdOf(cref) <= 2) continue;   // Glue clauses are kept unconditionally.
    if (SizeOf(cref) <= 2) continue;  // Binary clauses are cheap; keep them.
    if (IsReason(cref)) continue;     // Reasons of assigned vars must survive.
    arena_[cref] |= kHdrDeleted;
    wasted_words_ += 3 + SizeOf(cref);
    ++removed;
  }
  stats_.learned_deleted += removed;
  if (removed > 0) GarbageCollect();
}

void Solver::GarbageCollect() {
  std::vector<uint32_t> fresh;
  fresh.reserve(arena_.size() - wasted_words_);
  // Pass 1: copy surviving clauses; leave a forwarding header in the old arena.
  size_t off = 0;
  while (off < arena_.size()) {
    uint32_t header = arena_[off];
    assert((header & kHdrForward) == 0);
    uint32_t size = header >> 3;
    size_t span = 1 + ((header & kHdrLearned) ? 2 : 0) + size;
    if ((header & kHdrDeleted) == 0) {
      uint32_t noff = static_cast<uint32_t>(fresh.size());
      fresh.insert(fresh.end(), arena_.begin() + static_cast<ptrdiff_t>(off),
                   arena_.begin() + static_cast<ptrdiff_t>(off + span));
      arena_[off] = (noff << 3) | kHdrForward;
    }
    off += span;
  }
  // Pass 2: remap watchers (dropping deleted clauses), reasons and the learned
  // list through the forwarding headers.
  auto forward = [this](ClauseRef cref) -> ClauseRef {
    uint32_t header = arena_[cref];
    return (header & kHdrForward) ? (header >> 3) : kNoClause;
  };
  for (auto& watch_list : watches_) {
    size_t keep = 0;
    for (const Watcher& w : watch_list) {
      ClauseRef nref = forward(w.cref);
      if (nref != kNoClause) watch_list[keep++] = {nref, w.blocker};
    }
    watch_list.resize(keep);
  }
  for (ClauseRef& r : reasons_) {
    if (r == kNoClause) continue;
    r = forward(r);
    assert(r != kNoClause && "a reason clause was deleted");
  }
  size_t keep = 0;
  for (ClauseRef cref : learned_) {
    ClauseRef nref = forward(cref);
    if (nref != kNoClause) learned_[keep++] = nref;
  }
  learned_.resize(keep);
  arena_ = std::move(fresh);
  wasted_words_ = 0;
}

int Solver::LubyUnit(int i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  int k = 1;
  while ((1 << (k + 1)) <= i + 1) ++k;
  while ((1 << k) - 1 != i + 1) {
    i = i - (1 << k) + 1;
    k = 1;
    while ((1 << (k + 1)) <= i + 1) ++k;
  }
  return 1 << (k - 1);
}

SolveResult Solver::Solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  if (!ok_) return SolveResult::kUnsat;
  // An already-tripped budget or an expired token abandons the call up front
  // (the session's token usually fired between requests, not mid-search).
  if (limits_active_ && Interrupted(/*poll_token=*/true)) return AbortSolve();
  if (options_.reuse_assumption_trail) {
    // Trail saving: level i+1, while still on the trail, holds exactly the
    // decision + propagation of last_assumptions_[i], so the prefix shared
    // with the new vector is adopted wholesale and only the first divergent
    // level onward is undone. AddClause may already have backtracked below
    // the saved prefix — DecisionLevel() bounds what is reusable.
    size_t matched = 0;
    size_t limit =
        std::min(std::min(assumptions.size(), last_assumptions_.size()),
                 static_cast<size_t>(DecisionLevel()));
    while (matched < limit && assumptions[matched] == last_assumptions_[matched]) {
      ++matched;
    }
    CancelUntil(static_cast<int>(matched));
    if (matched > 0) {
      stats_.reused_assumption_levels += matched;
      stats_.saved_propagations +=
          trail_.size() - static_cast<size_t>(trail_lim_[0]);
    }
    last_assumptions_.assign(assumptions.begin(), assumptions.end());
  } else {
    CancelUntil(0);
  }
  if (DecisionLevel() == 0 && Propagate() != kNoClause) {
    ok_ = false;
    return SolveResult::kUnsat;
  }

  int restart_count = 0;
  uint64_t conflict_budget =
      100 * static_cast<uint64_t>(LubyUnit(restart_count));
  uint64_t conflicts_here = 0;
  std::vector<Lit>& learned = learned_tmp_;

  while (true) {
    ClauseRef confl = Propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      // Budget/interrupt check, once per conflict (the token itself only every
      // 64th — Expired() reads a clock). Checked after the root-conflict
      // branch so a definite UNSAT one line away is never traded for kUnknown.
      if (limits_active_ &&
          Interrupted(/*poll_token=*/(stats_.conflicts & 63) == 0)) {
        return AbortSolve();
      }
      // A conflict among assumption decisions alone (no free decisions below the
      // conflict's resolution) may require backjumping into the assumption prefix;
      // the assumptions are then re-decided. If the conflict persists with only
      // assumptions on the trail and analysis yields level 0, the unit is
      // propagated there; if an assumption is thereby falsified the decision step
      // below reports kUnsat.
      int bt_level = 0;
      Analyze(confl, &learned, &bt_level);
      // LBD must be read off levels_ before CancelUntil unassigns them.
      uint32_t lbd = ComputeLbd(learned);
      if (lbd <= 2) ++stats_.glue_clauses;
      CancelUntil(bt_level);
      if (learned.size() == 1) {
        if (ValueOf(learned[0]) == LBool::kFalse) {
          ok_ = false;
          return SolveResult::kUnsat;
        }
        if (ValueOf(learned[0]) == LBool::kUndef) Enqueue(learned[0], kNoClause);
      } else {
        ClauseRef cref = AllocClause(learned, /*learned=*/true, lbd);
        ++stats_.learned_clauses;
        Attach(cref);
        Enqueue(learned[0], cref);
      }
      DecayActivities();
      continue;
    }

    if (conflicts_here >= conflict_budget) {
      // Restart; reduce the learned DB at the root if it has outgrown its
      // budget, so descend-and-block runs do not accumulate clauses unboundedly.
      ++stats_.restarts;
      ++restart_count;
      conflict_budget = 100 * static_cast<uint64_t>(LubyUnit(restart_count));
      conflicts_here = 0;
      CancelUntil(0);
      if (learned_.size() >= reduce_limit_) {
        ReduceDb();
        reduce_limit_ += reduce_limit_ / 2;
      }
      continue;
    }

    // Propagation-budget check at decision points: long conflict-free
    // propagation stretches must not outrun the budget unchecked. Two integer
    // compares — no token poll here.
    if (limits_active_ && Interrupted(/*poll_token=*/false)) {
      return AbortSolve();
    }

    // Decision: assumptions first, then activity order.
    if (DecisionLevel() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[static_cast<size_t>(DecisionLevel())];
      LBool v = ValueOf(a);
      if (v == LBool::kFalse) {
        // Assumption contradicted. With trail reuse the consistent prefix
        // decided so far stays on the trail for the next call.
        if (!options_.reuse_assumption_trail) CancelUntil(0);
        return SolveResult::kUnsat;
      }
      NewDecisionLevel();
      if (v == LBool::kUndef) {
        Enqueue(a, kNoClause);
      }
      // If already true, the level is a placeholder so indices keep aligned.
      continue;
    }

    Var next = PickBranchVar();
    if (next < 0) {
      // All variables assigned: model found. With trail reuse the assumption
      // levels (re-established by the decision loop after any restart) stay on
      // the trail; only the free search levels above them are undone.
      model_.assign(values_.size(), 0);
      for (size_t i = 0; i < values_.size(); ++i) {
        model_[i] = values_[i] == LBool::kTrue ? 1 : -1;
      }
      CancelUntil(options_.reuse_assumption_trail
                      ? static_cast<int>(assumptions.size())
                      : 0);
      return SolveResult::kSat;
    }
    ++stats_.decisions;
    NewDecisionLevel();
    bool phase = saved_phase_[static_cast<size_t>(next)] >= 0;
    Enqueue(MkLit(next, !phase), kNoClause);
  }
}

}  // namespace kbt::sat
