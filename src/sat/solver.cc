#include "sat/solver.h"

#include <algorithm>
#include <cassert>

namespace kbt::sat {

Var Solver::NewVar() {
  Var v = num_vars();
  values_.push_back(LBool::kUndef);
  levels_.push_back(0);
  reasons_.push_back(kNoClause);
  activity_.push_back(0.0);
  saved_phase_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  order_heap_.push_back({0.0, v});
  std::push_heap(order_heap_.begin(), order_heap_.end());
  return v;
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  assert(DecisionLevel() == 0 && "AddClause only between Solve calls");
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  // Drop tautologies; remove false literals; detect satisfied clauses. The
  // surviving literals are compacted in place — no extra allocation per clause.
  size_t keep = 0;
  for (size_t i = 0; i < lits.size(); ++i) {
    Lit l = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == Negate(l) && VarOf(lits[i + 1]) == VarOf(l)) {
      return true;  // l and ¬l adjacent after sorting: tautology.
    }
    LBool v = ValueOf(l);
    if (v == LBool::kTrue) return true;  // Satisfied at top level.
    if (v == LBool::kFalse) continue;    // Falsified at top level: drop literal.
    lits[keep++] = l;
  }
  lits.resize(keep);
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    Enqueue(lits[0], kNoClause);
    if (Propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  if (clauses_.empty()) clauses_.reserve(256);
  clauses_.push_back(Clause{std::move(lits), false});
  Attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void Solver::Attach(ClauseRef cref) {
  const Clause& c = clauses_[static_cast<size_t>(cref)];
  assert(c.lits.size() >= 2);
  watches_[static_cast<size_t>(Negate(c.lits[0]))].push_back(cref);
  watches_[static_cast<size_t>(Negate(c.lits[1]))].push_back(cref);
}

void Solver::Enqueue(Lit l, ClauseRef reason) {
  assert(ValueOf(l) == LBool::kUndef);
  Var v = VarOf(l);
  values_[static_cast<size_t>(v)] = IsNegated(l) ? LBool::kFalse : LBool::kTrue;
  levels_[static_cast<size_t>(v)] = DecisionLevel();
  reasons_[static_cast<size_t>(v)] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    std::vector<ClauseRef>& watch_list = watches_[static_cast<size_t>(p)];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      ClauseRef cref = watch_list[i];
      Clause& c = clauses_[static_cast<size_t>(cref)];
      Lit false_lit = Negate(p);
      // Normalize: the falsified watched literal goes to slot 1.
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      if (ValueOf(c.lits[0]) == LBool::kTrue) {
        watch_list[keep++] = cref;  // Clause satisfied; keep watching.
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (size_t j = 2; j < c.lits.size(); ++j) {
        if (ValueOf(c.lits[j]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[j]);
          watches_[static_cast<size_t>(Negate(c.lits[1]))].push_back(cref);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // No replacement: unit or conflicting.
      watch_list[keep++] = cref;
      if (ValueOf(c.lits[0]) == LBool::kFalse) {
        // Conflict. Keep the remaining watchers, restore list, report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return cref;
      }
      Enqueue(c.lits[0], cref);
    }
    watch_list.resize(keep);
  }
  return kNoClause;
}

void Solver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  int target = trail_lim_[static_cast<size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= target; --i) {
    Var v = VarOf(trail_[static_cast<size_t>(i)]);
    saved_phase_[static_cast<size_t>(v)] =
        values_[static_cast<size_t>(v)] == LBool::kTrue ? 1 : -1;
    values_[static_cast<size_t>(v)] = LBool::kUndef;
    reasons_[static_cast<size_t>(v)] = kNoClause;
    order_heap_.push_back({activity_[static_cast<size_t>(v)], v});
    std::push_heap(order_heap_.begin(), order_heap_.end());
  }
  trail_.resize(static_cast<size_t>(target));
  trail_lim_.resize(static_cast<size_t>(level));
  propagate_head_ = trail_.size();
}

void Solver::BumpVar(Var v) {
  double& a = activity_[static_cast<size_t>(v)];
  a += var_inc_;
  if (a > 1e100) {
    for (double& x : activity_) x *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.push_back({activity_[static_cast<size_t>(v)], v});
  std::push_heap(order_heap_.begin(), order_heap_.end());
}

void Solver::DecayActivities() { var_inc_ /= 0.95; }

void Solver::Analyze(ClauseRef confl, std::vector<Lit>* learned, int* bt_level) {
  learned->clear();
  learned->push_back(0);  // Slot for the asserting (1UIP) literal.
  int counter = 0;
  Lit p = -1;
  size_t trail_index = trail_.size();
  std::vector<Var> to_clear;

  ClauseRef reason = confl;
  do {
    assert(reason != kNoClause);
    const Clause& c = clauses_[static_cast<size_t>(reason)];
    // On the first pass p == -1 and all literals are examined; afterwards the
    // asserting literal at c.lits[0] equals p and is skipped.
    for (size_t j = (p == -1 ? 0 : 1); j < c.lits.size(); ++j) {
      Lit q = c.lits[j];
      Var v = VarOf(q);
      if (seen_[static_cast<size_t>(v)] || levels_[static_cast<size_t>(v)] == 0) {
        continue;
      }
      seen_[static_cast<size_t>(v)] = 1;
      to_clear.push_back(v);
      BumpVar(v);
      if (levels_[static_cast<size_t>(v)] == DecisionLevel()) {
        ++counter;
      } else {
        learned->push_back(q);
      }
    }
    // Select the next trail literal marked seen.
    while (trail_index > 0 && !seen_[static_cast<size_t>(VarOf(trail_[trail_index - 1]))]) {
      --trail_index;
    }
    assert(trail_index > 0);
    --trail_index;
    p = trail_[trail_index];
    Var pv = VarOf(p);
    seen_[static_cast<size_t>(pv)] = 0;
    reason = reasons_[static_cast<size_t>(pv)];
    --counter;
  } while (counter > 0);
  (*learned)[0] = Negate(p);

  // Backtrack level: second-highest level in the learned clause.
  if (learned->size() == 1) {
    *bt_level = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < learned->size(); ++i) {
      if (levels_[static_cast<size_t>(VarOf((*learned)[i]))] >
          levels_[static_cast<size_t>(VarOf((*learned)[max_i]))]) {
        max_i = i;
      }
    }
    std::swap((*learned)[1], (*learned)[max_i]);
    *bt_level = levels_[static_cast<size_t>(VarOf((*learned)[1]))];
  }
  for (Var v : to_clear) seen_[static_cast<size_t>(v)] = 0;
}

Var Solver::PickBranchVar() {
  while (!order_heap_.empty()) {
    std::pop_heap(order_heap_.begin(), order_heap_.end());
    Var v = order_heap_.back().second;
    order_heap_.pop_back();
    if (values_[static_cast<size_t>(v)] == LBool::kUndef) return v;
  }
  return -1;
}

int Solver::LubyUnit(int i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  int k = 1;
  while ((1 << (k + 1)) <= i + 1) ++k;
  while ((1 << k) - 1 != i + 1) {
    i = i - (1 << k) + 1;
    k = 1;
    while ((1 << (k + 1)) <= i + 1) ++k;
  }
  return 1 << (k - 1);
}

SolveResult Solver::Solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  if (!ok_) return SolveResult::kUnsat;
  CancelUntil(0);
  if (Propagate() != kNoClause) {
    ok_ = false;
    return SolveResult::kUnsat;
  }

  int restart_count = 0;
  uint64_t conflict_budget =
      100 * static_cast<uint64_t>(LubyUnit(restart_count));
  uint64_t conflicts_here = 0;
  std::vector<Lit> learned;

  while (true) {
    ClauseRef confl = Propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      // A conflict among assumption decisions alone (no free decisions below the
      // conflict's resolution) may require backjumping into the assumption prefix;
      // the assumptions are then re-decided. If the conflict persists with only
      // assumptions on the trail and analysis yields level 0, the unit is
      // propagated there; if an assumption is thereby falsified the decision step
      // below reports kUnsat.
      int bt_level = 0;
      Analyze(confl, &learned, &bt_level);
      CancelUntil(bt_level);
      if (learned.size() == 1) {
        if (ValueOf(learned[0]) == LBool::kFalse) {
          ok_ = false;
          return SolveResult::kUnsat;
        }
        if (ValueOf(learned[0]) == LBool::kUndef) Enqueue(learned[0], kNoClause);
      } else {
        clauses_.push_back(Clause{learned, true});
        ++stats_.learned_clauses;
        ClauseRef cref = static_cast<ClauseRef>(clauses_.size() - 1);
        Attach(cref);
        Enqueue(learned[0], cref);
      }
      DecayActivities();
      continue;
    }

    if (conflicts_here >= conflict_budget) {
      // Restart.
      ++stats_.restarts;
      ++restart_count;
      conflict_budget = 100 * static_cast<uint64_t>(LubyUnit(restart_count));
      conflicts_here = 0;
      CancelUntil(0);
      continue;
    }

    // Decision: assumptions first, then activity order.
    if (DecisionLevel() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[static_cast<size_t>(DecisionLevel())];
      LBool v = ValueOf(a);
      if (v == LBool::kFalse) {
        CancelUntil(0);
        return SolveResult::kUnsat;  // Assumption contradicted.
      }
      NewDecisionLevel();
      if (v == LBool::kUndef) {
        Enqueue(a, kNoClause);
      }
      // If already true, the level is a placeholder so indices keep aligned.
      continue;
    }

    Var next = PickBranchVar();
    if (next < 0) {
      // All variables assigned: model found.
      model_.assign(values_.size(), 0);
      for (size_t i = 0; i < values_.size(); ++i) {
        model_[i] = values_[i] == LBool::kTrue ? 1 : -1;
      }
      CancelUntil(0);
      return SolveResult::kSat;
    }
    ++stats_.decisions;
    NewDecisionLevel();
    bool phase = saved_phase_[static_cast<size_t>(next)] >= 0;
    Enqueue(MkLit(next, !phase), kNoClause);
  }
}

}  // namespace kbt::sat
