#ifndef KBT_NET_REPL_HANDLER_H_
#define KBT_NET_REPL_HANDLER_H_

/// \file
/// The NetServer-side interface of a replication primary.
///
/// NetServer delegates the three replication request frames here so the net
/// layer never depends on src/repl/ (repl links against net for the wire
/// structs; this interface breaks the cycle). repl::Primary implements it.
///
/// Handlers run on connection worker threads. HandleFetch may park the worker
/// for the request's long-poll window; it must observe `cancel` (the server's
/// drain token) so a drain is never blocked behind a parked fetch.

#include "base/cancel.h"
#include "base/status.h"
#include "net/frame.h"

namespace kbt::net {

class ReplHandler {
 public:
  virtual ~ReplHandler() = default;

  /// Replication handshake: epoch exchange + catch-up plan.
  virtual StatusOr<WireReplSubscribeReply> HandleSubscribe(
      const WireReplSubscribe& sub) = 0;

  /// Record fetch (doubles as the follower's ack). Long-polls up to the
  /// request's wait_ms when nothing is available; `cancel` (nullable) aborts
  /// the wait early with an empty batch.
  virtual StatusOr<WireReplRecords> HandleFetch(const WireReplFetch& fetch,
                                                const CancelToken* cancel) = 0;

  /// One chunk of a checkpoint transfer (catch-up below the GC horizon).
  virtual StatusOr<WireReplCkptChunk> HandleCkptFetch(
      const WireReplCkptFetch& fetch) = 0;
};

}  // namespace kbt::net

#endif  // KBT_NET_REPL_HANDLER_H_
