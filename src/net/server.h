#ifndef KBT_NET_SERVER_H_
#define KBT_NET_SERVER_H_

/// \file
/// The socket front of serve::Server: accept loop, per-connection workers,
/// overload control, graceful drain.
///
/// Threading model — deliberately boring: one blocking accept thread, one
/// worker thread per connection, blocking frame IO with per-direction socket
/// timeouts. Robustness comes from four mechanisms, not from async IO:
///
///   * Framing: every malformed frame (bad magic/CRC/length/type) gets one
///     best-effort error reply, then the connection closes. The decoder is
///     total, so garbage can cost at most one connection, never the process.
///   * Overload control: beyond `max_connections` the accept loop *rejects
///     early* — one kUnavailable frame with a retry-after hint, then close —
///     instead of queueing forever; `max_in_flight` bounds the requests
///     executing concurrently the same way.
///   * Deadlines: each read request's deadline_ms becomes a CancelToken
///     parented on the server-wide drain token and rides serve → τ → μ → SAT.
///   * Drain: Shutdown() stops accepting, lets in-flight requests finish for
///     `drain_grace_ms`, then cancels the drain token (in-flight requests
///     unwind with kDeadlineExceeded at their next check), joins every
///     worker, and syncs the durable store. An acknowledged commit is on
///     disk before its reply frame leaves, so SIGTERM → Shutdown() never
///     loses acknowledged work (crash-matrix tested).
///
/// A worker that finishes (peer hung up, fatal frame error) deregisters
/// itself: it drops the connection's transport — closing the socket right
/// then, not at shutdown — and parks its thread handle on a finished list
/// the accept loop joins before each accept. A long-running server therefore
/// holds an fd and a thread stack only per *open* connection, never per
/// connection ever served.
///
/// ServeConnection is public: tests drive the exact production frame loop
/// over in-memory PipeTransport/FaultTransport pairs, deterministically.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/cancel.h"
#include "base/status.h"
#include "net/repl_handler.h"
#include "net/transport.h"
#include "serve/server.h"

namespace kbt::net {

struct NetServerOptions {
  /// Bind address; port 0 picks a free port (see NetServer::port()).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// listen(2) backlog — the kernel-side accept queue bound.
  int accept_backlog = 64;
  /// Connections served concurrently; beyond it new connections are rejected
  /// early with kUnavailable + retry-after. 0 = unlimited.
  size_t max_connections = 64;
  /// Requests executing concurrently across all connections; beyond it a
  /// request is rejected with kUnavailable + retry-after (the connection
  /// stays open). 0 = unlimited.
  size_t max_in_flight = 32;
  /// Per-connection socket timeouts (0 = none). An idle client costs a
  /// blocked thread, so production configs should set the read timeout.
  uint64_t read_timeout_ms = 0;
  uint64_t write_timeout_ms = 10'000;
  /// Retry-after hint sent with kUnavailable rejects.
  uint32_t retry_after_ms = 50;
  /// Shutdown(): how long in-flight requests may run before the drain token
  /// cancels them.
  uint64_t drain_grace_ms = 2'000;
  /// Replication primary hook (borrowed; must outlive the server). When set,
  /// the three repl request frames are delegated to it; when nullptr they are
  /// refused with kUnsupported. Repl frames bypass the in-flight cap — a
  /// parked long-poll fetch must not starve client requests (they still
  /// consume a connection slot).
  ReplHandler* repl = nullptr;
};

class NetServer {
 public:
  /// Serves `server` (borrowed; must outlive this). Does not listen yet.
  NetServer(serve::Server* server, NetServerOptions options);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and starts the accept thread.
  Status Start();

  /// The bound port (after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Graceful drain; see the file comment. Idempotent, thread- and
  /// signal-context-safe to *request* via RequestShutdown; the blocking work
  /// happens here.
  Status Shutdown();

  /// Async-signal-safe shutdown request (e.g. from a SIGTERM handler via
  /// self-pipe): flags the server; the accept thread then initiates drain.
  /// The caller of WaitForShutdown (or Shutdown) completes it.
  void RequestShutdown() { shutdown_requested_.store(true); }

  /// Blocks until RequestShutdown (or Shutdown from another thread), then
  /// performs the drain and returns its status.
  Status WaitForShutdown();

  /// Serves one connection's frame loop on the calling thread until the peer
  /// closes, a fatal frame error closes it, or drain completes. Public so
  /// tests can run the production loop over an in-memory transport.
  void ServeConnection(Transport& transport);

  struct NetStats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  ///< Over max_connections.
    uint64_t connections_reaped = 0;    ///< Worker threads joined so far.
    uint64_t open_connections = 0;      ///< Currently being served.
    uint64_t requests_ok = 0;
    uint64_t requests_rejected = 0;  ///< Over max_in_flight.
    uint64_t requests_failed = 0;    ///< Error replies (parse, deadline, ...).
    uint64_t malformed_frames = 0;   ///< Connections closed on bad frames.
  };
  NetStats net_stats() const;

  /// The server-wide drain token (parent of every request token).
  const CancelToken& drain_token() const { return drain_token_; }

 private:
  void AcceptLoop();
  /// Worker exit path: drops the connection's transport (closing the socket
  /// now) and moves its own thread handle to finished_threads_ for joining.
  void FinishConnection(uint64_t id, std::shared_ptr<Transport> transport);
  /// Joins every thread parked on finished_threads_. Called by the accept
  /// loop before each accept; Shutdown sweeps whatever remains.
  void ReapFinishedWorkers();
  /// One request–reply exchange. Returns false when the connection must
  /// close (clean EOF, malformed frame, IO error). `last_seq` is the
  /// connection's previous request seq, used to drop duplicated frames.
  bool ServeOneFrame(Transport& transport, serve::Session& session,
                     uint16_t* last_seq);
  /// Best-effort typed error reply (ignores write failures — the close that
  /// follows is the real signal). `seq` echoes the offending request; 0 for
  /// errors outside an exchange (accept-time rejects).
  void SendError(Transport& transport, const Status& status,
                 uint32_t retry_after_ms = 0, uint16_t seq = 0);

  serve::Server* server_;
  NetServerOptions options_;

  /// Atomic: the accept thread reads it while Shutdown claims-and-closes it
  /// (exchange to -1), after which accept fails with EBADF and the loop ends.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  CancelToken drain_token_;

  /// Drain result shared with every Shutdown/WaitForShutdown caller: the
  /// winner stores the store-Sync status here, losers wait on the condvar
  /// and report the same Status (a sync failure must not be visible to only
  /// one of two concurrent callers).
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_done_ = false;   // Guarded by shutdown_mu_.
  Status shutdown_status_;       // Guarded by shutdown_mu_.

  std::mutex conn_mu_;
  /// Live connections by id. Transports are shared with their worker thread
  /// so Shutdown() can unblock parked readers without racing a worker's
  /// exit; a worker erases its own entries via FinishConnection.
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::unordered_map<uint64_t, std::shared_ptr<Transport>> live_transports_;
  /// Handles of exited workers awaiting join (self-parked; a thread cannot
  /// join itself).
  std::vector<std::thread> finished_threads_;
  uint64_t next_conn_id_ = 0;  // Guarded by conn_mu_.
  std::atomic<size_t> open_connections_{0};
  std::atomic<size_t> in_flight_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> connections_reaped_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> malformed_frames_{0};
};

}  // namespace kbt::net

#endif  // KBT_NET_SERVER_H_
