#ifndef KBT_NET_CLIENT_H_
#define KBT_NET_CLIENT_H_

/// \file
/// The kbt wire-protocol client: typed calls, deadlines, retry with
/// exponential backoff, and strict retry-safety rules.
///
/// Retry policy — the part that keeps a flaky network from producing wrong
/// answers:
///
///   * Reads and stats are idempotent: retried on kUnavailable (reject-early
///     or connect failure), kIOError and kDataLoss (connection died or
///     corrupted — the request provably produced no observable effect), with
///     exponential backoff honoring the server's retry-after hint.
///   * Apply is NOT idempotent. It is retried only when the server provably
///     did not execute it: a typed kUnavailable reply (rejected before
///     execution) or a failure before the request bytes were sent. A
///     connection that dies *after* the request leaves returns kUnavailable
///     to the caller with `maybe_executed() == true` — the commit may or may
///     not have landed; re-running it is the caller's decision, typically
///     after checking the snapshot version.
///   * kDeadlineExceeded is never retried (the budget is spent) and neither
///     are semantic errors (parse, invalid argument, ...).
///
/// The transport is pluggable: production dials TCP, tests hand in a factory
/// producing PipeTransport/FaultTransport endpoints.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "net/frame.h"
#include "net/transport.h"

namespace kbt::net {

struct ClientOptions {
  /// Attempts per call (first try + retries).
  size_t max_attempts = 4;
  /// Backoff before retry k (doubles each retry; the server's retry-after
  /// hint overrides when larger).
  uint64_t initial_backoff_ms = 10;
  uint64_t max_backoff_ms = 1'000;
  /// Socket timeouts for dialed connections (0 = none).
  uint64_t connect_timeout_ms = 2'000;
  uint64_t read_timeout_ms = 30'000;
  uint64_t write_timeout_ms = 10'000;
  /// Test hook: sleeps replaced by a no-op when false (backoff becomes
  /// immediate; deterministic fault-matrix runs don't wait out real time).
  bool sleep_on_backoff = true;
};

struct ClientReadResult {
  bool holds = false;
  uint64_t snapshot_version = 0;
};

class Client {
 public:
  /// Client over a transport factory: called to (re)connect; each entry is
  /// one fresh connection. Tests inject pipe/fault transports here.
  using TransportFactory =
      std::function<StatusOr<std::unique_ptr<Transport>>()>;

  Client(TransportFactory factory, ClientOptions options = ClientOptions());

  /// TCP client for host:port.
  static Client Dial(std::string host, uint16_t port,
                     ClientOptions options = ClientOptions());

  /// One hypothetical read. `deadline_ms` (0 = none) rides the wire and
  /// bounds server-side evaluation.
  StatusOr<ClientReadResult> Read(const std::vector<std::string>& antecedents,
                                  const std::string& consequent,
                                  bool necessarily = true,
                                  uint64_t deadline_ms = 0);

  /// One transformation commit; see the retry rules in the file comment.
  StatusOr<uint64_t> Apply(const std::string& expression);

  /// Server counters.
  StatusOr<WireStatsReply> Stats();

  /// Liveness probe.
  Status Ping();

  /// True when the last Apply failed in a state where the server may have
  /// executed it anyway (connection died after the request bytes left).
  bool maybe_executed() const { return maybe_executed_; }

  /// Attempts spent by the last call (1 = no retries).
  size_t last_attempts() const { return last_attempts_; }

  /// Drops the cached connection (next call redials).
  void Disconnect();

 private:
  /// Sends `payload` as `type`, reads one reply frame, maps error frames to
  /// their typed Status. `sent` reports whether the request bytes left;
  /// `typed_reply` whether the error Status came from a server error frame
  /// (authoritative "not executed" when its code is kUnavailable).
  Status Exchange(uint8_t type, const std::string& payload,
                  uint8_t expected_reply, std::string* reply_payload,
                  bool* sent, bool* typed_reply, uint32_t* retry_after_ms);
  Status EnsureConnected();
  void Backoff(size_t attempt, uint32_t server_hint_ms);

  TransportFactory factory_;
  ClientOptions options_;
  std::unique_ptr<Transport> transport_;
  /// Request sequence number (wraps, skips 0 — 0 marks out-of-exchange
  /// frames). A success reply with a stale seq is discarded as kDataLoss, so
  /// a duplicated frame can cost a retry but never a wrong answer.
  uint16_t next_seq_ = 1;
  bool maybe_executed_ = false;
  size_t last_attempts_ = 0;
};

}  // namespace kbt::net

#endif  // KBT_NET_CLIENT_H_
