#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace kbt::net {

namespace {

/// True for errors where the request provably produced no observable effect
/// on this connection attempt (safe to retry idempotent *and* — when the
/// request never left — non-idempotent calls).
bool IsRetryableTransportError(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kIOError || s.code() == StatusCode::kDataLoss;
}

}  // namespace

Client::Client(TransportFactory factory, ClientOptions options)
    : factory_(std::move(factory)), options_(options) {}

Client Client::Dial(std::string host, uint16_t port, ClientOptions options) {
  ClientOptions opts = options;
  TransportFactory factory = [host = std::move(host), port, opts] {
    return DialTcp(host, port, opts.connect_timeout_ms, opts.read_timeout_ms,
                   opts.write_timeout_ms);
  };
  return Client(std::move(factory), options);
}

void Client::Disconnect() {
  if (transport_ != nullptr) transport_->Shutdown();
  transport_.reset();
}

Status Client::EnsureConnected() {
  if (transport_ != nullptr) return Status::OK();
  StatusOr<std::unique_ptr<Transport>> t = factory_();
  if (!t.ok()) return t.status();
  transport_ = std::move(*t);
  return Status::OK();
}

void Client::Backoff(size_t attempt, uint32_t server_hint_ms) {
  uint64_t backoff = options_.initial_backoff_ms;
  for (size_t i = 0; i < attempt; ++i) {
    backoff = std::min(backoff * 2, options_.max_backoff_ms);
  }
  backoff = std::max<uint64_t>(backoff, server_hint_ms);
  if (options_.sleep_on_backoff && backoff > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

Status Client::Exchange(uint8_t type, const std::string& payload,
                        uint8_t expected_reply, std::string* reply_payload,
                        bool* sent, bool* typed_reply,
                        uint32_t* retry_after_ms) {
  *sent = false;
  *typed_reply = false;
  *retry_after_ms = 0;
  KBT_RETURN_IF_ERROR(EnsureConnected());
  uint16_t seq = next_seq_++;
  if (next_seq_ == 0) next_seq_ = 1;  // 0 is reserved for unpaired frames.
  Status write = WriteFrame(*transport_, type, payload, seq);
  if (!write.ok()) {
    // A failed WriteAll may still have pushed bytes into the kernel buffer
    // before dying, so a write error does not prove the request never
    // arrived. Treat it conservatively as sent.
    *sent = true;
    Disconnect();
    return write;
  }
  *sent = true;
  uint8_t reply_type = 0;
  std::string reply;
  uint16_t reply_seq = 0;
  Status read = ReadFrame(*transport_, &reply_type, &reply, &reply_seq);
  if (!read.ok()) {
    Disconnect();
    return read;
  }
  if (reply_type == static_cast<uint8_t>(FrameType::kError)) {
    StatusOr<WireError> e = DecodeError(reply);
    if (!e.ok()) {
      Disconnect();
      return e.status();
    }
    // Errors are authoritative only when they answer *this* request (seq
    // matches) or precede any request (seq 0, an accept-time reject). A
    // stale error (duplicated frame) must not be read as "not executed" —
    // that would green-light an unsafe Apply retry.
    if (reply_seq != seq && reply_seq != 0) {
      Disconnect();
      return Status::DataLoss("stale error reply (seq " +
                              std::to_string(reply_seq) + " for request " +
                              std::to_string(seq) + ")");
    }
    *typed_reply = true;
    *retry_after_ms = e->retry_after_ms;
    // A typed error reply is an authoritative "not executed" for rejects
    // (kUnavailable) and a final answer for everything else. The connection
    // stays usable.
    return StatusFromError(*e);
  }
  if (reply_type != expected_reply || reply_seq != seq) {
    // Wrong type or a stale duplicate of an earlier reply: the stream is
    // desynced; drop the connection rather than trust it.
    Disconnect();
    return Status::DataLoss("unexpected reply (type " +
                            std::to_string(reply_type) + ", seq " +
                            std::to_string(reply_seq) + " for request " +
                            std::to_string(seq) + ")");
  }
  *reply_payload = std::move(reply);
  return Status::OK();
}

StatusOr<ClientReadResult> Client::Read(
    const std::vector<std::string>& antecedents, const std::string& consequent,
    bool necessarily, uint64_t deadline_ms) {
  if (antecedents.size() > kMaxChainDepth) {
    return Status::InvalidArgument("antecedent chain over wire cap");
  }
  WireReadRequest request;
  request.antecedents = antecedents;
  request.consequent = consequent;
  request.modality = necessarily ? 0 : 1;
  request.deadline_ms = deadline_ms;
  std::string payload = EncodeReadRequest(request);

  Status last = Status::Unavailable("no attempts made");
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    last_attempts_ = attempt + 1;
    std::string reply;
    bool sent = false;
    bool typed = false;
    uint32_t hint = 0;
    Status s = Exchange(static_cast<uint8_t>(FrameType::kReadRequest), payload,
                        static_cast<uint8_t>(FrameType::kReadReply), &reply,
                        &sent, &typed, &hint);
    if (s.ok()) {
      KBT_ASSIGN_OR_RETURN(WireReadReply decoded, DecodeReadReply(reply));
      ClientReadResult result;
      result.holds = decoded.holds;
      result.snapshot_version = decoded.snapshot_version;
      return result;
    }
    // Reads are idempotent: any transport-level error (or reject) retries.
    if (!IsRetryableTransportError(s)) return s;
    last = s;
    if (attempt + 1 < options_.max_attempts) Backoff(attempt, hint);
  }
  return last;
}

StatusOr<uint64_t> Client::Apply(const std::string& expression) {
  WireApplyRequest request;
  request.expression = expression;
  std::string payload = EncodeApplyRequest(request);
  maybe_executed_ = false;

  Status last = Status::Unavailable("no attempts made");
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    last_attempts_ = attempt + 1;
    std::string reply;
    bool sent = false;
    bool typed = false;
    uint32_t hint = 0;
    Status s = Exchange(static_cast<uint8_t>(FrameType::kApplyRequest), payload,
                        static_cast<uint8_t>(FrameType::kApplyReply), &reply,
                        &sent, &typed, &hint);
    if (s.ok()) {
      KBT_ASSIGN_OR_RETURN(WireApplyReply decoded, DecodeApplyReply(reply));
      return decoded.version;
    }
    // Non-idempotent: retry ONLY when the server provably did not execute —
    // a typed kUnavailable reply (rejected before execution) or a failure
    // before the request bytes left.
    bool provably_not_executed =
        !sent || (typed && s.code() == StatusCode::kUnavailable);
    if (!IsRetryableTransportError(s)) return s;
    if (!provably_not_executed) {
      maybe_executed_ = true;
      return Status::Unavailable(
          "apply outcome unknown: connection failed after request was sent (" +
          s.ToString() + ")");
    }
    last = s;
    if (attempt + 1 < options_.max_attempts) Backoff(attempt, hint);
  }
  return last;
}

StatusOr<WireStatsReply> Client::Stats() {
  Status last = Status::Unavailable("no attempts made");
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    last_attempts_ = attempt + 1;
    std::string reply;
    bool sent = false;
    bool typed = false;
    uint32_t hint = 0;
    Status s = Exchange(static_cast<uint8_t>(FrameType::kStatsRequest), "",
                        static_cast<uint8_t>(FrameType::kStatsReply), &reply,
                        &sent, &typed, &hint);
    if (s.ok()) return DecodeStatsReply(reply);
    if (!IsRetryableTransportError(s)) return s;
    last = s;
    if (attempt + 1 < options_.max_attempts) Backoff(attempt, hint);
  }
  return last;
}

Status Client::Ping() {
  std::string reply;
  bool sent = false;
  bool typed = false;
  uint32_t hint = 0;
  return Exchange(static_cast<uint8_t>(FrameType::kPing), "",
                  static_cast<uint8_t>(FrameType::kPong), &reply, &sent, &typed,
                  &hint);
}

}  // namespace kbt::net
