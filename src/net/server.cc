#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/frame.h"

namespace kbt::net {

namespace {

/// RAII in-flight slot: try-acquire against the cap, release on scope exit.
class InFlightSlot {
 public:
  InFlightSlot(std::atomic<size_t>* counter, size_t cap) : counter_(counter) {
    size_t current = counter_->load(std::memory_order_relaxed);
    while (cap == 0 || current < cap) {
      if (counter_->compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel)) {
        acquired_ = true;
        return;
      }
    }
  }
  ~InFlightSlot() {
    if (acquired_) counter_->fetch_sub(1, std::memory_order_acq_rel);
  }
  bool acquired() const { return acquired_; }

 private:
  std::atomic<size_t>* counter_;
  bool acquired_ = false;
};

}  // namespace

NetServer::NetServer(serve::Server* server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {}

NetServer::~NetServer() {
  // Best-effort drain if the owner forgot; Shutdown is idempotent.
  Shutdown();
}

Status NetServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOErrorFromErrno("socket", errno);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::IOErrorFromErrno("bind", errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.accept_backlog) != 0) {
    Status s = Status::IOErrorFromErrno("listen", errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinishedWorkers();
    if (shutdown_requested_.load(std::memory_order_acquire)) break;
    struct sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept(listen_fd_.load(std::memory_order_acquire),
                      reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      int err = errno;
      if (stopping_.load(std::memory_order_acquire)) break;
      // Per-connection failures (peer reset while queued in the backlog)
      // must not kill the listener for everyone else.
      if (err == EINTR || err == ECONNABORTED || err == EPROTO ||
          err == EAGAIN || err == EWOULDBLOCK) {
        continue;
      }
      // Descriptor/buffer exhaustion is transient: back off so in-flight
      // closes and the reap above can release resources, then retry.
      if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      // Terminal: the listener is gone (EBADF/EINVAL after Shutdown closed
      // it) or irrecoverably broken.
      break;
    }
    auto transport = std::make_shared<SocketTransport>(
        fd, options_.read_timeout_ms, options_.write_timeout_ms);
    // Reject-early beyond the connection cap: one typed frame, then close.
    // The client backs off and retries instead of parking in a queue that
    // only grows.
    size_t open = open_connections_.load(std::memory_order_acquire);
    if (options_.max_connections > 0 && open >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(*transport,
                Status::Unavailable("server at connection capacity"),
                options_.retry_after_ms);
      continue;  // The last shared_ptr closes the socket.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_acq_rel);
    // conn_mu_ is held across thread creation AND map insertion, so the
    // worker's exit-time FinishConnection (which takes conn_mu_) always
    // finds its entries registered, however fast the connection ends.
    std::lock_guard<std::mutex> lock(conn_mu_);
    uint64_t id = next_conn_id_++;
    live_transports_.emplace(id, transport);
    conn_threads_.emplace(
        id, std::thread([this, id, t = std::move(transport)]() mutable {
          ServeConnection(*t);
          FinishConnection(id, std::move(t));
        }));
  }
}

void NetServer::FinishConnection(uint64_t id,
                                 std::shared_ptr<Transport> transport) {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    live_transports_.erase(id);
    auto it = conn_threads_.find(id);
    if (it != conn_threads_.end()) {
      // Our own handle — a thread cannot join itself, so park it for the
      // accept loop (or Shutdown's sweep) to join. If Shutdown already moved
      // it out, it is joining us directly and there is nothing to park.
      finished_threads_.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
  }
  transport.reset();  // Last reference: the socket closes now, not at join.
  open_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

void NetServer::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    done.swap(finished_threads_);
  }
  // Join outside conn_mu_: a parked thread may still be finishing
  // FinishConnection's tail, and Shutdown's sweep takes the same lock.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
  connections_reaped_.fetch_add(done.size(), std::memory_order_relaxed);
}

void NetServer::ServeConnection(Transport& transport) {
  std::unique_ptr<serve::Session> session = server_->StartSession();
  uint16_t last_seq = 0;
  while (!drain_token_.cancelled()) {
    if (!ServeOneFrame(transport, *session, &last_seq)) break;
  }
  transport.Shutdown();
}

bool NetServer::ServeOneFrame(Transport& transport, serve::Session& session,
                              uint16_t* last_seq) {
  uint8_t type = 0;
  std::string payload;
  uint16_t seq = 0;
  Status read = ReadFrame(transport, &type, &payload, &seq);
  if (!read.ok()) {
    if (read.code() == StatusCode::kUnavailable) return false;  // Clean EOF.
    // Malformed or torn frame: one best-effort typed reply, then close. The
    // stream cannot be resynced after garbage, so the connection is done.
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    SendError(transport, read);
    return false;
  }
  // At-most-once guard: a client never reuses the seq of its previous request
  // on a connection, so a second frame with the same nonzero seq is a network
  // duplicate (retransmission-style). Executing it would double-apply a
  // non-idempotent commit; replying would desync the request–reply pairing.
  // Drop it silently.
  if (seq != 0 && seq == *last_seq) return true;
  *last_seq = seq;

  switch (static_cast<FrameType>(type)) {
    case FrameType::kPing: {
      Status s = WriteFrame(transport,
                            static_cast<uint8_t>(FrameType::kPong), "", seq);
      return s.ok();
    }
    case FrameType::kReadRequest: {
      StatusOr<WireReadRequest> decoded = DecodeReadRequest(payload);
      if (!decoded.ok()) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, decoded.status(), 0, seq);
        return false;
      }
      InFlightSlot slot(&in_flight_, options_.max_in_flight);
      if (!slot.acquired()) {
        requests_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, Status::Unavailable("server at request capacity"),
                  options_.retry_after_ms, seq);
        return true;  // Connection stays usable; the client backs off.
      }
      serve::ReadRequest request;
      request.antecedents = std::move(decoded->antecedents);
      request.consequent = std::move(decoded->consequent);
      request.modality = decoded->modality == 0 ? Modality::kNecessarily
                                                : Modality::kPossibly;
      request.deadline_ms = decoded->deadline_ms;
      request.cancel = &drain_token_;
      StatusOr<serve::ReadResult> result = session.Query(request);
      if (!result.ok()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, result.status(), 0, seq);
        // Semantic errors (bad formula, deadline) leave the connection and
        // the session fully usable; only transport-level trouble closes it.
        return true;
      }
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      WireReadReply reply;
      reply.holds = result->holds;
      reply.snapshot_version = result->snapshot_version;
      Status s = WriteFrame(transport,
                            static_cast<uint8_t>(FrameType::kReadReply),
                            EncodeReadReply(reply), seq);
      return s.ok();
    }
    case FrameType::kApplyRequest: {
      StatusOr<WireApplyRequest> decoded = DecodeApplyRequest(payload);
      if (!decoded.ok()) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, decoded.status(), 0, seq);
        return false;
      }
      InFlightSlot slot(&in_flight_, options_.max_in_flight);
      if (!slot.acquired()) {
        requests_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, Status::Unavailable("server at request capacity"),
                  options_.retry_after_ms, seq);
        return true;
      }
      if (drain_token_.cancelled()) {
        // Draining: no new commits — the store is about to be synced.
        requests_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, Status::Unavailable("server draining"),
                  options_.retry_after_ms, seq);
        return false;
      }
      StatusOr<uint64_t> version = server_->Apply(decoded->expression);
      if (!version.ok()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, version.status(), 0, seq);
        return true;
      }
      // The WAL write (durable mode) happened inside Apply: the commit is on
      // disk before this acknowledgment leaves the process.
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      WireApplyReply reply;
      reply.version = *version;
      Status s = WriteFrame(transport,
                            static_cast<uint8_t>(FrameType::kApplyReply),
                            EncodeApplyReply(reply), seq);
      return s.ok();
    }
    case FrameType::kReplSubscribe: {
      StatusOr<WireReplSubscribe> decoded = DecodeReplSubscribe(payload);
      if (!decoded.ok()) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, decoded.status(), 0, seq);
        return false;
      }
      if (options_.repl == nullptr) {
        SendError(transport,
                  Status::Unsupported("server is not a replication primary"),
                  0, seq);
        return true;
      }
      StatusOr<WireReplSubscribeReply> reply =
          options_.repl->HandleSubscribe(*decoded);
      if (!reply.ok()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, reply.status(), 0, seq);
        // Typed refusals (kFenced, kDataLoss) leave the connection open: the
        // follower decides whether to re-seed or stop.
        return true;
      }
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      Status s = WriteFrame(
          transport, static_cast<uint8_t>(FrameType::kReplSubscribeReply),
          EncodeReplSubscribeReply(*reply), seq);
      return s.ok();
    }
    case FrameType::kReplFetch: {
      StatusOr<WireReplFetch> decoded = DecodeReplFetch(payload);
      if (!decoded.ok()) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, decoded.status(), 0, seq);
        return false;
      }
      if (options_.repl == nullptr) {
        SendError(transport,
                  Status::Unsupported("server is not a replication primary"),
                  0, seq);
        return true;
      }
      // No InFlightSlot: a parked long-poll would pin a request slot for its
      // whole wait window and starve client traffic. The drain token bounds
      // the park instead.
      StatusOr<WireReplRecords> reply =
          options_.repl->HandleFetch(*decoded, &drain_token_);
      if (!reply.ok()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, reply.status(), 0, seq);
        return true;
      }
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      Status s = WriteFrame(transport,
                            static_cast<uint8_t>(FrameType::kReplRecords),
                            EncodeReplRecords(*reply), seq);
      return s.ok();
    }
    case FrameType::kReplCkptFetch: {
      StatusOr<WireReplCkptFetch> decoded = DecodeReplCkptFetch(payload);
      if (!decoded.ok()) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, decoded.status(), 0, seq);
        return false;
      }
      if (options_.repl == nullptr) {
        SendError(transport,
                  Status::Unsupported("server is not a replication primary"),
                  0, seq);
        return true;
      }
      StatusOr<WireReplCkptChunk> reply =
          options_.repl->HandleCkptFetch(*decoded);
      if (!reply.ok()) {
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
        SendError(transport, reply.status(), 0, seq);
        return true;
      }
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      Status s = WriteFrame(transport,
                            static_cast<uint8_t>(FrameType::kReplCkptChunk),
                            EncodeReplCkptChunk(*reply), seq);
      return s.ok();
    }
    case FrameType::kStatsRequest: {
      serve::Server::ServerStats st = server_->stats();
      WireStatsReply reply;
      reply.counters = {
          {"commits", st.commits},
          {"reads", st.reads},
          {"batches", st.batches},
          {"bank_hits", st.bank_hits},
          {"bank_misses", st.bank_misses},
          {"bank_budget_evictions", st.bank_budget_evictions},
          {"snapshot_version", st.snapshot_version},
          {"deadlines_exceeded", st.deadlines_exceeded},
          {"sat_interrupt_checks", st.sat_interrupt_checks},
          {"sat_budget_trips", st.sat_budget_trips},
      };
      Status s = WriteFrame(transport,
                            static_cast<uint8_t>(FrameType::kStatsReply),
                            EncodeStatsReply(reply), seq);
      return s.ok();
    }
    default:
      // Known type arriving on the wrong side (e.g. a client sending a
      // reply frame): protocol violation, close.
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      SendError(transport,
                Status::InvalidArgument("unexpected frame type " +
                                        std::to_string(type)),
                0, seq);
      return false;
  }
}

void NetServer::SendError(Transport& transport, const Status& status,
                          uint32_t retry_after_ms, uint16_t seq) {
  WireError e = ErrorFromStatus(status, retry_after_ms);
  if (status.code() == StatusCode::kReadOnly) {
    // A write refused at a replica carries the primary's address so the
    // client can redirect instead of retrying here forever.
    e.redirect = server_->redirect_hint();
  }
  // Best effort: the peer may already be gone.
  (void)WriteFrame(transport, static_cast<uint8_t>(FrameType::kError),
                   EncodeError(e), seq);
}

Status NetServer::WaitForShutdown() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    // RequestShutdown is async-signal-safe — a plain atomic store that
    // cannot notify a condvar from a signal handler — so the wait re-checks
    // that flag on a short timeout; a completed drain notifies directly.
    while (!shutdown_done_ &&
           !shutdown_requested_.load(std::memory_order_acquire)) {
      shutdown_cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
  }
  return Shutdown();
}

Status NetServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller runs the drain; wait for it and report the same result
    // (a store-sync failure must reach every caller, not just the winner).
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_done_; });
    return shutdown_status_;
  }

  // 1. Stop accepting: claim and close the listener, which unblocks accept()
  // (with EBADF; the loop sees stopping_ set and exits).
  int listener = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Grace period: in-flight requests finish normally.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.drain_grace_ms);
  while (in_flight_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 3. Cancel stragglers: every request token is parented on drain_token_,
  // so the SAT search unwinds at its next check with kDeadlineExceeded and
  // the client gets a typed error, not silence. Parked readers unblock via
  // transport shutdown.
  drain_token_.Cancel();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& entry : live_transports_) entry.second->Shutdown();
    for (auto& entry : conn_threads_) workers.push_back(std::move(entry.second));
    conn_threads_.clear();
    for (std::thread& t : finished_threads_) workers.push_back(std::move(t));
    finished_threads_.clear();
  }
  // Join OUTSIDE conn_mu_: an exiting worker takes it to deregister itself
  // in FinishConnection, and a join-under-lock would deadlock with that.
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  connections_reaped_.fetch_add(workers.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    live_transports_.clear();
  }

  // 4. Durability barrier: every acknowledged commit is already in the WAL
  // (Apply writes before replying); Sync covers group-commit/manual modes.
  Status sync = server_->Sync();
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_done_ = true;
    shutdown_status_ = sync;
  }
  shutdown_cv_.notify_all();
  return sync;
}

NetServer::NetStats NetServer::net_stats() const {
  NetStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.connections_reaped = connections_reaped_.load(std::memory_order_relaxed);
  s.open_connections = open_connections_.load(std::memory_order_acquire);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  s.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kbt::net
