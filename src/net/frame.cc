#include "net/frame.h"

#include <cstring>

#include "store/crc32.h"

namespace kbt::net {

namespace {

uint32_t ReadLeU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t ReadLeU64(const char* p) {
  return static_cast<uint64_t>(ReadLeU32(p)) |
         static_cast<uint64_t>(ReadLeU32(p + 4)) << 32;
}

}  // namespace

bool IsKnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kReadRequest) &&
         t <= static_cast<uint8_t>(FrameType::kReplCkptChunk);
}

StatusOr<std::string> EncodeFrame(FrameType type, std::string_view payload,
                                  uint16_t seq) {
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("frame payload exceeds cap: " +
                                   std::to_string(payload.size()));
  }
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  PutU32(&out, kWireMagic);
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU8(&out, static_cast<uint8_t>(seq & 0xff));
  PutU8(&out, static_cast<uint8_t>(seq >> 8));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, store::Crc32c(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

StatusOr<FrameHeader> DecodeHeader(std::string_view header) {
  if (header.size() != kHeaderSize) {
    return Status::DataLoss("frame header truncated: " +
                            std::to_string(header.size()) + " bytes");
  }
  const char* p = header.data();
  if (ReadLeU32(p) != kWireMagic) {
    return Status::DataLoss("bad frame magic");
  }
  uint8_t version = static_cast<uint8_t>(p[4]);
  if (version != kWireVersion) {
    return Status::DataLoss("unsupported wire version " +
                            std::to_string(version));
  }
  uint8_t type = static_cast<uint8_t>(p[5]);
  if (!IsKnownFrameType(type)) {
    return Status::DataLoss("unknown frame type " + std::to_string(type));
  }
  FrameHeader h;
  h.type = static_cast<FrameType>(type);
  h.seq = static_cast<uint16_t>(static_cast<uint8_t>(p[6]) |
                                static_cast<uint16_t>(static_cast<uint8_t>(p[7]))
                                    << 8);
  h.payload_len = ReadLeU32(p + 8);
  if (h.payload_len > kMaxPayload) {
    return Status::DataLoss("frame payload length over cap: " +
                            std::to_string(h.payload_len));
  }
  return h;
}

Status VerifyPayload(std::string_view header, std::string_view payload) {
  if (header.size() != kHeaderSize) {
    return Status::DataLoss("frame header truncated");
  }
  uint32_t expected = ReadLeU32(header.data() + 12);
  uint32_t actual = store::Crc32c(payload.data(), payload.size());
  if (expected != actual) {
    return Status::DataLoss("frame payload CRC mismatch");
  }
  return Status::OK();
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

StatusOr<uint8_t> PayloadReader::GetU8() {
  if (pos_ + 1 > data_.size()) return Status::DataLoss("payload underrun (u8)");
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> PayloadReader::GetU32() {
  if (pos_ + 4 > data_.size()) return Status::DataLoss("payload underrun (u32)");
  uint32_t v = ReadLeU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> PayloadReader::GetU64() {
  if (pos_ + 8 > data_.size()) return Status::DataLoss("payload underrun (u64)");
  uint64_t v = ReadLeU64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

StatusOr<std::string> PayloadReader::GetString(size_t max_len) {
  KBT_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > max_len) {
    return Status::DataLoss("string field over cap: " + std::to_string(len));
  }
  if (pos_ + len > data_.size()) {
    return Status::DataLoss("payload underrun (string)");
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Messages

std::string EncodeReadRequest(const WireReadRequest& r) {
  std::string out;
  PutU64(&out, r.deadline_ms);
  PutU8(&out, r.modality);
  PutU32(&out, static_cast<uint32_t>(r.antecedents.size()));
  for (const std::string& a : r.antecedents) PutString(&out, a);
  PutString(&out, r.consequent);
  return out;
}

StatusOr<WireReadRequest> DecodeReadRequest(std::string_view payload) {
  PayloadReader reader(payload);
  WireReadRequest r;
  KBT_ASSIGN_OR_RETURN(r.deadline_ms, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.modality, reader.GetU8());
  if (r.modality > 1) {
    return Status::DataLoss("bad modality byte " + std::to_string(r.modality));
  }
  KBT_ASSIGN_OR_RETURN(uint32_t n, reader.GetU32());
  if (n > kMaxChainDepth) {
    return Status::DataLoss("antecedent chain over cap: " + std::to_string(n));
  }
  r.antecedents.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KBT_ASSIGN_OR_RETURN(std::string a, reader.GetString());
    r.antecedents.push_back(std::move(a));
  }
  KBT_ASSIGN_OR_RETURN(r.consequent, reader.GetString());
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in read request");
  return r;
}

std::string EncodeReadReply(const WireReadReply& r) {
  std::string out;
  PutU8(&out, r.holds ? 1 : 0);
  PutU64(&out, r.snapshot_version);
  return out;
}

StatusOr<WireReadReply> DecodeReadReply(std::string_view payload) {
  PayloadReader reader(payload);
  WireReadReply r;
  KBT_ASSIGN_OR_RETURN(uint8_t holds, reader.GetU8());
  if (holds > 1) return Status::DataLoss("bad holds byte");
  r.holds = holds == 1;
  KBT_ASSIGN_OR_RETURN(r.snapshot_version, reader.GetU64());
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in read reply");
  return r;
}

std::string EncodeApplyRequest(const WireApplyRequest& r) {
  std::string out;
  PutString(&out, r.expression);
  return out;
}

StatusOr<WireApplyRequest> DecodeApplyRequest(std::string_view payload) {
  PayloadReader reader(payload);
  WireApplyRequest r;
  KBT_ASSIGN_OR_RETURN(r.expression, reader.GetString());
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in apply request");
  return r;
}

std::string EncodeApplyReply(const WireApplyReply& r) {
  std::string out;
  PutU64(&out, r.version);
  return out;
}

StatusOr<WireApplyReply> DecodeApplyReply(std::string_view payload) {
  PayloadReader reader(payload);
  WireApplyReply r;
  KBT_ASSIGN_OR_RETURN(r.version, reader.GetU64());
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in apply reply");
  return r;
}

std::string EncodeError(const WireError& e) {
  std::string out;
  PutU8(&out, e.code);
  PutU32(&out, e.retry_after_ms);
  PutString(&out, e.message);
  PutString(&out, e.redirect);
  return out;
}

StatusOr<WireError> DecodeError(std::string_view payload) {
  PayloadReader reader(payload);
  WireError e;
  KBT_ASSIGN_OR_RETURN(e.code, reader.GetU8());
  KBT_ASSIGN_OR_RETURN(e.retry_after_ms, reader.GetU32());
  KBT_ASSIGN_OR_RETURN(e.message, reader.GetString());
  KBT_ASSIGN_OR_RETURN(e.redirect, reader.GetString(4096));
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in error frame");
  return e;
}

WireError ErrorFromStatus(const Status& status, uint32_t retry_after_ms) {
  WireError e;
  e.code = static_cast<uint8_t>(status.code());
  e.retry_after_ms = retry_after_ms;
  e.message = status.message();
  return e;
}

Status StatusFromError(const WireError& e) {
  StatusCode code = static_cast<StatusCode>(e.code);
  switch (code) {
    case StatusCode::kOk:
      // An error frame must carry an error; a peer sending kOk is corrupt.
      return Status::DataLoss("error frame with OK code");
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kNotFound:
    case StatusCode::kUnsupported:
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kDataLoss:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kReadOnly:
    case StatusCode::kFenced:
      // A replica's write rejection names the primary; keep the hint visible
      // to callers that only look at the message.
      if (!e.redirect.empty()) {
        return Status(code, e.message + " (redirect: " + e.redirect + ")");
      }
      return Status(code, e.message);
  }
  return Status::DataLoss("error frame with unknown code " +
                          std::to_string(e.code));
}

std::string EncodeStatsReply(const WireStatsReply& r) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(r.counters.size()));
  for (const auto& [name, value] : r.counters) {
    PutString(&out, name);
    PutU64(&out, value);
  }
  return out;
}

StatusOr<WireStatsReply> DecodeStatsReply(std::string_view payload) {
  PayloadReader reader(payload);
  WireStatsReply r;
  KBT_ASSIGN_OR_RETURN(uint32_t n, reader.GetU32());
  if (n > 4096) return Status::DataLoss("stats counter count over cap");
  r.counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KBT_ASSIGN_OR_RETURN(std::string name, reader.GetString(4096));
    KBT_ASSIGN_OR_RETURN(uint64_t value, reader.GetU64());
    r.counters.emplace_back(std::move(name), value);
  }
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in stats reply");
  return r;
}

// ---------------------------------------------------------------------------
// Replication messages

std::string EncodeReplSubscribe(const WireReplSubscribe& r) {
  std::string out;
  PutString(&out, r.follower_id);
  PutU64(&out, r.epoch);
  PutU64(&out, r.start_lsn);
  PutU8(&out, r.has_state);
  return out;
}

StatusOr<WireReplSubscribe> DecodeReplSubscribe(std::string_view payload) {
  PayloadReader reader(payload);
  WireReplSubscribe r;
  KBT_ASSIGN_OR_RETURN(r.follower_id, reader.GetString(4096));
  KBT_ASSIGN_OR_RETURN(r.epoch, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.start_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.has_state, reader.GetU8());
  if (r.has_state > 1) return Status::DataLoss("bad has_state byte");
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in repl subscribe");
  }
  return r;
}

std::string EncodeReplSubscribeReply(const WireReplSubscribeReply& r) {
  std::string out;
  PutString(&out, r.primary_id);
  PutU64(&out, r.epoch);
  PutU64(&out, r.primary_lsn);
  PutU64(&out, r.horizon_lsn);
  PutU8(&out, r.need_snapshot);
  PutU64(&out, r.snapshot_lsn);
  PutU32(&out, static_cast<uint32_t>(r.epoch_history.size()));
  for (const auto& [epoch, start_lsn] : r.epoch_history) {
    PutU64(&out, epoch);
    PutU64(&out, start_lsn);
  }
  return out;
}

StatusOr<WireReplSubscribeReply> DecodeReplSubscribeReply(
    std::string_view payload) {
  PayloadReader reader(payload);
  WireReplSubscribeReply r;
  KBT_ASSIGN_OR_RETURN(r.primary_id, reader.GetString(4096));
  KBT_ASSIGN_OR_RETURN(r.epoch, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.primary_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.horizon_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.need_snapshot, reader.GetU8());
  if (r.need_snapshot > 1) return Status::DataLoss("bad need_snapshot byte");
  KBT_ASSIGN_OR_RETURN(r.snapshot_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(uint32_t n, reader.GetU32());
  if (n > kMaxEpochHistory) {
    return Status::DataLoss("epoch history over cap: " + std::to_string(n));
  }
  r.epoch_history.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KBT_ASSIGN_OR_RETURN(uint64_t epoch, reader.GetU64());
    KBT_ASSIGN_OR_RETURN(uint64_t start_lsn, reader.GetU64());
    r.epoch_history.emplace_back(epoch, start_lsn);
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in repl subscribe reply");
  }
  return r;
}

std::string EncodeReplFetch(const WireReplFetch& r) {
  std::string out;
  PutString(&out, r.follower_id);
  PutU64(&out, r.epoch);
  PutU64(&out, r.after_lsn);
  PutU32(&out, r.wait_ms);
  PutU32(&out, r.max_records);
  PutU32(&out, r.max_bytes);
  return out;
}

StatusOr<WireReplFetch> DecodeReplFetch(std::string_view payload) {
  PayloadReader reader(payload);
  WireReplFetch r;
  KBT_ASSIGN_OR_RETURN(r.follower_id, reader.GetString(4096));
  KBT_ASSIGN_OR_RETURN(r.epoch, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.after_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.wait_ms, reader.GetU32());
  KBT_ASSIGN_OR_RETURN(r.max_records, reader.GetU32());
  KBT_ASSIGN_OR_RETURN(r.max_bytes, reader.GetU32());
  if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in repl fetch");
  return r;
}

std::string EncodeReplRecords(const WireReplRecords& r) {
  std::string out;
  PutU64(&out, r.epoch);
  PutU64(&out, r.start_lsn);
  PutU64(&out, r.primary_lsn);
  PutU32(&out, static_cast<uint32_t>(r.records.size()));
  for (const auto& [kind, payload] : r.records) {
    PutU8(&out, kind);
    PutString(&out, payload);
  }
  return out;
}

StatusOr<WireReplRecords> DecodeReplRecords(std::string_view payload) {
  PayloadReader reader(payload);
  WireReplRecords r;
  KBT_ASSIGN_OR_RETURN(r.epoch, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.start_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.primary_lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(uint32_t n, reader.GetU32());
  if (n > kMaxReplBatch) {
    return Status::DataLoss("repl batch over cap: " + std::to_string(n));
  }
  r.records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KBT_ASSIGN_OR_RETURN(uint8_t kind, reader.GetU8());
    // Must be a store::WalRecordKind (kTransform/kInsert/kDelete).
    if (kind < 1 || kind > 3) {
      return Status::DataLoss("bad WAL record kind " + std::to_string(kind));
    }
    KBT_ASSIGN_OR_RETURN(std::string bytes, reader.GetString());
    r.records.emplace_back(kind, std::move(bytes));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in repl records");
  }
  return r;
}

std::string EncodeReplCkptFetch(const WireReplCkptFetch& r) {
  std::string out;
  PutU64(&out, r.lsn);
  PutU64(&out, r.offset);
  PutU32(&out, r.max_bytes);
  return out;
}

StatusOr<WireReplCkptFetch> DecodeReplCkptFetch(std::string_view payload) {
  PayloadReader reader(payload);
  WireReplCkptFetch r;
  KBT_ASSIGN_OR_RETURN(r.lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.offset, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.max_bytes, reader.GetU32());
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in ckpt fetch");
  }
  return r;
}

std::string EncodeReplCkptChunk(const WireReplCkptChunk& r) {
  std::string out;
  PutU64(&out, r.lsn);
  PutU64(&out, r.offset);
  PutU64(&out, r.total_size);
  PutString(&out, r.bytes);
  return out;
}

StatusOr<WireReplCkptChunk> DecodeReplCkptChunk(std::string_view payload) {
  PayloadReader reader(payload);
  WireReplCkptChunk r;
  KBT_ASSIGN_OR_RETURN(r.lsn, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.offset, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.total_size, reader.GetU64());
  KBT_ASSIGN_OR_RETURN(r.bytes, reader.GetString());
  if (r.offset + r.bytes.size() > r.total_size) {
    return Status::DataLoss("ckpt chunk overruns its total size");
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in ckpt chunk");
  }
  return r;
}

}  // namespace kbt::net
