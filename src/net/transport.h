#ifndef KBT_NET_TRANSPORT_H_
#define KBT_NET_TRANSPORT_H_

/// \file
/// Byte transports under the wire protocol.
///
/// Transport is the minimal blocking interface frame IO needs: read-fully,
/// write-fully, shutdown. Three implementations:
///
///   * SocketTransport — a connected TCP socket with per-direction timeouts
///     (SO_RCVTIMEO/SO_SNDTIMEO), the production path.
///   * PipeTransport — an in-memory duplex pipe (two byte queues + condvars),
///     giving tests a real two-endpoint connection with zero syscalls and
///     zero flakiness.
///   * FaultTransport — wraps another transport and injects one-shot faults
///     (drop, truncate, garbage, duplicate, delay) on either direction,
///     mirroring store/fault_env's failpoint discipline. This is what drives
///     the flaky-network matrix: every fault the net layer claims to survive
///     is injected deterministically and asserted on.
///
/// ReadFull returning kUnavailable means the peer closed cleanly between
/// frames; kIOError/kDataLoss mean the connection died or corrupted mid-read.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "base/status.h"

namespace kbt::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads exactly `n` bytes into `buf`, blocking as needed. kUnavailable =
  /// clean EOF before the first byte; kDataLoss = EOF mid-object (the peer
  /// died inside a frame); kIOError = syscall failure/timeout.
  virtual Status ReadFull(void* buf, size_t n) = 0;

  /// Writes all `n` bytes, blocking as needed.
  virtual Status WriteAll(const void* buf, size_t n) = 0;

  /// Shuts the connection down, unblocking any reader/writer (thread-safe;
  /// callable concurrently with ReadFull/WriteAll from another thread).
  virtual void Shutdown() = 0;
};

/// Writes one frame (EncodeFrame output) to `t`. `seq` pins a reply to its
/// request; 0 for frames outside an exchange.
Status WriteFrame(Transport& t, uint8_t type, std::string_view payload,
                  uint16_t seq = 0);

/// Reads one frame: header, validation, payload, CRC. Malformed input yields
/// the decoder's typed error without reading past the claimed length.
/// Outputs are only written on OK; `out_seq` is optional.
Status ReadFrame(Transport& t, uint8_t* out_type, std::string* out_payload,
                 uint16_t* out_seq = nullptr);

// ---------------------------------------------------------------------------

/// A connected socket. Takes ownership of `fd`.
class SocketTransport : public Transport {
 public:
  /// `read_timeout_ms`/`write_timeout_ms`: 0 = block forever.
  SocketTransport(int fd, uint64_t read_timeout_ms = 0,
                  uint64_t write_timeout_ms = 0);
  ~SocketTransport() override;

  Status ReadFull(void* buf, size_t n) override;
  Status WriteAll(const void* buf, size_t n) override;
  void Shutdown() override;

  int fd() const { return fd_; }

 private:
  int fd_;
};

/// Dials host:port (blocking). Returns a SocketTransport on success.
StatusOr<std::unique_ptr<Transport>> DialTcp(const std::string& host,
                                             uint16_t port,
                                             uint64_t connect_timeout_ms = 0,
                                             uint64_t read_timeout_ms = 0,
                                             uint64_t write_timeout_ms = 0);

// ---------------------------------------------------------------------------

/// One direction of an in-memory pipe: a bounded-unbounded byte queue.
/// Created in pairs by MakePipePair.
class PipeTransport : public Transport {
 public:
  /// Dropping an endpoint closes the connection (the peer unblocks with EOF),
  /// mirroring a socket close.
  ~PipeTransport() override { Shutdown(); }

  Status ReadFull(void* buf, size_t n) override;
  Status WriteAll(const void* buf, size_t n) override;
  void Shutdown() override;

 private:
  friend std::pair<std::unique_ptr<PipeTransport>,
                   std::unique_ptr<PipeTransport>>
  MakePipePair();

  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::string bytes;
    bool closed = false;
  };

  std::shared_ptr<Queue> in_;
  std::shared_ptr<Queue> out_;
};

/// Two connected endpoints: bytes written to one are read from the other.
std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>>
MakePipePair();

// ---------------------------------------------------------------------------

/// What a FaultTransport failpoint does when it fires.
enum class NetFaultKind : uint8_t {
  kDropConnection,  ///< Shut the underlying transport down instead of the op.
  kTruncate,        ///< Deliver/send only half the requested bytes, then drop.
  kGarbage,         ///< Flip bits in the bytes (payload delivered corrupted).
  kDuplicate,       ///< Writes only: send the bytes twice (stale-frame echo).
  kDelay,           ///< Sleep `delay` then do the op normally.
};

/// A transport wrapper with one-shot fault injection per direction, the
/// net-layer sibling of store::FaultInjectionEnv: arm a failpoint at the
/// N-th read or write, run the workload, assert the typed-error outcome.
class FaultTransport : public Transport {
 public:
  explicit FaultTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  /// Arms a one-shot fault at the `nth` ReadFull call from now (0 = next).
  void FailReadAt(size_t nth, NetFaultKind kind,
                  std::chrono::milliseconds delay = {});
  /// Arms a one-shot fault at the `nth` WriteAll call from now (0 = next).
  void FailWriteAt(size_t nth, NetFaultKind kind,
                   std::chrono::milliseconds delay = {});

  Status ReadFull(void* buf, size_t n) override;
  Status WriteAll(const void* buf, size_t n) override;
  void Shutdown() override;

  /// Faults actually fired so far (a test asserting an outcome should also
  /// assert its fault fired, or the run validated nothing).
  size_t faults_fired() const;

 private:
  struct Pending {
    bool armed = false;
    size_t countdown = 0;
    NetFaultKind kind = NetFaultKind::kDropConnection;
    std::chrono::milliseconds delay{};
  };

  /// Returns the fault to fire for this op, if armed and due.
  bool Due(Pending* p, Pending* fired);

  std::unique_ptr<Transport> inner_;
  mutable std::mutex mu_;
  Pending read_fault_;
  Pending write_fault_;
  size_t fired_ = 0;
};

}  // namespace kbt::net

#endif  // KBT_NET_TRANSPORT_H_
