#include "net/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/frame.h"

namespace kbt::net {

Status WriteFrame(Transport& t, uint8_t type, std::string_view payload,
                  uint16_t seq) {
  KBT_ASSIGN_OR_RETURN(
      std::string frame,
      EncodeFrame(static_cast<FrameType>(type), payload, seq));
  return t.WriteAll(frame.data(), frame.size());
}

Status ReadFrame(Transport& t, uint8_t* out_type, std::string* out_payload,
                 uint16_t* out_seq) {
  char header[kHeaderSize];
  KBT_RETURN_IF_ERROR(t.ReadFull(header, kHeaderSize));
  std::string_view header_view(header, kHeaderSize);
  KBT_ASSIGN_OR_RETURN(FrameHeader decoded, DecodeHeader(header_view));
  std::string payload;
  payload.resize(decoded.payload_len);
  if (decoded.payload_len > 0) {
    Status read = t.ReadFull(payload.data(), payload.size());
    if (!read.ok()) {
      // EOF between frames is clean; EOF inside a frame body is data loss.
      if (read.code() == StatusCode::kUnavailable) {
        return Status::DataLoss("connection closed mid-frame");
      }
      return read;
    }
  }
  KBT_RETURN_IF_ERROR(VerifyPayload(header_view, payload));
  *out_type = static_cast<uint8_t>(decoded.type);
  *out_payload = std::move(payload);
  if (out_seq != nullptr) *out_seq = decoded.seq;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SocketTransport

namespace {

/// ms == 0 still calls setsockopt — a zero timeval means "block forever" —
/// so a timeout set on the fd in an earlier phase (DialTcp's connect budget
/// on SO_SNDTIMEO) never silently outlives that phase.
void SetSocketTimeout(int fd, int opt, uint64_t ms) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

}  // namespace

SocketTransport::SocketTransport(int fd, uint64_t read_timeout_ms,
                                 uint64_t write_timeout_ms)
    : fd_(fd) {
  SetSocketTimeout(fd_, SO_RCVTIMEO, read_timeout_ms);
  SetSocketTimeout(fd_, SO_SNDTIMEO, write_timeout_ms);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status SocketTransport::ReadFull(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      return got == 0 ? Status::Unavailable("connection closed by peer")
                      : Status::DataLoss("connection closed mid-read");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("socket read timeout");
    }
    return Status::IOErrorFromErrno("socket read", errno);
  }
  return Status::OK();
}

Status SocketTransport::WriteAll(const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("socket write timeout");
    }
    return Status::IOErrorFromErrno("socket write", errno);
  }
  return Status::OK();
}

void SocketTransport::Shutdown() {
  // shutdown() (not close()) so a concurrent reader unblocks with EOF rather
  // than racing a reused descriptor.
  ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<std::unique_ptr<Transport>> DialTcp(const std::string& host,
                                             uint16_t port,
                                             uint64_t connect_timeout_ms,
                                             uint64_t read_timeout_ms,
                                             uint64_t write_timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::Unavailable(std::string("resolve ") + host + ": " +
                               ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOErrorFromErrno("socket", errno);
      continue;
    }
    // Connect under the write timeout: a SYN that never answers must not
    // hang the client past its budget. The SocketTransport constructor
    // resets SO_SNDTIMEO to the real write timeout after connect succeeds.
    SetSocketTimeout(fd, SO_SNDTIMEO, connect_timeout_ms);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(result);
      return std::unique_ptr<Transport>(
          new SocketTransport(fd, read_timeout_ms, write_timeout_ms));
    }
    last = Status::Unavailable(std::string("connect ") + host + ":" +
                               port_str + ": " + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return last;
}

// ---------------------------------------------------------------------------
// PipeTransport

std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>>
MakePipePair() {
  auto a_to_b = std::make_shared<PipeTransport::Queue>();
  auto b_to_a = std::make_shared<PipeTransport::Queue>();
  auto a = std::unique_ptr<PipeTransport>(new PipeTransport());
  auto b = std::unique_ptr<PipeTransport>(new PipeTransport());
  a->in_ = b_to_a;
  a->out_ = a_to_b;
  b->in_ = a_to_b;
  b->out_ = b_to_a;
  return {std::move(a), std::move(b)};
}

Status PipeTransport::ReadFull(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  std::unique_lock<std::mutex> lock(in_->mu);
  while (got < n) {
    in_->cv.wait(lock, [&] { return !in_->bytes.empty() || in_->closed; });
    if (in_->bytes.empty() && in_->closed) {
      return got == 0 ? Status::Unavailable("pipe closed by peer")
                      : Status::DataLoss("pipe closed mid-read");
    }
    size_t take = std::min(n - got, in_->bytes.size());
    std::memcpy(p + got, in_->bytes.data(), take);
    in_->bytes.erase(0, take);
    got += take;
  }
  return Status::OK();
}

Status PipeTransport::WriteAll(const void* buf, size_t n) {
  std::lock_guard<std::mutex> lock(out_->mu);
  if (out_->closed) return Status::IOError("pipe closed");
  out_->bytes.append(static_cast<const char*>(buf), n);
  out_->cv.notify_all();
  return Status::OK();
}

void PipeTransport::Shutdown() {
  for (const std::shared_ptr<Queue>& q : {in_, out_}) {
    std::lock_guard<std::mutex> lock(q->mu);
    q->closed = true;
    q->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// FaultTransport

void FaultTransport::FailReadAt(size_t nth, NetFaultKind kind,
                                std::chrono::milliseconds delay) {
  std::lock_guard<std::mutex> lock(mu_);
  read_fault_ = Pending{true, nth, kind, delay};
}

void FaultTransport::FailWriteAt(size_t nth, NetFaultKind kind,
                                 std::chrono::milliseconds delay) {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_ = Pending{true, nth, kind, delay};
}

bool FaultTransport::Due(Pending* p, Pending* fired) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!p->armed) return false;
  if (p->countdown > 0) {
    --p->countdown;
    return false;
  }
  *fired = *p;
  p->armed = false;  // One-shot.
  ++fired_;
  return true;
}

void FaultTransport::Shutdown() { inner_->Shutdown(); }

size_t FaultTransport::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status FaultTransport::ReadFull(void* buf, size_t n) {
  Pending fault;
  if (!Due(&read_fault_, &fault)) return inner_->ReadFull(buf, n);
  switch (fault.kind) {
    case NetFaultKind::kDropConnection:
      inner_->Shutdown();
      return Status::IOError("injected: connection dropped before read");
    case NetFaultKind::kTruncate: {
      // Deliver half the bytes, then the connection dies.
      size_t half = n / 2;
      Status s = inner_->ReadFull(buf, half);
      inner_->Shutdown();
      if (!s.ok()) return s;
      return Status::DataLoss("injected: connection died mid-read");
    }
    case NetFaultKind::kGarbage: {
      KBT_RETURN_IF_ERROR(inner_->ReadFull(buf, n));
      // Flip bits across the received bytes — CRC/magic checks must catch it.
      char* p = static_cast<char*>(buf);
      for (size_t i = 0; i < n; i += 7) p[i] = static_cast<char>(p[i] ^ 0x5a);
      return Status::OK();
    }
    case NetFaultKind::kDuplicate:
      // Duplication is a write-side fault; on the read side treat as delay.
      return inner_->ReadFull(buf, n);
    case NetFaultKind::kDelay:
      std::this_thread::sleep_for(fault.delay);
      return inner_->ReadFull(buf, n);
  }
  return Status::Internal("unreachable fault kind");
}

Status FaultTransport::WriteAll(const void* buf, size_t n) {
  Pending fault;
  if (!Due(&write_fault_, &fault)) return inner_->WriteAll(buf, n);
  switch (fault.kind) {
    case NetFaultKind::kDropConnection:
      inner_->Shutdown();
      return Status::IOError("injected: connection dropped before write");
    case NetFaultKind::kTruncate: {
      Status s = inner_->WriteAll(buf, n / 2);
      inner_->Shutdown();
      if (!s.ok()) return s;
      return Status::IOError("injected: connection died mid-write");
    }
    case NetFaultKind::kGarbage: {
      std::string corrupted(static_cast<const char*>(buf), n);
      for (size_t i = 0; i < n; i += 7) {
        corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5a);
      }
      // The bytes leave corrupted but the local write "succeeds" — exactly a
      // network-level corruption the peer must detect.
      return inner_->WriteAll(corrupted.data(), corrupted.size());
    }
    case NetFaultKind::kDuplicate: {
      KBT_RETURN_IF_ERROR(inner_->WriteAll(buf, n));
      return inner_->WriteAll(buf, n);
    }
    case NetFaultKind::kDelay:
      std::this_thread::sleep_for(fault.delay);
      return inner_->WriteAll(buf, n);
  }
  return Status::Internal("unreachable fault kind");
}

}  // namespace kbt::net
