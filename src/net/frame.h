#ifndef KBT_NET_FRAME_H_
#define KBT_NET_FRAME_H_

/// \file
/// The kbt wire protocol: length-prefixed, CRC-guarded binary frames.
///
/// Every message on a connection is one frame:
///
///   offset  size  field
///   0       4     magic       0x4B425457 ("KBTW"), little-endian
///   4       1     version     kWireVersion
///   5       1     type        FrameType
///   6       2     seq         request sequence number; replies echo it
///   8       4     payload_len bytes following the header (≤ kMaxPayload)
///   12      4     crc32c      CRC-32C of the payload bytes (store/crc32)
///
/// `seq` pins each reply to its request: a client numbers requests 1, 2, …
/// and discards any success reply whose echoed seq does not match the
/// request in flight. Without it, a duplicated frame (retransmission-style
/// fault) desyncs the strict request–reply pairing and a later read could
/// consume a stale reply of the right type — a silently *wrong answer*.
/// Frames originated outside a request–reply exchange (accept-time rejects)
/// use seq 0.
///
/// The header is fixed-size (kHeaderSize = 16) so a reader always knows how
/// many bytes to expect next; the CRC catches payload corruption and the
/// magic/version/len checks catch header corruption, desync and garbage.
/// Decoding is total: any malformed input yields a typed Status
/// (kDataLoss/kInvalidArgument), never a crash or an over-allocation — the
/// payload buffer is only sized after the length passed its cap.
///
/// Payloads are flat little-endian fields and u32-length-prefixed strings
/// (see the Put*/Get* helpers). Hard caps — frame length, antecedent chain
/// depth, batch size — are enforced at both encode and decode time, so a
/// malicious or corrupt peer cannot make the server allocate unboundedly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace kbt::net {

inline constexpr uint32_t kWireMagic = 0x4B425457;  // "KBTW"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 16;
/// Hard cap on one frame's payload. Large enough for any sane request or
/// reply, small enough that a corrupt length field cannot OOM the peer.
inline constexpr size_t kMaxPayload = 8u << 20;  // 8 MiB
/// Hard cap on a read request's antecedent chain depth.
inline constexpr size_t kMaxChainDepth = 64;
/// Hard cap on requests in one batch frame.
inline constexpr size_t kMaxBatch = 1024;
/// Hard cap on WAL records in one replication batch frame.
inline constexpr size_t kMaxReplBatch = 512;
/// Hard cap on epoch-history entries in a subscribe reply (one per promotion
/// over the store's lifetime; far beyond any sane deployment).
inline constexpr size_t kMaxEpochHistory = 4096;

enum class FrameType : uint8_t {
  kReadRequest = 1,        ///< client → server: one hypothetical read
  kReadReply = 2,          ///< server → client: ReadResult
  kApplyRequest = 3,       ///< client → server: transformation expression
  kApplyReply = 4,         ///< server → client: committed version
  kError = 5,              ///< server → client: typed Status (+ retry-after hint)
  kPing = 6,               ///< either direction: liveness probe
  kPong = 7,               ///< reply to kPing
  kStatsRequest = 8,       ///< client → server: server counters
  kStatsReply = 9,         ///< server → client: counter list
  kReplSubscribe = 10,     ///< follower → primary: replication handshake
  kReplSubscribeReply = 11,///< primary → follower: epoch + catch-up plan
  kReplFetch = 12,         ///< follower → primary: long-poll fetch (+ ack)
  kReplRecords = 13,       ///< primary → follower: WAL record batch
  kReplCkptFetch = 14,     ///< follower → primary: checkpoint chunk request
  kReplCkptChunk = 15,     ///< primary → follower: checkpoint chunk
};

/// True iff `t` is a defined FrameType value.
bool IsKnownFrameType(uint8_t t);

/// A decoded frame: type + owned payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Serializes a frame (header + payload). Fails with kInvalidArgument when
/// the payload exceeds kMaxPayload.
StatusOr<std::string> EncodeFrame(FrameType type, std::string_view payload,
                                  uint16_t seq = 0);

/// A validated frame header.
struct FrameHeader {
  FrameType type = FrameType::kError;
  uint32_t payload_len = 0;
  uint16_t seq = 0;
};

/// Validates a header. Fails with kDataLoss on bad magic/version/type bytes
/// or an over-cap length. `header` must be exactly kHeaderSize bytes.
StatusOr<FrameHeader> DecodeHeader(std::string_view header);

/// Verifies the payload against the header's CRC. `header` must have passed
/// DecodeHeader; fails with kDataLoss on mismatch.
Status VerifyPayload(std::string_view header, std::string_view payload);

// ---------------------------------------------------------------------------
// Payload field helpers (little-endian, bounds-checked reads).

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// u32 length prefix + bytes.
void PutString(std::string* out, std::string_view s);

/// Cursor over a payload; every Get* checks bounds and fails with kDataLoss
/// instead of reading past the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  /// Reads a u32-prefixed string; `max_len` guards against corrupt prefixes.
  StatusOr<std::string> GetString(size_t max_len = kMaxPayload);

  /// True when the cursor consumed every byte (trailing garbage = corrupt).
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Message payloads. Encode/Decode pairs for each frame type; decode is total.

struct WireReadRequest {
  std::vector<std::string> antecedents;
  std::string consequent;
  uint8_t modality = 0;  ///< 0 = necessarily, 1 = possibly
  uint64_t deadline_ms = 0;
};

std::string EncodeReadRequest(const WireReadRequest& r);
StatusOr<WireReadRequest> DecodeReadRequest(std::string_view payload);

struct WireReadReply {
  bool holds = false;
  uint64_t snapshot_version = 0;
};

std::string EncodeReadReply(const WireReadReply& r);
StatusOr<WireReadReply> DecodeReadReply(std::string_view payload);

struct WireApplyRequest {
  std::string expression;
};

std::string EncodeApplyRequest(const WireApplyRequest& r);
StatusOr<WireApplyRequest> DecodeApplyRequest(std::string_view payload);

struct WireApplyReply {
  uint64_t version = 0;
};

std::string EncodeApplyReply(const WireApplyReply& r);
StatusOr<WireApplyReply> DecodeApplyReply(std::string_view payload);

struct WireError {
  uint8_t code = 0;  ///< StatusCode as u8
  uint32_t retry_after_ms = 0;  ///< 0 = no hint; set on kUnavailable rejects
  std::string message;
  /// Where to go instead ("host:port"); set on kReadOnly rejects at a
  /// replica so a writing client can find the primary. Empty = no hint.
  std::string redirect;
};

std::string EncodeError(const WireError& e);
StatusOr<WireError> DecodeError(std::string_view payload);
/// Sugar: WireError from a Status (+ optional retry hint).
WireError ErrorFromStatus(const Status& status, uint32_t retry_after_ms = 0);
/// The inverse: a typed Status reconstructed from an error frame.
Status StatusFromError(const WireError& e);

struct WireStatsReply {
  /// (name, value) counter pairs, server-defined.
  std::vector<std::pair<std::string, uint64_t>> counters;
};

std::string EncodeStatsReply(const WireStatsReply& r);
StatusOr<WireStatsReply> DecodeStatsReply(std::string_view payload);

// ---------------------------------------------------------------------------
// Replication messages (primary/replica WAL shipping; see docs/replication.md).
//
// The protocol is pull-based strict request/reply: the follower subscribes,
// then long-polls record batches, so the existing seq/at-most-once machinery
// and retry rules apply to the replication link unchanged. A fetch's
// `after_lsn` doubles as the follower's durable ack — everything ≤ after_lsn
// is on the follower's own WAL — which drives both semi-sync commit waits and
// the primary's GC retention pin.

struct WireReplSubscribe {
  std::string follower_id;
  /// The follower's persisted epoch; 0 = never attached to any primary.
  uint64_t epoch = 0;
  /// The follower's committed lsn (meaningless when has_state = 0).
  uint64_t start_lsn = 0;
  /// 0 = fresh follower with no local store: always seeded by checkpoint.
  uint8_t has_state = 0;
};

std::string EncodeReplSubscribe(const WireReplSubscribe& r);
StatusOr<WireReplSubscribe> DecodeReplSubscribe(std::string_view payload);

struct WireReplSubscribeReply {
  std::string primary_id;
  uint64_t epoch = 0;
  uint64_t primary_lsn = 0;
  /// Oldest lsn fetchable from the primary's log files (the GC horizon):
  /// records with lsn > horizon_lsn can be shipped; a follower whose
  /// start_lsn is below it must re-seed from the snapshot.
  uint64_t horizon_lsn = 0;
  /// 1 = the follower must install checkpoint `snapshot_lsn` (chunked
  /// transfer) before fetching records.
  uint8_t need_snapshot = 0;
  uint64_t snapshot_lsn = 0;
  /// (epoch, start_lsn) per promotion, oldest first — the primary's lineage.
  /// The follower persists it; a future primary uses it to decide whether a
  /// stale-epoch subscriber's log is a safe prefix or must re-seed.
  std::vector<std::pair<uint64_t, uint64_t>> epoch_history;
};

std::string EncodeReplSubscribeReply(const WireReplSubscribeReply& r);
StatusOr<WireReplSubscribeReply> DecodeReplSubscribeReply(
    std::string_view payload);

struct WireReplFetch {
  std::string follower_id;
  /// The epoch the follower adopted at subscribe; a mismatch fences one side.
  uint64_t epoch = 0;
  /// Fetch records with lsn > after_lsn. Doubles as the durable ack.
  uint64_t after_lsn = 0;
  /// Long-poll bound: when no records are available, the primary parks the
  /// request up to this long before replying with an empty batch. Clamped
  /// server-side.
  uint32_t wait_ms = 0;
  uint32_t max_records = 0;  ///< 0 = server default (≤ kMaxReplBatch).
  uint32_t max_bytes = 0;    ///< 0 = server default.
};

std::string EncodeReplFetch(const WireReplFetch& r);
StatusOr<WireReplFetch> DecodeReplFetch(std::string_view payload);

struct WireReplRecords {
  /// The primary's epoch: a follower on a newer epoch refuses the batch.
  uint64_t epoch = 0;
  /// lsn of the first record in the batch (= request's after_lsn + 1).
  uint64_t start_lsn = 0;
  /// The primary's committed lsn at reply time (lag = primary_lsn - acked).
  uint64_t primary_lsn = 0;
  /// (kind, payload) pairs, exactly the store's WAL record bytes.
  std::vector<std::pair<uint8_t, std::string>> records;
};

std::string EncodeReplRecords(const WireReplRecords& r);
StatusOr<WireReplRecords> DecodeReplRecords(std::string_view payload);

struct WireReplCkptFetch {
  uint64_t lsn = 0;     ///< Which checkpoint (from the subscribe reply).
  uint64_t offset = 0;  ///< Byte offset into the checkpoint file.
  uint32_t max_bytes = 0;  ///< 0 = server default.
};

std::string EncodeReplCkptFetch(const WireReplCkptFetch& r);
StatusOr<WireReplCkptFetch> DecodeReplCkptFetch(std::string_view payload);

struct WireReplCkptChunk {
  uint64_t lsn = 0;
  uint64_t offset = 0;
  /// Total checkpoint file size; the transfer is done when
  /// offset + bytes.size() == total_size.
  uint64_t total_size = 0;
  std::string bytes;
};

std::string EncodeReplCkptChunk(const WireReplCkptChunk& r);
StatusOr<WireReplCkptChunk> DecodeReplCkptChunk(std::string_view payload);

}  // namespace kbt::net

#endif  // KBT_NET_FRAME_H_
