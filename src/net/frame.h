#ifndef KBT_NET_FRAME_H_
#define KBT_NET_FRAME_H_

/// \file
/// The kbt wire protocol: length-prefixed, CRC-guarded binary frames.
///
/// Every message on a connection is one frame:
///
///   offset  size  field
///   0       4     magic       0x4B425457 ("KBTW"), little-endian
///   4       1     version     kWireVersion
///   5       1     type        FrameType
///   6       2     seq         request sequence number; replies echo it
///   8       4     payload_len bytes following the header (≤ kMaxPayload)
///   12      4     crc32c      CRC-32C of the payload bytes (store/crc32)
///
/// `seq` pins each reply to its request: a client numbers requests 1, 2, …
/// and discards any success reply whose echoed seq does not match the
/// request in flight. Without it, a duplicated frame (retransmission-style
/// fault) desyncs the strict request–reply pairing and a later read could
/// consume a stale reply of the right type — a silently *wrong answer*.
/// Frames originated outside a request–reply exchange (accept-time rejects)
/// use seq 0.
///
/// The header is fixed-size (kHeaderSize = 16) so a reader always knows how
/// many bytes to expect next; the CRC catches payload corruption and the
/// magic/version/len checks catch header corruption, desync and garbage.
/// Decoding is total: any malformed input yields a typed Status
/// (kDataLoss/kInvalidArgument), never a crash or an over-allocation — the
/// payload buffer is only sized after the length passed its cap.
///
/// Payloads are flat little-endian fields and u32-length-prefixed strings
/// (see the Put*/Get* helpers). Hard caps — frame length, antecedent chain
/// depth, batch size — are enforced at both encode and decode time, so a
/// malicious or corrupt peer cannot make the server allocate unboundedly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace kbt::net {

inline constexpr uint32_t kWireMagic = 0x4B425457;  // "KBTW"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 16;
/// Hard cap on one frame's payload. Large enough for any sane request or
/// reply, small enough that a corrupt length field cannot OOM the peer.
inline constexpr size_t kMaxPayload = 8u << 20;  // 8 MiB
/// Hard cap on a read request's antecedent chain depth.
inline constexpr size_t kMaxChainDepth = 64;
/// Hard cap on requests in one batch frame.
inline constexpr size_t kMaxBatch = 1024;

enum class FrameType : uint8_t {
  kReadRequest = 1,   ///< client → server: one hypothetical read
  kReadReply = 2,     ///< server → client: ReadResult
  kApplyRequest = 3,  ///< client → server: transformation expression
  kApplyReply = 4,    ///< server → client: committed version
  kError = 5,         ///< server → client: typed Status (+ retry-after hint)
  kPing = 6,          ///< either direction: liveness probe
  kPong = 7,          ///< reply to kPing
  kStatsRequest = 8,  ///< client → server: server counters
  kStatsReply = 9,    ///< server → client: counter list
};

/// True iff `t` is a defined FrameType value.
bool IsKnownFrameType(uint8_t t);

/// A decoded frame: type + owned payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Serializes a frame (header + payload). Fails with kInvalidArgument when
/// the payload exceeds kMaxPayload.
StatusOr<std::string> EncodeFrame(FrameType type, std::string_view payload,
                                  uint16_t seq = 0);

/// A validated frame header.
struct FrameHeader {
  FrameType type = FrameType::kError;
  uint32_t payload_len = 0;
  uint16_t seq = 0;
};

/// Validates a header. Fails with kDataLoss on bad magic/version/type bytes
/// or an over-cap length. `header` must be exactly kHeaderSize bytes.
StatusOr<FrameHeader> DecodeHeader(std::string_view header);

/// Verifies the payload against the header's CRC. `header` must have passed
/// DecodeHeader; fails with kDataLoss on mismatch.
Status VerifyPayload(std::string_view header, std::string_view payload);

// ---------------------------------------------------------------------------
// Payload field helpers (little-endian, bounds-checked reads).

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// u32 length prefix + bytes.
void PutString(std::string* out, std::string_view s);

/// Cursor over a payload; every Get* checks bounds and fails with kDataLoss
/// instead of reading past the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  /// Reads a u32-prefixed string; `max_len` guards against corrupt prefixes.
  StatusOr<std::string> GetString(size_t max_len = kMaxPayload);

  /// True when the cursor consumed every byte (trailing garbage = corrupt).
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Message payloads. Encode/Decode pairs for each frame type; decode is total.

struct WireReadRequest {
  std::vector<std::string> antecedents;
  std::string consequent;
  uint8_t modality = 0;  ///< 0 = necessarily, 1 = possibly
  uint64_t deadline_ms = 0;
};

std::string EncodeReadRequest(const WireReadRequest& r);
StatusOr<WireReadRequest> DecodeReadRequest(std::string_view payload);

struct WireReadReply {
  bool holds = false;
  uint64_t snapshot_version = 0;
};

std::string EncodeReadReply(const WireReadReply& r);
StatusOr<WireReadReply> DecodeReadReply(std::string_view payload);

struct WireApplyRequest {
  std::string expression;
};

std::string EncodeApplyRequest(const WireApplyRequest& r);
StatusOr<WireApplyRequest> DecodeApplyRequest(std::string_view payload);

struct WireApplyReply {
  uint64_t version = 0;
};

std::string EncodeApplyReply(const WireApplyReply& r);
StatusOr<WireApplyReply> DecodeApplyReply(std::string_view payload);

struct WireError {
  uint8_t code = 0;  ///< StatusCode as u8
  uint32_t retry_after_ms = 0;  ///< 0 = no hint; set on kUnavailable rejects
  std::string message;
};

std::string EncodeError(const WireError& e);
StatusOr<WireError> DecodeError(std::string_view payload);
/// Sugar: WireError from a Status (+ optional retry hint).
WireError ErrorFromStatus(const Status& status, uint32_t retry_after_ms = 0);
/// The inverse: a typed Status reconstructed from an error frame.
Status StatusFromError(const WireError& e);

struct WireStatsReply {
  /// (name, value) counter pairs, server-defined.
  std::vector<std::pair<std::string, uint64_t>> counters;
};

std::string EncodeStatsReply(const WireStatsReply& r);
StatusOr<WireStatsReply> DecodeStatsReply(std::string_view payload);

}  // namespace kbt::net

#endif  // KBT_NET_FRAME_H_
