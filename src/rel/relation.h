#ifndef KBT_REL_RELATION_H_
#define KBT_REL_RELATION_H_

/// \file
/// Finite relations: sorted duplicate-free sets of same-arity tuples.
///
/// A relation r_i in the paper is a finite subset of A^α(i). The representation is
/// a single flat `std::vector<Value>` with an arity stride — row r occupies
/// [r*arity, (r+1)*arity) — kept row-sorted and duplicate-free. Iteration yields
/// non-owning TupleViews into that buffer, so the set operations the paper leans
/// on — union, intersection, difference and the symmetric difference Δ of
/// Definition 2.1 — are cache-friendly stride-aware merges with no per-tuple heap
/// traffic. Bulk construction goes through Relation::Builder, which appends rows
/// into one buffer and sorts + dedups once at Build time.
///
/// The flat buffer is held behind a shared immutable Storage block, so copying a
/// Relation — and hence a Database, and hence materializing one world of an
/// overlay-structured Knowledgebase — is a reference-count bump, not a data
/// copy. Sharing is observable only through StorageId(), which set operations
/// and comparisons use as an O(1) equality fast path, and through the Storage
/// block's cached hash (computed once per distinct buffer, then reused by every
/// sharing copy — the hash-dedup in Knowledgebase::Canonicalize leans on this).

#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "rel/tuple.h"

namespace kbt {

/// An immutable-after-construction finite relation of fixed arity.
class Relation {
 public:
  /// Accumulates rows into a flat buffer; sorts and deduplicates once on Build.
  class Builder {
   public:
    explicit Builder(size_t arity) : arity_(arity) {}

    /// Pre-allocates space for `rows` additional rows.
    void Reserve(size_t rows) { data_.reserve(data_.size() + rows * arity_); }

    /// Appends one row; `t.arity()` must equal the builder arity.
    void Append(TupleView t);
    /// Appends one row from an explicit value list.
    void Append(std::initializer_list<Value> values) {
      Append(TupleView(values.begin(), values.size()));
    }

    /// Appends an uninitialized row and returns the pointer to fill with
    /// exactly `arity` values before the next Builder call. Arity must be > 0.
    Value* AppendRow();

    /// Drops the most recently appended row (e.g. a candidate that failed a
    /// post-fill check). Must follow an append.
    void DropLastRow();

    size_t arity() const { return arity_; }
    /// Rows appended so far (before dedup).
    size_t rows() const { return rows_; }

    /// Finalizes: sorts rows, removes duplicates, and returns the relation.
    /// The builder is left empty.
    Relation Build();

   private:
    size_t arity_;
    size_t rows_ = 0;
    std::vector<Value> data_;
  };

  /// Forward iterator over rows, yielding TupleViews into the flat buffer.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TupleView;
    using difference_type = std::ptrdiff_t;
    using pointer = const TupleView*;
    using reference = TupleView;

    const_iterator() = default;
    const_iterator(const Value* base, size_t arity, size_t row)
        : base_(base), arity_(arity), row_(row) {}

    TupleView operator*() const {
      return TupleView(base_ + row_ * arity_, arity_);
    }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++row_;
      return out;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.row_ == b.row_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.row_ != b.row_;
    }

   private:
    const Value* base_ = nullptr;
    size_t arity_ = 0;
    size_t row_ = 0;
  };

  /// Empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// Relation from tuples; deduplicates and sorts. All tuples must have `arity`
  /// components (asserted).
  Relation(size_t arity, const std::vector<Tuple>& tuples);

  /// Number of components of every tuple.
  size_t arity() const { return arity_; }
  /// Number of tuples.
  size_t size() const { return rows_; }
  /// True iff the relation holds no tuples.
  bool empty() const { return rows_ == 0; }
  /// The flat row-major storage (size() * arity() values, row-sorted).
  const std::vector<Value>& flat() const { return data(); }

  /// View of row `r` (< size()); rows are in ascending lexicographic order.
  TupleView operator[](size_t r) const {
    return TupleView(data().data() + r * arity_, arity_);
  }
  /// View of the first row; the relation must be non-empty.
  TupleView front() const { return (*this)[0]; }

  const_iterator begin() const {
    return const_iterator(data().data(), arity_, 0);
  }
  const_iterator end() const {
    return const_iterator(data().data(), arity_, rows_);
  }

  /// Membership test (binary search over rows, O(log n) row comparisons).
  bool Contains(TupleView t) const;

  /// Row index of the first row not less than `t` (the partition point the
  /// overlay world-ordering uses to count rows past a pivot without merging).
  size_t LowerBoundRow(TupleView t) const;

  /// Identity of the shared flat buffer: two relations with equal non-null
  /// StorageId hold the same rows (same arity included — buffers are never
  /// shared across arities). Null for relations without a buffer (empty, or
  /// nullary which stores no values). Copy-on-write diffing uses this to skip
  /// untouched relations in O(1).
  const void* StorageId() const { return storage_.get(); }

  /// Bytes of flat tuple storage held by this relation's buffer (not divided
  /// by the buffer's sharing count — callers deduplicate via StorageId).
  size_t HeapBytes() const {
    return storage_ != nullptr ? storage_->data.size() * sizeof(Value) : 0;
  }

  /// Returns this relation with `t` inserted (no-op if present).
  Relation WithTuple(TupleView t) const;
  /// Returns this relation with `t` removed (no-op if absent).
  Relation WithoutTuple(TupleView t) const;

  /// Set union; arities must agree.
  Relation Union(const Relation& other) const;
  /// Set intersection; arities must agree.
  Relation Intersect(const Relation& other) const;
  /// Set difference this \ other; arities must agree.
  Relation Difference(const Relation& other) const;
  /// Symmetric difference (A \ B) ∪ (B \ A); the Δ of Definition 2.1.
  Relation SymmetricDifference(const Relation& other) const;

  /// True iff every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// All values appearing in any tuple, appended to `out` (unsorted, may repeat).
  void CollectValues(std::vector<Value>* out) const;

  /// Renders as "{(a, b), (c, d)}".
  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.rows_ == b.rows_ &&
           (a.storage_ == b.storage_ || a.data() == b.data());
  }
  friend bool operator!=(const Relation& a, const Relation& b) { return !(a == b); }
  /// Arbitrary total order (arity, then lexicographic rows); used for canonical
  /// knowledgebase ordering.
  friend bool operator<(const Relation& a, const Relation& b);

  size_t Hash() const;

 private:
  /// The shared immutable flat buffer plus its lazily cached hash. The hash
  /// slot is written at most to one value (0 means "not yet computed"; a
  /// computed hash of 0 is remapped to 1), so relaxed atomics suffice: racing
  /// writers store the same value.
  struct Storage {
    explicit Storage(std::vector<Value> d) : data(std::move(d)) {}
    const std::vector<Value> data;
    mutable std::atomic<size_t> hash{0};
  };

  /// Adopts an already sorted, deduplicated flat buffer.
  Relation(size_t arity, size_t rows, std::vector<Value> data)
      : storage_(data.empty() ? nullptr
                              : std::make_shared<const Storage>(std::move(data))),
        arity_(arity),
        rows_(rows) {}

  /// The flat buffer (a shared static empty vector when storage is null).
  const std::vector<Value>& data() const {
    static const std::vector<Value> kEmpty;
    return storage_ != nullptr ? storage_->data : kEmpty;
  }

  std::shared_ptr<const Storage> storage_;  // Row-major, row-sorted, unique.
  size_t arity_;
  size_t rows_ = 0;
};

}  // namespace kbt

#endif  // KBT_REL_RELATION_H_
