#ifndef KBT_REL_RELATION_H_
#define KBT_REL_RELATION_H_

/// \file
/// Finite relations: sorted duplicate-free sets of same-arity tuples.
///
/// A relation r_i in the paper is a finite subset of A^α(i). The representation here
/// is a sorted vector, which makes the set operations the paper leans on — union,
/// intersection, difference and the symmetric difference Δ of Definition 2.1 — linear
/// merges, and subset tests linear scans.

#include <string>
#include <vector>

#include "rel/tuple.h"

namespace kbt {

/// An immutable-after-construction finite relation of fixed arity.
class Relation {
 public:
  /// Empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// Relation from tuples; deduplicates and sorts. All tuples must have `arity`
  /// components (asserted).
  Relation(size_t arity, std::vector<Tuple> tuples);

  /// Number of components of every tuple.
  size_t arity() const { return arity_; }
  /// Number of tuples.
  size_t size() const { return tuples_.size(); }
  /// True iff the relation holds no tuples.
  bool empty() const { return tuples_.empty(); }
  /// Sorted tuple storage.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  /// Membership test (binary search, O(log n) tuple comparisons).
  bool Contains(const Tuple& t) const;

  /// Returns this relation with `t` inserted (no-op if present).
  Relation WithTuple(const Tuple& t) const;
  /// Returns this relation with `t` removed (no-op if absent).
  Relation WithoutTuple(const Tuple& t) const;

  /// Set union; arities must agree.
  Relation Union(const Relation& other) const;
  /// Set intersection; arities must agree.
  Relation Intersect(const Relation& other) const;
  /// Set difference this \ other; arities must agree.
  Relation Difference(const Relation& other) const;
  /// Symmetric difference (A \ B) ∪ (B \ A); the Δ of Definition 2.1.
  Relation SymmetricDifference(const Relation& other) const;

  /// True iff every tuple of this relation is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// All values appearing in any tuple, appended to `out` (unsorted, may repeat).
  void CollectValues(std::vector<Value>* out) const;

  /// Renders as "{(a, b), (c, d)}".
  std::string ToString() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }
  friend bool operator!=(const Relation& a, const Relation& b) { return !(a == b); }
  /// Arbitrary total order (arity, then lexicographic tuples); used for canonical
  /// knowledgebase ordering.
  friend bool operator<(const Relation& a, const Relation& b) {
    if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
    return a.tuples_ < b.tuples_;
  }

  size_t Hash() const;

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;  // Sorted, unique.
};

}  // namespace kbt

#endif  // KBT_REL_RELATION_H_
