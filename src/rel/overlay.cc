#include "rel/overlay.h"

#include <algorithm>
#include <cassert>

#include "base/hash.h"

namespace kbt {

namespace {

/// Number of rows of `r` strictly greater than `t`.
size_t RowsGreaterThan(const Relation& r, TupleView t) {
  if (r.arity() == 0) return 0;  // The single nullary tuple has no successor.
  size_t lb = r.LowerBoundRow(t);
  if (lb < r.size() && CompareValues(r[lb].data(), t.data(), r.arity()) == 0) {
    ++lb;
  }
  return r.size() - lb;
}

/// First row of r Δ s in row order, without materializing the symmetric
/// difference (this runs inside the canonicalization sort comparator, so it
/// must not allocate). Returns false when the sets are equal; otherwise
/// `*out` is the row and `*in_first` whether it came from `r`.
bool MinSymDiffRow(const Relation& r, const Relation& s, size_t arity,
                   TupleView* out, bool* in_first) {
  if (arity == 0) {
    // The only possible row is the empty tuple, present in the larger set.
    if (r.size() == s.size()) return false;
    *out = TupleView();
    *in_first = r.size() > s.size();
    return true;
  }
  size_t i = 0, j = 0;
  while (i < r.size() && j < s.size()) {
    int c = CompareValues(r[i].data(), s[j].data(), arity);
    if (c == 0) {
      ++i;
      ++j;
      continue;
    }
    *out = c < 0 ? r[i] : s[j];
    *in_first = c < 0;
    return true;
  }
  if (i < r.size()) {
    *out = r[i];
    *in_first = true;
    return true;
  }
  if (j < s.size()) {
    *out = s[j];
    *in_first = false;
    return true;
  }
  return false;
}

}  // namespace

Relation ApplyDelta(const Relation& base, const Relation& adds,
                    const Relation& dels) {
  assert(adds.arity() == base.arity() && dels.arity() == base.arity());
  if (adds.empty() && dels.empty()) return base;  // Shares storage.
  if (base.arity() == 0) {
    // dels ⊆ base and adds ∩ base = ∅, so at most one of them is non-empty.
    return !dels.empty() ? Relation(0) : base.Union(adds);
  }
  if (adds.empty()) return base.Difference(dels);
  if (dels.empty()) return base.Union(adds);
  // One pass over (base ∪ adds) \ dels: adds interleave by row order, dels
  // (all present in base) drop their base row as the merge reaches it.
  size_t arity = base.arity();
  Relation::Builder b(arity);
  b.Reserve(base.size() + adds.size() - dels.size());
  const Value* row = base.flat().data();
  const Value* end = row + base.flat().size();
  size_t ai = 0, di = 0;
  while (row != end || ai < adds.size()) {
    bool take_add = ai < adds.size() &&
                    (row == end ||
                     CompareValues(adds[ai].data(), row, arity) < 0);
    if (take_add) {
      b.Append(adds[ai++]);
      continue;
    }
    if (di < dels.size() && CompareValues(dels[di].data(), row, arity) == 0) {
      ++di;  // Drop this base row.
    } else {
      b.Append(TupleView(row, arity));
    }
    row += arity;
  }
  return b.Build();
}

WorldOverlay WorldOverlay::FromDeltas(std::vector<RelationDelta> deltas) {
  deltas.erase(std::remove_if(deltas.begin(), deltas.end(),
                              [](const RelationDelta& d) { return d.empty(); }),
               deltas.end());
  auto by_pos = [](const RelationDelta& a, const RelationDelta& b) {
    return a.pos < b.pos;
  };
  // Callers almost always build deltas in position order already; the
  // is_sorted probe avoids sort's swap churn of Relation handles.
  if (!std::is_sorted(deltas.begin(), deltas.end(), by_pos)) {
    std::sort(deltas.begin(), deltas.end(), by_pos);
  }
  WorldOverlay out;
  out.deltas_ = std::move(deltas);
  return out;
}

WorldOverlay WorldOverlay::FromDiff(const Database& base,
                                    const Database& world) {
  assert(base.schema() == world.schema() &&
         "overlay diff requires one schema");
  WorldOverlay out;
  for (size_t p = 0; p < base.size(); ++p) {
    const Relation& b = base.relation_at(p);
    const Relation& w = world.relation_at(p);
    // Copy-on-write siblings share buffers: identical storage means no delta.
    if (b.StorageId() == w.StorageId() && b.size() == w.size()) continue;
    RelationDelta d;
    d.pos = static_cast<uint32_t>(p);
    d.adds = w.Difference(b);
    d.dels = b.Difference(w);
    if (!d.empty()) out.deltas_.push_back(std::move(d));
  }
  return out;
}

Database WorldOverlay::ApplyTo(const Database& base) const {
  Database out = base;  // Copy-on-write: relation buffers are shared.
  for (const RelationDelta& d : deltas_) {
    out.ReplaceRelation(d.pos,
                        ApplyDelta(base.relation_at(d.pos), d.adds, d.dels));
  }
  return out;
}

bool WorldOverlay::ApplyEquals(const Database& base,
                               const Database& candidate) const {
  if (candidate.schema() != base.schema()) return false;
  size_t d = 0;
  for (size_t p = 0; p < base.size(); ++p) {
    const Relation& b = base.relation_at(p);
    const Relation& c = candidate.relation_at(p);
    if (d >= deltas_.size() || deltas_[d].pos != p) {
      if (c != b) return false;
      continue;
    }
    const RelationDelta& delta = deltas_[d++];
    if (c.arity() != b.arity() ||
        c.size() != b.size() + delta.adds.size() - delta.dels.size()) {
      return false;
    }
    // Nullary relations are decided by the size check: the only row is ().
    size_t arity = b.arity();
    if (arity == 0) continue;
    // Merge-walk (base ∪ adds) \ dels in row order against candidate's rows;
    // the size check above guarantees both walks produce equally many rows.
    const Value* row = b.flat().data();
    const Value* end = row + b.flat().size();
    const Value* crow = c.flat().data();
    size_t ai = 0, di = 0;
    while (row != end || ai < delta.adds.size()) {
      bool take_add =
          ai < delta.adds.size() &&
          (row == end || CompareValues(delta.adds[ai].data(), row, arity) < 0);
      if (take_add) {
        if (CompareValues(delta.adds[ai++].data(), crow, arity) != 0) {
          return false;
        }
        crow += arity;
        continue;
      }
      if (di < delta.dels.size() &&
          CompareValues(delta.dels[di].data(), row, arity) == 0) {
        ++di;  // Dropped from the applied world.
      } else {
        if (CompareValues(row, crow, arity) != 0) return false;
        crow += arity;
      }
      row += arity;
    }
  }
  return true;
}

WorldOverlay WorldOverlay::Compose(const WorldOverlay& first,
                                   const WorldOverlay& second) {
  WorldOverlay out;
  out.deltas_.reserve(first.deltas_.size() + second.deltas_.size());
  size_t i = 0, j = 0;
  while (i < first.deltas_.size() || j < second.deltas_.size()) {
    bool take_first =
        i < first.deltas_.size() &&
        (j >= second.deltas_.size() ||
         first.deltas_[i].pos <= second.deltas_[j].pos);
    bool take_second =
        j < second.deltas_.size() &&
        (i >= first.deltas_.size() ||
         second.deltas_[j].pos <= first.deltas_[i].pos);
    RelationDelta d;
    if (take_first && take_second) {
      const RelationDelta& d1 = first.deltas_[i++];
      const RelationDelta& d2 = second.deltas_[j++];
      d.pos = d1.pos;
      d.adds = d1.adds.Difference(d2.dels).Union(d2.adds.Difference(d1.dels));
      d.dels = d1.dels.Difference(d2.adds).Union(d2.dels.Difference(d1.adds));
    } else if (take_first) {
      d = first.deltas_[i++];
    } else {
      d = second.deltas_[j++];
    }
    if (!d.empty()) out.deltas_.push_back(std::move(d));
  }
  return out;
}

const RelationDelta* WorldOverlay::FindDelta(size_t pos) const {
  auto it = std::lower_bound(deltas_.begin(), deltas_.end(), pos,
                             [](const RelationDelta& d, size_t p) {
                               return d.pos < p;
                             });
  if (it == deltas_.end() || it->pos != pos) return nullptr;
  return &*it;
}

size_t WorldOverlay::TupleCount() const {
  size_t n = 0;
  for (const RelationDelta& d : deltas_) n += d.adds.size() + d.dels.size();
  return n;
}

size_t WorldOverlay::HeapBytes() const {
  size_t n = sizeof(RelationDelta) * deltas_.capacity();
  for (const RelationDelta& d : deltas_) {
    n += d.adds.HeapBytes() + d.dels.HeapBytes();
  }
  return n;
}

size_t WorldOverlay::Hash() const {
  size_t seed = 0x77a1c3b5;
  for (const RelationDelta& d : deltas_) {
    seed = HashCombine(seed, d.pos);
    seed = HashCombine(seed, d.adds.Hash());
    seed = HashCombine(seed, d.dels.Hash());
  }
  return seed;
}

Status WorldOverlay::Validate(const Database& base) const {
  size_t prev_pos = 0;
  bool first = true;
  for (const RelationDelta& d : deltas_) {
    if (!first && d.pos <= prev_pos) {
      return Status::DataLoss("overlay deltas out of order");
    }
    first = false;
    prev_pos = d.pos;
    if (d.pos >= base.size()) {
      return Status::DataLoss("overlay delta position outside schema");
    }
    const Relation& b = base.relation_at(d.pos);
    if (d.adds.arity() != b.arity() || d.dels.arity() != b.arity()) {
      return Status::DataLoss("overlay delta arity mismatch");
    }
    if (d.empty()) return Status::DataLoss("overlay holds an empty delta");
    if (!d.adds.Intersect(b).empty()) {
      return Status::DataLoss("overlay adds overlap the base relation");
    }
    if (!d.dels.IsSubsetOf(b)) {
      return Status::DataLoss("overlay dels exceed the base relation");
    }
  }
  return Status::OK();
}

int CompareWorldsOnBase(const Database& base, const WorldOverlay& a,
                        const WorldOverlay& b) {
  // Walk the two sorted delta lists position by position. At each position the
  // worlds S_a, S_b differ exactly on (A_a Δ A_b) ∪ (D_a Δ D_b) — adds live
  // outside the base relation and dels inside it, so membership of any
  // candidate is decided without probing the base. The flat row-lexicographic
  // order is decided at x* = min(S_a Δ S_b): the world containing x* is
  // smaller, unless the other world has no row greater than x* at all (then it
  // is a strict prefix, hence smaller). Nullary relations fall out of the same
  // logic because the single empty tuple has no successor: empty < non-empty,
  // matching the rows tiebreak in Relation::operator<.
  const std::vector<RelationDelta>& da = a.deltas();
  const std::vector<RelationDelta>& db = b.deltas();
  size_t i = 0, j = 0;
  while (i < da.size() || j < db.size()) {
    uint32_t pos;
    const RelationDelta* ra = nullptr;
    const RelationDelta* rb = nullptr;
    if (i < da.size() && (j >= db.size() || da[i].pos <= db[j].pos)) {
      pos = da[i].pos;
      ra = &da[i++];
      if (j < db.size() && db[j].pos == pos) rb = &db[j++];
    } else {
      pos = db[j].pos;
      rb = &db[j++];
    }
    const Relation& base_rel = base.relation_at(pos);
    const Relation empty(base_rel.arity());
    const Relation& aa = ra != nullptr ? ra->adds : empty;
    const Relation& ad = ra != nullptr ? ra->dels : empty;
    const Relation& ba = rb != nullptr ? rb->adds : empty;
    const Relation& bd = rb != nullptr ? rb->dels : empty;
    // x* = min of the symmetric difference; the two candidate pools are
    // disjoint (adds ∉ base, dels ∈ base). Which side of each pool supplied
    // the candidate already decides membership: an adds-candidate belongs to
    // the world whose adds hold it, a dels-candidate to the world whose dels
    // do *not* hold it.
    TupleView x_adds, x_dels;
    bool adds_in_a = false, dels_in_a = false;
    bool have_adds =
        MinSymDiffRow(aa, ba, base_rel.arity(), &x_adds, &adds_in_a);
    bool have_dels =
        MinSymDiffRow(ad, bd, base_rel.arity(), &x_dels, &dels_in_a);
    if (!have_adds && !have_dels) continue;
    bool from_adds =
        have_adds && (!have_dels ||
                      CompareValues(x_adds.data(), x_dels.data(),
                                    base_rel.arity()) < 0);
    TupleView x = from_adds ? x_adds : x_dels;
    bool in_a = from_adds ? adds_in_a : !dels_in_a;
    // Rows of the world *not* containing x* that sort after x*.
    const Relation& other_adds = in_a ? ba : aa;
    const Relation& other_dels = in_a ? bd : ad;
    size_t other_greater = RowsGreaterThan(base_rel, x) +
                           RowsGreaterThan(other_adds, x) -
                           RowsGreaterThan(other_dels, x);
    bool a_less = in_a ? (other_greater > 0) : (other_greater == 0);
    return a_less ? -1 : 1;
  }
  return 0;
}

}  // namespace kbt
