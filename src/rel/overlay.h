#ifndef KBT_REL_OVERLAY_H_
#define KBT_REL_OVERLAY_H_

/// \file
/// World overlays: one possible world expressed as a sparse delta against a
/// shared immutable base database.
///
/// A WorldOverlay holds, for each touched schema position, a sorted pair of
/// relations (adds, dels) with the canonical invariants
///
///   adds ∩ base = ∅   and   dels ⊆ base,
///
/// so the represented world is (base \ dels) ∪ adds per relation and the
/// representation is *unique*: two worlds over one base are equal iff their
/// overlays are equal, and hashing/ordering worlds costs O(delta) instead of
/// O(database). Deltas are kept sorted by position and empty deltas are
/// dropped. CompareWorldsOnBase reproduces the flat Database ordering without
/// materializing either side, which is what keeps Knowledgebase
/// canonicalization O(worlds × delta).

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "rel/database.h"

namespace kbt {

/// The delta of one relation: tuples added to and removed from the base
/// relation at schema position `pos`.
struct RelationDelta {
  uint32_t pos = 0;
  Relation adds;  ///< Sorted; disjoint from the base relation at `pos`.
  Relation dels;  ///< Sorted; subset of the base relation at `pos`.

  bool empty() const { return adds.empty() && dels.empty(); }

  friend bool operator==(const RelationDelta& a, const RelationDelta& b) {
    return a.pos == b.pos && a.adds == b.adds && a.dels == b.dels;
  }
  friend bool operator!=(const RelationDelta& a, const RelationDelta& b) {
    return !(a == b);
  }
};

/// (base ∪ adds) \ dels in one stride-aware merge pass. `adds` must be
/// disjoint from `base` and `dels` a subset of it (the overlay invariants).
Relation ApplyDelta(const Relation& base, const Relation& adds,
                    const Relation& dels);

/// A sparse, canonical edit of a base database describing one world.
class WorldOverlay {
 public:
  /// The identity overlay (the world equals the base).
  WorldOverlay() = default;

  /// Adopts deltas (any order); empty deltas are dropped, the rest sorted by
  /// position. Positions must be distinct and the invariants above must hold
  /// relative to the intended base — FromDeltas cannot check them without the
  /// base; Validate() can.
  static WorldOverlay FromDeltas(std::vector<RelationDelta> deltas);

  /// The unique overlay turning `base` into `world` (same schema, asserted).
  /// Relations sharing their storage buffer are skipped in O(1), so diffing a
  /// copy-on-write sibling of the base costs O(touched relations) only.
  static WorldOverlay FromDiff(const Database& base, const Database& world);

  /// Materializes the world: a copy of `base` with every touched relation
  /// replaced by its merged form. Untouched relations share storage with the
  /// base (copy-on-write), so the cost is O(touched relation sizes).
  Database ApplyTo(const Database& base) const;

  /// True iff `candidate` == ApplyTo(base), decided without materializing the
  /// applied world: untouched positions compare as Relation handles (storage
  /// fast path when candidate is a copy-on-write sibling), touched positions
  /// by one allocation-free merge walk of (base ∪ adds) \ dels against the
  /// candidate's rows. The τ merge uses this to recognize μ results anchored
  /// at their own input world in O(touched relations) without a Database copy.
  bool ApplyEquals(const Database& base, const Database& candidate) const;

  /// The overlay representing "apply `first`, then `second`" relative to
  /// `first`'s base: `second` must be canonical relative to
  /// first.ApplyTo(base). By the invariants the result is
  ///   adds = (A1 \ D2) ∪ (A2 \ D1),  dels = (D1 \ A2) ∪ (D2 \ A1)
  /// per position — no base access needed. O(delta1 + delta2).
  static WorldOverlay Compose(const WorldOverlay& first,
                              const WorldOverlay& second);

  /// True iff the overlay changes nothing.
  bool identity() const { return deltas_.empty(); }

  const std::vector<RelationDelta>& deltas() const { return deltas_; }

  /// The delta at schema position `pos`, or nullptr (binary search).
  const RelationDelta* FindDelta(size_t pos) const;

  /// Total added + deleted tuples.
  size_t TupleCount() const;

  /// Bytes of tuple storage referenced by this overlay's delta relations
  /// (shared buffers counted fully; deduplicate via Relation::StorageId).
  size_t HeapBytes() const;

  /// Value hash: equal overlays hash equal. O(delta) with cached relation
  /// hashes.
  size_t Hash() const;

  /// Checks the canonical invariants against `base`: positions strictly
  /// ascending and in range, arities matching, adds disjoint from the base
  /// relation, dels contained in it, no empty delta. kDataLoss on violation
  /// (the store uses this to reject corrupt checkpoint payloads).
  Status Validate(const Database& base) const;

  friend bool operator==(const WorldOverlay& a, const WorldOverlay& b) {
    return a.deltas_ == b.deltas_;
  }
  friend bool operator!=(const WorldOverlay& a, const WorldOverlay& b) {
    return !(a == b);
  }

 private:
  std::vector<RelationDelta> deltas_;  // Sorted by pos, none empty.
};

/// Three-way comparison of the worlds `a` and `b` denote over `base`,
/// *identical to the flat ordering* Database::operator< induces (including the
/// nullary row-count tiebreak) but computed from the deltas: O(delta) relation
/// work plus O(log base) row counting at the single deciding position.
/// Returns <0, 0, >0.
int CompareWorldsOnBase(const Database& base, const WorldOverlay& a,
                        const WorldOverlay& b);

}  // namespace kbt

#endif  // KBT_REL_OVERLAY_H_
