#include "rel/io.h"

#include <cctype>
#include <vector>

namespace kbt {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " + std::to_string(pos_));
  }

  StatusOr<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<size_t> Number() {
    SkipSpace();
    size_t start = pos_;
    size_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<size_t>(text_[pos_] - '0');
      // Arities beyond this bound are certainly malformed input; rejecting
      // here keeps hostile digit runs from overflowing (std::stoul would
      // throw out_of_range — a crash, not a Status — on fuzzed input).
      if (value > 1'000'000) return Error("arity out of range");
      ++pos_;
    }
    if (pos_ == start) return Error("expected arity");
    return value;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;

  friend StatusOr<Database> ParseDatabaseAt(Cursor* cursor);
};

StatusOr<Tuple> ParseTupleAt(Cursor* cursor, size_t arity) {
  if (!cursor->Eat('(')) return cursor->Error("expected '('");
  std::vector<Value> values;
  if (!cursor->Eat(')')) {
    do {
      KBT_ASSIGN_OR_RETURN(std::string name, cursor->Ident());
      values.push_back(Name(name));
    } while (cursor->Eat(','));
    if (!cursor->Eat(')')) return cursor->Error("expected ')'");
  }
  if (values.size() != arity) {
    return cursor->Error("tuple arity mismatch");
  }
  return Tuple(std::move(values));
}

StatusOr<Database> ParseDatabaseAt(Cursor* cursor) {
  Schema schema;
  std::vector<Relation> relations;
  do {
    KBT_ASSIGN_OR_RETURN(std::string name, cursor->Ident());
    if (!cursor->Eat('/')) return cursor->Error("expected '/<arity>'");
    KBT_ASSIGN_OR_RETURN(size_t arity, cursor->Number());
    if (!cursor->Eat(':')) return cursor->Error("expected ':'");
    if (!cursor->Eat('{')) return cursor->Error("expected '{'");
    std::vector<Tuple> tuples;
    if (!cursor->Eat('}')) {
      do {
        KBT_ASSIGN_OR_RETURN(Tuple t, ParseTupleAt(cursor, arity));
        tuples.push_back(std::move(t));
      } while (cursor->Eat(','));
      if (!cursor->Eat('}')) return cursor->Error("expected '}'");
    }
    KBT_RETURN_IF_ERROR(schema.Append(RelationDecl{Name(name), arity}));
    relations.emplace_back(arity, std::move(tuples));
  } while (cursor->Eat(';'));
  return Database::Create(std::move(schema), std::move(relations));
}

}  // namespace

std::string FormatDatabase(const Database& db) {
  std::string out;
  for (size_t i = 0; i < db.schema().size(); ++i) {
    if (i > 0) out += "; ";
    const RelationDecl& d = db.schema().decl(i);
    out += NameOf(d.symbol);
    out += "/";
    out += std::to_string(d.arity);
    out += ": ";
    out += db.relation_at(i).ToString();
  }
  return out;
}

StatusOr<Database> ParseDatabase(std::string_view text) {
  Cursor cursor(text);
  KBT_ASSIGN_OR_RETURN(Database db, ParseDatabaseAt(&cursor));
  if (!cursor.AtEnd()) return cursor.Error("trailing input after database");
  return db;
}

std::string FormatKnowledgebase(const Knowledgebase& kb) {
  std::string out = "[ ";
  for (size_t i = 0; i < kb.size(); ++i) {
    if (i > 0) out += " | ";
    out += FormatDatabase(kb.databases()[i]);
  }
  out += " ]";
  return out;
}

StatusOr<Knowledgebase> ParseKnowledgebase(std::string_view text) {
  Cursor cursor(text);
  if (!cursor.Eat('[')) return cursor.Error("expected '['");
  std::vector<Database> members;
  if (!cursor.Eat(']')) {
    do {
      KBT_ASSIGN_OR_RETURN(Database db, ParseDatabaseAt(&cursor));
      members.push_back(std::move(db));
    } while (cursor.Eat('|'));
    if (!cursor.Eat(']')) return cursor.Error("expected ']'");
  }
  if (!cursor.AtEnd()) return cursor.Error("trailing input after knowledgebase");
  return Knowledgebase::FromDatabases(std::move(members));
}

}  // namespace kbt
