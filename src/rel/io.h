#ifndef KBT_REL_IO_H_
#define KBT_REL_IO_H_

/// \file
/// Text serialization for databases and knowledgebases, round-trippable:
///
///   database:       R1/2: {(a, b), (c, d)}; R2/1: {}
///   knowledgebase:  [ R1/2: {(a, b)} | R1/2: {(c, d)} ]
///
/// Arities are explicit so empty relations deserialize unambiguously. Intended
/// for examples, test fixtures and debugging dumps — not a storage format.

#include <string>
#include <string_view>

#include "base/status.h"
#include "rel/database.h"
#include "rel/knowledgebase.h"

namespace kbt {

/// Serializes a database in the grammar above.
std::string FormatDatabase(const Database& db);

/// Parses a database; the schema is read off the text (declaration order kept).
StatusOr<Database> ParseDatabase(std::string_view text);

/// Serializes a knowledgebase (its canonical member order).
std::string FormatKnowledgebase(const Knowledgebase& kb);

/// Parses a knowledgebase; members must agree on the schema.
StatusOr<Knowledgebase> ParseKnowledgebase(std::string_view text);

}  // namespace kbt

#endif  // KBT_REL_IO_H_
