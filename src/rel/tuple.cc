#include "rel/tuple.h"

#include <cassert>

namespace kbt {

Tuple Tuple::Of(std::initializer_list<std::string_view> names) {
  std::vector<Value> values;
  values.reserve(names.size());
  for (std::string_view n : names) values.push_back(Name(n));
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> values;
  values.reserve(indices.size());
  for (size_t i : indices) {
    assert(i < values_.size());
    values.push_back(values_[i]);
  }
  return Tuple(std::move(values));
}

std::string TupleView::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < arity_; ++i) {
    if (i > 0) out += ", ";
    out += NameOf(data_[i]);
  }
  out += ")";
  return out;
}

}  // namespace kbt
