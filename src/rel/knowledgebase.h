#ifndef KBT_REL_KNOWLEDGEBASE_H_
#define KBT_REL_KNOWLEDGEBASE_H_

/// \file
/// Knowledgebases: finite sets of databases on one schema.
///
/// A knowledgebase kb is the paper's data model for indefinite information: each
/// member database is one possible state of the world. Members are kept sorted and
/// deduplicated, so knowledgebases are canonical value types — two kbs are equal iff
/// they denote the same set of possible worlds.

#include <string>
#include <vector>

#include "base/status.h"
#include "rel/database.h"

namespace kbt {

/// A canonical finite set of same-schema databases.
class Knowledgebase {
 public:
  /// The empty knowledgebase over the empty schema. Note an empty kb (no possible
  /// worlds, "inconsistent") differs from the singleton kb holding an empty database.
  Knowledgebase() = default;

  /// Empty knowledgebase over `schema`.
  explicit Knowledgebase(Schema schema) : schema_(std::move(schema)) {}

  /// Builds from databases; all must share one schema. Duplicates collapse.
  static StatusOr<Knowledgebase> FromDatabases(std::vector<Database> databases);

  /// Singleton knowledgebase.
  static Knowledgebase Singleton(Database db);

  const Schema& schema() const { return schema_; }
  /// Number of possible worlds.
  size_t size() const { return databases_.size(); }
  bool empty() const { return databases_.empty(); }
  const std::vector<Database>& databases() const { return databases_; }

  std::vector<Database>::const_iterator begin() const { return databases_.begin(); }
  std::vector<Database>::const_iterator end() const { return databases_.end(); }

  /// Membership test.
  bool Contains(const Database& db) const;

  /// This kb with `db` added (schema must match; no-op if present).
  StatusOr<Knowledgebase> WithDatabase(const Database& db) const;

  /// Set union with `other` (schemas must match) — the right-hand side of KM
  /// postulate (viii): τ_φ(kb1 ∪ kb2) = τ_φ(kb1) ∪ τ_φ(kb2).
  StatusOr<Knowledgebase> UnionWith(const Knowledgebase& other) const;

  /// Union of many same-schema knowledgebases in one pass: members are moved,
  /// deduplicated through Database::Hash, and sorted once — τ's merge step over
  /// per-world μ results, O(total · log(unique)) instead of the O(parts²)
  /// repeated pairwise union. Parts that are empty (including default-schema
  /// empties) contribute nothing; an all-empty input yields an empty kb over
  /// the first part's schema.
  static StatusOr<Knowledgebase> UnionAll(std::vector<Knowledgebase> parts);

  /// The paper's ⊓: componentwise intersection of all members, as a singleton kb.
  /// ⊓ of an empty kb is the empty kb.
  Knowledgebase Glb() const;
  /// The paper's ⊔: componentwise union of all members, as a singleton kb.
  Knowledgebase Lub() const;

  /// The paper's π: projects every member onto the listed relation symbols.
  StatusOr<Knowledgebase> ProjectTo(const std::vector<Symbol>& symbols) const;

  /// Extends every member to `super` (new relations empty).
  StatusOr<Knowledgebase> ExtendTo(const Schema& super) const;

  /// Renders as "{ <db1>, <db2> }".
  std::string ToString() const;

  friend bool operator==(const Knowledgebase& a, const Knowledgebase& b) {
    return a.schema_ == b.schema_ && a.databases_ == b.databases_;
  }
  friend bool operator!=(const Knowledgebase& a, const Knowledgebase& b) {
    return !(a == b);
  }

 private:
  void Canonicalize();

  Schema schema_;
  std::vector<Database> databases_;  // Sorted, unique.
};

}  // namespace kbt

#endif  // KBT_REL_KNOWLEDGEBASE_H_
