#ifndef KBT_REL_KNOWLEDGEBASE_H_
#define KBT_REL_KNOWLEDGEBASE_H_

/// \file
/// Knowledgebases: finite sets of databases on one schema.
///
/// A knowledgebase kb is the paper's data model for indefinite information: each
/// member database is one possible state of the world. Members are kept sorted and
/// deduplicated, so knowledgebases are canonical value types — two kbs are equal iff
/// they denote the same set of possible worlds.
///
/// Representation: one shared immutable base Database plus one WorldOverlay per
/// world (rel/overlay.h) — worlds that differ from the base by a handful of
/// tuples cost O(delta) memory, and canonicalization (hash-dedup + sort) runs
/// on overlays in O(worlds × delta) instead of O(worlds × database). The flat
/// view `databases()` still exists for consumers that want materialized
/// worlds; it is built lazily, at most once, and shared across copies. See
/// docs/worldset.md.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "rel/database.h"
#include "rel/overlay.h"

namespace kbt {

/// A canonical finite set of same-schema databases.
class Knowledgebase {
 public:
  /// Optional parallel-for hook for canonicalization: runs fn(i) for every
  /// i in [0, n) and returns once all completed. rel/ cannot depend on exec/,
  /// so callers owning a thread pool (the τ executor) pass an adapter; a null
  /// hook means sequential, with bit-identical results either way.
  using ParallelMap =
      std::function<Status(size_t n, const std::function<void(size_t)>& fn)>;

  /// The empty knowledgebase over the empty schema. Note an empty kb (no possible
  /// worlds, "inconsistent") differs from the singleton kb holding an empty database.
  Knowledgebase() = default;

  /// Empty knowledgebase over `schema`.
  explicit Knowledgebase(Schema schema) : schema_(std::move(schema)) {}

  /// Builds from databases; all must share one schema. Duplicates collapse.
  /// The first member (pre-canonicalization) becomes the shared base; members
  /// become overlays against it, with copy-on-write buffer sharing making the
  /// diff O(touched relations) per member.
  static StatusOr<Knowledgebase> FromDatabases(std::vector<Database> databases);

  /// Singleton knowledgebase.
  static Knowledgebase Singleton(Database db);

  /// Builds from a shared base plus one overlay per world — the primary
  /// constructor on the τ result path (no world is ever flattened). Each
  /// overlay must satisfy the canonical invariants relative to `base`
  /// (rel/overlay.h); duplicates collapse. `base` must be non-null; the kb
  /// schema is the base's schema. `parallel`, when given, parallelizes the
  /// canonicalization hash pass.
  static StatusOr<Knowledgebase> FromBaseAndOverlays(
      std::shared_ptr<const Database> base, std::vector<WorldOverlay> overlays,
      const ParallelMap* parallel = nullptr);

  const Schema& schema() const { return schema_; }
  /// Number of possible worlds.
  size_t size() const { return overlays_.size(); }
  bool empty() const { return overlays_.empty(); }

  /// Materialized worlds in canonical order. Built lazily on first use (one
  /// flat Database per world, sharing untouched relation buffers with the
  /// base) and cached; copies of this kb share the cache. Prefer World(i) /
  /// base()+overlay iteration on hot paths — they never trigger the flatten.
  const std::vector<Database>& databases() const;

  std::vector<Database>::const_iterator begin() const {
    return databases().begin();
  }
  std::vector<Database>::const_iterator end() const {
    return databases().end();
  }

  /// Materializes world `i` (canonical order) without touching the flat
  /// cache: a copy-on-write overlay application, O(touched relations).
  Database World(size_t i) const { return overlays_[i].ApplyTo(*base_); }

  /// The shared base (null iff the kb is empty).
  const std::shared_ptr<const Database>& base() const { return base_; }
  /// Per-world overlays in canonical order.
  const std::vector<WorldOverlay>& overlays() const { return overlays_; }

  /// The kb holding the worlds at `indices` (strictly ascending, in range).
  /// Shares the base; no re-canonicalization needed (a subsequence of a
  /// canonical sequence is canonical).
  Knowledgebase SelectWorlds(const std::vector<size_t>& indices) const;

  /// Approximate heap footprint: base + overlay tuple storage (buffers shared
  /// between base and overlays, or across worlds, counted once) plus overlay
  /// bookkeeping. Does not include a flat cache if one was materialized.
  size_t ApproxHeapBytes() const;

  /// Membership test.
  bool Contains(const Database& db) const;

  /// This kb with `db` added (schema must match; no-op if present).
  StatusOr<Knowledgebase> WithDatabase(const Database& db) const;

  /// Set union with `other` (schemas must match) — the right-hand side of KM
  /// postulate (viii): τ_φ(kb1 ∪ kb2) = τ_φ(kb1) ∪ τ_φ(kb2).
  StatusOr<Knowledgebase> UnionWith(const Knowledgebase& other) const;

  /// Union of many same-schema knowledgebases in one pass: overlays are moved
  /// when parts share this kb's base (pointer or value equality) and rebased
  /// via copy-on-write diff otherwise, then deduplicated through overlay
  /// hashes and sorted once — τ's merge step over per-world μ results,
  /// O(total · delta) when bases are shared. Parts that are empty (including
  /// default-schema empties) contribute nothing; an all-empty input yields an
  /// empty kb over the first part's schema.
  static StatusOr<Knowledgebase> UnionAll(std::vector<Knowledgebase> parts,
                                          const ParallelMap* parallel = nullptr);

  /// The paper's ⊓: componentwise intersection of all members, as a singleton kb.
  /// ⊓ of an empty kb is the empty kb. Computed per touched relation as
  /// (base \ ∪dels) ∪ ∩adds — O(worlds × delta + touched base relations).
  Knowledgebase Glb() const;
  /// The paper's ⊔: componentwise union of all members, as a singleton kb.
  /// Computed per touched relation as (base \ ∩dels) ∪ ∪adds.
  Knowledgebase Lub() const;

  /// The paper's π: projects every member onto the listed relation symbols.
  StatusOr<Knowledgebase> ProjectTo(const std::vector<Symbol>& symbols) const;

  /// Extends every member to `super` (new relations empty).
  StatusOr<Knowledgebase> ExtendTo(const Schema& super) const;

  /// Renders as "{ <db1>, <db2> }".
  std::string ToString() const;

  /// Equality. Shared or value-equal bases compare overlays in
  /// O(worlds × delta); distinct bases fall back to comparing materialized
  /// worlds.
  friend bool operator==(const Knowledgebase& a, const Knowledgebase& b);
  friend bool operator!=(const Knowledgebase& a, const Knowledgebase& b) {
    return !(a == b);
  }

 private:
  /// Lazily filled flat view, shared by copies of one kb. `worlds` is written
  /// once under `mu`, then published through `ready`; afterwards it is
  /// immutable and read lock-free.
  struct FlatCache {
    std::mutex mu;
    std::atomic<bool> ready{false};
    std::vector<Database> worlds;
  };

  /// Dedups overlays through their hashes and sorts them into the canonical
  /// (flat-order-consistent) sequence. `parallel` parallelizes the hash pass;
  /// the off path is bit-identical.
  void Canonicalize(const ParallelMap* parallel = nullptr);

  /// Installs a fresh, unfilled flat cache (called by every constructor path
  /// that yields a non-empty kb).
  void ResetFlatCache() { flat_ = std::make_shared<FlatCache>(); }

  Schema schema_;
  /// Shared immutable base; null iff the kb has no worlds.
  std::shared_ptr<const Database> base_;
  /// One overlay per world, sorted by CompareWorldsOnBase, unique.
  std::vector<WorldOverlay> overlays_;
  /// Lazy flat view (null iff the kb has no worlds).
  std::shared_ptr<FlatCache> flat_;
};

}  // namespace kbt

#endif  // KBT_REL_KNOWLEDGEBASE_H_
