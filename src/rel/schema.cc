#include "rel/schema.h"

#include "base/hash.h"

namespace kbt {

StatusOr<Schema> Schema::Of(
    std::initializer_list<std::pair<std::string_view, size_t>> decls) {
  std::vector<RelationDecl> out;
  out.reserve(decls.size());
  for (const auto& [name, arity] : decls) {
    out.push_back(RelationDecl{Name(name), arity});
  }
  return FromDecls(std::move(out));
}

StatusOr<Schema> Schema::FromDecls(std::vector<RelationDecl> decls) {
  Schema schema;
  for (RelationDecl d : decls) {
    KBT_RETURN_IF_ERROR(schema.Append(d));
  }
  return schema;
}

void Schema::InsertIndexEntry(Symbol symbol, size_t position) {
  size_t mask = index_.size() - 1;
  size_t slot = Mix64(symbol) & mask;
  while (index_[slot] != kEmptySlot) slot = (slot + 1) & mask;
  index_[slot] = static_cast<uint32_t>(position);
}

void Schema::RebuildIndex() {
  size_t capacity = 16;
  while (capacity < decls_.size() * 2) capacity *= 2;
  index_.assign(capacity, kEmptySlot);
  for (size_t i = 0; i < decls_.size(); ++i) {
    InsertIndexEntry(decls_[i].symbol, i);
  }
}

std::optional<size_t> Schema::PositionOf(Symbol symbol) const {
  if (decls_.size() <= kLinearScanMax) {
    for (size_t i = 0; i < decls_.size(); ++i) {
      if (decls_[i].symbol == symbol) return i;
    }
    return std::nullopt;
  }
  size_t mask = index_.size() - 1;
  size_t slot = Mix64(symbol) & mask;
  while (index_[slot] != kEmptySlot) {
    size_t pos = index_[slot];
    if (decls_[pos].symbol == symbol) return pos;
    slot = (slot + 1) & mask;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::ArityOf(Symbol symbol) const {
  std::optional<size_t> pos = PositionOf(symbol);
  if (!pos) return std::nullopt;
  return decls_[*pos].arity;
}

bool Schema::Includes(const Schema& sub) const {
  for (const RelationDecl& d : sub.decls_) {
    std::optional<size_t> arity = ArityOf(d.symbol);
    if (!arity || *arity != d.arity) return false;
  }
  return true;
}

StatusOr<Schema> Schema::Union(const Schema& other) const {
  Schema out = *this;
  for (const RelationDecl& d : other.decls_) {
    std::optional<size_t> arity = out.ArityOf(d.symbol);
    if (arity) {
      if (*arity != d.arity) {
        return Status::InvalidArgument("schema union: arity conflict for relation " +
                                       NameOf(d.symbol));
      }
      continue;
    }
    KBT_RETURN_IF_ERROR(out.Append(d));
  }
  return out;
}

Status Schema::Append(RelationDecl decl) {
  if (Contains(decl.symbol)) {
    return Status::InvalidArgument("duplicate relation symbol in schema: " +
                                   NameOf(decl.symbol));
  }
  decls_.push_back(decl);
  if (decls_.size() > kLinearScanMax) {
    if (index_.size() < decls_.size() * 2) {
      RebuildIndex();  // First time past the fast path, or table at 50% load.
    } else {
      InsertIndexEntry(decl.symbol, decls_.size() - 1);
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < decls_.size(); ++i) {
    if (i > 0) out += ", ";
    out += NameOf(decls_[i].symbol);
    out += "/";
    out += std::to_string(decls_[i].arity);
  }
  out += "]";
  return out;
}

}  // namespace kbt
