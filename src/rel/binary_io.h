#ifndef KBT_REL_BINARY_IO_H_
#define KBT_REL_BINARY_IO_H_

/// \file
/// Binary serialization for databases and knowledgebases — the storage format
/// behind src/store/ checkpoints, next to the debug-only text form of rel/io.h.
///
/// Interned Symbols are process-local, so the wire format never stores raw ids:
/// each blob opens with a string dictionary collected in first-use order
/// (schema declarations, then relation rows in row-major order), and every
/// symbol is a u32 index into it. That makes the encoding a pure function of
/// the *value* — serializing the same database twice, or a parse of a previous
/// serialization, yields byte-identical output (the byte-stability the
/// checkpoint round-trip tests assert).
///
/// Layout (all integers little-endian u32 unless noted):
///
///   dictionary:  count, then count × (len, bytes)
///   schema:      count, then count × (name_index, arity)
///   database:    dictionary, schema, then per declaration: rows,
///                rows × arity × value_index
///   kb:          member_count, dictionary, schema, then per member the
///                per-declaration relation data (members share one schema and
///                one dictionary)
///
/// Parsing is fully bounds-checked: truncated or corrupt input yields a clean
/// kDataLoss / kInvalidArgument Status, never a crash or an oversized
/// allocation (counts are validated against the bytes actually present before
/// any buffer is sized).

#include <string>
#include <string_view>

#include "base/status.h"
#include "rel/database.h"
#include "rel/knowledgebase.h"

namespace kbt {

/// Appends the binary encoding of `db` to `out`.
void AppendBinaryDatabase(const Database& db, std::string* out);

/// The binary encoding of `db`.
std::string SerializeDatabase(const Database& db);

/// Parses a database encoded by SerializeDatabase. The whole input must be
/// consumed (trailing bytes are an error).
StatusOr<Database> ParseBinaryDatabase(std::string_view bytes);

/// Appends the binary encoding of `kb` to `out`.
void AppendBinaryKnowledgebase(const Knowledgebase& kb, std::string* out);

/// The binary encoding of `kb`.
std::string SerializeKnowledgebase(const Knowledgebase& kb);

/// Parses a knowledgebase encoded by SerializeKnowledgebase. The whole input
/// must be consumed (trailing bytes are an error).
StatusOr<Knowledgebase> ParseBinaryKnowledgebase(std::string_view bytes);

}  // namespace kbt

#endif  // KBT_REL_BINARY_IO_H_
