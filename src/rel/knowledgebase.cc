#include "rel/knowledgebase.h"

#include <algorithm>
#include <unordered_map>

namespace kbt {

void Knowledgebase::Canonicalize() {
  // Hash-based dedup first (Database::Hash buckets, equality only within a
  // bucket), then one sort of the survivors for the canonical order. For the
  // τ merge over many near-identical worlds this drops duplicates in O(n)
  // expected instead of feeding them all into the sort.
  if (databases_.size() > 1) {
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    buckets.reserve(databases_.size());
    size_t keep = 0;
    for (size_t i = 0; i < databases_.size(); ++i) {
      size_t h = databases_[i].Hash();
      std::vector<size_t>& bucket = buckets[h];
      bool duplicate = false;
      for (size_t j : bucket) {
        if (databases_[j] == databases_[i]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (keep != i) databases_[keep] = std::move(databases_[i]);
      bucket.push_back(keep);
      ++keep;
    }
    databases_.resize(keep);
  }
  std::sort(databases_.begin(), databases_.end());
}

StatusOr<Knowledgebase> Knowledgebase::FromDatabases(std::vector<Database> databases) {
  Knowledgebase kb;
  if (databases.empty()) return kb;
  kb.schema_ = databases.front().schema();
  for (const Database& db : databases) {
    if (db.schema() != kb.schema_) {
      return Status::InvalidArgument(
          "knowledgebase members must share one schema; got " +
          db.schema().ToString() + " vs " + kb.schema_.ToString());
    }
  }
  kb.databases_ = std::move(databases);
  kb.Canonicalize();
  return kb;
}

Knowledgebase Knowledgebase::Singleton(Database db) {
  Knowledgebase kb;
  kb.schema_ = db.schema();
  kb.databases_.push_back(std::move(db));
  return kb;
}

bool Knowledgebase::Contains(const Database& db) const {
  if (db.schema() != schema_) return false;
  return std::binary_search(databases_.begin(), databases_.end(), db);
}

StatusOr<Knowledgebase> Knowledgebase::WithDatabase(const Database& db) const {
  if (!databases_.empty() && db.schema() != schema_) {
    return Status::InvalidArgument("WithDatabase: schema mismatch");
  }
  Knowledgebase out = *this;
  if (out.databases_.empty()) out.schema_ = db.schema();
  out.databases_.push_back(db);
  out.Canonicalize();
  return out;
}

StatusOr<Knowledgebase> Knowledgebase::UnionWith(const Knowledgebase& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  if (schema_ != other.schema_) {
    return Status::InvalidArgument("knowledgebase union: schema mismatch");
  }
  Knowledgebase out = *this;
  out.databases_.insert(out.databases_.end(), other.databases_.begin(),
                        other.databases_.end());
  out.Canonicalize();
  return out;
}

StatusOr<Knowledgebase> Knowledgebase::UnionAll(std::vector<Knowledgebase> parts) {
  Knowledgebase out;
  if (parts.empty()) return out;
  // Adopt the first non-default schema (all μ results of one τ call share the
  // extended schema, even the empty ones), falling back to the first part's.
  out.schema_ = parts.front().schema_;
  for (const Knowledgebase& part : parts) {
    if (part.schema_.size() != 0) {
      out.schema_ = part.schema_;
      break;
    }
  }
  size_t total = 0;
  for (const Knowledgebase& part : parts) total += part.size();
  out.databases_.reserve(total);
  for (Knowledgebase& part : parts) {
    if (part.empty()) continue;
    if (part.schema_ != out.schema_) {
      return Status::InvalidArgument("knowledgebase union: schema mismatch");
    }
    std::move(part.databases_.begin(), part.databases_.end(),
              std::back_inserter(out.databases_));
  }
  out.Canonicalize();
  return out;
}

Knowledgebase Knowledgebase::Glb() const {
  if (databases_.empty()) return *this;
  Database acc = databases_.front();
  for (size_t i = 1; i < databases_.size(); ++i) {
    StatusOr<Database> next = acc.Meet(databases_[i]);
    acc = std::move(next).value();  // Same schema by invariant.
  }
  return Singleton(std::move(acc));
}

Knowledgebase Knowledgebase::Lub() const {
  if (databases_.empty()) return *this;
  Database acc = databases_.front();
  for (size_t i = 1; i < databases_.size(); ++i) {
    StatusOr<Database> next = acc.Join(databases_[i]);
    acc = std::move(next).value();  // Same schema by invariant.
  }
  return Singleton(std::move(acc));
}

StatusOr<Knowledgebase> Knowledgebase::ProjectTo(
    const std::vector<Symbol>& symbols) const {
  std::vector<Database> out;
  out.reserve(databases_.size());
  for (const Database& db : databases_) {
    KBT_ASSIGN_OR_RETURN(Database projected, db.ProjectTo(symbols));
    out.push_back(std::move(projected));
  }
  if (out.empty()) {
    // Preserve the projected schema even with no worlds.
    Database probe(schema_);
    KBT_ASSIGN_OR_RETURN(Database projected, probe.ProjectTo(symbols));
    return Knowledgebase(projected.schema());
  }
  return FromDatabases(std::move(out));
}

StatusOr<Knowledgebase> Knowledgebase::ExtendTo(const Schema& super) const {
  std::vector<Database> out;
  out.reserve(databases_.size());
  for (const Database& db : databases_) {
    KBT_ASSIGN_OR_RETURN(Database extended, db.ExtendTo(super));
    out.push_back(std::move(extended));
  }
  if (out.empty()) {
    if (!super.Includes(schema_)) {
      return Status::InvalidArgument("ExtendTo: target schema does not dominate");
    }
    return Knowledgebase(super);
  }
  return FromDatabases(std::move(out));
}

std::string Knowledgebase::ToString() const {
  std::string out = "{ ";
  for (size_t i = 0; i < databases_.size(); ++i) {
    if (i > 0) out += ", ";
    out += databases_[i].ToString();
  }
  out += " }";
  return out;
}

}  // namespace kbt
