#include "rel/knowledgebase.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace kbt {

namespace {

/// Strict-weak-order adapter over CompareWorldsOnBase for sort/binary_search.
struct OverlayLess {
  const Database* base;
  bool operator()(const WorldOverlay& a, const WorldOverlay& b) const {
    return CompareWorldsOnBase(*base, a, b) < 0;
  }
};

}  // namespace

void Knowledgebase::Canonicalize(const ParallelMap* parallel) {
  if (overlays_.size() > 1) {
    // Hash every overlay first (O(delta) each; relation hashes are cached in
    // the shared storage blocks). This pass is embarrassingly parallel and is
    // the only part the hook runs concurrently — dedup and sort stay
    // sequential, so the result is bit-identical with or without the hook.
    std::vector<size_t> hashes(overlays_.size());
    auto hash_one = [&](size_t i) { hashes[i] = overlays_[i].Hash(); };
    bool hashed = false;
    if (parallel != nullptr && *parallel) {
      hashed = (*parallel)(overlays_.size(), hash_one).ok();
    }
    if (!hashed) {
      for (size_t i = 0; i < overlays_.size(); ++i) hash_one(i);
    }
    // Overlays are a unique representation relative to one base, so world
    // equality is overlay equality: dedup needs no database comparisons.
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    buckets.reserve(overlays_.size());
    size_t keep = 0;
    for (size_t i = 0; i < overlays_.size(); ++i) {
      std::vector<size_t>& bucket = buckets[hashes[i]];
      bool duplicate = false;
      for (size_t j : bucket) {
        if (overlays_[j] == overlays_[i]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (keep != i) overlays_[keep] = std::move(overlays_[i]);
      bucket.push_back(keep);
      ++keep;
    }
    overlays_.resize(keep);
  }
  std::sort(overlays_.begin(), overlays_.end(), OverlayLess{base_.get()});
}

StatusOr<Knowledgebase> Knowledgebase::FromDatabases(std::vector<Database> databases) {
  Knowledgebase kb;
  if (databases.empty()) return kb;
  kb.schema_ = databases.front().schema();
  for (const Database& db : databases) {
    if (db.schema() != kb.schema_) {
      return Status::InvalidArgument(
          "knowledgebase members must share one schema; got " +
          db.schema().ToString() + " vs " + kb.schema_.ToString());
    }
  }
  // Canonicalize the flat members directly (CompareWorldsOnBase reproduces
  // this order, so diffing after the sort keeps overlays canonical), then
  // anchor the base at the first world and keep the already-materialized
  // members as the prefilled flat view.
  if (databases.size() > 1) {
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    buckets.reserve(databases.size());
    size_t keep = 0;
    for (size_t i = 0; i < databases.size(); ++i) {
      size_t h = databases[i].Hash();
      std::vector<size_t>& bucket = buckets[h];
      bool duplicate = false;
      for (size_t j : bucket) {
        if (databases[j] == databases[i]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (keep != i) databases[keep] = std::move(databases[i]);
      bucket.push_back(keep);
      ++keep;
    }
    databases.resize(keep);
    std::sort(databases.begin(), databases.end());
  }
  kb.base_ = std::make_shared<const Database>(databases.front());
  kb.overlays_.reserve(databases.size());
  for (const Database& db : databases) {
    kb.overlays_.push_back(WorldOverlay::FromDiff(*kb.base_, db));
  }
  kb.ResetFlatCache();
  kb.flat_->worlds = std::move(databases);
  kb.flat_->ready.store(true, std::memory_order_release);
  return kb;
}

Knowledgebase Knowledgebase::Singleton(Database db) {
  Knowledgebase kb;
  kb.schema_ = db.schema();
  kb.base_ = std::make_shared<const Database>(std::move(db));
  kb.overlays_.emplace_back();  // Identity: the single world is the base.
  kb.ResetFlatCache();
  kb.flat_->worlds.push_back(*kb.base_);
  kb.flat_->ready.store(true, std::memory_order_release);
  return kb;
}

StatusOr<Knowledgebase> Knowledgebase::FromBaseAndOverlays(
    std::shared_ptr<const Database> base, std::vector<WorldOverlay> overlays,
    const ParallelMap* parallel) {
  if (base == nullptr) {
    return Status::InvalidArgument("FromBaseAndOverlays: null base");
  }
  if (overlays.empty()) return Knowledgebase(base->schema());
  Knowledgebase kb;
  kb.schema_ = base->schema();
  kb.base_ = std::move(base);
  kb.overlays_ = std::move(overlays);
  kb.Canonicalize(parallel);
  kb.ResetFlatCache();
  return kb;
}

const std::vector<Database>& Knowledgebase::databases() const {
  static const std::vector<Database> kNoWorlds;
  if (overlays_.empty()) return kNoWorlds;
  FlatCache& cache = *flat_;
  if (!cache.ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (!cache.ready.load(std::memory_order_relaxed)) {
      std::vector<Database> worlds;
      worlds.reserve(overlays_.size());
      for (const WorldOverlay& ov : overlays_) {
        worlds.push_back(ov.ApplyTo(*base_));
      }
      cache.worlds = std::move(worlds);
      cache.ready.store(true, std::memory_order_release);
    }
  }
  return cache.worlds;
}

Knowledgebase Knowledgebase::SelectWorlds(const std::vector<size_t>& indices) const {
  if (indices.empty()) return Knowledgebase(schema_);
  Knowledgebase out;
  out.schema_ = schema_;
  out.base_ = base_;
  out.overlays_.reserve(indices.size());
  for (size_t i : indices) out.overlays_.push_back(overlays_[i]);
  out.ResetFlatCache();
  return out;
}

size_t Knowledgebase::ApproxHeapBytes() const {
  if (overlays_.empty()) return 0;
  // Tuple buffers are shared (base relations reused across worlds, delta
  // relations reused across copies), so count each distinct buffer once.
  std::set<const void*> seen;
  size_t bytes = 0;
  auto add_relation = [&](const Relation& r) {
    if (r.StorageId() == nullptr) return;
    if (seen.insert(r.StorageId()).second) bytes += r.HeapBytes();
  };
  for (const Relation& r : base_->relations()) add_relation(r);
  bytes += base_->relations().capacity() * sizeof(Relation);
  for (const WorldOverlay& ov : overlays_) {
    for (const RelationDelta& d : ov.deltas()) {
      add_relation(d.adds);
      add_relation(d.dels);
    }
    bytes += ov.deltas().capacity() * sizeof(RelationDelta);
  }
  bytes += overlays_.capacity() * sizeof(WorldOverlay);
  return bytes;
}

bool Knowledgebase::Contains(const Database& db) const {
  if (db.schema() != schema_ || overlays_.empty()) return false;
  WorldOverlay probe = WorldOverlay::FromDiff(*base_, db);
  return std::binary_search(overlays_.begin(), overlays_.end(), probe,
                            OverlayLess{base_.get()});
}

StatusOr<Knowledgebase> Knowledgebase::WithDatabase(const Database& db) const {
  if (empty()) return Singleton(db);
  if (db.schema() != schema_) {
    return Status::InvalidArgument("WithDatabase: schema mismatch");
  }
  Knowledgebase out = *this;
  out.overlays_.push_back(WorldOverlay::FromDiff(*base_, db));
  out.Canonicalize();
  out.ResetFlatCache();
  return out;
}

StatusOr<Knowledgebase> Knowledgebase::UnionWith(const Knowledgebase& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  if (schema_ != other.schema_) {
    return Status::InvalidArgument("knowledgebase union: schema mismatch");
  }
  Knowledgebase out = *this;
  out.overlays_.reserve(out.overlays_.size() + other.size());
  if (other.base_ == base_ || *other.base_ == *base_) {
    out.overlays_.insert(out.overlays_.end(), other.overlays_.begin(),
                         other.overlays_.end());
  } else {
    for (size_t i = 0; i < other.size(); ++i) {
      out.overlays_.push_back(WorldOverlay::FromDiff(*base_, other.World(i)));
    }
  }
  out.Canonicalize();
  out.ResetFlatCache();
  return out;
}

StatusOr<Knowledgebase> Knowledgebase::UnionAll(std::vector<Knowledgebase> parts,
                                                const ParallelMap* parallel) {
  Knowledgebase out;
  if (parts.empty()) return out;
  // Adopt the first non-default schema (all μ results of one τ call share the
  // extended schema, even the empty ones), falling back to the first part's.
  out.schema_ = parts.front().schema_;
  for (const Knowledgebase& part : parts) {
    if (part.schema_.size() != 0) {
      out.schema_ = part.schema_;
      break;
    }
  }
  size_t total = 0;
  for (const Knowledgebase& part : parts) total += part.size();
  out.overlays_.reserve(total);
  for (Knowledgebase& part : parts) {
    if (part.empty()) continue;
    if (part.schema_ != out.schema_) {
      return Status::InvalidArgument("knowledgebase union: schema mismatch");
    }
    if (out.base_ == nullptr) {
      // The first non-empty part anchors the shared base; its overlays move.
      out.base_ = std::move(part.base_);
      std::move(part.overlays_.begin(), part.overlays_.end(),
                std::back_inserter(out.overlays_));
      continue;
    }
    if (part.base_ == out.base_ || *part.base_ == *out.base_) {
      // Shared base (the common case on the τ result path): overlays carry
      // over untouched, O(1) each.
      std::move(part.overlays_.begin(), part.overlays_.end(),
                std::back_inserter(out.overlays_));
    } else {
      for (size_t i = 0; i < part.size(); ++i) {
        out.overlays_.push_back(
            WorldOverlay::FromDiff(*out.base_, part.World(i)));
      }
    }
  }
  if (out.base_ == nullptr) return Knowledgebase(out.schema_);  // All empty.
  out.Canonicalize(parallel);
  out.ResetFlatCache();
  return out;
}

Knowledgebase Knowledgebase::Glb() const {
  if (overlays_.empty()) return *this;
  // ⊓ = ∩_i ((B \ D_i) ∪ A_i) per relation. Adds never meet the base and dels
  // always do, so the cross terms vanish: ⊓ = (B \ ∪_i D_i) ∪ (∩_i A_i),
  // computed only at positions some overlay touches.
  Database acc = *base_;
  for (size_t p = 0; p < schema_.size(); ++p) {
    bool touched = false;
    for (const WorldOverlay& ov : overlays_) {
      if (ov.FindDelta(p) != nullptr) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    const Relation& base_rel = base_->relation_at(p);
    Relation all_dels(base_rel.arity());
    Relation common_adds;
    bool first = true;
    for (const WorldOverlay& ov : overlays_) {
      const RelationDelta* d = ov.FindDelta(p);
      const Relation empty(base_rel.arity());
      const Relation& adds = d != nullptr ? d->adds : empty;
      const Relation& dels = d != nullptr ? d->dels : empty;
      all_dels = all_dels.Union(dels);
      common_adds = first ? adds : common_adds.Intersect(adds);
      first = false;
    }
    acc.ReplaceRelation(p, base_rel.Difference(all_dels).Union(common_adds));
  }
  return Singleton(std::move(acc));
}

Knowledgebase Knowledgebase::Lub() const {
  if (overlays_.empty()) return *this;
  // ⊔ = ∪_i ((B \ D_i) ∪ A_i) = (B \ ∩_i D_i) ∪ (∪_i A_i), dual to Glb.
  Database acc = *base_;
  for (size_t p = 0; p < schema_.size(); ++p) {
    bool touched = false;
    for (const WorldOverlay& ov : overlays_) {
      if (ov.FindDelta(p) != nullptr) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    const Relation& base_rel = base_->relation_at(p);
    Relation all_adds(base_rel.arity());
    Relation common_dels;
    bool first = true;
    for (const WorldOverlay& ov : overlays_) {
      const RelationDelta* d = ov.FindDelta(p);
      const Relation empty(base_rel.arity());
      const Relation& adds = d != nullptr ? d->adds : empty;
      const Relation& dels = d != nullptr ? d->dels : empty;
      all_adds = all_adds.Union(adds);
      common_dels = first ? dels : common_dels.Intersect(dels);
      first = false;
    }
    acc.ReplaceRelation(p, base_rel.Difference(common_dels).Union(all_adds));
  }
  return Singleton(std::move(acc));
}

StatusOr<Knowledgebase> Knowledgebase::ProjectTo(
    const std::vector<Symbol>& symbols) const {
  if (overlays_.empty()) {
    // Preserve the projected schema even with no worlds.
    Database probe(schema_);
    KBT_ASSIGN_OR_RETURN(Database projected, probe.ProjectTo(symbols));
    return Knowledgebase(projected.schema());
  }
  // Project the base once, remap delta positions old → new, and drop deltas of
  // relations projected away. Projection preserves the overlay invariants
  // per surviving relation, but distinct worlds can collapse and the order
  // can change, so the result re-canonicalizes.
  KBT_ASSIGN_OR_RETURN(Database projected_base, base_->ProjectTo(symbols));
  auto new_base = std::make_shared<const Database>(std::move(projected_base));
  const Schema& new_schema = new_base->schema();
  std::vector<WorldOverlay> out;
  out.reserve(overlays_.size());
  for (const WorldOverlay& ov : overlays_) {
    std::vector<RelationDelta> deltas;
    for (const RelationDelta& d : ov.deltas()) {
      std::optional<size_t> np =
          new_schema.PositionOf(schema_.decl(d.pos).symbol);
      if (!np.has_value()) continue;  // Projected away.
      RelationDelta nd = d;
      nd.pos = static_cast<uint32_t>(*np);
      deltas.push_back(std::move(nd));
    }
    out.push_back(WorldOverlay::FromDeltas(std::move(deltas)));
  }
  return FromBaseAndOverlays(std::move(new_base), std::move(out));
}

StatusOr<Knowledgebase> Knowledgebase::ExtendTo(const Schema& super) const {
  if (overlays_.empty()) {
    if (!super.Includes(schema_)) {
      return Status::InvalidArgument("ExtendTo: target schema does not dominate");
    }
    return Knowledgebase(super);
  }
  // Extend the base once; overlays follow with their delta positions remapped
  // (new relations are empty in every world, so no new deltas appear, and
  // extension preserves the invariants, distinctness, and — when `super`
  // appends to `schema_`, the common case — the canonical order; positions
  // can permute in general, so re-canonicalize).
  KBT_ASSIGN_OR_RETURN(Database extended_base, base_->ExtendTo(super));
  auto new_base = std::make_shared<const Database>(std::move(extended_base));
  std::vector<WorldOverlay> out;
  out.reserve(overlays_.size());
  for (const WorldOverlay& ov : overlays_) {
    std::vector<RelationDelta> deltas;
    deltas.reserve(ov.deltas().size());
    for (const RelationDelta& d : ov.deltas()) {
      std::optional<size_t> np = super.PositionOf(schema_.decl(d.pos).symbol);
      RelationDelta nd = d;
      nd.pos = static_cast<uint32_t>(*np);  // Present: super includes schema_.
      deltas.push_back(std::move(nd));
    }
    out.push_back(WorldOverlay::FromDeltas(std::move(deltas)));
  }
  return FromBaseAndOverlays(std::move(new_base), std::move(out));
}

std::string Knowledgebase::ToString() const {
  const std::vector<Database>& dbs = databases();
  std::string out = "{ ";
  for (size_t i = 0; i < dbs.size(); ++i) {
    if (i > 0) out += ", ";
    out += dbs[i].ToString();
  }
  out += " }";
  return out;
}

bool operator==(const Knowledgebase& a, const Knowledgebase& b) {
  if (a.schema_ != b.schema_ || a.size() != b.size()) return false;
  if (a.empty()) return true;
  if (a.base_ == b.base_ || *a.base_ == *b.base_) {
    // One base: canonical overlays are a unique representation, so the world
    // sets are equal iff the overlay sequences are — O(worlds × delta).
    return a.overlays_ == b.overlays_;
  }
  // Different bases: compare the materialized canonical sequences.
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.World(i) != b.World(i)) return false;
  }
  return true;
}

}  // namespace kbt
