#ifndef KBT_REL_SCHEMA_H_
#define KBT_REL_SCHEMA_H_

/// \file
/// Database schemas: ordered sequences of relation symbols with arities.
///
/// The paper treats a database as a *sequence* (r_i1, ..., r_in) of relations, so a
/// schema here is ordered, and projection / component talk is by position as well as
/// by symbol. "σ(db2) dominates σ(db1)" (σ(db1) ⊆ σ(db2)) becomes
/// `schema2.Includes(schema1)`.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/interner.h"
#include "base/status.h"

namespace kbt {

/// A relation symbol together with its arity α(i).
struct RelationDecl {
  Symbol symbol;
  size_t arity;

  friend bool operator==(const RelationDecl& a, const RelationDecl& b) {
    return a.symbol == b.symbol && a.arity == b.arity;
  }
};

/// An ordered set of relation declarations. Symbols are unique within a schema.
class Schema {
 public:
  /// The empty schema.
  Schema() = default;

  /// Builds a schema from (name, arity) pairs, interning the names.
  /// Duplicate names are an error.
  static StatusOr<Schema> Of(
      std::initializer_list<std::pair<std::string_view, size_t>> decls);

  /// Builds from declarations; duplicate symbols are an error.
  static StatusOr<Schema> FromDecls(std::vector<RelationDecl> decls);

  /// Number of relations.
  size_t size() const { return decls_.size(); }
  bool empty() const { return decls_.empty(); }
  const std::vector<RelationDecl>& decls() const { return decls_; }
  const RelationDecl& decl(size_t position) const { return decls_[position]; }

  /// Position of `symbol`, if declared. Small schemas (≤ 8 relations) use a
  /// linear scan over the declaration array; larger ones probe an inline
  /// open-addressed symbol → position table, so the lookup stays O(1) at
  /// production relation counts.
  std::optional<size_t> PositionOf(Symbol symbol) const;
  /// True iff `symbol` is declared.
  bool Contains(Symbol symbol) const { return PositionOf(symbol).has_value(); }
  /// Arity of `symbol`, if declared.
  std::optional<size_t> ArityOf(Symbol symbol) const;

  /// True iff every declaration of `sub` appears here with the same arity
  /// (the paper's "this dominates sub").
  bool Includes(const Schema& sub) const;

  /// This schema followed by the declarations of `other` not already present.
  /// Fails if a shared symbol has conflicting arities.
  StatusOr<Schema> Union(const Schema& other) const;

  /// Appends one declaration; fails on duplicate symbol.
  Status Append(RelationDecl decl);

  /// Renders as "[R1/2, R2/1]".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.decls_ == b.decls_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) { return !(a == b); }

 private:
  /// Largest schema still served by the linear-scan fast path (typical paper
  /// examples fit; the hashed table only kicks in beyond it).
  static constexpr size_t kLinearScanMax = 8;
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  /// Rebuilds index_ to cover all of decls_ (power-of-two size, ≤50% load).
  void RebuildIndex();
  /// Linear-probe insert of one symbol→position entry into index_.
  void InsertIndexEntry(Symbol symbol, size_t position);

  std::vector<RelationDecl> decls_;
  /// Open-addressed symbol → position table; empty while the schema fits the
  /// linear-scan fast path. Derived from decls_ (not part of equality).
  std::vector<uint32_t> index_;
};

}  // namespace kbt

#endif  // KBT_REL_SCHEMA_H_
