#ifndef KBT_REL_TUPLE_H_
#define KBT_REL_TUPLE_H_

/// \file
/// Tuples of interned domain elements.
///
/// In the paper, a k-ary term is a tuple with k components over A ∪ X; a *ground*
/// tuple (the only kind stored in relations) has all components in the domain A.
/// Components are interned Symbols (see base/interner.h). Arity 0 is supported: the
/// empty tuple is the single inhabitant, used by the paper's zero-ary relations
/// (e.g. R4 in Example 3 and r0 in Theorem 4.9).
///
/// Two representations exist. `TupleView` is a non-owning (pointer, arity) pair
/// into a flat value buffer — the working currency of the relation layer and the
/// Datalog evaluator, which never allocate per tuple. `Tuple` owns its components
/// and survives as a convenience type at API edges (parsers, tests, ground atoms).

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"

namespace kbt {

/// An element of the domain A: an interned constant symbol.
using Value = Symbol;

/// Three-way lexicographic comparison of two rows of `arity` values.
inline int CompareValues(const Value* a, const Value* b, size_t arity) {
  for (size_t i = 0; i < arity; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

class Tuple;

/// A non-owning view of one ground tuple: a pointer into a flat value buffer plus
/// an arity. Trivially copyable; valid only while the underlying buffer lives.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const Value* data, size_t arity) : data_(data), arity_(arity) {}
  /// Implicit view of an owning Tuple (defined below).
  TupleView(const Tuple& t);  // NOLINT(google-explicit-constructor)

  /// Number of components.
  size_t arity() const { return arity_; }
  /// Component access; `i` must be < arity().
  Value operator[](size_t i) const { return data_[i]; }
  /// Underlying contiguous values.
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  /// Copies the viewed components into an owning Tuple.
  Tuple ToTuple() const;

  /// Renders as "(a1, a2)" using the process-wide interner.
  std::string ToString() const;

  friend bool operator==(TupleView a, TupleView b) {
    return a.arity_ == b.arity_ && CompareValues(a.data_, b.data_, a.arity_) == 0;
  }
  friend bool operator!=(TupleView a, TupleView b) { return !(a == b); }
  /// Lexicographic order; shorter tuples precede longer ones on a shared prefix.
  friend bool operator<(TupleView a, TupleView b) {
    size_t common = a.arity_ < b.arity_ ? a.arity_ : b.arity_;
    int c = CompareValues(a.data_, b.data_, common);
    if (c != 0) return c < 0;
    return a.arity_ < b.arity_;
  }

  /// Hash over components; agrees with Tuple::Hash on equal contents.
  size_t Hash() const { return HashRange(begin(), end()); }

 private:
  const Value* data_ = nullptr;
  size_t arity_ = 0;
};

/// An immutable owning ground tuple over the domain.
class Tuple {
 public:
  /// The empty (zero-ary) tuple.
  Tuple() = default;
  /// Tuple from explicit values.
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  /// Tuple from a vector of values.
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  /// Builds a tuple by interning each name, e.g. Tuple::Of({"a1", "a2"}).
  static Tuple Of(std::initializer_list<std::string_view> names);

  /// Number of components.
  size_t arity() const { return values_.size(); }
  /// Component access; `i` must be < arity().
  Value operator[](size_t i) const { return values_[i]; }
  /// Underlying values.
  const std::vector<Value>& values() const { return values_; }
  /// Non-owning view of this tuple.
  TupleView view() const { return TupleView(values_.data(), values_.size()); }

  /// Projects onto the given component indices (each < arity()); duplicates allowed.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// Renders as "(a1, a2)" using the process-wide interner.
  std::string ToString() const { return view().ToString(); }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  /// Lexicographic order; used to keep relations sorted.
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  /// Hash over components.
  size_t Hash() const {
    return HashRange(values_.begin(), values_.end());
  }

 private:
  std::vector<Value> values_;
};

inline TupleView::TupleView(const Tuple& t)
    : data_(t.values().data()), arity_(t.arity()) {}

inline Tuple TupleView::ToTuple() const {
  return Tuple(std::vector<Value>(begin(), end()));
}

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

struct TupleViewHash {
  size_t operator()(TupleView t) const { return t.Hash(); }
};

}  // namespace kbt

#endif  // KBT_REL_TUPLE_H_
