#ifndef KBT_REL_TUPLE_H_
#define KBT_REL_TUPLE_H_

/// \file
/// Tuples of interned domain elements.
///
/// In the paper, a k-ary term is a tuple with k components over A ∪ X; a *ground*
/// tuple (the only kind stored in relations) has all components in the domain A.
/// Components are interned Symbols (see base/interner.h). Arity 0 is supported: the
/// empty tuple is the single inhabitant, used by the paper's zero-ary relations
/// (e.g. R4 in Example 3 and r0 in Theorem 4.9).

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"

namespace kbt {

/// An element of the domain A: an interned constant symbol.
using Value = Symbol;

/// An immutable ground tuple over the domain.
class Tuple {
 public:
  /// The empty (zero-ary) tuple.
  Tuple() = default;
  /// Tuple from explicit values.
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  /// Tuple from a vector of values.
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  /// Builds a tuple by interning each name, e.g. Tuple::Of({"a1", "a2"}).
  static Tuple Of(std::initializer_list<std::string_view> names);

  /// Number of components.
  size_t arity() const { return values_.size(); }
  /// Component access; `i` must be < arity().
  Value operator[](size_t i) const { return values_[i]; }
  /// Underlying values.
  const std::vector<Value>& values() const { return values_; }

  /// Projects onto the given component indices (each < arity()); duplicates allowed.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// Renders as "(a1, a2)" using the process-wide interner.
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  /// Lexicographic order; used to keep relations sorted.
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  /// Hash over components.
  size_t Hash() const {
    return HashRange(values_.begin(), values_.end());
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace kbt

#endif  // KBT_REL_TUPLE_H_
