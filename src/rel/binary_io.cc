#include "rel/binary_io.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace kbt {

namespace {

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

/// Bounds-checked little-endian reader over a byte view. Every failure names
/// the field being read, so corrupt checkpoints are diagnosable.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ >= bytes_.size(); }

  Status ReadU32(std::string_view field, uint32_t* out) {
    if (remaining() < 4) {
      return Status::DataLoss(std::string("truncated input reading ") +
                              std::string(field));
    }
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
    *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadBytes(std::string_view field, size_t n, std::string_view* out) {
    if (remaining() < n) {
      return Status::DataLoss(std::string("truncated input reading ") +
                              std::string(field));
    }
    *out = bytes_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Collects the string dictionary of a blob in first-use order: schema
/// declaration names first, then relation values in row-major order.
class DictBuilder {
 public:
  uint32_t IndexOf(Symbol s) {
    auto [it, inserted] = index_.try_emplace(s, symbols_.size());
    if (inserted) symbols_.push_back(s);
    return static_cast<uint32_t>(it->second);
  }

  void CollectSchema(const Schema& schema) {
    for (const RelationDecl& d : schema.decls()) IndexOf(d.symbol);
  }

  void CollectRelations(const Database& db) {
    for (const Relation& r : db.relations()) {
      for (Value v : r.flat()) IndexOf(v);
    }
  }

  void Emit(std::string* out) const {
    PutU32(static_cast<uint32_t>(symbols_.size()), out);
    for (Symbol s : symbols_) {
      const std::string& name = NameOf(s);
      PutU32(static_cast<uint32_t>(name.size()), out);
      out->append(name);
    }
  }

 private:
  std::unordered_map<Symbol, size_t> index_;
  std::vector<Symbol> symbols_;
};

void EmitSchema(const Schema& schema, DictBuilder* dict, std::string* out) {
  PutU32(static_cast<uint32_t>(schema.size()), out);
  for (const RelationDecl& d : schema.decls()) {
    PutU32(dict->IndexOf(d.symbol), out);
    PutU32(static_cast<uint32_t>(d.arity), out);
  }
}

void EmitRelations(const Database& db, DictBuilder* dict, std::string* out) {
  for (const Relation& r : db.relations()) {
    PutU32(static_cast<uint32_t>(r.size()), out);
    for (Value v : r.flat()) PutU32(dict->IndexOf(v), out);
  }
}

StatusOr<std::vector<Symbol>> ReadDictionary(Reader* reader) {
  uint32_t count = 0;
  KBT_RETURN_IF_ERROR(reader->ReadU32("dictionary count", &count));
  // Every entry takes at least its 4-byte length prefix, so a count the input
  // cannot possibly hold is rejected before any allocation.
  if (count > reader->remaining() / 4) {
    return Status::DataLoss("dictionary count exceeds input size");
  }
  std::vector<Symbol> symbols;
  symbols.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    KBT_RETURN_IF_ERROR(reader->ReadU32("dictionary entry length", &len));
    std::string_view name;
    KBT_RETURN_IF_ERROR(reader->ReadBytes("dictionary entry", len, &name));
    symbols.push_back(Names().Intern(name));
  }
  return symbols;
}

StatusOr<Schema> ReadSchema(Reader* reader, const std::vector<Symbol>& dict) {
  uint32_t count = 0;
  KBT_RETURN_IF_ERROR(reader->ReadU32("schema count", &count));
  if (count > reader->remaining() / 8) {
    return Status::DataLoss("schema count exceeds input size");
  }
  std::vector<RelationDecl> decls;
  decls.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_index = 0;
    uint32_t arity = 0;
    KBT_RETURN_IF_ERROR(reader->ReadU32("schema name index", &name_index));
    KBT_RETURN_IF_ERROR(reader->ReadU32("schema arity", &arity));
    if (name_index >= dict.size()) {
      return Status::DataLoss("schema name index out of dictionary range");
    }
    decls.push_back(RelationDecl{dict[name_index], static_cast<size_t>(arity)});
  }
  return Schema::FromDecls(std::move(decls));
}

StatusOr<Relation> ReadRelation(Reader* reader, const std::vector<Symbol>& dict,
                                size_t arity) {
  uint32_t rows = 0;
  KBT_RETURN_IF_ERROR(reader->ReadU32("relation row count", &rows));
  if (arity == 0) {
    // The empty tuple is the only inhabitant of a zero-ary relation.
    if (rows > 1) return Status::DataLoss("zero-ary relation with > 1 row");
  } else if (static_cast<uint64_t>(rows) * arity >
             static_cast<uint64_t>(reader->remaining()) / 4) {
    return Status::DataLoss("relation row count exceeds input size");
  }
  Relation::Builder builder(arity);
  builder.Reserve(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    if (arity == 0) {
      builder.Append(TupleView(nullptr, 0));
      continue;
    }
    Value* row = builder.AppendRow();
    for (size_t i = 0; i < arity; ++i) {
      uint32_t value_index = 0;
      KBT_RETURN_IF_ERROR(reader->ReadU32("tuple value index", &value_index));
      if (value_index >= dict.size()) {
        return Status::DataLoss("tuple value index out of dictionary range");
      }
      row[i] = dict[value_index];
    }
  }
  return builder.Build();
}

StatusOr<Database> ReadDatabaseBody(Reader* reader,
                                    const std::vector<Symbol>& dict,
                                    const Schema& schema) {
  std::vector<Relation> relations;
  relations.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    KBT_ASSIGN_OR_RETURN(Relation r,
                         ReadRelation(reader, dict, schema.decl(i).arity));
    relations.push_back(std::move(r));
  }
  return Database::Create(schema, std::move(relations));
}

}  // namespace

void AppendBinaryDatabase(const Database& db, std::string* out) {
  DictBuilder dict;
  dict.CollectSchema(db.schema());
  dict.CollectRelations(db);
  dict.Emit(out);
  EmitSchema(db.schema(), &dict, out);
  EmitRelations(db, &dict, out);
}

std::string SerializeDatabase(const Database& db) {
  std::string out;
  AppendBinaryDatabase(db, &out);
  return out;
}

StatusOr<Database> ParseBinaryDatabase(std::string_view bytes) {
  Reader reader(bytes);
  KBT_ASSIGN_OR_RETURN(std::vector<Symbol> dict, ReadDictionary(&reader));
  KBT_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&reader, dict));
  KBT_ASSIGN_OR_RETURN(Database db, ReadDatabaseBody(&reader, dict, schema));
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after database");
  }
  return db;
}

void AppendBinaryKnowledgebase(const Knowledgebase& kb, std::string* out) {
  PutU32(static_cast<uint32_t>(kb.size()), out);
  DictBuilder dict;
  dict.CollectSchema(kb.schema());
  for (const Database& db : kb) dict.CollectRelations(db);
  dict.Emit(out);
  EmitSchema(kb.schema(), &dict, out);
  for (const Database& db : kb) EmitRelations(db, &dict, out);
}

std::string SerializeKnowledgebase(const Knowledgebase& kb) {
  std::string out;
  AppendBinaryKnowledgebase(kb, &out);
  return out;
}

StatusOr<Knowledgebase> ParseBinaryKnowledgebase(std::string_view bytes) {
  Reader reader(bytes);
  uint32_t members = 0;
  KBT_RETURN_IF_ERROR(reader.ReadU32("member count", &members));
  // Every member needs at least one row-count word per schema relation; with
  // an empty schema a member is zero bytes, so cap only by a sanity bound.
  if (members > (1u << 24)) {
    return Status::DataLoss("member count exceeds sanity bound");
  }
  KBT_ASSIGN_OR_RETURN(std::vector<Symbol> dict, ReadDictionary(&reader));
  KBT_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&reader, dict));
  std::vector<Database> databases;
  databases.reserve(std::min<uint32_t>(members, 1024));
  for (uint32_t m = 0; m < members; ++m) {
    KBT_ASSIGN_OR_RETURN(Database db, ReadDatabaseBody(&reader, dict, schema));
    databases.push_back(std::move(db));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after knowledgebase");
  }
  if (databases.empty()) return Knowledgebase(std::move(schema));
  return Knowledgebase::FromDatabases(std::move(databases));
}

}  // namespace kbt
