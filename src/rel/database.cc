#include "rel/database.h"

#include <algorithm>
#include <cassert>

#include "base/hash.h"

namespace kbt {

Database::Database(Schema schema) : schema_(std::move(schema)) {
  relations_.reserve(schema_.size());
  for (const RelationDecl& d : schema_.decls()) {
    relations_.emplace_back(d.arity);
  }
}

StatusOr<Database> Database::Create(Schema schema, std::vector<Relation> relations) {
  if (schema.size() != relations.size()) {
    return Status::InvalidArgument("database: schema/relation count mismatch");
  }
  for (size_t i = 0; i < relations.size(); ++i) {
    if (relations[i].arity() != schema.decl(i).arity) {
      return Status::InvalidArgument("database: arity mismatch for relation " +
                                     NameOf(schema.decl(i).symbol));
    }
  }
  Database db;
  db.schema_ = std::move(schema);
  db.relations_ = std::move(relations);
  return db;
}

StatusOr<Relation> Database::RelationFor(Symbol symbol) const {
  std::optional<size_t> pos = schema_.PositionOf(symbol);
  if (!pos) {
    return Status::NotFound("relation not in schema: " + NameOf(symbol));
  }
  return relations_[*pos];
}

StatusOr<Relation> Database::RelationFor(std::string_view name) const {
  return RelationFor(Name(name));
}

const Relation* Database::FindRelation(Symbol symbol) const {
  std::optional<size_t> pos = schema_.PositionOf(symbol);
  return pos ? &relations_[*pos] : nullptr;
}

StatusOr<Database> Database::WithRelation(Symbol symbol, Relation relation) const {
  std::optional<size_t> pos = schema_.PositionOf(symbol);
  if (!pos) {
    return Status::NotFound("relation not in schema: " + NameOf(symbol));
  }
  if (relation.arity() != schema_.decl(*pos).arity) {
    return Status::InvalidArgument("arity mismatch for relation " + NameOf(symbol));
  }
  Database out = *this;
  out.relations_[*pos] = std::move(relation);
  return out;
}

StatusOr<Database> Database::WithRelation(std::string_view name,
                                          Relation relation) const {
  return WithRelation(Name(name), std::move(relation));
}

void Database::ReplaceRelation(size_t pos, Relation relation) {
  assert(pos < relations_.size());
  assert(relation.arity() == schema_.decl(pos).arity);
  relations_[pos] = std::move(relation);
}

StatusOr<Database> Database::ExtendTo(const Schema& super) const {
  if (!super.Includes(schema_)) {
    return Status::InvalidArgument("ExtendTo: target schema does not dominate σ(db)");
  }
  Database out(super);
  for (size_t i = 0; i < schema_.size(); ++i) {
    std::optional<size_t> pos = super.PositionOf(schema_.decl(i).symbol);
    assert(pos.has_value());
    out.relations_[*pos] = relations_[i];
  }
  return out;
}

StatusOr<Database> Database::ProjectTo(const std::vector<Symbol>& symbols) const {
  Schema schema;
  std::vector<Relation> relations;
  for (Symbol s : symbols) {
    std::optional<size_t> pos = schema_.PositionOf(s);
    if (!pos) {
      return Status::NotFound("projection onto undeclared relation: " + NameOf(s));
    }
    KBT_RETURN_IF_ERROR(schema.Append(schema_.decl(*pos)));
    relations.push_back(relations_[*pos]);
  }
  return Create(std::move(schema), std::move(relations));
}

std::vector<Value> Database::ActiveDomain() const {
  std::vector<Value> values;
  for (const Relation& r : relations_) r.CollectValues(&values);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

size_t Database::TupleCount() const {
  size_t n = 0;
  for (const Relation& r : relations_) n += r.size();
  return n;
}

StatusOr<Database> Database::Meet(const Database& other) const {
  if (schema_ != other.schema_) {
    return Status::InvalidArgument("Meet: schema mismatch");
  }
  Database out = *this;
  for (size_t i = 0; i < relations_.size(); ++i) {
    out.relations_[i] = relations_[i].Intersect(other.relations_[i]);
  }
  return out;
}

StatusOr<Database> Database::Join(const Database& other) const {
  if (schema_ != other.schema_) {
    return Status::InvalidArgument("Join: schema mismatch");
  }
  Database out = *this;
  for (size_t i = 0; i < relations_.size(); ++i) {
    out.relations_[i] = relations_[i].Union(other.relations_[i]);
  }
  return out;
}

std::string Database::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out += ", ";
    out += NameOf(schema_.decl(i).symbol);
    out += ": ";
    out += relations_[i].ToString();
  }
  out += ">";
  return out;
}

bool operator<(const Database& a, const Database& b) {
  assert(a.schema_ == b.schema_ && "ordering databases across schemas");
  return a.relations_ < b.relations_;
}

size_t Database::Hash() const {
  size_t seed = 0x9b1a5d17;
  for (const RelationDecl& d : schema_.decls()) {
    seed = HashCombine(seed, d.symbol);
    seed = HashCombine(seed, d.arity);
  }
  for (const Relation& r : relations_) seed = HashCombine(seed, r.Hash());
  return seed;
}

}  // namespace kbt
