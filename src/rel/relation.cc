#include "rel/relation.h"

#include <algorithm>
#include <cassert>

#include "base/hash.h"

namespace kbt {

Relation::Relation(size_t arity, std::vector<Tuple> tuples)
    : arity_(arity), tuples_(std::move(tuples)) {
  for (const Tuple& t : tuples_) {
    assert(t.arity() == arity_ && "tuple arity mismatch");
    (void)t;
  }
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

Relation Relation::WithTuple(const Tuple& t) const {
  assert(t.arity() == arity_);
  if (Contains(t)) return *this;
  std::vector<Tuple> tuples = tuples_;
  tuples.insert(std::upper_bound(tuples.begin(), tuples.end(), t), t);
  Relation out(arity_);
  out.tuples_ = std::move(tuples);
  return out;
}

Relation Relation::WithoutTuple(const Tuple& t) const {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) return *this;
  Relation out(arity_);
  out.tuples_.reserve(tuples_.size() - 1);
  out.tuples_.insert(out.tuples_.end(), tuples_.begin(), it);
  out.tuples_.insert(out.tuples_.end(), it + 1, tuples_.end());
  return out;
}

Relation Relation::Union(const Relation& other) const {
  assert(arity_ == other.arity_);
  Relation out(arity_);
  out.tuples_.reserve(tuples_.size() + other.tuples_.size());
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(out.tuples_));
  return out;
}

Relation Relation::Intersect(const Relation& other) const {
  assert(arity_ == other.arity_);
  Relation out(arity_);
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(), std::back_inserter(out.tuples_));
  return out;
}

Relation Relation::Difference(const Relation& other) const {
  assert(arity_ == other.arity_);
  Relation out(arity_);
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(out.tuples_));
  return out;
}

Relation Relation::SymmetricDifference(const Relation& other) const {
  assert(arity_ == other.arity_);
  Relation out(arity_);
  std::set_symmetric_difference(tuples_.begin(), tuples_.end(),
                                other.tuples_.begin(), other.tuples_.end(),
                                std::back_inserter(out.tuples_));
  return out;
}

bool Relation::IsSubsetOf(const Relation& other) const {
  assert(arity_ == other.arity_);
  return std::includes(other.tuples_.begin(), other.tuples_.end(), tuples_.begin(),
                       tuples_.end());
}

void Relation::CollectValues(std::vector<Value>* out) const {
  for (const Tuple& t : tuples_) {
    out->insert(out->end(), t.values().begin(), t.values().end());
  }
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples_[i].ToString();
  }
  out += "}";
  return out;
}

size_t Relation::Hash() const {
  size_t seed = HashCombine(0x51ab5f1e, arity_);
  for (const Tuple& t : tuples_) seed = HashCombine(seed, t.Hash());
  return seed;
}

}  // namespace kbt
