#include "rel/relation.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "base/hash.h"

namespace kbt {

namespace {

/// True when the flat buffer of `rows` rows of width `arity` is already strictly
/// row-sorted (sorted with no duplicates).
bool IsStrictlySorted(const Value* data, size_t rows, size_t arity) {
  for (size_t r = 1; r < rows; ++r) {
    if (CompareValues(data + (r - 1) * arity, data + r * arity, arity) >= 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Relation::Builder::Append(TupleView t) {
  assert(t.arity() == arity_ && "tuple arity mismatch");
  data_.insert(data_.end(), t.begin(), t.end());
  ++rows_;
}

Value* Relation::Builder::AppendRow() {
  assert(arity_ > 0 && "AppendRow requires positive arity");
  data_.resize(data_.size() + arity_);
  ++rows_;
  return data_.data() + data_.size() - arity_;
}

void Relation::Builder::DropLastRow() {
  assert(rows_ > 0);
  data_.resize(data_.size() - arity_);
  --rows_;
}

Relation Relation::Builder::Build() {
  size_t arity = arity_;
  size_t rows = rows_;
  std::vector<Value> data = std::move(data_);
  data_.clear();
  rows_ = 0;
  if (arity == 0) {
    return Relation(0, rows > 0 ? 1 : 0, {});
  }
  if (IsStrictlySorted(data.data(), rows, arity)) {
    return Relation(arity, rows, std::move(data));
  }
  // Sort row ids, then write rows out in order, skipping adjacent duplicates.
  // Row ids are 32-bit: 2^32 rows of even arity 1 would need 16 GiB of values,
  // far past any workload here (limit is debug-asserted, not checked in
  // release builds).
  assert(rows < UINT32_MAX && "relation exceeds 2^32 rows");
  std::vector<uint32_t> order(rows);
  std::iota(order.begin(), order.end(), 0u);
  const Value* d = data.data();
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    return CompareValues(d + size_t{x} * arity, d + size_t{y} * arity, arity) < 0;
  });
  std::vector<Value> out;
  out.reserve(data.size());
  const Value* prev = nullptr;
  for (uint32_t r : order) {
    const Value* row = d + size_t{r} * arity;
    if (prev != nullptr && CompareValues(prev, row, arity) == 0) continue;
    out.insert(out.end(), row, row + arity);
    prev = row;
  }
  size_t unique_rows = out.size() / arity;
  return Relation(arity, unique_rows, std::move(out));
}

Relation::Relation(size_t arity, const std::vector<Tuple>& tuples) : arity_(arity) {
  Builder b(arity);
  b.Reserve(tuples.size());
  for (const Tuple& t : tuples) b.Append(t);
  *this = b.Build();
}

size_t Relation::LowerBoundRow(TupleView t) const {
  const Value* d = data().data();
  size_t lo = 0, hi = rows_;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (CompareValues(d + mid * arity_, t.data(), arity_) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool Relation::Contains(TupleView t) const {
  assert(t.arity() == arity_);
  if (arity_ == 0) return rows_ > 0;
  size_t r = LowerBoundRow(t);
  return r < rows_ &&
         CompareValues(data().data() + r * arity_, t.data(), arity_) == 0;
}

Relation Relation::WithTuple(TupleView t) const {
  assert(t.arity() == arity_);
  if (arity_ == 0) return rows_ > 0 ? *this : Relation(0, 1, {});
  const std::vector<Value>& d = data();
  size_t r = LowerBoundRow(t);
  if (r < rows_ && CompareValues(d.data() + r * arity_, t.data(), arity_) == 0) {
    return *this;
  }
  std::vector<Value> out;
  out.reserve(d.size() + arity_);
  out.insert(out.end(), d.begin(), d.begin() + r * arity_);
  out.insert(out.end(), t.begin(), t.end());
  out.insert(out.end(), d.begin() + r * arity_, d.end());
  return Relation(arity_, rows_ + 1, std::move(out));
}

Relation Relation::WithoutTuple(TupleView t) const {
  assert(t.arity() == arity_);
  if (arity_ == 0) return rows_ > 0 ? Relation(0) : *this;
  const std::vector<Value>& d = data();
  size_t r = LowerBoundRow(t);
  if (r == rows_ || CompareValues(d.data() + r * arity_, t.data(), arity_) != 0) {
    return *this;
  }
  std::vector<Value> out;
  out.reserve(d.size() - arity_);
  out.insert(out.end(), d.begin(), d.begin() + r * arity_);
  out.insert(out.end(), d.begin() + (r + 1) * arity_, d.end());
  return Relation(arity_, rows_ - 1, std::move(out));
}

Relation Relation::Union(const Relation& other) const {
  assert(arity_ == other.arity_);
  if (arity_ == 0) {
    return Relation(0, (rows_ > 0 || other.rows_ > 0) ? 1 : 0, {});
  }
  if (other.rows_ == 0) return *this;
  if (rows_ == 0) return other;
  if (storage_ == other.storage_) return *this;  // Identical shared buffer.
  std::vector<Value> out;
  out.reserve(data().size() + other.data().size());
  const Value* a = data().data();
  const Value* ae = a + data().size();
  const Value* b = other.data().data();
  const Value* be = b + other.data().size();
  while (a != ae && b != be) {
    int c = CompareValues(a, b, arity_);
    if (c <= 0) {
      out.insert(out.end(), a, a + arity_);
      a += arity_;
      if (c == 0) b += arity_;
    } else {
      out.insert(out.end(), b, b + arity_);
      b += arity_;
    }
  }
  out.insert(out.end(), a, ae);
  out.insert(out.end(), b, be);
  size_t out_rows = out.size() / arity_;
  return Relation(arity_, out_rows, std::move(out));
}

Relation Relation::Intersect(const Relation& other) const {
  assert(arity_ == other.arity_);
  if (arity_ == 0) {
    return Relation(0, (rows_ > 0 && other.rows_ > 0) ? 1 : 0, {});
  }
  if (storage_ != nullptr && storage_ == other.storage_) return *this;
  std::vector<Value> out;
  const Value* a = data().data();
  const Value* ae = a + data().size();
  const Value* b = other.data().data();
  const Value* be = b + other.data().size();
  while (a != ae && b != be) {
    int c = CompareValues(a, b, arity_);
    if (c < 0) {
      a += arity_;
    } else if (c > 0) {
      b += arity_;
    } else {
      out.insert(out.end(), a, a + arity_);
      a += arity_;
      b += arity_;
    }
  }
  size_t out_rows = out.size() / arity_;
  return Relation(arity_, out_rows, std::move(out));
}

Relation Relation::Difference(const Relation& other) const {
  assert(arity_ == other.arity_);
  if (arity_ == 0) {
    return Relation(0, (rows_ > 0 && other.rows_ == 0) ? 1 : 0, {});
  }
  if (other.rows_ == 0 || rows_ == 0) return *this;
  if (storage_ == other.storage_) return Relation(arity_);
  std::vector<Value> out;
  out.reserve(data().size());
  const Value* a = data().data();
  const Value* ae = a + data().size();
  const Value* b = other.data().data();
  const Value* be = b + other.data().size();
  while (a != ae && b != be) {
    int c = CompareValues(a, b, arity_);
    if (c < 0) {
      out.insert(out.end(), a, a + arity_);
      a += arity_;
    } else if (c > 0) {
      b += arity_;
    } else {
      a += arity_;
      b += arity_;
    }
  }
  out.insert(out.end(), a, ae);
  size_t out_rows = out.size() / arity_;
  return Relation(arity_, out_rows, std::move(out));
}

Relation Relation::SymmetricDifference(const Relation& other) const {
  assert(arity_ == other.arity_);
  if (arity_ == 0) {
    return Relation(0, ((rows_ > 0) != (other.rows_ > 0)) ? 1 : 0, {});
  }
  if (storage_ != nullptr && storage_ == other.storage_) return Relation(arity_);
  std::vector<Value> out;
  out.reserve(data().size() + other.data().size());
  const Value* a = data().data();
  const Value* ae = a + data().size();
  const Value* b = other.data().data();
  const Value* be = b + other.data().size();
  while (a != ae && b != be) {
    int c = CompareValues(a, b, arity_);
    if (c < 0) {
      out.insert(out.end(), a, a + arity_);
      a += arity_;
    } else if (c > 0) {
      out.insert(out.end(), b, b + arity_);
      b += arity_;
    } else {
      a += arity_;
      b += arity_;
    }
  }
  out.insert(out.end(), a, ae);
  out.insert(out.end(), b, be);
  size_t out_rows = out.size() / arity_;
  return Relation(arity_, out_rows, std::move(out));
}

bool Relation::IsSubsetOf(const Relation& other) const {
  assert(arity_ == other.arity_);
  if (arity_ == 0) return rows_ == 0 || other.rows_ > 0;
  if (rows_ > other.rows_) return false;
  if (storage_ == other.storage_) return true;  // Equal (or both empty).
  const Value* a = data().data();
  const Value* ae = a + data().size();
  const Value* b = other.data().data();
  const Value* be = b + other.data().size();
  while (a != ae) {
    if (b == be) return false;
    int c = CompareValues(a, b, arity_);
    if (c < 0) return false;  // Row of `this` missing from `other`.
    b += arity_;
    if (c == 0) a += arity_;
  }
  return true;
}

void Relation::CollectValues(std::vector<Value>* out) const {
  out->insert(out->end(), data().begin(), data().end());
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (size_t r = 0; r < rows_; ++r) {
    if (r > 0) out += ", ";
    out += (*this)[r].ToString();
  }
  out += "}";
  return out;
}

bool operator<(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
  if (a.storage_ != nullptr && a.storage_ == b.storage_) return false;  // Equal.
  const std::vector<Value>& da = a.data();
  const std::vector<Value>& db = b.data();
  auto cmp = std::lexicographical_compare_three_way(da.begin(), da.end(),
                                                    db.begin(), db.end());
  if (cmp != 0) return cmp < 0;
  return a.rows_ < b.rows_;  // Distinguishes arity-0 relations.
}

size_t Relation::Hash() const {
  if (storage_ != nullptr) {
    size_t cached = storage_->hash.load(std::memory_order_relaxed);
    if (cached != 0) return cached;
  }
  size_t seed = HashCombine(0x51ab5f1e, arity_);
  for (size_t r = 0; r < rows_; ++r) seed = HashCombine(seed, (*this)[r].Hash());
  if (storage_ != nullptr) {
    if (seed == 0) seed = 1;  // Reserve 0 for "not yet computed".
    storage_->hash.store(seed, std::memory_order_relaxed);
  }
  return seed;
}

}  // namespace kbt
