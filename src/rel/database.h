#ifndef KBT_REL_DATABASE_H_
#define KBT_REL_DATABASE_H_

/// \file
/// Databases: finite relational structures under the closed world assumption.
///
/// A database db is a sequence of finite relations over a schema σ(db). Only the
/// explicitly stored facts are true (closed world, [Rei78]). Databases are immutable
/// value types: mutating helpers return fresh databases.

#include <string>
#include <vector>

#include "base/status.h"
#include "rel/relation.h"
#include "rel/schema.h"

namespace kbt {

/// A finite relational structure over a fixed schema.
class Database {
 public:
  /// Database over the empty schema.
  Database() = default;

  /// Database with all relations empty.
  explicit Database(Schema schema);

  /// Database from schema plus one relation per declaration (positionally aligned;
  /// arities must match).
  static StatusOr<Database> Create(Schema schema, std::vector<Relation> relations);

  const Schema& schema() const { return schema_; }
  size_t size() const { return relations_.size(); }
  const std::vector<Relation>& relations() const { return relations_; }

  /// Relation at schema position `i`.
  const Relation& relation_at(size_t i) const { return relations_[i]; }

  /// Relation for `symbol`; fails with kNotFound when undeclared.
  StatusOr<Relation> RelationFor(Symbol symbol) const;
  /// Relation for an (interned) name; fails with kNotFound when undeclared.
  StatusOr<Relation> RelationFor(std::string_view name) const;

  /// Borrowed relation for `symbol`, or nullptr when undeclared. The hot-path
  /// variant of RelationFor: no Status machinery, no relation copy.
  const Relation* FindRelation(Symbol symbol) const;

  /// Returns a copy with the relation for `symbol` replaced. Fails when the symbol is
  /// undeclared or the arity mismatches.
  StatusOr<Database> WithRelation(Symbol symbol, Relation relation) const;
  StatusOr<Database> WithRelation(std::string_view name, Relation relation) const;

  /// Replaces the relation at schema position `pos` in place (arity must match;
  /// asserted). The bulk-edit primitive behind delta model materialization: a
  /// caller that already copied a base database swaps the few touched relations
  /// without paying WithRelation's whole-database copy per swap.
  void ReplaceRelation(size_t pos, Relation relation);

  /// Embeds this database into `super` (which must include σ(db)); relations absent
  /// here are empty in the result — the convention used when μ compares candidates
  /// over σ(db) ∪ σ(φ) against db.
  StatusOr<Database> ExtendTo(const Schema& super) const;

  /// Projects onto the listed symbols, in the listed order (the paper's π).
  StatusOr<Database> ProjectTo(const std::vector<Symbol>& symbols) const;

  /// All values appearing in any relation, sorted and deduplicated — the data part of
  /// the active domain B.
  std::vector<Value> ActiveDomain() const;

  /// Total number of stored tuples across relations.
  size_t TupleCount() const;

  /// Componentwise intersection with `other` (same schema required): the binary step
  /// of the paper's ⊓.
  StatusOr<Database> Meet(const Database& other) const;
  /// Componentwise union with `other` (same schema required): the binary step of ⊔.
  StatusOr<Database> Join(const Database& other) const;

  /// Renders as "<R1: {...}, R2: {...}>".
  std::string ToString() const;

  friend bool operator==(const Database& a, const Database& b) {
    return a.schema_ == b.schema_ && a.relations_ == b.relations_;
  }
  friend bool operator!=(const Database& a, const Database& b) { return !(a == b); }
  /// Total order among same-schema databases (asserted); canonical kb ordering.
  friend bool operator<(const Database& a, const Database& b);

  size_t Hash() const;

 private:
  Schema schema_;
  std::vector<Relation> relations_;
};

struct DatabaseHash {
  size_t operator()(const Database& db) const { return db.Hash(); }
};

}  // namespace kbt

#endif  // KBT_REL_DATABASE_H_
