#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <memory>

#include "core/mu_internal.h"
#include "core/winslett_order.h"
#include "exec/ground_cache.h"
#include "logic/grounder.h"

namespace kbt::internal {

namespace {

/// Per-relation bitmasks over the mentioned atoms, for fast Winslett comparison
/// of enumerated assignments without materializing databases.
struct MaskContext {
  uint64_t default_mask = 0;                  ///< Default value per atom bit.
  std::vector<uint64_t> old_relation_masks;   ///< One mask per σ(db) relation used.
  uint64_t new_mask = 0;                      ///< Bits of new-relation atoms.

  /// True iff model `a` is strictly ≤_db-closer than model `b`.
  bool StrictlyCloser(uint64_t a, uint64_t b) const {
    uint64_t da = a ^ default_mask;
    uint64_t db = b ^ default_mask;
    bool some_strict = false;
    for (uint64_t rel : old_relation_masks) {
      uint64_t d1 = da & rel;
      uint64_t d2 = db & rel;
      if ((d1 & ~d2) != 0) return false;  // Not a componentwise subset.
      if (d1 != d2) some_strict = true;
    }
    if (some_strict) return true;
    uint64_t n1 = a & new_mask;
    uint64_t n2 = b & new_mask;
    return (n1 & ~n2) == 0 && n1 != n2;
  }

  size_t DiffCount(uint64_t a) const {
    uint64_t bits = 0;
    for (uint64_t rel : old_relation_masks) bits |= (a ^ default_mask) & rel;
    return static_cast<size_t>(std::popcount(bits));
  }
  size_t NewCount(uint64_t a) const {
    return static_cast<size_t>(std::popcount(a & new_mask));
  }
};

}  // namespace

StatusOr<Knowledgebase> MuReference(const Formula& sentence, const Database& db,
                                    const UpdateContext& ctx, const MuOptions& options,
                                    MuStats* stats, const MuExecContext& exec) {
  GrounderOptions gopts;
  gopts.max_nodes = options.max_ground_nodes;
  // Same-domain worlds share one grounding (the circuit is read-only here);
  // ground updates over a τ fan-out hit this path via kAuto.
  KBT_ASSIGN_OR_RETURN(std::shared_ptr<const exec::CachedGrounding> shared,
                       ObtainGrounding(exec, sentence, ctx.domain, gopts));
  const Grounding& g = shared->grounding;
  const std::vector<int>& vars = shared->mentioned;
  stats->ground_nodes = g.circuit.size();
  stats->ground_atoms = vars.size();

  if (vars.size() > options.max_reference_atoms || vars.size() > 62) {
    return Status::ResourceExhausted(
        "reference enumeration over " + std::to_string(vars.size()) +
        " ground atoms exceeds the budget of " +
        std::to_string(options.max_reference_atoms));
  }

  // Per-relation masks and defaults over the mentioned atoms.
  const size_t k = vars.size();
  MaskContext masks;
  std::map<Symbol, uint64_t> old_groups;
  for (size_t i = 0; i < k; ++i) {
    const GroundAtom& atom = g.atoms.AtomOf(vars[i]);
    uint64_t bit = uint64_t{1} << i;
    if (IsOldAtom(atom, db)) {
      old_groups[atom.relation] |= bit;
      const Relation* r = ctx.extended_base.FindRelation(atom.relation);
      if (r == nullptr) {
        return Status::NotFound("relation not in schema: " + NameOf(atom.relation));
      }
      if (r->Contains(atom.tuple)) masks.default_mask |= bit;
    } else {
      masks.new_mask |= bit;
    }
  }
  for (const auto& [symbol, mask] : old_groups) {
    masks.old_relation_masks.push_back(mask);
  }

  // Enumerate every assignment to the mentioned atoms. In any minimal model the
  // unmentioned atoms keep their default (deviating only moves a candidate farther
  // from db), so this is exhaustive for minimality purposes.
  std::vector<uint64_t> models;
  std::vector<int8_t> memo(g.circuit.size());
  std::vector<bool> assignment(g.atoms.size(), false);
  std::function<bool(int)> eval = [&](int id) -> bool {
    if (memo[static_cast<size_t>(id)] != 0) {
      return memo[static_cast<size_t>(id)] == 2;
    }
    const Circuit::Node& n = g.circuit.node(id);
    bool result = false;
    switch (n.kind) {
      case Circuit::NodeKind::kConst:
        result = (n.var == 1);
        break;
      case Circuit::NodeKind::kVar:
        result = assignment[static_cast<size_t>(n.var)];
        break;
      case Circuit::NodeKind::kNot:
        result = !eval(n.children[0]);
        break;
      case Circuit::NodeKind::kAnd:
        result = true;
        for (int c : n.children) {
          if (!eval(c)) {
            result = false;
            break;
          }
        }
        break;
      case Circuit::NodeKind::kOr:
        for (int c : n.children) {
          if (eval(c)) {
            result = true;
            break;
          }
        }
        break;
    }
    memo[static_cast<size_t>(id)] = result ? 2 : 1;
    return result;
  };

  for (uint64_t mask = 0; mask < (uint64_t{1} << k); ++mask) {
    // Up to 2^max_reference_atoms assignments: poll the request token every
    // 1024 so a cancelled request unwinds promptly (no-op when token-free).
    if (options.cancel != nullptr && (mask & 1023) == 0 &&
        options.cancel->Expired()) {
      return Status::DeadlineExceeded("μ cancelled during reference enumeration");
    }
    for (size_t i = 0; i < k; ++i) {
      assignment[static_cast<size_t>(vars[i])] = ((mask >> i) & 1) != 0;
    }
    std::fill(memo.begin(), memo.end(), 0);
    ++stats->candidates_examined;
    if (eval(g.root)) models.push_back(mask);
  }

  // Minimal-element selection on masks: dominators have lexicographically
  // smaller (|Δ|, |new|) keys, so a sorted scan against accepted minima suffices.
  std::stable_sort(models.begin(), models.end(), [&](uint64_t a, uint64_t b) {
    size_t da = masks.DiffCount(a), db_count = masks.DiffCount(b);
    if (da != db_count) return da < db_count;
    return masks.NewCount(a) < masks.NewCount(b);
  });
  std::vector<uint64_t> minimal_masks;
  for (uint64_t m : models) {
    bool minimal = true;
    for (uint64_t accepted : minimal_masks) {
      if (masks.StrictlyCloser(accepted, m)) {
        minimal = false;
        break;
      }
    }
    if (minimal) minimal_masks.push_back(m);
  }

  stats->minimal_models = minimal_masks.size();
  if (minimal_masks.empty()) return Knowledgebase(ctx.schema);
  // Delta materialization: one precomputation (groups, tuple order, base
  // membership), then one merge pass per minimal model. The dense id → bit
  // table replaces the per-atom linear scan over `vars`.
  KBT_ASSIGN_OR_RETURN(ModelMaterializer materializer,
                       ModelMaterializer::Make(ctx, g.atoms, vars));
  std::vector<int> bit_of(g.atoms.size(), -1);
  for (size_t i = 0; i < k; ++i) bit_of[static_cast<size_t>(vars[i])] = static_cast<int>(i);
  std::vector<WorldOverlay> minimal;
  minimal.reserve(minimal_masks.size());
  for (uint64_t m : minimal_masks) {
    KBT_ASSIGN_OR_RETURN(WorldOverlay model,
                         materializer.MaterializeOverlay([&](int id) {
                           int bit = bit_of[static_cast<size_t>(id)];
                           return bit >= 0 && ((m >> bit) & 1) != 0;
                         }));
    minimal.push_back(std::move(model));
  }
  return Knowledgebase::FromBaseAndOverlays(
      std::make_shared<const Database>(ctx.extended_base), std::move(minimal));
}

}  // namespace kbt::internal
