/// \file
/// Model materialization: turning (atom id → truth value) assignments into
/// databases over the update context's schema.
///
/// Two implementations of one function. MaterializeModel is the specification:
/// group deviations in a map, rebuild each touched relation via
/// Union/Difference. ModelMaterializer is the enumeration-loop form: the
/// per-model work is reduced to one sorted-merge per touched relation by
/// hoisting everything that depends only on (ctx, grounding) — relation
/// positions, tuple order, base membership — into one precomputation per μ
/// call. τ over many worlds multiplies the saving by worlds × models.

#include <algorithm>
#include <map>

#include "core/mu_internal.h"

namespace kbt::internal {

StatusOr<Database> MaterializeModel(
    const UpdateContext& ctx, const AtomIndex& atoms,
    const std::vector<int>& mentioned_atom_ids,
    const std::function<bool(int)>& atom_value) {
  // Group deviations per relation, then rebuild each touched relation once.
  std::map<Symbol, std::pair<std::vector<Tuple>, std::vector<Tuple>>> edits;
  for (int id : mentioned_atom_ids) {
    const GroundAtom& atom = atoms.AtomOf(id);
    const Relation* current = ctx.extended_base.FindRelation(atom.relation);
    if (current == nullptr) {
      return Status::NotFound("relation not in schema: " + NameOf(atom.relation));
    }
    bool present = current->Contains(atom.tuple);
    bool wanted = atom_value(id);
    if (present == wanted) continue;
    auto& [adds, removes] = edits[atom.relation];
    (wanted ? adds : removes).push_back(atom.tuple);
  }
  Database out = ctx.extended_base;
  for (auto& [symbol, add_remove] : edits) {
    KBT_ASSIGN_OR_RETURN(Relation r, out.RelationFor(symbol));
    Relation adds(r.arity(), std::move(add_remove.first));
    Relation removes(r.arity(), std::move(add_remove.second));
    KBT_ASSIGN_OR_RETURN(out, out.WithRelation(symbol,
                                               r.Union(adds).Difference(removes)));
  }
  return out;
}

StatusOr<WorldOverlay> MaterializeOverlayModel(
    const UpdateContext& ctx, const AtomIndex& atoms,
    const std::vector<int>& mentioned_atom_ids,
    const std::function<bool(int)>& atom_value) {
  std::map<Symbol, std::pair<std::vector<Tuple>, std::vector<Tuple>>> edits;
  for (int id : mentioned_atom_ids) {
    const GroundAtom& atom = atoms.AtomOf(id);
    const Relation* current = ctx.extended_base.FindRelation(atom.relation);
    if (current == nullptr) {
      return Status::NotFound("relation not in schema: " + NameOf(atom.relation));
    }
    bool present = current->Contains(atom.tuple);
    bool wanted = atom_value(id);
    if (present == wanted) continue;
    auto& [adds, removes] = edits[atom.relation];
    (wanted ? adds : removes).push_back(atom.tuple);
  }
  // The deviations ARE the overlay: atoms wanted true but absent are the adds
  // (disjoint from the base by the membership test above), atoms wanted false
  // but present are the dels (contained in it) — canonical by construction.
  std::vector<RelationDelta> deltas;
  deltas.reserve(edits.size());
  for (auto& [symbol, add_remove] : edits) {
    std::optional<size_t> pos = ctx.schema.PositionOf(symbol);
    if (!pos) {
      return Status::NotFound("relation not in schema: " + NameOf(symbol));
    }
    size_t arity = ctx.schema.decl(*pos).arity;
    RelationDelta d;
    d.pos = static_cast<uint32_t>(*pos);
    d.adds = Relation(arity, std::move(add_remove.first));
    d.dels = Relation(arity, std::move(add_remove.second));
    deltas.push_back(std::move(d));
  }
  return WorldOverlay::FromDeltas(std::move(deltas));
}

Status ModelMaterializer::Rebuild(const UpdateContext& ctx,
                                  const AtomIndex& atoms,
                                  const std::vector<int>& mentioned_atom_ids) {
  ctx_ = &ctx;
  entries_.clear();
  groups_.clear();
  // One flat entry list sorted by (schema position, tuple); groups are the
  // runs. Grounding visits relations in clusters and emits tuples in near
  // order, so the sort's branch behavior is benign; no per-bucket containers,
  // and every buffer keeps its capacity across Rebuilds (a WorldScratch parks
  // one materializer per worker for exactly this reason).
  keyed_.clear();
  keyed_.reserve(mentioned_atom_ids.size());
  for (int id : mentioned_atom_ids) {
    const GroundAtom& atom = atoms.AtomOf(id);
    std::optional<size_t> pos = ctx.schema.PositionOf(atom.relation);
    if (!pos) {
      ctx_ = nullptr;  // Half-built state must not be Materialized.
      return Status::NotFound("relation not in schema: " + NameOf(atom.relation));
    }
    const Relation& base = ctx.extended_base.relation_at(*pos);
    // The TupleView borrows the AtomIndex's owning tuple — stable for the
    // materializer's lifetime because the grounding is immutable once built.
    TupleView t(atom.tuple);
    keyed_.push_back({*pos, AtomEntry{id, t, base.Contains(t)}});
  }
  // Sorting by tuple within a relation makes each model's add/remove
  // subsequences sorted, so Materialize merges in one pass. Mentioned atoms
  // are distinct, so the order is total (ties impossible within one relation).
  std::sort(keyed_.begin(), keyed_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.tuple < b.second.tuple;
            });
  entries_.reserve(keyed_.size());
  for (size_t i = 0; i < keyed_.size();) {
    size_t j = i;
    while (j < keyed_.size() && keyed_[j].first == keyed_[i].first) ++j;
    groups_.push_back(Group{keyed_[i].first, static_cast<uint32_t>(i),
                            static_cast<uint32_t>(j)});
    for (size_t k = i; k < j; ++k) entries_.push_back(keyed_[k].second);
    i = j;
  }
  return Status::OK();
}

StatusOr<ModelMaterializer> ModelMaterializer::Make(
    const UpdateContext& ctx, const AtomIndex& atoms,
    const std::vector<int>& mentioned_atom_ids) {
  ModelMaterializer m;
  KBT_RETURN_IF_ERROR(m.Rebuild(ctx, atoms, mentioned_atom_ids));
  return m;
}

StatusOr<Database> ModelMaterializer::Materialize(
    const std::function<bool(int)>& atom_value) const {
  Database out = ctx_->extended_base;
  for (const Group& group : groups_) {
    adds_.clear();
    removes_.clear();
    for (uint32_t e = group.begin; e < group.end; ++e) {
      const AtomEntry& entry = entries_[e];
      bool wanted = atom_value(entry.id);
      if (wanted == entry.present) continue;
      (wanted ? adds_ : removes_).push_back(entry.tuple);
    }
    if (adds_.empty() && removes_.empty()) continue;
    const Relation& base = ctx_->extended_base.relation_at(group.schema_pos);
    size_t arity = base.arity();
    if (arity == 0) {
      // A nullary relation has one possible tuple, so at most one delta: an
      // add makes it hold, a remove empties it.
      Relation r(0);
      if (!adds_.empty()) r = r.WithTuple(TupleView());
      out.ReplaceRelation(group.schema_pos, std::move(r));
      continue;
    }
    // One pass: (base ∪ adds) \ removes. adds are absent from base and removes
    // are present in it by construction, and both lists are sorted.
    Relation::Builder b(arity);
    b.Reserve(base.size() + adds_.size());
    const Value* row = base.flat().data();
    const Value* end = row + base.flat().size();
    size_t ai = 0, ri = 0;
    while (row != end || ai < adds_.size()) {
      bool take_add =
          ai < adds_.size() &&
          (row == end || CompareValues(adds_[ai].data(), row, arity) < 0);
      if (take_add) {
        b.Append(adds_[ai++]);
        continue;
      }
      if (ri < removes_.size() &&
          CompareValues(removes_[ri].data(), row, arity) == 0) {
        ++ri;  // Drop this base row.
      } else {
        b.Append(TupleView(row, arity));
      }
      row += arity;
    }
    out.ReplaceRelation(group.schema_pos, b.Build());
  }
  return out;
}

StatusOr<WorldOverlay> ModelMaterializer::MaterializeOverlay(
    const std::function<bool(int)>& atom_value) const {
  std::vector<RelationDelta> deltas;
  for (const Group& group : groups_) {
    adds_.clear();
    removes_.clear();
    for (uint32_t e = group.begin; e < group.end; ++e) {
      const AtomEntry& entry = entries_[e];
      bool wanted = atom_value(entry.id);
      if (wanted == entry.present) continue;
      (wanted ? adds_ : removes_).push_back(entry.tuple);
    }
    if (adds_.empty() && removes_.empty()) continue;
    const Relation& base = ctx_->extended_base.relation_at(group.schema_pos);
    size_t arity = base.arity();
    RelationDelta d;
    d.pos = static_cast<uint32_t>(group.schema_pos);
    if (arity == 0) {
      // At most one deviation exists for the single nullary tuple.
      d.adds = Relation(0);
      d.dels = Relation(0);
      if (!adds_.empty()) d.adds = d.adds.WithTuple(TupleView());
      if (!removes_.empty()) d.dels = d.dels.WithTuple(TupleView());
    } else {
      // Groups are tuple-sorted and atoms distinct, so both lists hit the
      // builder's already-sorted fast path; adds are absent from the base and
      // removes present in it by the precomputed membership, which is exactly
      // the canonical overlay invariant.
      Relation::Builder ab(arity);
      ab.Reserve(adds_.size());
      for (TupleView t : adds_) ab.Append(t);
      d.adds = ab.Build();
      Relation::Builder rb(arity);
      rb.Reserve(removes_.size());
      for (TupleView t : removes_) rb.Append(t);
      d.dels = rb.Build();
    }
    deltas.push_back(std::move(d));
  }
  // Groups come out of Rebuild position-sorted, so this sorts nothing.
  return WorldOverlay::FromDeltas(std::move(deltas));
}

}  // namespace kbt::internal
