#ifndef KBT_CORE_HYPOTHETICAL_H_
#define KBT_CORE_HYPOTHETICAL_H_

/// \file
/// Hypothetical and counterfactual queries (§1, Example 4, [GM95]).
///
/// A counterfactual A > B asks: "if A were inserted, would B hold?" — evaluated
/// by updating with A and checking B over the resulting worlds, either in all of
/// them (necessity, the ⊓-flavored reading) or in some (possibility, ⊔-flavored).
/// Right-nested chains A1 > (A2 > (... > B)) are sequential updates
/// τ_{A1}, τ_{A2}, ... followed by the check, exactly as the paper's note after
/// Example 4 describes.

#include <vector>

#include "base/status.h"
#include "core/mu.h"
#include "core/tau.h"
#include "logic/formula.h"
#include "rel/knowledgebase.h"

namespace kbt {

enum class Modality {
  /// B must hold in every world of the updated knowledgebase (vacuously true
  /// when the update is inconsistent).
  kNecessarily,
  /// B must hold in at least one world.
  kPossibly,
};

/// Evaluates the counterfactual `antecedent > consequent` over `kb`.
StatusOr<bool> Counterfactual(const Knowledgebase& kb, const Formula& antecedent,
                              const Formula& consequent,
                              Modality modality = Modality::kNecessarily,
                              const MuOptions& options = MuOptions());

/// Right-nested chain: antecedents are inserted left to right, then the
/// consequent is checked. An empty chain degenerates to a plain modal query.
StatusOr<bool> NestedCounterfactual(const Knowledgebase& kb,
                                    const std::vector<Formula>& antecedents,
                                    const Formula& consequent,
                                    Modality modality = Modality::kNecessarily,
                                    const MuOptions& options = MuOptions());

/// One antecedent of a serving-path chain, with the executor caches for its τ
/// step (either may be null; see TauOptions::ground_cache/cnf_cache — a cache
/// must only ever see this step's sentence). The formula is borrowed and must
/// outlive the call; the serving layer points it at the cache bank's canonical
/// parse so every borrower of one cache evaluates the identical formula.
struct ChainStep {
  const Formula* antecedent = nullptr;
  exec::GroundingCache* ground_cache = nullptr;
  exec::CnfCache* cnf_cache = nullptr;
};

/// The serving-path chain evaluation: like NestedCounterfactual, but each τ
/// step runs with `options` (the engine's persistent pool, the session-pinned
/// solver and scratch, μ options) plus its step's per-sentence caches — no
/// per-call executor state is constructed beyond what the options leave null.
/// Equivalent to NestedCounterfactual over the same formulas (property-tested
/// in tests/serve_test.cc).
/// `stats` (nullable) accumulates the per-step τ statistics — each step's μ
/// counters merge into stats->mu, so a serving layer can surface solver
/// budget/interrupt activity per request.
StatusOr<bool> NestedCounterfactualExec(const Knowledgebase& kb,
                                        const std::vector<ChainStep>& steps,
                                        const Formula& consequent,
                                        Modality modality,
                                        const TauOptions& options,
                                        TauStats* stats = nullptr);

}  // namespace kbt

#endif  // KBT_CORE_HYPOTHETICAL_H_
