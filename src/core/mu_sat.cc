#include <algorithm>
#include <functional>
#include <memory>
#include <optional>

#include "core/mu_internal.h"
#include "core/winslett_order.h"
#include "exec/cnf_cache.h"
#include "exec/ground_cache.h"
#include "exec/scratch.h"
#include "logic/grounder.h"
#include "sat/solver.h"
#include "sat/tseitin.h"

namespace kbt::internal {

namespace {

using sat::Lit;
using sat::MkLit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

/// One enumerated minimal model, kept for dominance checks against later
/// descent fixpoints (blocked models are invisible to the solver, so later
/// fixpoints must be re-validated against these). The model is held as its
/// overlay against ctx.extended_base — never flattened: dominance checks run
/// on deltas (CompareClosenessOverlays) and the final knowledgebase adopts
/// the overlays directly.
struct FoundModel {
  WorldOverlay overlay;
  std::vector<int> flipped_old;  ///< Mentioned old atoms deviating from db.
  std::vector<int> true_new;     ///< Mentioned new atoms set to true.
};

/// The μ/SAT enumerator parks its materializer — and thereby the group/merge
/// buffers inside it — in the per-worker WorldScratch between worlds.
struct MaterializerSlot : exec::WorldScratch::Attachment {
  ModelMaterializer materializer;
};

/// The CDCL enumeration engine. One solver and one incremental Tseitin encoder
/// live for the entire run: the minimization descent pushes activation-guarded
/// constraints and the enumeration pushes blocking clauses into the same clause
/// arena, and nothing is ever ground or encoded twice. Per-world tables and
/// loop scratch live in a WorldScratch — the executor's per-worker pool when
/// provided, a local one otherwise — so consecutive worlds on one worker reuse
/// warm buffers instead of reallocating ~15 vectors per world.
class SatEnumerator {
 public:
  SatEnumerator(const Database& db, const UpdateContext& ctx,
                const MuOptions& options, MuStats* stats,
                const MuExecContext& exec)
      : db_(db),
        ctx_(ctx),
        options_(options),
        stats_(stats),
        exec_(exec),
        s_(exec.scratch != nullptr ? *exec.scratch : own_scratch_),
        reuse_(options.reuse_assumption_trail) {}

  StatusOr<Knowledgebase> Run(const Formula& sentence) {
    GrounderOptions gopts;
    gopts.max_nodes = options_.max_ground_nodes;
    // The grounding — and, with a CnfCache, the whole Tseitin encoding — is a
    // pure function of (φ, domain): worlds sharing an active domain reuse one
    // immutable circuit (and its mentioned-var set, borrowed below) plus one
    // frozen encoded prefix, and only the per-world defaults are recomputed.
    std::shared_ptr<const exec::CachedGrounding> shared;
    std::shared_ptr<const exec::FrozenCnf> frozen;
    if (exec_.cnf_cache != nullptr) {
      KBT_ASSIGN_OR_RETURN(frozen,
                           exec_.cnf_cache->GetOrBuild(sentence, ctx_.domain,
                                                       gopts, exec_.ground_cache));
      shared = frozen->grounding;
    } else {
      KBT_ASSIGN_OR_RETURN(shared,
                           ObtainGrounding(exec_, sentence, ctx_.domain, gopts));
    }
    const Grounding* g = &shared->grounding;
    mentioned_ = &shared->mentioned;
    stats_->ground_nodes = g->circuit.size();
    atoms_ = &g->atoms;

    if (g->root == g->circuit.FalseNode()) {
      return Knowledgebase(ctx_.schema);  // No models at all.
    }

    // A worker-pool solver is reused across worlds: Reset (or the frozen-fork
    // overwrite below) keeps its allocated arena and watcher capacity but
    // restores the exact target state, so the enumeration below is
    // bit-identical to one over a new Solver.
    if (exec_.solver != nullptr) {
      solver_ = exec_.solver;
    } else {
      solver_ = &own_solver_;
    }
    sat::SolverOptions sopts;
    sopts.reuse_assumption_trail = reuse_;
    solver_->set_options(sopts);

    stats_->ground_atoms = mentioned_->size();
    s_.atom_var.assign(g->atoms.size(), -1);
    const std::vector<sat::Lit>* node_lits = nullptr;
    std::vector<sat::Lit> own_node_lits;
    if (frozen != nullptr) {
      // Fork from the shared prefix: bulk-copy the encoded solver state and
      // the atom → var table instead of replaying the Tseitin clauses. The
      // snapshot was taken at exactly the point the encoder below would reach,
      // so everything layered on top (phases, descent guards, blocking
      // clauses) behaves identically.
      solver_->InitFromFrozen(frozen->prefix);
      std::copy(frozen->atom_var.begin(), frozen->atom_var.end(),
                s_.atom_var.begin());
      node_lits = &frozen->node_lit;
    } else {
      if (exec_.solver != nullptr) solver_->Reset();
      // The encoder's work all happens here — after this block the descent and
      // enumeration only add plain clauses to the live solver — so only its
      // node-literal table (for phase seeding) outlives the block.
      sat::TseitinEncoder encoder(&g->circuit, solver_);
      encoder.Assert(g->root);
      for (int atom_id : *mentioned_) {
        s_.atom_var[static_cast<size_t>(atom_id)] = encoder.VarForAtom(atom_id);
      }
      own_node_lits = encoder.node_lits();
      node_lits = &own_node_lits;
    }
    // Arm per-request limits now — Reset/InitFromFrozen above cleared any —
    // and guarantee they are disarmed when Run unwinds: the solver may be a
    // session solver that outlives this request's (stack-allocated) token.
    if (options_.cancel != nullptr || options_.sat_conflict_budget != 0) {
      solver_->SetInterrupt(options_.cancel);
      solver_->SetBudget(options_.sat_conflict_budget, 0);
    }
    struct LimitsGuard {
      Solver* s;
      ~LimitsGuard() { s->ClearLimits(); }
    } limits_guard{solver_};
    // Valid previous evaluation of the same circuit on this worker: the next
    // world's defaults differ in a handful of atoms, so the circuit walk below
    // shrinks to the changed cone.
    const bool warm_eval = s_.eval_owner.get() == shared.get() &&
                           s_.prev_default.size() == g->atoms.size() &&
                           s_.node_value.size() == g->circuit.size();
    s_.default_value.assign(g->atoms.size(), 0);
    s_.value.assign(g->atoms.size(), 0);
    s_.old_atoms.clear();
    s_.new_atoms.clear();
    s_.retired_acts.clear();
    for (int atom_id : *mentioned_) {
      const GroundAtom& atom = g->atoms.AtomOf(atom_id);
      bool is_old = IsOldAtom(atom, db_);
      const Relation* r = ctx_.extended_base.FindRelation(atom.relation);
      if (r == nullptr) {
        return Status::NotFound("relation not in schema: " +
                                NameOf(atom.relation));
      }
      s_.default_value[static_cast<size_t>(atom_id)] =
          is_old && r->Contains(atom.tuple);
      (is_old ? s_.old_atoms : s_.new_atoms).push_back(atom_id);
    }

    // Branch toward the default world first — atoms *and* Tseitin gates. The
    // gate phases are each node's value under the default assignment, so the
    // first probe's decisions on gate variables steer the same direction as
    // the atoms below them instead of forcing arbitrary subcircuit values;
    // first models start near the Winslett minimum and descents are short.
    // One circuit evaluation per world — incremental when the previous world
    // on this worker shares the grounding (patching the changed-default cone
    // is bit-identical to the full walk); later solves re-seed only the atoms
    // (SeedDefaultPhases), gates then following their saved model phases.
    auto default_of = [&](int atom_id) {
      return s_.default_value[static_cast<size_t>(atom_id)] != 0;
    };
    if (warm_eval) {
      s_.dirty_atoms.clear();
      for (int atom_id : *mentioned_) {
        size_t a = static_cast<size_t>(atom_id);
        if (s_.default_value[a] != s_.prev_default[a]) {
          s_.dirty_atoms.push_back(atom_id);
        }
      }
      g->circuit.ReevaluateInto(s_.dirty_atoms, default_of, shared->users,
                                &s_.node_value, &s_.eval_heap);
    } else {
      g->circuit.EvaluateAllInto(g->root, default_of, &s_.node_value);
    }
    s_.prev_default = s_.default_value;
    s_.eval_owner = shared;
    for (size_t id = 0; id < node_lits->size(); ++id) {
      sat::Lit lit = (*node_lits)[id];
      int8_t value = s_.node_value[id];
      if (lit == sat::TseitinEncoder::kUnencoded || value == 0) continue;
      solver_->SetPhase(sat::VarOf(lit), (value == 2) != sat::IsNegated(lit));
    }

    // Delta materialization is lazy: the first enumerated model goes through
    // the specification-shaped MaterializeModel, and the group/tuple-order
    // precomputation is only paid once a second model proves the run is a real
    // enumeration. The materializer object itself persists in the worker
    // scratch so its buffers stay warm across worlds.
    auto* slot = dynamic_cast<MaterializerSlot*>(s_.attachment.get());
    if (slot == nullptr) {
      s_.attachment = std::make_unique<MaterializerSlot>();
      slot = static_cast<MaterializerSlot*>(s_.attachment.get());
    }
    materializer_ = &slot->materializer;
    models_built_ = 0;

    std::vector<FoundModel> minimal;
    while (true) {
      // Each enumeration probe starts from the default phases too: the next
      // unblocked model found is near-minimal, keeping its descent short.
      SeedDefaultPhases();
      FlushRetiredGuards();
      SolveResult probe = Solve(no_assumptions_);
      if (probe == SolveResult::kUnknown) return DeadlineStatus();
      if (probe == SolveResult::kUnsat) break;
      KBT_ASSIGN_OR_RETURN(FoundModel candidate, Descend());
      // The descent fixpoint is minimal unless a previously reported minimal model
      // (now blocked, hence invisible) lies strictly below it.
      bool dominated = false;
      for (const FoundModel& m : minimal) {
        if (CompareClosenessOverlays(m.overlay, candidate.overlay,
                                     db_.schema().size()) ==
            Closeness::kCloser) {
          dominated = true;
          break;
        }
      }
      bool exhausted = BlockAbove(candidate, options_.use_cone_blocking);
      if (!dominated) minimal.push_back(std::move(candidate));
      if (exhausted) break;
      if (minimal.size() > options_.max_models) {
        return Status::ResourceExhausted("μ produced more than " +
                                         std::to_string(options_.max_models) +
                                         " minimal models");
      }
    }

    stats_->minimal_models = minimal.size();
    if (minimal.empty()) return Knowledgebase(ctx_.schema);
    std::vector<WorldOverlay> overlays;
    overlays.reserve(minimal.size());
    for (FoundModel& m : minimal) overlays.push_back(std::move(m.overlay));
    return Knowledgebase::FromBaseAndOverlays(
        std::make_shared<const Database>(ctx_.extended_base),
        std::move(overlays));
  }

 private:
  /// Blocks the candidate and everything ≥_db it. Since the candidate is strictly
  /// above some reported minimal model whenever it is not itself minimal, every
  /// member of its up-set is safely non-minimal (or the candidate itself), so this
  /// is sound for dominated fixpoints too. Two constructs:
  ///
  ///  (a) flips(M) ⊋ flips(c) ⟹ c <_db M by stage 1, regardless of new atoms:
  ///      one clause per old atom b ∉ flips(c):  (⋁_{a∈flips(c)} keep(a)) ∨ keep(b);
  ///  (b) flips(M) ⊇ flips(c) ∧ newtrue(M) ⊇ newtrue(c) ⟹ c ≤_db M:
  ///      the cone clause (⋁_{a∈flips(c)} keep(a)) ∨ (⋁_{n∈newtrue(c)} ¬n).
  ///
  /// With `strong` false (the ablation's exact-blocking mode) only the candidate's
  /// own assignment is excluded. Returns true when the whole space is now blocked
  /// (the candidate was the global minimum), letting the caller stop immediately.
  bool BlockAbove(const FoundModel& candidate, bool strong) {
    std::vector<Lit>& clause = s_.clause_lits;
    if (!strong) {
      auto candidate_value = [&](int a) {
        if (std::binary_search(candidate.flipped_old.begin(),
                               candidate.flipped_old.end(), a)) {
          return s_.default_value[static_cast<size_t>(a)] == 0;
        }
        if (std::binary_search(candidate.true_new.begin(),
                               candidate.true_new.end(), a)) {
          return true;
        }
        // New atoms default to false.
        return s_.default_value[static_cast<size_t>(a)] != 0;
      };
      clause.clear();
      clause.reserve(mentioned_->size());
      for (int a : *mentioned_) {
        clause.push_back(MkLit(AtomVar(a), candidate_value(a)));
      }
      if (clause.empty()) return true;  // Single possible assignment.
      solver_->AddClause(clause);
      return false;
    }
    std::vector<Lit>& core = s_.core_lits;
    core.clear();
    for (int a : candidate.flipped_old) core.push_back(KeepLit(a));
    // (a) Forbid strict flip supersets.
    if (core.empty()) {
      // flips(c) = ∅: every construct-(a) clause degenerates to the unit
      // keep(b), so assert them as one batch of root facts — one propagation
      // round instead of |old_atoms| clause insertions. Same fixpoint, ~20%
      // of the delta-workload runtime on PR 7's profile.
      clause.clear();
      for (int b : s_.old_atoms) clause.push_back(KeepLit(b));
      solver_->AssertUnitsAtRoot(clause);
    } else {
      for (int b : s_.old_atoms) {
        if (std::binary_search(candidate.flipped_old.begin(),
                               candidate.flipped_old.end(), b)) {
          continue;
        }
        clause.assign(core.begin(), core.end());
        clause.push_back(KeepLit(b));
        solver_->AddClause(clause);
      }
    }
    // (b) The cone clause.
    clause.assign(core.begin(), core.end());
    for (int n : candidate.true_new) {
      clause.push_back(MkLit(AtomVar(n), /*negated=*/true));
    }
    if (clause.empty()) return true;  // Candidate is the global minimum.
    solver_->AddClause(clause);
    return false;
  }

  Var AtomVar(int a) { return s_.atom_var[static_cast<size_t>(a)]; }
  bool DefaultOf(int a) { return s_.default_value[static_cast<size_t>(a)] != 0; }

  /// Literal asserting atom `a` has its default value.
  Lit KeepLit(int a) { return MkLit(AtomVar(a), /*negated=*/!DefaultOf(a)); }
  /// Literal asserting atom `a` equals `value`.
  Lit ValueLit(int a, bool value) { return MkLit(AtomVar(a), !value); }

  bool ModelValueOf(int a) { return solver_->ModelValue(AtomVar(a)); }

  SolveResult Solve(const std::vector<Lit>& assumptions) {
    SolveResult r = solver_->Solve(assumptions);
    stats_->sat_solve_calls = solver_->stats().solve_calls;
    stats_->sat_conflicts = solver_->stats().conflicts;
    stats_->sat_decisions = solver_->stats().decisions;
    stats_->sat_reused_levels = solver_->stats().reused_assumption_levels;
    stats_->sat_saved_propagations = solver_->stats().saved_propagations;
    stats_->sat_interrupt_checks = solver_->stats().interrupt_checks;
    stats_->sat_budget_trips = solver_->stats().budget_trips;
    if (r == SolveResult::kSat) ++stats_->candidates_examined;
    return r;
  }

  /// The kUnknown unwind: the solver already backtracked to a usable root
  /// (AbortSolve); μ reports the abandoned request as a deadline error.
  Status DeadlineStatus() const {
    return Status::DeadlineExceeded(
        options_.cancel != nullptr && options_.cancel->Expired()
            ? "μ cancelled during SAT search"
            : "μ SAT conflict budget exhausted");
  }

  void SnapshotModel() {
    for (int a : *mentioned_) {
      s_.value[static_cast<size_t>(a)] = ModelValueOf(a) ? 1 : 0;
    }
  }

  /// Re-seeds every mentioned atom's branching phase toward its default value.
  /// Phase saving drags later solves toward the previous model; before each
  /// descent/enumeration solve we point the search back at the Winslett
  /// minimum instead, so one refinement step reverts many deviations at once
  /// rather than one per solve. Gate variables keep their saved phases — after
  /// the first model those are consistent gate values, and re-biasing them
  /// toward the (φ-violating) default world was measured to lengthen probes.
  /// Which fixpoint a descent reaches may differ, but μ enumerates *all*
  /// minimal models either way — the result set (and hence τ) is unchanged,
  /// only the number of solver calls drops. (Phases of atoms assigned at
  /// retained assumption levels are dead until those levels are undone.)
  void SeedDefaultPhases() {
    for (int a : *mentioned_) {
      solver_->SetPhase(AtomVar(a), DefaultOf(a));
    }
  }

  /// Retires a descent guard. Classic mode asserts ¬act immediately; a unit is
  /// a root fact, though, and would surrender the whole retained assumption
  /// trail, so reuse mode defers the unit until the next enumeration probe
  /// (which starts from level 0 regardless) and meanwhile just biases the
  /// activation variable false so the dead guard cannot force its keeps.
  void RetireGuard(Var act) {
    if (!reuse_) {
      solver_->AddClause({MkLit(act, true)});
      return;
    }
    s_.retired_acts.push_back(act);
    solver_->SetPhase(act, false);
  }

  /// Flushes deferred guard retirements (no-op in classic mode).
  void FlushRetiredGuards() {
    for (Var act : s_.retired_acts) {
      solver_->AddClause({MkLit(act, true)});
    }
    s_.retired_acts.clear();
  }

  /// Two-stage greedy descent from the solver's current model to a ≤_db fixpoint.
  /// Each refinement step adds one activation-guarded clause (retired afterwards
  /// by asserting ¬act) to the live solver — no re-grounding, no re-encoding, and
  /// no per-step containers beyond the reused scratch buffers.
  ///
  /// With assumption-trail reuse the per-step assumption vectors are ordered
  /// canonically — atom pins in the stable old_atoms/new_atoms order first,
  /// the (always-fresh) activation literal last — so consecutive solves share
  /// a maximal assumption prefix and the solver re-enqueues only the delta:
  /// stage 2 re-propagates its |old| pins exactly once across all its steps.
  StatusOr<FoundModel> Descend() {
    SnapshotModel();
    auto val = [&](int a) { return s_.value[static_cast<size_t>(a)] != 0; };

    std::vector<int>& deviating = s_.deviating;
    std::vector<Lit>& guard = s_.clause_lits;
    std::vector<Lit>& assumptions = s_.assumption_lits;

    // Stage 1: shrink the old-atom flip set until no model has a strictly smaller
    // one. Pinning every unflipped atom keeps Δ(M') ⊆ Δ(M) componentwise; the
    // activation-guarded clause forces at least one flip to revert.
    while (true) {
      deviating.clear();
      for (int a : s_.old_atoms) {
        if (val(a) != DefaultOf(a)) deviating.push_back(a);
      }
      if (deviating.empty()) break;
      Var act = solver_->NewVar();
      guard.clear();
      guard.push_back(MkLit(act, true));
      for (int a : deviating) guard.push_back(KeepLit(a));
      solver_->AddClause(guard);
      assumptions.clear();
      if (reuse_) {
        for (int a : s_.old_atoms) {
          if (val(a) == DefaultOf(a)) assumptions.push_back(KeepLit(a));
        }
        assumptions.push_back(MkLit(act));
      } else {
        assumptions.push_back(MkLit(act));
        for (int a : s_.old_atoms) {
          if (val(a) == DefaultOf(a)) assumptions.push_back(KeepLit(a));
        }
      }
      SeedDefaultPhases();
      SolveResult r = Solve(assumptions);
      RetireGuard(act);
      if (r == SolveResult::kUnknown) return DeadlineStatus();
      if (r == SolveResult::kUnsat) break;
      SnapshotModel();
    }

    // Stage 2: with the Δ-vector fixed (old atoms fully pinned), shrink the
    // true set of new atoms.
    while (true) {
      deviating.clear();
      for (int a : s_.new_atoms) {
        if (val(a)) deviating.push_back(a);
      }
      if (deviating.empty()) break;
      Var act = solver_->NewVar();
      guard.clear();
      guard.push_back(MkLit(act, true));
      for (int a : deviating) guard.push_back(ValueLit(a, false));
      solver_->AddClause(guard);
      assumptions.clear();
      if (reuse_) {
        for (int a : s_.old_atoms) assumptions.push_back(ValueLit(a, val(a)));
        for (int a : s_.new_atoms) {
          if (!val(a)) assumptions.push_back(ValueLit(a, false));
        }
        assumptions.push_back(MkLit(act));
      } else {
        assumptions.push_back(MkLit(act));
        for (int a : s_.old_atoms) assumptions.push_back(ValueLit(a, val(a)));
        for (int a : s_.new_atoms) {
          if (!val(a)) assumptions.push_back(ValueLit(a, false));
        }
      }
      SeedDefaultPhases();
      SolveResult r = Solve(assumptions);
      RetireGuard(act);
      if (r == SolveResult::kUnknown) return DeadlineStatus();
      if (r == SolveResult::kUnsat) break;
      SnapshotModel();
    }

    // The descent is over: the retained assumption trail has no next solve to
    // serve (what follows is BlockAbove's clause burst and an assumption-free
    // probe), so surrender it now and let those AddClauses take the level-0
    // fast path instead of trail-aware placement.
    if (reuse_) solver_->BacktrackToRoot();

    FoundModel out;
    for (int a : s_.old_atoms) {
      if (val(a) != DefaultOf(a)) out.flipped_old.push_back(a);
    }
    for (int a : s_.new_atoms) {
      if (val(a)) out.true_new.push_back(a);
    }
    // Lazy delta materialization: the specification path covers the (common)
    // single-model run; the precomputed merge path takes over from the second
    // model on, rebuilt in the scratch-parked materializer with warm buffers.
    // Both paths emit the model as an overlay — O(delta), no base copy.
    std::function<bool(int)> value_fn = val;
    if (models_built_ == 0) {
      KBT_ASSIGN_OR_RETURN(
          out.overlay,
          MaterializeOverlayModel(ctx_, *atoms_, *mentioned_, value_fn));
    } else {
      if (models_built_ == 1) {
        KBT_RETURN_IF_ERROR(materializer_->Rebuild(ctx_, *atoms_, *mentioned_));
      }
      KBT_ASSIGN_OR_RETURN(out.overlay,
                           materializer_->MaterializeOverlay(value_fn));
    }
    ++models_built_;
    return out;
  }

  const Database& db_;
  const UpdateContext& ctx_;
  const MuOptions& options_;
  MuStats* stats_;
  const MuExecContext& exec_;

  /// Fallback solver when the executor supplies none.
  Solver own_solver_;
  /// The solver in use: exec_.solver (reset) or &own_solver_.
  Solver* solver_ = nullptr;
  const AtomIndex* atoms_ = nullptr;
  /// Borrowed from the CachedGrounding held alive by Run.
  const std::vector<int>* mentioned_ = nullptr;
  /// Fallback scratch when the executor supplies none (plain Mu() calls).
  exec::WorldScratch own_scratch_;
  /// Per-world tables and loop scratch: exec_.scratch (worker-pooled) or
  /// own_scratch_.
  exec::WorldScratch& s_;
  /// Assumption-trail reuse engaged (solver knob + descent ordering).
  const bool reuse_;
  /// Scratch-parked materializer, lazily rebuilt on the second model.
  ModelMaterializer* materializer_ = nullptr;
  /// Models materialized so far in this run (drives materializer laziness).
  size_t models_built_ = 0;
  const std::vector<Lit> no_assumptions_;
};

}  // namespace

StatusOr<Knowledgebase> MuSat(const Formula& sentence, const Database& db,
                              const UpdateContext& ctx, const MuOptions& options,
                              MuStats* stats, const MuExecContext& exec) {
  SatEnumerator enumerator(db, ctx, options, stats, exec);
  return enumerator.Run(sentence);
}

}  // namespace kbt::internal
