#include <algorithm>
#include <functional>
#include <memory>
#include <optional>

#include "core/mu_internal.h"
#include "core/winslett_order.h"
#include "exec/cnf_cache.h"
#include "exec/ground_cache.h"
#include "logic/grounder.h"
#include "sat/solver.h"
#include "sat/tseitin.h"

namespace kbt::internal {

namespace {

using sat::Lit;
using sat::MkLit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

/// One enumerated minimal model, kept for dominance checks against later
/// descent fixpoints (blocked models are invisible to the solver, so later
/// fixpoints must be re-validated against these).
struct FoundModel {
  Database database;
  std::vector<int> flipped_old;  ///< Mentioned old atoms deviating from db.
  std::vector<int> true_new;     ///< Mentioned new atoms set to true.
};

/// The CDCL enumeration engine. One solver and one incremental Tseitin encoder
/// live for the entire run: the minimization descent pushes activation-guarded
/// constraints and the enumeration pushes blocking clauses into the same clause
/// arena, and nothing is ever ground or encoded twice.
class SatEnumerator {
 public:
  SatEnumerator(const Database& db, const UpdateContext& ctx,
                const MuOptions& options, MuStats* stats,
                const MuExecContext& exec)
      : db_(db), ctx_(ctx), options_(options), stats_(stats), exec_(exec) {}

  StatusOr<Knowledgebase> Run(const Formula& sentence) {
    GrounderOptions gopts;
    gopts.max_nodes = options_.max_ground_nodes;
    // The grounding — and, with a CnfCache, the whole Tseitin encoding — is a
    // pure function of (φ, domain): worlds sharing an active domain reuse one
    // immutable circuit (and its mentioned-var set, borrowed below) plus one
    // frozen encoded prefix, and only the per-world defaults are recomputed.
    std::shared_ptr<const exec::CachedGrounding> shared;
    std::shared_ptr<const exec::FrozenCnf> frozen;
    if (exec_.cnf_cache != nullptr) {
      KBT_ASSIGN_OR_RETURN(frozen,
                           exec_.cnf_cache->GetOrBuild(sentence, ctx_.domain,
                                                       gopts, exec_.ground_cache));
      shared = frozen->grounding;
    } else {
      KBT_ASSIGN_OR_RETURN(shared,
                           ObtainGrounding(exec_, sentence, ctx_.domain, gopts));
    }
    const Grounding* g = &shared->grounding;
    mentioned_ = &shared->mentioned;
    stats_->ground_nodes = g->circuit.size();
    atoms_ = &g->atoms;

    if (g->root == g->circuit.FalseNode()) {
      return Knowledgebase(ctx_.schema);  // No models at all.
    }

    // A worker-pool solver is reused across worlds: Reset (or the frozen-fork
    // overwrite below) keeps its allocated arena and watcher capacity but
    // restores the exact target state, so the enumeration below is
    // bit-identical to one over a new Solver.
    if (exec_.solver != nullptr) {
      solver_ = exec_.solver;
    } else {
      solver_ = &own_solver_;
    }

    stats_->ground_atoms = mentioned_->size();
    atom_var_.resize(g->atoms.size(), -1);
    const std::vector<sat::Lit>* node_lits = nullptr;
    std::vector<sat::Lit> own_node_lits;
    if (frozen != nullptr) {
      // Fork from the shared prefix: bulk-copy the encoded solver state and
      // the atom → var table instead of replaying the Tseitin clauses. The
      // snapshot was taken at exactly the point the encoder below would reach,
      // so everything layered on top (phases, descent guards, blocking
      // clauses) behaves identically.
      solver_->InitFromFrozen(frozen->prefix);
      std::copy(frozen->atom_var.begin(), frozen->atom_var.end(),
                atom_var_.begin());
      node_lits = &frozen->node_lit;
    } else {
      if (exec_.solver != nullptr) solver_->Reset();
      // The encoder's work all happens here — after this block the descent and
      // enumeration only add plain clauses to the live solver — so only its
      // node-literal table (for phase seeding) outlives the block.
      sat::TseitinEncoder encoder(&g->circuit, solver_);
      encoder.Assert(g->root);
      for (int atom_id : *mentioned_) {
        atom_var_[atom_id] = encoder.VarForAtom(atom_id);
      }
      own_node_lits = encoder.node_lits();
      node_lits = &own_node_lits;
    }
    default_value_.resize(g->atoms.size(), 0);
    value_.resize(g->atoms.size(), 0);
    for (int atom_id : *mentioned_) {
      const GroundAtom& atom = g->atoms.AtomOf(atom_id);
      bool is_old = IsOldAtom(atom, db_);
      const Relation* r = ctx_.extended_base.FindRelation(atom.relation);
      if (r == nullptr) {
        return Status::NotFound("relation not in schema: " +
                                NameOf(atom.relation));
      }
      default_value_[atom_id] = is_old && r->Contains(atom.tuple);
      (is_old ? old_atoms_ : new_atoms_).push_back(atom_id);
    }

    // Branch toward the default world first — atoms *and* Tseitin gates. The
    // gate phases are each node's value under the default assignment, so the
    // first probe's decisions on gate variables steer the same direction as
    // the atoms below them instead of forcing arbitrary subcircuit values;
    // first models start near the Winslett minimum and descents are short.
    // One circuit evaluation per world; later solves re-seed only the atoms
    // (SeedDefaultPhases), gates then following their saved model phases.
    g->circuit.EvaluateAllInto(g->root,
                               [&](int atom_id) {
                                 return default_value_[static_cast<size_t>(
                                            atom_id)] != 0;
                               },
                               &node_value_scratch_);
    for (size_t id = 0; id < node_lits->size(); ++id) {
      sat::Lit lit = (*node_lits)[id];
      int8_t value = node_value_scratch_[id];
      if (lit == sat::TseitinEncoder::kUnencoded || value == 0) continue;
      solver_->SetPhase(sat::VarOf(lit), (value == 2) != sat::IsNegated(lit));
    }

    // Delta materialization: group/sort/membership precomputed once here, one
    // merge pass per enumerated model in Descend.
    KBT_ASSIGN_OR_RETURN(materializer_,
                         ModelMaterializer::Make(ctx_, *atoms_, *mentioned_));

    std::vector<FoundModel> minimal;
    while (true) {
      // Each enumeration probe starts from the default phases too: the next
      // unblocked model found is near-minimal, keeping its descent short.
      SeedDefaultPhases();
      if (Solve(no_assumptions_) == SolveResult::kUnsat) break;
      KBT_ASSIGN_OR_RETURN(FoundModel candidate, Descend());
      // The descent fixpoint is minimal unless a previously reported minimal model
      // (now blocked, hence invisible) lies strictly below it.
      bool dominated = false;
      for (const FoundModel& m : minimal) {
        KBT_ASSIGN_OR_RETURN(bool below,
                             StrictlyCloser(m.database, candidate.database, db_));
        if (below) {
          dominated = true;
          break;
        }
      }
      bool exhausted = BlockAbove(candidate, options_.use_cone_blocking);
      if (!dominated) minimal.push_back(std::move(candidate));
      if (exhausted) break;
      if (minimal.size() > options_.max_models) {
        return Status::ResourceExhausted("μ produced more than " +
                                         std::to_string(options_.max_models) +
                                         " minimal models");
      }
    }

    stats_->minimal_models = minimal.size();
    if (minimal.empty()) return Knowledgebase(ctx_.schema);
    std::vector<Database> dbs;
    dbs.reserve(minimal.size());
    for (FoundModel& m : minimal) dbs.push_back(std::move(m.database));
    return Knowledgebase::FromDatabases(std::move(dbs));
  }

 private:
  /// Blocks the candidate and everything ≥_db it. Since the candidate is strictly
  /// above some reported minimal model whenever it is not itself minimal, every
  /// member of its up-set is safely non-minimal (or the candidate itself), so this
  /// is sound for dominated fixpoints too. Two constructs:
  ///
  ///  (a) flips(M) ⊋ flips(c) ⟹ c <_db M by stage 1, regardless of new atoms:
  ///      one clause per old atom b ∉ flips(c):  (⋁_{a∈flips(c)} keep(a)) ∨ keep(b);
  ///  (b) flips(M) ⊇ flips(c) ∧ newtrue(M) ⊇ newtrue(c) ⟹ c ≤_db M:
  ///      the cone clause (⋁_{a∈flips(c)} keep(a)) ∨ (⋁_{n∈newtrue(c)} ¬n).
  ///
  /// With `strong` false (the ablation's exact-blocking mode) only the candidate's
  /// own assignment is excluded. Returns true when the whole space is now blocked
  /// (the candidate was the global minimum), letting the caller stop immediately.
  bool BlockAbove(const FoundModel& candidate, bool strong) {
    std::vector<Lit>& clause = clause_scratch_;
    if (!strong) {
      auto candidate_value = [&](int a) {
        if (std::binary_search(candidate.flipped_old.begin(),
                               candidate.flipped_old.end(), a)) {
          return default_value_[a] == 0;
        }
        if (std::binary_search(candidate.true_new.begin(),
                               candidate.true_new.end(), a)) {
          return true;
        }
        return default_value_[a] != 0;  // New atoms default to false.
      };
      clause.clear();
      clause.reserve(mentioned_->size());
      for (int a : *mentioned_) {
        clause.push_back(MkLit(atom_var_[a], candidate_value(a)));
      }
      if (clause.empty()) return true;  // Single possible assignment.
      solver_->AddClause(clause);
      return false;
    }
    std::vector<Lit>& core = core_scratch_;
    core.clear();
    for (int a : candidate.flipped_old) core.push_back(KeepLit(a));
    // (a) Forbid strict flip supersets.
    for (int b : old_atoms_) {
      if (std::binary_search(candidate.flipped_old.begin(),
                             candidate.flipped_old.end(), b)) {
        continue;
      }
      clause.assign(core.begin(), core.end());
      clause.push_back(KeepLit(b));
      solver_->AddClause(clause);
    }
    // (b) The cone clause.
    clause.assign(core.begin(), core.end());
    for (int n : candidate.true_new) {
      clause.push_back(MkLit(atom_var_[n], /*negated=*/true));
    }
    if (clause.empty()) return true;  // Candidate is the global minimum.
    solver_->AddClause(clause);
    return false;
  }

  /// Literal asserting atom `a` has its default value.
  Lit KeepLit(int a) { return MkLit(atom_var_[a], /*negated=*/!default_value_[a]); }
  /// Literal asserting atom `a` equals `value`.
  Lit ValueLit(int a, bool value) { return MkLit(atom_var_[a], !value); }

  bool ModelValueOf(int a) { return solver_->ModelValue(atom_var_[a]); }

  SolveResult Solve(const std::vector<Lit>& assumptions) {
    SolveResult r = solver_->Solve(assumptions);
    stats_->sat_solve_calls = solver_->stats().solve_calls;
    stats_->sat_conflicts = solver_->stats().conflicts;
    stats_->sat_decisions = solver_->stats().decisions;
    if (r == SolveResult::kSat) ++stats_->candidates_examined;
    return r;
  }

  void SnapshotModel() {
    for (int a : *mentioned_) {
      value_[static_cast<size_t>(a)] = ModelValueOf(a) ? 1 : 0;
    }
  }

  /// Re-seeds every mentioned atom's branching phase toward its default value.
  /// Phase saving drags later solves toward the previous model; before each
  /// descent/enumeration solve we point the search back at the Winslett
  /// minimum instead, so one refinement step reverts many deviations at once
  /// rather than one per solve. Gate variables keep their saved phases — after
  /// the first model those are consistent gate values, and re-biasing them
  /// toward the (φ-violating) default world was measured to lengthen probes.
  /// Which fixpoint a descent reaches may differ, but μ enumerates *all*
  /// minimal models either way — the result set (and hence τ) is unchanged,
  /// only the number of solver calls drops.
  void SeedDefaultPhases() {
    for (int a : *mentioned_) {
      solver_->SetPhase(atom_var_[a], default_value_[a]);
    }
  }

  /// Two-stage greedy descent from the solver's current model to a ≤_db fixpoint.
  /// Each refinement step adds one activation-guarded clause (retired afterwards
  /// by asserting ¬act) to the live solver — no re-grounding, no re-encoding, and
  /// no per-step containers beyond the reused scratch buffers.
  StatusOr<FoundModel> Descend() {
    SnapshotModel();
    auto val = [&](int a) { return value_[static_cast<size_t>(a)] != 0; };

    std::vector<int>& deviating = deviating_scratch_;
    std::vector<Lit>& guard = clause_scratch_;
    std::vector<Lit>& assumptions = assumptions_scratch_;

    // Stage 1: shrink the old-atom flip set until no model has a strictly smaller
    // one. Pinning every unflipped atom keeps Δ(M') ⊆ Δ(M) componentwise; the
    // activation-guarded clause forces at least one flip to revert.
    while (true) {
      deviating.clear();
      for (int a : old_atoms_) {
        if (val(a) != (default_value_[a] != 0)) deviating.push_back(a);
      }
      if (deviating.empty()) break;
      Var act = solver_->NewVar();
      guard.clear();
      guard.push_back(MkLit(act, true));
      for (int a : deviating) guard.push_back(KeepLit(a));
      solver_->AddClause(guard);
      assumptions.clear();
      assumptions.push_back(MkLit(act));
      for (int a : old_atoms_) {
        if (val(a) == (default_value_[a] != 0)) assumptions.push_back(KeepLit(a));
      }
      SeedDefaultPhases();
      SolveResult r = Solve(assumptions);
      solver_->AddClause({MkLit(act, true)});  // Retire the guard.
      if (r == SolveResult::kUnsat) break;
      SnapshotModel();
    }

    // Stage 2: with the Δ-vector fixed (old atoms fully pinned), shrink the
    // true set of new atoms.
    while (true) {
      deviating.clear();
      for (int a : new_atoms_) {
        if (val(a)) deviating.push_back(a);
      }
      if (deviating.empty()) break;
      Var act = solver_->NewVar();
      guard.clear();
      guard.push_back(MkLit(act, true));
      for (int a : deviating) guard.push_back(ValueLit(a, false));
      solver_->AddClause(guard);
      assumptions.clear();
      assumptions.push_back(MkLit(act));
      for (int a : old_atoms_) assumptions.push_back(ValueLit(a, val(a)));
      for (int a : new_atoms_) {
        if (!val(a)) assumptions.push_back(ValueLit(a, false));
      }
      SeedDefaultPhases();
      SolveResult r = Solve(assumptions);
      solver_->AddClause({MkLit(act, true)});
      if (r == SolveResult::kUnsat) break;
      SnapshotModel();
    }

    FoundModel out;
    for (int a : old_atoms_) {
      if (val(a) != (default_value_[a] != 0)) out.flipped_old.push_back(a);
    }
    for (int a : new_atoms_) {
      if (val(a)) out.true_new.push_back(a);
    }
    KBT_ASSIGN_OR_RETURN(out.database, materializer_->Materialize(val));
    return out;
  }

  const Database& db_;
  const UpdateContext& ctx_;
  const MuOptions& options_;
  MuStats* stats_;
  const MuExecContext& exec_;

  /// Fallback solver when the executor supplies none.
  Solver own_solver_;
  /// The solver in use: exec_.solver (reset) or &own_solver_.
  Solver* solver_ = nullptr;
  const AtomIndex* atoms_ = nullptr;
  /// Borrowed from the CachedGrounding held alive by Run.
  const std::vector<int>* mentioned_ = nullptr;
  /// Built once per Run; turns descent fixpoints into databases by delta.
  std::optional<ModelMaterializer> materializer_;
  std::vector<int> old_atoms_;
  std::vector<int> new_atoms_;
  /// Dense per-atom-id tables (ground atom ids are dense by construction).
  std::vector<Var> atom_var_;
  std::vector<int8_t> default_value_;
  std::vector<int8_t> value_;  ///< Current model snapshot, per atom id.

  /// Scratch for the default-world circuit evaluation (gate phase seeding).
  std::vector<int8_t> node_value_scratch_;

  // Reused scratch buffers: the descend-and-block loop allocates nothing per
  // iteration beyond what the solver arena itself grows.
  std::vector<int> deviating_scratch_;
  std::vector<Lit> clause_scratch_;
  std::vector<Lit> core_scratch_;
  std::vector<Lit> assumptions_scratch_;
  const std::vector<Lit> no_assumptions_;
};

}  // namespace

StatusOr<Knowledgebase> MuSat(const Formula& sentence, const Database& db,
                              const UpdateContext& ctx, const MuOptions& options,
                              MuStats* stats, const MuExecContext& exec) {
  SatEnumerator enumerator(db, ctx, options, stats, exec);
  return enumerator.Run(sentence);
}

}  // namespace kbt::internal
