#ifndef KBT_CORE_TAU_H_
#define KBT_CORE_TAU_H_

/// \file
/// τ_φ(kb) — eq. (10): the update operator. "Inserts" the sentence φ into a
/// knowledgebase by replacing each member db with the φ-models closest to it,
/// μ(φ, db), and unioning the results. Theorem 2.1 shows τ satisfies the
/// Katsuno–Mendelzon update postulates; tests/tau_postulates_test.cc re-verifies
/// them on randomized inputs against this implementation.

#include "base/status.h"
#include "core/mu.h"
#include "rel/knowledgebase.h"

namespace kbt {

struct TauStats {
  /// Sizes before and after.
  size_t input_databases = 0;
  size_t output_databases = 0;
  /// Aggregated μ counters.
  MuStats mu;
};

/// Computes τ_φ(kb). All members of `kb` share a schema, so every μ call works over
/// the same extended schema s = σ(kb) ∪ σ(φ) and the union is well-formed. An empty
/// kb stays empty (over s).
StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const MuOptions& options = MuOptions(),
                            TauStats* stats = nullptr);

}  // namespace kbt

#endif  // KBT_CORE_TAU_H_
