#ifndef KBT_CORE_TAU_H_
#define KBT_CORE_TAU_H_

/// \file
/// τ_φ(kb) — eq. (10): the update operator. "Inserts" the sentence φ into a
/// knowledgebase by replacing each member db with the φ-models closest to it,
/// μ(φ, db), and unioning the results. Theorem 2.1 shows τ satisfies the
/// Katsuno–Mendelzon update postulates; tests/tau_postulates_test.cc re-verifies
/// them on randomized inputs against this implementation.
///
/// The member updates are independent, so τ runs on the exec/ subsystem: worlds
/// are partitioned into stealable chunks over a work-stealing thread pool, each
/// worker owns a reusable Solver, and worlds with identical active domains share
/// one grounded circuit through a domain-keyed cache. threads = 1 (the default)
/// is the plain sequential loop; every thread count produces the same canonical
/// Knowledgebase bit for bit (tests/tau_parallel_test.cc).

#include "base/status.h"
#include "core/mu.h"
#include "rel/knowledgebase.h"

namespace kbt::exec {
class CnfCache;
class GroundingCache;
class ThreadPool;
struct WorldScratch;
}  // namespace kbt::exec

namespace kbt::sat {
class Solver;
}  // namespace kbt::sat

namespace kbt {

struct TauOptions {
  /// Options for the per-world μ calls. Cancellation rides here too: set
  /// `mu.cancel` (and optionally `mu.sat_conflict_budget`) and every world's
  /// μ honors it — an expired token fails the τ call with kDeadlineExceeded
  /// before the next world starts and mid-search inside the SAT descent.
  MuOptions mu;
  /// Worker threads for the world fan-out. 1 = sequential in the calling
  /// thread; 0 = one per hardware thread.
  size_t threads = 1;
  /// Share groundings across worlds with identical active domains (both the
  /// sequential and the parallel path benefit).
  bool use_ground_cache = true;
  /// Share the frozen Tseitin-encoded CNF prefix across same-domain worlds on
  /// the SAT path: encode once, fork per-world solvers from the snapshot
  /// instead of replaying AddClause (see exec/cnf_cache.h). Results are
  /// bit-identical either way.
  bool use_cnf_prefix = true;
  /// Borrowed persistent worker pool. When set (and the resolved thread count
  /// is > 1), τ fans out on this pool instead of spawning one per call — the
  /// serving-loop configuration Engine sets up; see EngineOptions. Must outlive
  /// the call; per-call worker state is still τ's own.
  exec::ThreadPool* pool = nullptr;
  /// Borrowed external caches (serve/cache_bank.h). When set, τ reads and
  /// fills these instead of its per-call locals, so *consecutive calls* with
  /// the same sentence share groundings and frozen CNF prefixes — the serving
  /// batcher's ride on the caches. Both key by active domain alone: a cache
  /// must only ever see one sentence, which the cache bank enforces by keying
  /// entries on canonical sentence text. With an external cnf_cache the
  /// prefix/fork path is taken even for singleton kbs (amortized across calls
  /// rather than across worlds). TauStats report this call's delta only.
  exec::GroundingCache* ground_cache = nullptr;
  exec::CnfCache* cnf_cache = nullptr;
  /// Borrowed session-pinned solver + scratch, used by the sequential path
  /// (resolved thread count 1, the serving read shape): consecutive τ calls
  /// keep the solver's arena capacity and the enumerator's buffers warm
  /// instead of reallocating per call. Ignored by the parallel path, whose
  /// workers own pooled solvers. Must outlive the call; a solver/scratch pair
  /// belongs to one session thread at a time.
  sat::Solver* solver = nullptr;
  exec::WorldScratch* scratch = nullptr;
};

struct TauStats {
  /// Sizes before and after.
  size_t input_databases = 0;
  size_t output_databases = 0;
  /// Aggregated μ counters (merged in world order, independent of execution
  /// interleaving).
  MuStats mu;
  /// Worker threads actually used (1 for the sequential path).
  size_t threads_used = 1;
  /// Domain-keyed grounding cache counters (0/0 when the cache is off or no
  /// world took a grounding strategy).
  uint64_t ground_cache_hits = 0;
  uint64_t ground_cache_misses = 0;
  /// Frozen-CNF-prefix cache counters (0/0 when prefix sharing is off or no
  /// world took the SAT strategy). A hit is one world's Tseitin encoding
  /// replaced by a bulk solver fork.
  uint64_t cnf_cache_hits = 0;
  uint64_t cnf_cache_misses = 0;
};

/// Computes τ_φ(kb). All members of `kb` share a schema, so every μ call works over
/// the same extended schema s = σ(kb) ∪ σ(φ) and the union is well-formed. An empty
/// kb stays empty (over s).
StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const TauOptions& options, TauStats* stats = nullptr);

/// Sequential-default convenience overload (μ options only).
StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const MuOptions& options = MuOptions(),
                            TauStats* stats = nullptr);

}  // namespace kbt

#endif  // KBT_CORE_TAU_H_
