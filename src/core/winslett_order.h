#ifndef KBT_CORE_WINSLETT_ORDER_H_
#define KBT_CORE_WINSLETT_ORDER_H_

/// \file
/// Definition 2.1: the partial order ≤_db ranking candidate databases by closeness
/// to a base database, following Winslett's possible-models approach.
///
/// For candidates db1, db2 over a common schema s that dominates σ(db):
///
///   db1 ≤_db db2  iff  (stage 1)  Δ(db1, r) ⊆ Δ(db2, r) for every r ∈ σ(db), with
///                                 at least one inclusion strict, or
///            (stage 2)  Δ(db1, r) = Δ(db2, r) for every r ∈ σ(db) and
///                                 db1.r ⊆ db2.r for every r ∈ s \ σ(db),
///
/// where Δ(d, r) = d.r Δ db.r (componentwise symmetric difference). Stage 2 with
/// all-equal components gives reflexivity. As written in the paper, condition (1)
/// uses non-strict inclusion and overlaps conditions (2)+(3); we adopt this strict
/// lexicographic reading, which the paper's prose ("ordered in two stages") and the
/// disjointness arguments of Examples 5 and 6 require, and which property tests
/// confirm is a partial order.

#include "base/status.h"
#include "rel/database.h"
#include "rel/overlay.h"

namespace kbt {

/// Outcome of comparing two candidates' closeness to a base.
enum class Closeness {
  kCloser,        ///< db1 <_db db2 (strictly)
  kEqual,         ///< db1 = db2 as databases over s
  kFarther,       ///< db2 <_db db1 (strictly)
  kIncomparable,  ///< neither ≤ holds
};

/// Compares db1 and db2 (same schema s) by closeness to `base` (σ(base) ⊆ s).
StatusOr<Closeness> CompareCloseness(const Database& db1, const Database& db2,
                                     const Database& base);

/// db1 ≤_base db2.
StatusOr<bool> CloserOrEqual(const Database& db1, const Database& db2,
                             const Database& base);

/// db1 <_base db2 (strict).
StatusOr<bool> StrictlyCloser(const Database& db1, const Database& db2,
                              const Database& base);

/// Closeness comparison computed directly on candidate overlays, without
/// materializing either candidate. Both overlays must be canonical relative to
/// base.ExtendTo(s) for the common candidate schema s, where σ(base) is a
/// positional prefix of s (schema extension appends declarations, so this is
/// how every μ update context is laid out); `old_schema_size` = |σ(base)|.
///
/// Then for an old position p the deviation Δ(cand, r_p) = cand_p Δ base_p is
/// exactly adds_p ⊎ dels_p (adds land outside the base relation, dels inside),
/// so stage 1's Δ-inclusions reduce to componentwise inclusions of the delta
/// relations; for a new position the extended base relation is empty, dels are
/// empty by the invariant, and stage 2's inclusion is adds_p ⊆ adds'_p. The
/// result equals CompareCloseness on the materialized candidates
/// (property-tested) at O(delta) cost.
Closeness CompareClosenessOverlays(const WorldOverlay& a, const WorldOverlay& b,
                                   size_t old_schema_size);

/// The db-minimal elements of `candidates` (pairwise comparison): every candidate
/// with no strictly closer candidate in the list. Duplicates are collapsed first.
StatusOr<std::vector<Database>> MinimalElements(std::vector<Database> candidates,
                                                const Database& base);

}  // namespace kbt

#endif  // KBT_CORE_WINSLETT_ORDER_H_
