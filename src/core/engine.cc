#include "core/engine.h"

#include <algorithm>
#include <thread>

#include "exec/pool.h"

namespace kbt {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() = default;

exec::ThreadPool* Engine::PoolFor(size_t threads) {
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_->workers() != threads) {
    pool_ = std::make_unique<exec::ThreadPool>(threads);
  }
  return pool_.get();
}

exec::ThreadPool* Engine::SharedPool() {
  size_t resolved = options_.tau_threads != 0
                        ? options_.tau_threads
                        : std::max<size_t>(1, std::thread::hardware_concurrency());
  return PoolFor(resolved);
}

StatusOr<Knowledgebase> Engine::Apply(std::string_view expression,
                                      const Knowledgebase& kb) {
  KBT_ASSIGN_OR_RETURN(Pipeline pipeline, ParsePipeline(expression));
  KBT_ASSIGN_OR_RETURN(Knowledgebase result, ApplySteps(pipeline, kb));
  if (log_ != nullptr) {
    // Write-ahead discipline: a result whose commit failed is never returned
    // as a success — the caller must treat the transformation as not applied.
    KBT_RETURN_IF_ERROR(log_->Commit(expression, result));
  }
  return result;
}

StatusOr<Knowledgebase> Engine::Apply(const Pipeline& pipeline,
                                      const Knowledgebase& kb) {
  KBT_ASSIGN_OR_RETURN(Knowledgebase result, ApplySteps(pipeline, kb));
  if (log_ != nullptr) {
    // Pre-built pipelines are as durable as text ones: the canonical rendering
    // round-trips through ParsePipeline (property-tested in engine_test), so
    // replay applies the identical transformation.
    KBT_RETURN_IF_ERROR(log_->Commit(pipeline.ToString(), result));
  }
  return result;
}

StatusOr<Knowledgebase> Engine::ApplySteps(const Pipeline& pipeline,
                                           const Knowledgebase& kb) {
  last_trace_ = PipelineStats();
  TauOptions tau_options;
  tau_options.mu = options_.mu;
  tau_options.threads = options_.tau_threads;
  tau_options.use_ground_cache = options_.tau_ground_cache;
  tau_options.use_cnf_prefix = options_.tau_cnf_prefix;
  // Serving-style reuse: lend the lazily-started persistent pool to every τ
  // step instead of letting each call spawn (and join) its own workers.
  size_t resolved = options_.tau_threads != 0
                        ? options_.tau_threads
                        : std::max<size_t>(1, std::thread::hardware_concurrency());
  tau_options.pool = PoolFor(resolved);
  return pipeline.Apply(kb, tau_options, options_.trace ? &last_trace_ : nullptr);
}

StatusOr<Knowledgebase> Engine::Insert(std::string_view sentence,
                                       const Knowledgebase& kb) {
  Pipeline pipeline;
  pipeline.Tau(sentence);
  return Apply(pipeline, kb);
}

Relation MakeRelation(
    size_t arity,
    std::initializer_list<std::initializer_list<std::string_view>> tuples) {
  std::vector<Tuple> rows;
  rows.reserve(tuples.size());
  for (const auto& tuple : tuples) {
    std::vector<Value> values;
    values.reserve(tuple.size());
    for (std::string_view name : tuple) values.push_back(Name(name));
    rows.emplace_back(std::move(values));
  }
  return Relation(arity, std::move(rows));
}

StatusOr<Database> MakeDatabase(
    std::initializer_list<std::pair<std::string_view, size_t>> schema_decls,
    std::initializer_list<
        std::pair<std::string_view,
                  std::initializer_list<std::initializer_list<std::string_view>>>>
        relations) {
  KBT_ASSIGN_OR_RETURN(Schema schema, Schema::Of(schema_decls));
  Database db(schema);
  for (const auto& [name, tuples] : relations) {
    KBT_ASSIGN_OR_RETURN(Relation existing, db.RelationFor(name));
    KBT_ASSIGN_OR_RETURN(db,
                         db.WithRelation(name, MakeRelation(existing.arity(), tuples)));
  }
  return db;
}

StatusOr<Knowledgebase> MakeSingletonKb(
    std::initializer_list<std::pair<std::string_view, size_t>> schema_decls,
    std::initializer_list<
        std::pair<std::string_view,
                  std::initializer_list<std::initializer_list<std::string_view>>>>
        relations) {
  KBT_ASSIGN_OR_RETURN(Database db, MakeDatabase(schema_decls, relations));
  return Knowledgebase::Singleton(std::move(db));
}

}  // namespace kbt
