#ifndef KBT_CORE_MU_INTERNAL_H_
#define KBT_CORE_MU_INTERNAL_H_

/// \file
/// Internal interfaces between the μ dispatcher and its strategies. Not part of the
/// public API.

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/mu.h"
#include "core/universe.h"
#include "datalog/ast.h"
#include "logic/circuit.h"
#include "logic/ground_atom.h"
#include "logic/grounder.h"
#include "rel/overlay.h"

namespace kbt::exec {
struct CachedGrounding;
struct FrozenCnf;
class CnfCache;
class GroundingCache;
struct WorldScratch;
}  // namespace kbt::exec

namespace kbt::sat {
class Solver;
}  // namespace kbt::sat

namespace kbt::internal {

struct DatalogPlan;
struct DefinitionalPlan;

/// kAuto strategy dispatch, resolved once per τ call. PlanDatalog and
/// PlanDefinitional read the database only through its schema, and all members
/// of a knowledgebase share one schema — so τ plans against any one world and
/// every other world reuses the result instead of re-deriving it (the per-world
/// re-planning PR 3 left behind). Built by PlanTauStrategies; only consulted
/// when MuOptions::strategy == kAuto.
struct TauStrategyPlan {
  /// IsGround(φ): try the Theorem 4.7 reference path first (its
  /// kResourceExhausted fallback to SAT stays per-world — it depends on the
  /// grounding size, not on the plan).
  bool sentence_is_ground = false;
  /// Engaged when the Datalog fast path applies to (φ, schema).
  std::shared_ptr<const DatalogPlan> datalog;
  /// Engaged when the definitional fast path applies to (φ, schema).
  std::shared_ptr<const DefinitionalPlan> definitional;
};

/// Resources the τ executor threads through μ: caches shared by all worlds of
/// one τ call (grounding and frozen-CNF-prefix, both keyed by active domain),
/// a per-worker solver that is Reset/forked and reused across worlds instead
/// of constructed per call, a per-worker WorldScratch holding the enumerator's
/// buffers, and the once-per-call strategy plan. All are optional; plain Mu()
/// passes none. The struct is copied freely — it only borrows.
struct MuExecContext {
  exec::GroundingCache* ground_cache = nullptr;
  exec::CnfCache* cnf_cache = nullptr;
  sat::Solver* solver = nullptr;
  exec::WorldScratch* scratch = nullptr;
  const TauStrategyPlan* plan = nullptr;
  /// Sentence-derived UpdateContext pieces hoisted out of the per-world loop:
  /// σ(kb) ∪ σ(φ) and the constants of φ are fixed across a τ call (one shared
  /// input schema), so each world's MakeUpdateContext reduces to its
  /// db-dependent parts. Both set, or both null. The τ executor's probe
  /// context performs the validation these skip.
  const Schema* extended_schema = nullptr;
  const std::vector<Value>* formula_constants = nullptr;
};

/// Resolves the kAuto dispatch of `sentence` against the schema of `probe`
/// (any member of the τ call's knowledgebase — the planners only read the
/// schema).
StatusOr<TauStrategyPlan> PlanTauStrategies(const Formula& sentence,
                                            const Database& probe);

/// The strategy dispatcher behind Mu(), with executor resources. Mu() forwards
/// here with an empty context; the τ executor calls it directly.
StatusOr<Knowledgebase> MuExec(const Formula& sentence, const Database& db,
                               const MuOptions& options, MuStats* stats,
                               const MuExecContext& exec);

/// Grounds `sentence` over `domain` through the executor's cache when present,
/// or locally (wrapped in the same immutable CachedGrounding shape) otherwise.
/// Both grounding strategies go through this, so the cached mentioned-variable
/// set is always borrowed, never re-collected or copied per world.
StatusOr<std::shared_ptr<const exec::CachedGrounding>> ObtainGrounding(
    const MuExecContext& exec, const Formula& sentence,
    const std::vector<Value>& domain, const GrounderOptions& options);

/// Reference (specification) enumeration. Fails with kResourceExhausted when more
/// than options.max_reference_atoms ground atoms are mentioned.
StatusOr<Knowledgebase> MuReference(const Formula& sentence, const Database& db,
                                    const UpdateContext& ctx, const MuOptions& options,
                                    MuStats* stats,
                                    const MuExecContext& exec = MuExecContext());

/// CDCL-based minimal-model enumeration.
StatusOr<Knowledgebase> MuSat(const Formula& sentence, const Database& db,
                              const UpdateContext& ctx, const MuOptions& options,
                              MuStats* stats,
                              const MuExecContext& exec = MuExecContext());

/// Datalog fast path plan: the extracted program (all head predicates new w.r.t.
/// σ(db)). nullopt when φ is not of this shape.
struct DatalogPlan {
  datalog::Program program;
};
StatusOr<std::optional<DatalogPlan>> PlanDatalog(const Formula& sentence,
                                                 const Database& db);
StatusOr<Knowledgebase> MuDatalog(const DatalogPlan& plan, const Database& db,
                                  const UpdateContext& ctx, const MuOptions& options,
                                  MuStats* stats);

/// Definitional fast path plan: conjuncts ∀x̄ (ψ → H(x̄')) / ∀x̄ (ψ ↔ H(x̄)), H new,
/// bodies over σ(db). nullopt when φ is not of this shape.
struct DefinitionalPlan {
  struct Definition {
    Symbol head;
    std::vector<Symbol> head_vars;  ///< Distinct head argument variables.
    std::vector<Symbol> all_vars;   ///< Universally quantified variables, in order.
    Formula body;
    bool iff = false;
  };
  std::vector<Definition> definitions;
};
StatusOr<std::optional<DefinitionalPlan>> PlanDefinitional(const Formula& sentence,
                                                           const Database& db);
StatusOr<Knowledgebase> MuDefinitional(const DefinitionalPlan& plan,
                                       const Database& db, const UpdateContext& ctx,
                                       const MuOptions& options, MuStats* stats);

/// Shared helper: true when the ground atom's relation belongs to σ(db) ("old").
inline bool IsOldAtom(const GroundAtom& atom, const Database& db) {
  return db.schema().Contains(atom.relation);
}

/// Shared helper: turns an (atom id → truth value) assignment into a database over
/// ctx.schema, starting from ctx.extended_base and deviating only on the listed
/// atoms. The specification-shaped path: per call it groups deviations in a map
/// and rebuilds each touched relation through Union/Difference. Kept as the
/// reference ModelMaterializer is property-tested against; enumeration loops use
/// the materializer.
StatusOr<Database> MaterializeModel(
    const UpdateContext& ctx, const AtomIndex& atoms,
    const std::vector<int>& mentioned_atom_ids,
    const std::function<bool(int)>& atom_value);

/// MaterializeModel's overlay twin: the same assignment expressed as a
/// canonical WorldOverlay against ctx.extended_base (adds = atoms wanted true
/// but absent, dels = atoms wanted false but present) instead of a flattened
/// database — what the μ strategies hand the τ merge so no model is ever
/// materialized flat. ApplyTo(ctx.extended_base) equals MaterializeModel's
/// result (property-tested).
StatusOr<WorldOverlay> MaterializeOverlayModel(
    const UpdateContext& ctx, const AtomIndex& atoms,
    const std::vector<int>& mentioned_atom_ids,
    const std::function<bool(int)>& atom_value);

/// Delta-encoded model materialization for enumeration loops that build many
/// databases against one base. Construction (once per μ call — lazily, on the
/// second enumerated model, since a single-model run never amortizes it)
/// groups the mentioned atoms by relation, sorts each group in tuple order and
/// precomputes each atom's presence in ctx.extended_base; Materialize (once
/// per enumerated model) then applies the per-model deltas with a single
/// three-way merge per touched relation — no per-model map, no membership
/// probes, and no Union+Difference double rebuild. All storage is flat, so a
/// default-constructed materializer parked in a per-worker WorldScratch is
/// Rebuilt in place world after world with warm buffers. Borrows the ctx and
/// atoms passed to Rebuild; both must outlive the next Rebuild.
class ModelMaterializer {
 public:
  ModelMaterializer() = default;

  /// (Re)builds the precomputation for a new (ctx, atoms, mentioned) triple,
  /// reusing this object's buffers. Fails with kNotFound when a mentioned
  /// atom's relation is not in ctx.schema (the same check MaterializeModel
  /// performs per call); the materializer is unusable until the next
  /// successful Rebuild.
  Status Rebuild(const UpdateContext& ctx, const AtomIndex& atoms,
                 const std::vector<int>& mentioned_atom_ids);

  /// Fresh-object convenience (tests and one-shot callers).
  static StatusOr<ModelMaterializer> Make(
      const UpdateContext& ctx, const AtomIndex& atoms,
      const std::vector<int>& mentioned_atom_ids);

  /// Builds the database in which every mentioned atom id holds iff
  /// `atom_value(id)`, all other facts matching ctx.extended_base. Equivalent
  /// to MaterializeModel over the same inputs (property-tested).
  StatusOr<Database> Materialize(const std::function<bool(int)>& atom_value) const;

  /// The same model as a canonical overlay against ctx.extended_base: one
  /// RelationDelta per deviating relation, add/delete lists emitted directly
  /// from the precomputed sorted groups (no base merge at all, so the
  /// per-model cost drops from O(base + delta) to O(delta)). Equivalent to
  /// MaterializeOverlayModel over the same inputs (property-tested).
  StatusOr<WorldOverlay> MaterializeOverlay(
      const std::function<bool(int)>& atom_value) const;

 private:
  /// One mentioned atom: its id, a view of its ground tuple (borrowed from the
  /// AtomIndex) and whether the base relation already contains it.
  struct AtomEntry {
    int id;
    TupleView tuple;
    bool present;
  };
  /// All mentioned atoms of one relation: entries_[begin, end), sorted by
  /// tuple so the per-model add/remove lists come out sorted for free.
  struct Group {
    size_t schema_pos;
    uint32_t begin;
    uint32_t end;
  };

  const UpdateContext* ctx_ = nullptr;
  /// Flat entry store + group runs over it (flat so Rebuild reuses capacity).
  std::vector<AtomEntry> entries_;
  std::vector<Group> groups_;
  /// Scratch for Rebuild's (schema position, entry) sort.
  std::vector<std::pair<size_t, AtomEntry>> keyed_;
  /// Scratch for Materialize (adds/removes of the group being merged); mutable
  /// so Materialize stays const for callers — a materializer is used by one
  /// world's enumeration thread, never shared.
  mutable std::vector<TupleView> adds_;
  mutable std::vector<TupleView> removes_;
};

}  // namespace kbt::internal

#endif  // KBT_CORE_MU_INTERNAL_H_
