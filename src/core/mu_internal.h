#ifndef KBT_CORE_MU_INTERNAL_H_
#define KBT_CORE_MU_INTERNAL_H_

/// \file
/// Internal interfaces between the μ dispatcher and its strategies. Not part of the
/// public API.

#include <memory>
#include <optional>

#include "core/mu.h"
#include "core/universe.h"
#include "datalog/ast.h"
#include "logic/circuit.h"
#include "logic/ground_atom.h"
#include "logic/grounder.h"

namespace kbt::exec {
struct CachedGrounding;
class GroundingCache;
}  // namespace kbt::exec

namespace kbt::sat {
class Solver;
}  // namespace kbt::sat

namespace kbt::internal {

/// Resources the τ executor threads through μ: a grounding cache shared by all
/// worlds of one τ call (keyed by active domain) and a per-worker solver that
/// is Reset and reused across worlds instead of constructed per call. Both are
/// optional; plain Mu() passes neither. The struct is copied freely — it only
/// borrows.
struct MuExecContext {
  exec::GroundingCache* ground_cache = nullptr;
  sat::Solver* solver = nullptr;
};

/// The strategy dispatcher behind Mu(), with executor resources. Mu() forwards
/// here with an empty context; the τ executor calls it directly.
StatusOr<Knowledgebase> MuExec(const Formula& sentence, const Database& db,
                               const MuOptions& options, MuStats* stats,
                               const MuExecContext& exec);

/// Grounds `sentence` over `domain` through the executor's cache when present,
/// or locally (wrapped in the same immutable CachedGrounding shape) otherwise.
/// Both grounding strategies go through this, so the cached mentioned-variable
/// set is always borrowed, never re-collected or copied per world.
StatusOr<std::shared_ptr<const exec::CachedGrounding>> ObtainGrounding(
    const MuExecContext& exec, const Formula& sentence,
    const std::vector<Value>& domain, const GrounderOptions& options);

/// Reference (specification) enumeration. Fails with kResourceExhausted when more
/// than options.max_reference_atoms ground atoms are mentioned.
StatusOr<Knowledgebase> MuReference(const Formula& sentence, const Database& db,
                                    const UpdateContext& ctx, const MuOptions& options,
                                    MuStats* stats,
                                    const MuExecContext& exec = MuExecContext());

/// CDCL-based minimal-model enumeration.
StatusOr<Knowledgebase> MuSat(const Formula& sentence, const Database& db,
                              const UpdateContext& ctx, const MuOptions& options,
                              MuStats* stats,
                              const MuExecContext& exec = MuExecContext());

/// Datalog fast path plan: the extracted program (all head predicates new w.r.t.
/// σ(db)). nullopt when φ is not of this shape.
struct DatalogPlan {
  datalog::Program program;
};
StatusOr<std::optional<DatalogPlan>> PlanDatalog(const Formula& sentence,
                                                 const Database& db);
StatusOr<Knowledgebase> MuDatalog(const DatalogPlan& plan, const Database& db,
                                  const UpdateContext& ctx, const MuOptions& options,
                                  MuStats* stats);

/// Definitional fast path plan: conjuncts ∀x̄ (ψ → H(x̄')) / ∀x̄ (ψ ↔ H(x̄)), H new,
/// bodies over σ(db). nullopt when φ is not of this shape.
struct DefinitionalPlan {
  struct Definition {
    Symbol head;
    std::vector<Symbol> head_vars;  ///< Distinct head argument variables.
    std::vector<Symbol> all_vars;   ///< Universally quantified variables, in order.
    Formula body;
    bool iff = false;
  };
  std::vector<Definition> definitions;
};
StatusOr<std::optional<DefinitionalPlan>> PlanDefinitional(const Formula& sentence,
                                                           const Database& db);
StatusOr<Knowledgebase> MuDefinitional(const DefinitionalPlan& plan,
                                       const Database& db, const UpdateContext& ctx,
                                       const MuOptions& options, MuStats* stats);

/// Shared helper: true when the ground atom's relation belongs to σ(db) ("old").
inline bool IsOldAtom(const GroundAtom& atom, const Database& db) {
  return db.schema().Contains(atom.relation);
}

/// Shared helper: turns an (atom id → truth value) assignment into a database over
/// ctx.schema, starting from ctx.extended_base and deviating only on the listed
/// atoms.
StatusOr<Database> MaterializeModel(
    const UpdateContext& ctx, const AtomIndex& atoms,
    const std::vector<int>& mentioned_atom_ids,
    const std::function<bool(int)>& atom_value);

}  // namespace kbt::internal

#endif  // KBT_CORE_MU_INTERNAL_H_
