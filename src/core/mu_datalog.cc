#include "core/mu_internal.h"
#include "datalog/analysis.h"
#include "datalog/eval.h"
#include "datalog/from_fo.h"

namespace kbt::internal {

StatusOr<std::optional<DatalogPlan>> PlanDatalog(const Formula& sentence,
                                                 const Database& db) {
  KBT_ASSIGN_OR_RETURN(std::optional<datalog::Program> program,
                       datalog::FromFirstOrder(sentence));
  if (!program) return std::optional<DatalogPlan>{};
  // Fast-path preconditions beyond Horn shape (anything else falls back to the
  // generic engine rather than erroring):
  //  * safety — ∀x R(x) and friends are Horn but not Datalog-evaluable;
  //  * every head predicate is new w.r.t. σ(db) — the least fixpoint is then the
  //    unique ≤_db-minimal model (Δ = ∅ is achievable, and Horn theories with
  //    fixed EDB have componentwise-least models).
  if (!datalog::CheckSafety(*program).ok()) return std::optional<DatalogPlan>{};
  for (Symbol head : program->HeadPredicates()) {
    if (db.schema().Contains(head)) return std::optional<DatalogPlan>{};
  }
  return std::optional<DatalogPlan>{DatalogPlan{std::move(*program)}};
}

StatusOr<Knowledgebase> MuDatalog(const DatalogPlan& plan, const Database& db,
                                  const UpdateContext& ctx, const MuOptions& options,
                                  MuStats* stats) {
  datalog::EvalOptions eopts;
  eopts.use_seminaive = options.use_seminaive;
  datalog::EvalStats estats;
  KBT_ASSIGN_OR_RETURN(Database least,
                       datalog::Evaluate(plan.program, db, eopts, &estats));
  stats->datalog_rounds = estats.rounds;
  stats->datalog_derived_tuples = estats.derived_tuples;
  stats->minimal_models = 1;
  // The least model deviates from db only on predicates new w.r.t. σ(db) (the
  // fast-path precondition), and ctx.schema appends those after σ(db)'s
  // declarations — so the result is ctx.extended_base plus pure-add deltas at
  // the new positions. Derived relations are adopted by reference; the EDB is
  // never copied.
  std::vector<RelationDelta> deltas;
  for (size_t p = db.schema().size(); p < ctx.schema.size(); ++p) {
    const Relation* derived = least.FindRelation(ctx.schema.decl(p).symbol);
    if (derived == nullptr || derived->empty()) continue;
    RelationDelta d;
    d.pos = static_cast<uint32_t>(p);
    d.adds = *derived;
    d.dels = Relation(derived->arity());
    deltas.push_back(std::move(d));
  }
  std::vector<WorldOverlay> overlays;
  overlays.push_back(WorldOverlay::FromDeltas(std::move(deltas)));
  return Knowledgebase::FromBaseAndOverlays(
      std::make_shared<const Database>(ctx.extended_base), std::move(overlays));
}

}  // namespace kbt::internal
