#ifndef KBT_CORE_EXPR_PARSER_H_
#define KBT_CORE_EXPR_PARSER_H_

/// \file
/// Concrete syntax for transformation expressions:
///
///   pipeline := step ( ">>" step )*
///   step     := ("tau" | "insert") "{" formula "}"
///             | "glb" | "meet"
///             | "lub" | "join"
///             | ("pi" | "project") "[" ident ("," ident)* "]"
///
/// Steps apply left to right, e.g. the paper's π₂ ⊓ τ_φ is
/// "tau{ <φ> } >> glb >> pi[R2]". The formula between braces uses the syntax of
/// logic/parser.h and must be a sentence.

#include <string_view>

#include "base/status.h"
#include "core/expr.h"

namespace kbt {

/// Parses a pipeline in concrete syntax.
StatusOr<Pipeline> ParsePipeline(std::string_view text);

}  // namespace kbt

#endif  // KBT_CORE_EXPR_PARSER_H_
