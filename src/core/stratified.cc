#include "core/stratified.h"

#include <algorithm>

#include "core/tau.h"
#include "datalog/analysis.h"
#include "datalog/to_fo.h"

namespace kbt {

StatusOr<Knowledgebase> InsertStratified(const datalog::Program& program,
                                         const Knowledgebase& kb,
                                         const MuOptions& options) {
  KBT_RETURN_IF_ERROR(datalog::CheckSafety(program));
  KBT_ASSIGN_OR_RETURN(std::vector<std::vector<Symbol>> strata,
                       datalog::Stratify(program));
  for (Symbol head : program.HeadPredicates()) {
    if (kb.schema().Contains(head)) {
      return Status::InvalidArgument(
          "InsertStratified: head predicate already stored: " + NameOf(head));
    }
  }
  Knowledgebase current = kb;
  for (const std::vector<Symbol>& stratum : strata) {
    datalog::Program slice;
    for (const datalog::Rule& r : program.rules) {
      if (std::find(stratum.begin(), stratum.end(), r.head.predicate) !=
          stratum.end()) {
        slice.rules.push_back(r);
      }
    }
    if (slice.rules.empty()) continue;
    KBT_ASSIGN_OR_RETURN(Formula sentence, datalog::ToFirstOrder(slice));
    KBT_ASSIGN_OR_RETURN(current, Tau(sentence, current, options));
  }
  return current;
}

}  // namespace kbt
