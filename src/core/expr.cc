#include "core/expr.h"

#include "eval/model_check.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace kbt {

std::string TransformStep::ToString() const {
  switch (kind) {
    case Kind::kTau:
      return "tau{ " + kbt::ToString(sentence) + " }";
    case Kind::kFilter:
      return "filter{ " + kbt::ToString(sentence) + " }";
    case Kind::kGlb:
      return "glb";
    case Kind::kLub:
      return "lub";
    case Kind::kProject: {
      std::string out = "pi[";
      for (size_t i = 0; i < projection.size(); ++i) {
        if (i > 0) out += ", ";
        out += NameOf(projection[i]);
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

Pipeline& Pipeline::Tau(Formula sentence) {
  steps_.push_back(TransformStep{TransformStep::Kind::kTau, std::move(sentence), {}});
  return *this;
}

Pipeline& Pipeline::Tau(std::string_view sentence_text) {
  StatusOr<Formula> parsed = ParseSentence(sentence_text);
  if (!parsed.ok()) {
    if (deferred_error_.ok()) deferred_error_ = parsed.status();
    return *this;
  }
  return Tau(std::move(*parsed));
}

Pipeline& Pipeline::Glb() {
  steps_.push_back(TransformStep{TransformStep::Kind::kGlb, nullptr, {}});
  return *this;
}

Pipeline& Pipeline::Lub() {
  steps_.push_back(TransformStep{TransformStep::Kind::kLub, nullptr, {}});
  return *this;
}

Pipeline& Pipeline::Project(std::vector<std::string> names) {
  std::vector<Symbol> symbols;
  symbols.reserve(names.size());
  for (const std::string& n : names) symbols.push_back(Name(n));
  return Project(std::move(symbols));
}

Pipeline& Pipeline::Project(std::vector<Symbol> symbols) {
  steps_.push_back(
      TransformStep{TransformStep::Kind::kProject, nullptr, std::move(symbols)});
  return *this;
}

Pipeline& Pipeline::Filter(Formula sentence) {
  steps_.push_back(
      TransformStep{TransformStep::Kind::kFilter, std::move(sentence), {}});
  return *this;
}

Pipeline& Pipeline::Filter(std::string_view sentence_text) {
  StatusOr<Formula> parsed = ParseSentence(sentence_text);
  if (!parsed.ok()) {
    if (deferred_error_.ok()) deferred_error_ = parsed.status();
    return *this;
  }
  return Filter(std::move(*parsed));
}

StatusOr<Knowledgebase> Pipeline::Apply(const Knowledgebase& kb,
                                        const MuOptions& options,
                                        PipelineStats* stats) const {
  TauOptions tau_options;
  tau_options.mu = options;
  return Apply(kb, tau_options, stats);
}

StatusOr<Knowledgebase> Pipeline::Apply(const Knowledgebase& kb,
                                        const TauOptions& options,
                                        PipelineStats* stats) const {
  KBT_RETURN_IF_ERROR(deferred_error_);
  Knowledgebase current = kb;
  for (const TransformStep& step : steps_) {
    StepTrace trace;
    trace.step = step.ToString();
    trace.input_databases = current.size();
    switch (step.kind) {
      case TransformStep::Kind::kTau: {
        TauStats tau_stats;
        KBT_ASSIGN_OR_RETURN(current, kbt::Tau(step.sentence, current, options,
                                               &tau_stats));
        trace.mu = tau_stats.mu;
        break;
      }
      case TransformStep::Kind::kGlb:
        current = current.Glb();
        break;
      case TransformStep::Kind::kLub:
        current = current.Lub();
        break;
      case TransformStep::Kind::kFilter: {
        // Keep surviving worlds by index: SelectWorlds shares the base and
        // overlays (a subsequence of a canonical sequence is canonical), so
        // no world is copied, re-diffed or re-sorted.
        std::vector<size_t> kept;
        for (size_t i = 0; i < current.size(); ++i) {
          Database db = current.World(i);
          KBT_ASSIGN_OR_RETURN(bool holds, Satisfies(db, step.sentence));
          if (holds) kept.push_back(i);
        }
        current = current.SelectWorlds(kept);
        break;
      }
      case TransformStep::Kind::kProject: {
        KBT_ASSIGN_OR_RETURN(current, current.ProjectTo(step.projection));
        break;
      }
    }
    trace.output_databases = current.size();
    if (stats != nullptr) stats->steps.push_back(std::move(trace));
  }
  return current;
}

std::string Pipeline::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (i > 0) out += " >> ";
    out += steps_[i].ToString();
  }
  return out;
}

namespace {

std::vector<Symbol> FreshVars(size_t arity) {
  std::vector<Symbol> vars;
  vars.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    vars.push_back(Name("x" + std::to_string(i + 1)));
  }
  return vars;
}

std::vector<Term> VarTerms(const std::vector<Symbol>& vars) {
  std::vector<Term> terms;
  terms.reserve(vars.size());
  for (Symbol v : vars) terms.push_back(Term::Var(v));
  return terms;
}

}  // namespace

Formula CopyFormula(std::string_view from, std::string_view to, size_t arity) {
  std::vector<Symbol> vars = FreshVars(arity);
  Formula body = Iff(Atom(from, VarTerms(vars)), Atom(to, VarTerms(vars)));
  return Forall(vars, std::move(body));
}

Formula DifferenceFormula(std::string_view a, std::string_view b,
                          std::string_view to, size_t arity) {
  std::vector<Symbol> vars = FreshVars(arity);
  Formula body = Iff(And(Atom(a, VarTerms(vars)), Not(Atom(b, VarTerms(vars)))),
                     Atom(to, VarTerms(vars)));
  return Forall(vars, std::move(body));
}

}  // namespace kbt
