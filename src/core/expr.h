#ifndef KBT_CORE_EXPR_H_
#define KBT_CORE_EXPR_H_

/// \file
/// Transformation expressions Θ (§2): compositions of the four operators
///
///   τ_φ   insert a sentence (queries and updates alike),
///   ⊓     componentwise intersection of all possible worlds (certainty),
///   ⊔     componentwise union (possibility),
///   π     projection onto a list of relation symbols.
///
/// A Pipeline applies its steps left to right, so the paper's right-to-left
/// composition π₂(⊓(τ_φ(kb))) is written
///
///   Pipeline().Tau(phi).Glb().Project({"R2"})          // fluent builder
///   "tau{ ... } >> glb >> pi[R2]"                      // concrete syntax
///
/// There is deliberately no query/update distinction: both are transformations
/// KB → KB, exactly as in the paper.

#include <string>
#include <vector>

#include "base/status.h"
#include "core/mu.h"
#include "core/tau.h"
#include "logic/formula.h"
#include "rel/knowledgebase.h"

namespace kbt {

/// One transformation step.
struct TransformStep {
  enum class Kind {
    kTau,
    kGlb,
    kLub,
    kProject,
    /// Extension beyond the paper (§6 invites application-specific operators):
    /// keep exactly the worlds satisfying a sentence. This is the "consistent
    /// case" of AGM revision as a pipeline step, and the natural selection
    /// companion to ⊓/⊔'s certainty/possibility semantics [ASV90].
    kFilter,
  };

  Kind kind;
  /// kTau / kFilter: the sentence.
  Formula sentence;
  /// kProject: relation symbols to keep, in order.
  std::vector<Symbol> projection;

  std::string ToString() const;
};

/// Per-step evaluation record (sizes and strategy), for EXPERIMENTS and debugging.
struct StepTrace {
  std::string step;
  size_t input_databases = 0;
  size_t output_databases = 0;
  MuStats mu;
};

struct PipelineStats {
  std::vector<StepTrace> steps;
};

/// A transformation expression: an ordered sequence of steps.
class Pipeline {
 public:
  Pipeline() = default;

  /// Appends τ_φ.
  Pipeline& Tau(Formula sentence);
  /// Appends τ for a sentence in concrete syntax; invalid syntax is reported at
  /// Apply time via the stored status.
  Pipeline& Tau(std::string_view sentence_text);
  /// Appends ⊓.
  Pipeline& Glb();
  /// Appends ⊔.
  Pipeline& Lub();
  /// Appends π onto the named relations.
  Pipeline& Project(std::vector<std::string> names);
  Pipeline& Project(std::vector<Symbol> symbols);
  /// Appends the filter extension step (keep worlds satisfying the sentence).
  Pipeline& Filter(Formula sentence);
  Pipeline& Filter(std::string_view sentence_text);

  const std::vector<TransformStep>& steps() const { return steps_; }

  /// Applies every step in order. τ steps run on the exec/ subsystem when
  /// options.threads > 1 (see core/tau.h).
  StatusOr<Knowledgebase> Apply(const Knowledgebase& kb, const TauOptions& options,
                                PipelineStats* stats = nullptr) const;

  /// Sequential-default convenience overload (μ options only).
  StatusOr<Knowledgebase> Apply(const Knowledgebase& kb,
                                const MuOptions& options = MuOptions(),
                                PipelineStats* stats = nullptr) const;

  /// Concrete syntax of the pipeline ("tau{...} >> glb >> pi[R2]").
  std::string ToString() const;

 private:
  std::vector<TransformStep> steps_;
  Status deferred_error_;  // First construction error, reported by Apply.
};

/// Sugar used throughout §3 of the paper: the sentence ∀x̄ (From(x̄) ↔ To(x̄)),
/// which copies relation `from` into the new relation `to` (both of arity `arity`).
Formula CopyFormula(std::string_view from, std::string_view to, size_t arity);

/// Sugar: ∀x̄ ((A(x̄) ∧ ¬B(x̄)) ↔ To(x̄)) — assigns A \ B to the new relation `to`
/// (the {= step of Example 5 and {@ of Example 6).
Formula DifferenceFormula(std::string_view a, std::string_view b,
                          std::string_view to, size_t arity);

}  // namespace kbt

#endif  // KBT_CORE_EXPR_H_
