#include "core/hypothetical.h"

#include "core/tau.h"
#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt {

namespace {

/// Shared tail of both chain evaluators: extend the schema so the consequent's
/// satisfaction is defined, then fold the modality over the worlds.
StatusOr<bool> CheckConsequent(Knowledgebase current, const Formula& consequent,
                               Modality modality) {
  // The consequent may mention relations the updates introduced; extend the
  // schema so satisfaction is defined (new relations are empty under CWA).
  KBT_ASSIGN_OR_RETURN(Schema consequent_schema, SchemaOf(consequent));
  if (!current.schema().Includes(consequent_schema)) {
    KBT_ASSIGN_OR_RETURN(Schema extended,
                         current.schema().Union(consequent_schema));
    KBT_ASSIGN_OR_RETURN(current, current.ExtendTo(extended));
  }
  bool all = true;
  bool some = false;
  for (size_t i = 0; i < current.size(); ++i) {
    Database db = current.World(i);  // Transient copy-on-write materialization.
    KBT_ASSIGN_OR_RETURN(bool holds, Satisfies(db, consequent));
    all = all && holds;
    some = some || holds;
  }
  return modality == Modality::kNecessarily ? all : some;
}

}  // namespace

StatusOr<bool> NestedCounterfactual(const Knowledgebase& kb,
                                    const std::vector<Formula>& antecedents,
                                    const Formula& consequent, Modality modality,
                                    const MuOptions& options) {
  Knowledgebase current = kb;
  for (const Formula& a : antecedents) {
    KBT_ASSIGN_OR_RETURN(current, Tau(a, current, options));
  }
  return CheckConsequent(std::move(current), consequent, modality);
}

StatusOr<bool> NestedCounterfactualExec(const Knowledgebase& kb,
                                        const std::vector<ChainStep>& steps,
                                        const Formula& consequent,
                                        Modality modality,
                                        const TauOptions& options) {
  Knowledgebase current = kb;
  for (const ChainStep& step : steps) {
    // The base options carry the session-wide resources (pool, pinned solver,
    // scratch, μ options); only the per-sentence caches vary per step.
    TauOptions step_options = options;
    step_options.ground_cache = step.ground_cache;
    step_options.cnf_cache = step.cnf_cache;
    KBT_ASSIGN_OR_RETURN(current, Tau(*step.antecedent, current, step_options));
  }
  return CheckConsequent(std::move(current), consequent, modality);
}

StatusOr<bool> Counterfactual(const Knowledgebase& kb, const Formula& antecedent,
                              const Formula& consequent, Modality modality,
                              const MuOptions& options) {
  return NestedCounterfactual(kb, {antecedent}, consequent, modality, options);
}

}  // namespace kbt
