#include "core/hypothetical.h"

#include "core/tau.h"
#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt {

namespace {

/// Shared tail of both chain evaluators: extend the schema so the consequent's
/// satisfaction is defined, then fold the modality over the worlds. `cancel`
/// (nullable) is polled per world — a chain may yield many worlds and each
/// Satisfies is a full model check.
StatusOr<bool> CheckConsequent(Knowledgebase current, const Formula& consequent,
                               Modality modality, const CancelToken* cancel) {
  // The consequent may mention relations the updates introduced; extend the
  // schema so satisfaction is defined (new relations are empty under CWA).
  KBT_ASSIGN_OR_RETURN(Schema consequent_schema, SchemaOf(consequent));
  if (!current.schema().Includes(consequent_schema)) {
    KBT_ASSIGN_OR_RETURN(Schema extended,
                         current.schema().Union(consequent_schema));
    KBT_ASSIGN_OR_RETURN(current, current.ExtendTo(extended));
  }
  bool all = true;
  bool some = false;
  for (size_t i = 0; i < current.size(); ++i) {
    if (cancel != nullptr && cancel->Expired()) {
      return Status::DeadlineExceeded("query cancelled during consequent check");
    }
    Database db = current.World(i);  // Transient copy-on-write materialization.
    KBT_ASSIGN_OR_RETURN(bool holds, Satisfies(db, consequent));
    all = all && holds;
    some = some || holds;
  }
  return modality == Modality::kNecessarily ? all : some;
}

}  // namespace

StatusOr<bool> NestedCounterfactual(const Knowledgebase& kb,
                                    const std::vector<Formula>& antecedents,
                                    const Formula& consequent, Modality modality,
                                    const MuOptions& options) {
  Knowledgebase current = kb;
  for (const Formula& a : antecedents) {
    KBT_ASSIGN_OR_RETURN(current, Tau(a, current, options));
  }
  return CheckConsequent(std::move(current), consequent, modality,
                         options.cancel);
}

StatusOr<bool> NestedCounterfactualExec(const Knowledgebase& kb,
                                        const std::vector<ChainStep>& steps,
                                        const Formula& consequent,
                                        Modality modality,
                                        const TauOptions& options,
                                        TauStats* stats) {
  Knowledgebase current = kb;
  for (const ChainStep& step : steps) {
    // Between chain steps is the coarsest useful cancellation boundary: each
    // τ may fan a world-set out by orders of magnitude. (τ itself re-checks
    // per world and inside the SAT search via options.mu.cancel.)
    if (options.mu.cancel != nullptr && options.mu.cancel->Expired()) {
      return Status::DeadlineExceeded("query cancelled between chain steps");
    }
    // The base options carry the session-wide resources (pool, pinned solver,
    // scratch, μ options); only the per-sentence caches vary per step.
    TauOptions step_options = options;
    step_options.ground_cache = step.ground_cache;
    step_options.cnf_cache = step.cnf_cache;
    // Tau merges μ counters into whatever stats object arrives, so passing
    // the same one per step accumulates across the chain.
    KBT_ASSIGN_OR_RETURN(current,
                         Tau(*step.antecedent, current, step_options, stats));
  }
  return CheckConsequent(std::move(current), consequent, modality,
                         options.mu.cancel);
}

StatusOr<bool> Counterfactual(const Knowledgebase& kb, const Formula& antecedent,
                              const Formula& consequent, Modality modality,
                              const MuOptions& options) {
  return NestedCounterfactual(kb, {antecedent}, consequent, modality, options);
}

}  // namespace kbt
