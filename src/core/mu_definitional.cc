#include <algorithm>
#include <map>
#include <set>

#include "core/mu_internal.h"
#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt::internal {

namespace {

/// Collects conjuncts of a (possibly nested) conjunction.
void FlattenAnd(const Formula& f, std::vector<Formula>* out) {
  if (f->kind() == FormulaKind::kAnd) {
    for (const Formula& c : f->children()) FlattenAnd(c, out);
  } else {
    out->push_back(f);
  }
}

/// Parses one conjunct as ∀x̄ (ψ OP H(ȳ)), OP ∈ {→, ↔}, head args distinct
/// variables drawn from x̄. Returns false if the shape does not match.
bool ParseDefinition(const Formula& conjunct, DefinitionalPlan::Definition* out) {
  Formula f = conjunct;
  out->all_vars.clear();
  while (f->kind() == FormulaKind::kForall) {
    out->all_vars.push_back(f->variable());
    f = f->children()[0];
  }
  if (f->kind() != FormulaKind::kImplies && f->kind() != FormulaKind::kIff) {
    return false;
  }
  out->iff = f->kind() == FormulaKind::kIff;
  const Formula& head = f->children()[1];
  if (head->kind() != FormulaKind::kAtom) return false;
  out->head = head->relation();
  out->head_vars.clear();
  std::set<Symbol> seen;
  for (const Term& t : head->terms()) {
    if (!t.is_variable()) return false;
    if (!seen.insert(t.symbol).second) return false;  // Repeated head variable.
    if (std::find(out->all_vars.begin(), out->all_vars.end(), t.symbol) ==
        out->all_vars.end()) {
      return false;  // Head variable not universally quantified here.
    }
    out->head_vars.push_back(t.symbol);
  }
  if (out->iff && out->head_vars.size() != out->all_vars.size()) {
    // ∀x̄ (ψ ↔ H(ȳ)) with ȳ ⊊ x̄ constrains H twice over the projected-away
    // variables; that is not a plain definition. Leave it to the generic engine.
    return false;
  }
  out->body = f->children()[0];
  return true;
}

}  // namespace

StatusOr<std::optional<DefinitionalPlan>> PlanDefinitional(const Formula& sentence,
                                                           const Database& db) {
  std::vector<Formula> conjuncts;
  FlattenAnd(sentence, &conjuncts);
  DefinitionalPlan plan;
  for (const Formula& c : conjuncts) {
    DefinitionalPlan::Definition def;
    if (!ParseDefinition(c, &def)) return std::optional<DefinitionalPlan>{};
    plan.definitions.push_back(std::move(def));
  }
  // Heads must be new, defined from old relations only, and not feed each other
  // (otherwise minimization is no longer relation-by-relation independent).
  std::set<Symbol> heads;
  std::map<Symbol, size_t> head_counts;
  for (const auto& def : plan.definitions) {
    if (db.schema().Contains(def.head)) return std::optional<DefinitionalPlan>{};
    heads.insert(def.head);
    ++head_counts[def.head];
  }
  for (const auto& def : plan.definitions) {
    StatusOr<Schema> body_schema = SchemaOf(def.body);
    if (!body_schema.ok()) return std::optional<DefinitionalPlan>{};
    for (const RelationDecl& d : body_schema->decls()) {
      if (!db.schema().Contains(d.symbol)) return std::optional<DefinitionalPlan>{};
    }
    // Body free variables must be covered by the quantifier prefix.
    std::set<Symbol> free = FreeVariables(def.body);
    for (Symbol v : free) {
      if (std::find(def.all_vars.begin(), def.all_vars.end(), v) ==
          def.all_vars.end()) {
        return std::optional<DefinitionalPlan>{};
      }
    }
    // An ↔-definition must be the unique definition of its head.
    if (def.iff && head_counts[def.head] > 1) return std::optional<DefinitionalPlan>{};
  }
  return std::optional<DefinitionalPlan>{std::move(plan)};
}

StatusOr<Knowledgebase> MuDefinitional(const DefinitionalPlan& plan,
                                       const Database& db, const UpdateContext& ctx,
                                       const MuOptions& options, MuStats* stats) {
  (void)options;
  // Each head's least content is the union over its definitions of
  // π_headvars { x̄ ∈ B^|x̄| : db ⊨ ψ(x̄) }. Keeping db unchanged is always
  // possible (heads are new and bodies old), so Δ = ∅ and the fixed contents are
  // the unique stage-2 minimum.
  std::map<Symbol, Relation::Builder> head_tuples;
  for (const auto& def : plan.definitions) {
    KBT_ASSIGN_OR_RETURN(Relation answers,
                         EvaluateQuery(db, def.body, def.all_vars, ctx.domain));
    ++stats->candidates_examined;
    std::vector<size_t> projection;
    projection.reserve(def.head_vars.size());
    for (Symbol hv : def.head_vars) {
      size_t pos = static_cast<size_t>(
          std::find(def.all_vars.begin(), def.all_vars.end(), hv) -
          def.all_vars.begin());
      projection.push_back(pos);
    }
    auto [bucket, _] =
        head_tuples.try_emplace(def.head, Relation::Builder(projection.size()));
    bucket->second.Reserve(answers.size());
    if (projection.empty()) {
      for (size_t r = 0; r < answers.size(); ++r) bucket->second.Append(TupleView());
    } else {
      for (TupleView t : answers) {
        Value* row = bucket->second.AppendRow();
        for (size_t i = 0; i < projection.size(); ++i) row[i] = t[projection[i]];
      }
    }
  }
  // Heads are new w.r.t. σ(db), so their extended-base relations are empty and
  // the computed contents are pure-add deltas — the base is never copied.
  std::vector<RelationDelta> deltas;
  deltas.reserve(head_tuples.size());
  for (auto& [head, builder] : head_tuples) {
    std::optional<size_t> pos = ctx.schema.PositionOf(head);
    if (!pos) {
      return Status::NotFound("relation not in schema: " + NameOf(head));
    }
    RelationDelta d;
    d.pos = static_cast<uint32_t>(*pos);
    d.adds = builder.Build();
    d.dels = Relation(d.adds.arity());
    deltas.push_back(std::move(d));
  }
  stats->minimal_models = 1;
  std::vector<WorldOverlay> overlays;
  // The map iterates in symbol order, not position order; FromDeltas sorts.
  overlays.push_back(WorldOverlay::FromDeltas(std::move(deltas)));
  return Knowledgebase::FromBaseAndOverlays(
      std::make_shared<const Database>(ctx.extended_base), std::move(overlays));
}

}  // namespace kbt::internal
