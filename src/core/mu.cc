#include "core/mu.h"

#include "core/mu_internal.h"
#include "exec/ground_cache.h"
#include "logic/analysis.h"

namespace kbt {

const char* MuStrategyName(MuStrategy strategy) {
  switch (strategy) {
    case MuStrategy::kAuto:
      return "auto";
    case MuStrategy::kReference:
      return "reference";
    case MuStrategy::kSat:
      return "sat";
    case MuStrategy::kDatalog:
      return "datalog";
    case MuStrategy::kDefinitional:
      return "definitional";
  }
  return "unknown";
}

void MuStats::MergeFrom(const MuStats& other) {
  minimal_models += other.minimal_models;
  candidates_examined += other.candidates_examined;
  ground_nodes += other.ground_nodes;
  ground_atoms += other.ground_atoms;
  sat_solve_calls += other.sat_solve_calls;
  sat_conflicts += other.sat_conflicts;
  sat_decisions += other.sat_decisions;
  sat_reused_levels += other.sat_reused_levels;
  sat_saved_propagations += other.sat_saved_propagations;
  sat_interrupt_checks += other.sat_interrupt_checks;
  sat_budget_trips += other.sat_budget_trips;
  datalog_rounds += other.datalog_rounds;
  datalog_derived_tuples += other.datalog_derived_tuples;
  used = other.used;  // Last strategy wins; τ reports per-call anyway.
}

StatusOr<Knowledgebase> Mu(const Formula& sentence, const Database& db,
                           const MuOptions& options, MuStats* stats) {
  return internal::MuExec(sentence, db, options, stats, internal::MuExecContext());
}

namespace internal {

StatusOr<std::shared_ptr<const exec::CachedGrounding>> ObtainGrounding(
    const MuExecContext& exec, const Formula& sentence,
    const std::vector<Value>& domain, const GrounderOptions& options) {
  if (exec.ground_cache != nullptr) {
    return exec.ground_cache->GetOrGround(sentence, domain, options);
  }
  return exec::MakeCachedGrounding(sentence, domain, options);
}

StatusOr<TauStrategyPlan> PlanTauStrategies(const Formula& sentence,
                                            const Database& probe) {
  TauStrategyPlan plan;
  plan.sentence_is_ground = IsGround(sentence);
  KBT_ASSIGN_OR_RETURN(auto datalog, PlanDatalog(sentence, probe));
  if (datalog) {
    plan.datalog = std::make_shared<const DatalogPlan>(std::move(*datalog));
    return plan;  // Mirrors kAuto: Datalog wins before definitional is tried.
  }
  KBT_ASSIGN_OR_RETURN(auto definitional, PlanDefinitional(sentence, probe));
  if (definitional) {
    plan.definitional =
        std::make_shared<const DefinitionalPlan>(std::move(*definitional));
  }
  return plan;
}

StatusOr<Knowledgebase> MuExec(const Formula& sentence, const Database& db,
                               const MuOptions& options, MuStats* stats,
                               const MuExecContext& exec) {
  // Cheapest place to honor an already-expired request: before grounding.
  // The SAT strategy additionally polls the token inside the search.
  if (options.cancel != nullptr && options.cancel->Expired()) {
    return Status::DeadlineExceeded("μ cancelled before evaluation");
  }
  UpdateContext ctx;
  if (exec.extended_schema != nullptr && exec.formula_constants != nullptr) {
    KBT_ASSIGN_OR_RETURN(
        ctx, MakeUpdateContextOnSchema(*exec.extended_schema,
                                       *exec.formula_constants, db));
  } else {
    KBT_ASSIGN_OR_RETURN(ctx, MakeUpdateContext(sentence, db));
  }
  MuStats local;
  MuStats* out = stats != nullptr ? stats : &local;

  switch (options.strategy) {
    case MuStrategy::kReference:
      out->used = MuStrategy::kReference;
      return internal::MuReference(sentence, db, ctx, options, out, exec);
    case MuStrategy::kSat:
      out->used = MuStrategy::kSat;
      return internal::MuSat(sentence, db, ctx, options, out, exec);
    case MuStrategy::kDatalog: {
      KBT_ASSIGN_OR_RETURN(auto plan, internal::PlanDatalog(sentence, db));
      if (!plan) {
        return Status::Unsupported(
            "sentence is not Datalog-restricted with new head predicates");
      }
      out->used = MuStrategy::kDatalog;
      return internal::MuDatalog(*plan, db, ctx, options, out);
    }
    case MuStrategy::kDefinitional: {
      KBT_ASSIGN_OR_RETURN(auto plan, internal::PlanDefinitional(sentence, db));
      if (!plan) {
        return Status::Unsupported("sentence is not definitional over σ(db)");
      }
      out->used = MuStrategy::kDefinitional;
      return internal::MuDefinitional(*plan, db, ctx, options, out);
    }
    case MuStrategy::kAuto:
      break;
  }

  // Automatic dispatch, cheapest applicable first. With a τ-provided plan the
  // shape analysis (ground check, Datalog extraction, definitional parse) was
  // resolved once per τ call — it depends only on (φ, schema), and all worlds
  // share a schema — so each world goes straight to its strategy.
  if (exec.plan != nullptr) {
    const TauStrategyPlan& plan = *exec.plan;
    if (plan.sentence_is_ground) {
      StatusOr<Knowledgebase> result =
          internal::MuReference(sentence, db, ctx, options, out, exec);
      if (result.ok() ||
          result.status().code() != StatusCode::kResourceExhausted) {
        out->used = MuStrategy::kReference;
        return result;
      }
    }
    if (plan.datalog != nullptr) {
      out->used = MuStrategy::kDatalog;
      return internal::MuDatalog(*plan.datalog, db, ctx, options, out);
    }
    if (plan.definitional != nullptr) {
      out->used = MuStrategy::kDefinitional;
      return internal::MuDefinitional(*plan.definitional, db, ctx, options, out);
    }
    out->used = MuStrategy::kSat;
    return internal::MuSat(sentence, db, ctx, options, out, exec);
  }
  if (IsGround(sentence)) {
    // Theorem 4.7: ground updates touch at most |φ| atoms — reference enumeration
    // is polynomial in the database. Very wide ground sentences still go to SAT.
    StatusOr<Knowledgebase> result =
        internal::MuReference(sentence, db, ctx, options, out, exec);
    if (result.ok() || result.status().code() != StatusCode::kResourceExhausted) {
      out->used = MuStrategy::kReference;
      return result;
    }
  }
  {
    KBT_ASSIGN_OR_RETURN(auto plan, internal::PlanDatalog(sentence, db));
    if (plan) {
      out->used = MuStrategy::kDatalog;
      return internal::MuDatalog(*plan, db, ctx, options, out);
    }
  }
  {
    KBT_ASSIGN_OR_RETURN(auto plan, internal::PlanDefinitional(sentence, db));
    if (plan) {
      out->used = MuStrategy::kDefinitional;
      return internal::MuDefinitional(*plan, db, ctx, options, out);
    }
  }
  out->used = MuStrategy::kSat;
  return internal::MuSat(sentence, db, ctx, options, out, exec);
}

}  // namespace internal

}  // namespace kbt
