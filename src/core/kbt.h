#ifndef KBT_CORE_KBT_H_
#define KBT_CORE_KBT_H_

/// \file
/// Umbrella header for the kbt library — a C++ implementation of
/// "Knowledgebase Transformations" (Grahne, Mendelzon, Revesz; PODS 1992 /
/// JCSS 54(1), 1997).
///
/// Quick start:
/// \code
///   #include "core/kbt.h"
///
///   kbt::Engine engine;
///   auto kb = kbt::MakeSingletonKb({{"R1", 2}},
///                                  {{"R1", {{"tor", "ott"}, {"ott", "mtl"}}}});
///   auto result = engine.Apply(
///       "tau{ forall x, y, z:"
///       "  (R2(x, y) & R1(y, z)) | R1(x, z) -> R2(x, z) } >> pi[R2]",
///       *kb);
///   // *result is the singleton kb holding the transitive closure in R2.
/// \endcode

#include "base/interner.h"
#include "base/status.h"
#include "core/engine.h"
#include "core/expr.h"
#include "core/expr_parser.h"
#include "core/hypothetical.h"
#include "core/mu.h"
#include "core/stratified.h"
#include "core/tau.h"
#include "core/universe.h"
#include "core/winslett_order.h"
#include "eval/model_check.h"
#include "logic/analysis.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/transform.h"
#include "rel/database.h"
#include "rel/io.h"
#include "rel/knowledgebase.h"
#include "rel/relation.h"
#include "rel/schema.h"
#include "rel/tuple.h"

#endif  // KBT_CORE_KBT_H_
