#ifndef KBT_CORE_UNIVERSE_H_
#define KBT_CORE_UNIVERSE_H_

/// \file
/// The update context of eq. (9): given a sentence φ and database db, the candidate
/// space of μ(φ, db) is DB^B_s where s = σ(db) ∪ σ(φ) and B is the smallest subset
/// of the domain containing all values of db and all constants of φ.

#include <vector>

#include "base/status.h"
#include "logic/formula.h"
#include "rel/database.h"

namespace kbt {

/// Everything fixed by (φ, db) before minimization starts.
struct UpdateContext {
  /// s = σ(db) ∪ σ(φ): db's declarations first, then φ's new relations in
  /// first-appearance order.
  Schema schema;
  /// B: values of db plus constants of φ, sorted.
  std::vector<Value> domain;
  /// db embedded into s (new relations empty). Candidates deviate from this.
  Database extended_base;
};

/// Builds the context. Fails when φ is not a sentence, or uses a relation of σ(db)
/// at a different arity.
StatusOr<UpdateContext> MakeUpdateContext(const Formula& sentence, const Database& db);

/// The per-world remainder of MakeUpdateContext once the sentence-derived
/// parts are fixed: `schema` must be σ(db) ∪ σ(φ) and `constants` the
/// constants of φ, both computed (and validated) once per τ call. Bit-identical
/// to MakeUpdateContext for any db whose schema is the σ(db) the union was
/// taken over — only the db-dependent domain and extension remain per call.
StatusOr<UpdateContext> MakeUpdateContextOnSchema(
    const Schema& schema, const std::vector<Value>& constants,
    const Database& db);

}  // namespace kbt

#endif  // KBT_CORE_UNIVERSE_H_
