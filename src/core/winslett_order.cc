#include "core/winslett_order.h"

#include <algorithm>

namespace kbt {

namespace {

/// Three-way comparison of two sets under inclusion.
enum class SetCmp { kSubset, kEqual, kSuperset, kIncomparable };

SetCmp CompareSets(const Relation& a, const Relation& b) {
  bool ab = a.IsSubsetOf(b);
  bool ba = b.IsSubsetOf(a);
  if (ab && ba) return SetCmp::kEqual;
  if (ab) return SetCmp::kSubset;
  if (ba) return SetCmp::kSuperset;
  return SetCmp::kIncomparable;
}

/// Componentwise combination: tracks whether a vector of sets is ⊆, =, ⊇ or
/// incomparable overall.
class VectorCmp {
 public:
  void Add(SetCmp c) {
    switch (c) {
      case SetCmp::kEqual:
        return;
      case SetCmp::kSubset:
        has_subset_ = true;
        return;
      case SetCmp::kSuperset:
        has_superset_ = true;
        return;
      case SetCmp::kIncomparable:
        incomparable_ = true;
        return;
    }
  }

  Closeness Result() const {
    if (incomparable_ || (has_subset_ && has_superset_)) {
      return Closeness::kIncomparable;
    }
    if (has_subset_) return Closeness::kCloser;
    if (has_superset_) return Closeness::kFarther;
    return Closeness::kEqual;
  }

 private:
  bool has_subset_ = false;
  bool has_superset_ = false;
  bool incomparable_ = false;
};

}  // namespace

StatusOr<Closeness> CompareCloseness(const Database& db1, const Database& db2,
                                     const Database& base) {
  if (db1.schema() != db2.schema()) {
    return Status::InvalidArgument("CompareCloseness: candidates differ in schema");
  }
  if (!db1.schema().Includes(base.schema())) {
    return Status::InvalidArgument(
        "CompareCloseness: candidate schema does not dominate σ(base)");
  }

  // Stage 1: symmetric differences on the base's ("old") relations.
  VectorCmp old_cmp;
  for (size_t i = 0; i < base.schema().size(); ++i) {
    Symbol sym = base.schema().decl(i).symbol;
    const Relation& base_rel = base.relation_at(i);
    size_t pos = *db1.schema().PositionOf(sym);
    Relation d1 = db1.relation_at(pos).SymmetricDifference(base_rel);
    Relation d2 = db2.relation_at(pos).SymmetricDifference(base_rel);
    old_cmp.Add(CompareSets(d1, d2));
  }
  Closeness stage1 = old_cmp.Result();
  if (stage1 != Closeness::kEqual) return stage1;

  // Stage 2: tie-break on the remaining ("new") relations, compared to ∅ — i.e.
  // plain componentwise inclusion.
  VectorCmp new_cmp;
  for (size_t i = 0; i < db1.schema().size(); ++i) {
    Symbol sym = db1.schema().decl(i).symbol;
    if (base.schema().Contains(sym)) continue;
    new_cmp.Add(CompareSets(db1.relation_at(i), db2.relation_at(i)));
  }
  return new_cmp.Result();
}

Closeness CompareClosenessOverlays(const WorldOverlay& a, const WorldOverlay& b,
                                   size_t old_schema_size) {
  // Merged walk over the two sorted delta lists; positions untouched by both
  // overlays contribute equal components and drop out.
  const std::vector<RelationDelta>& da = a.deltas();
  const std::vector<RelationDelta>& db = b.deltas();
  VectorCmp old_cmp;
  VectorCmp new_cmp;
  size_t i = 0, j = 0;
  while (i < da.size() || j < db.size()) {
    uint32_t pos;
    const RelationDelta* ra = nullptr;
    const RelationDelta* rb = nullptr;
    if (i < da.size() && (j >= db.size() || da[i].pos <= db[j].pos)) {
      pos = da[i].pos;
      ra = &da[i++];
      if (j < db.size() && db[j].pos == pos) rb = &db[j++];
    } else {
      pos = db[j].pos;
      rb = &db[j++];
    }
    size_t arity = ra != nullptr ? ra->adds.arity() : rb->adds.arity();
    const Relation empty(arity);
    const Relation& aa = ra != nullptr ? ra->adds : empty;
    const Relation& ad = ra != nullptr ? ra->dels : empty;
    const Relation& ba = rb != nullptr ? rb->adds : empty;
    const Relation& bd = rb != nullptr ? rb->dels : empty;
    if (pos < old_schema_size) {
      // Δ inclusion over the disjoint union adds ⊎ dels is componentwise
      // inclusion of both parts; feeding the parts separately into the stage 1
      // accumulator yields the same all-⊆/some-strict verdict.
      old_cmp.Add(CompareSets(aa, ba));
      old_cmp.Add(CompareSets(ad, bd));
    } else {
      // New relation: the extended base is empty here, dels are empty by the
      // canonical invariant, and the world's content is the adds.
      new_cmp.Add(CompareSets(aa, ba));
    }
  }
  Closeness stage1 = old_cmp.Result();
  if (stage1 != Closeness::kEqual) return stage1;
  return new_cmp.Result();
}

StatusOr<bool> CloserOrEqual(const Database& db1, const Database& db2,
                             const Database& base) {
  KBT_ASSIGN_OR_RETURN(Closeness c, CompareCloseness(db1, db2, base));
  return c == Closeness::kCloser || c == Closeness::kEqual;
}

StatusOr<bool> StrictlyCloser(const Database& db1, const Database& db2,
                              const Database& base) {
  KBT_ASSIGN_OR_RETURN(Closeness c, CompareCloseness(db1, db2, base));
  return c == Closeness::kCloser;
}

StatusOr<std::vector<Database>> MinimalElements(std::vector<Database> candidates,
                                                const Database& base) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.empty()) return std::vector<Database>{};

  // Any dominator has a strictly smaller (|Δ| total, |new| total) key in
  // lexicographic order, so processing candidates by ascending key lets each one
  // be tested against the already-accepted minimal elements only: O(m·|minimal|)
  // comparisons instead of O(m²).
  struct Keyed {
    size_t diff_total;
    size_t new_total;
    const Database* db;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(candidates.size());
  for (const Database& c : candidates) {
    if (!c.schema().Includes(base.schema())) {
      return Status::InvalidArgument(
          "MinimalElements: candidate schema does not dominate σ(base)");
    }
    size_t diff_total = 0;
    size_t new_total = 0;
    for (size_t i = 0; i < c.schema().size(); ++i) {
      Symbol sym = c.schema().decl(i).symbol;
      std::optional<size_t> base_pos = base.schema().PositionOf(sym);
      if (base_pos) {
        diff_total +=
            c.relation_at(i).SymmetricDifference(base.relation_at(*base_pos)).size();
      } else {
        new_total += c.relation_at(i).size();
      }
    }
    keyed.push_back(Keyed{diff_total, new_total, &c});
  }
  std::stable_sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.diff_total != b.diff_total) return a.diff_total < b.diff_total;
    return a.new_total < b.new_total;
  });

  std::vector<Database> out;
  for (const Keyed& k : keyed) {
    bool minimal = true;
    for (const Database& accepted : out) {
      KBT_ASSIGN_OR_RETURN(bool below, StrictlyCloser(accepted, *k.db, base));
      if (below) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(*k.db);
  }
  return out;
}

}  // namespace kbt
