#ifndef KBT_CORE_MU_H_
#define KBT_CORE_MU_H_

/// \file
/// μ(φ, db) — eq. (9): the databases over (B, s) that model φ and are ≤_db-minimal.
/// This is the paper's primary primitive; τ (eq. 10) unions it over a knowledgebase.
///
/// Four evaluation strategies implement the same mathematical function:
///
///  * kReference — the specification transcribed: enumerate every assignment to the
///    ground atoms mentioned by the grounding of φ (unmentioned atoms keep their
///    default in any minimal model) and keep the ≤_db-minimal models by pairwise
///    comparison. Exponential; also *the* PTIME algorithm of Theorem 4.7 when φ is
///    ground, since then the mentioned atoms are the ≤|φ| atoms of φ.
///  * kSat — the scalable engine: Tseitin-encode the grounding and enumerate
///    Winslett-minimal models with a CDCL solver via two-stage descent
///    (old-relation symmetric differences first, then new-relation contents) and
///    cone-blocking clauses.
///  * kDatalog — Theorem 4.8: φ is a conjunction of universally closed Horn clauses
///    whose head predicates are new; μ is the singleton {db ∪ lfp(P)} computed by
///    semi-naive evaluation.
///  * kDefinitional — the Theorem 5.1 shape: conjuncts ∀x̄ (ψ(x̄) → H(x̄)) or
///    ∀x̄ (ψ(x̄) ↔ H(x̄)) with H new and ψ over σ(db); each H is ψ's answer set.
///
/// kAuto picks the cheapest applicable strategy (ground → reference; Horn →
/// datalog; definitional → definitional; otherwise SAT). All strategies are
/// cross-validated against kReference in tests/mu_crosscheck_test.cc.

#include <cstdint>

#include "base/cancel.h"
#include "base/status.h"
#include "core/universe.h"
#include "logic/formula.h"
#include "rel/knowledgebase.h"

namespace kbt {

enum class MuStrategy {
  kAuto,
  kReference,
  kSat,
  kDatalog,
  kDefinitional,
};

/// Human-readable strategy name.
const char* MuStrategyName(MuStrategy strategy);

struct MuOptions {
  MuStrategy strategy = MuStrategy::kAuto;
  /// Grounding circuit node budget (kResourceExhausted beyond it).
  size_t max_ground_nodes = 5'000'000;
  /// Reference enumeration: maximum mentioned ground atoms (2^k assignments).
  size_t max_reference_atoms = 20;
  /// Maximum number of minimal models μ may return before kResourceExhausted.
  size_t max_models = 1'000'000;
  /// Ablation knob: block the full cone above each reported minimal model (one
  /// clause) instead of only its exact assignment. Off forces the enumerator to
  /// rediscover and re-descend dominated models; bench_ablation measures the gap.
  bool use_cone_blocking = true;
  /// Datalog strategy: semi-naive vs naive fixpoint (bench_ablation).
  bool use_seminaive = true;
  /// SAT strategy: incremental solving under assumptions via trail saving
  /// (sat::SolverOptions::reuse_assumption_trail) plus the descent's
  /// prefix-stable assumption ordering and deferred guard retirement that
  /// exploit it. Off reproduces the pre-reuse solver call sequence bit for bit
  /// (the json_bench_mu `_noreuse` mode); either way μ returns the identical
  /// minimal-model set (property-tested in tests/pipeline_fuzz_test.cc).
  bool reuse_assumption_trail = true;
  /// Cooperative cancellation: checked at enumeration boundaries and polled
  /// inside the SAT search; an expired token makes μ return kDeadlineExceeded.
  /// Must outlive the call. nullptr (the default) disables every check — the
  /// computation is then bit-identical to a token-free build.
  const CancelToken* cancel = nullptr;
  /// SAT-strategy conflict budget per μ call (0 = unlimited): once the
  /// session solver has spent this many further conflicts, μ returns
  /// kDeadlineExceeded with the solver reusable. A coarse-grained guard for
  /// servers that cannot afford an unbounded descent even with no deadline.
  uint64_t sat_conflict_budget = 0;
};

struct MuStats {
  MuStrategy used = MuStrategy::kAuto;
  /// Number of minimal models returned.
  size_t minimal_models = 0;
  /// Candidate models examined (reference: assignments; sat: models found).
  size_t candidates_examined = 0;
  /// Circuit nodes in the grounding (reference and sat strategies).
  size_t ground_nodes = 0;
  /// Mentioned ground atoms.
  size_t ground_atoms = 0;
  /// SAT statistics (sat strategy only).
  uint64_t sat_solve_calls = 0;
  uint64_t sat_conflicts = 0;
  uint64_t sat_decisions = 0;
  /// Assumption decision levels retained across descent solves, and the trail
  /// literals those levels kept enqueued (0 with reuse_assumption_trail off).
  uint64_t sat_reused_levels = 0;
  uint64_t sat_saved_propagations = 0;
  /// Interrupt-token polls inside the SAT search and solves abandoned by a
  /// budget/token trip (both 0 unless cancel/sat_conflict_budget are set).
  uint64_t sat_interrupt_checks = 0;
  uint64_t sat_budget_trips = 0;
  /// Datalog statistics (datalog strategy only).
  size_t datalog_rounds = 0;
  size_t datalog_derived_tuples = 0;

  /// Accumulates counters (for τ over many databases).
  void MergeFrom(const MuStats& other);
};

/// Computes μ(φ, db). The result is a knowledgebase over s = σ(db) ∪ σ(φ); it is
/// empty iff φ has no models over (B, s).
StatusOr<Knowledgebase> Mu(const Formula& sentence, const Database& db,
                           const MuOptions& options = MuOptions(),
                           MuStats* stats = nullptr);

}  // namespace kbt

#endif  // KBT_CORE_MU_H_
