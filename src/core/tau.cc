#include "core/tau.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/mu_internal.h"
#include "exec/cnf_cache.h"
#include "exec/ground_cache.h"
#include "exec/pool.h"
#include "exec/scratch.h"
#include "logic/analysis.h"
#include "rel/overlay.h"
#include "sat/solver.h"

namespace kbt {

namespace {

/// Merges per-world outcomes into the final kb and stats. On failure the
/// lowest-indexed recorded error wins; with threads=1 that is exactly the old
/// sequential first-failure behavior, with threads>1 it is the first failure
/// the executor observed (later worlds are skipped, not run-and-discarded).
///
/// The merge never flattens: every μ result arrives as overlays against its
/// own world extended to σ(kb) ∪ σ(φ), which is itself an overlay of the
/// shared extended input base (schema union appends declarations, so input
/// overlay positions survive extension unchanged). Composing the two yields
/// each output world as an overlay of one shared base, and a single
/// canonicalization over those overlays — O(worlds × delta) — replaces the
/// old flat UnionAll.
StatusOr<Knowledgebase> MergeTauResults(const Knowledgebase& kb,
                                        const Schema& extended_schema,
                                        std::vector<Status> statuses,
                                        std::vector<Knowledgebase> results,
                                        std::vector<MuStats> world_stats,
                                        const Knowledgebase::ParallelMap* pmap,
                                        TauStats* out) {
  for (const Status& s : statuses) KBT_RETURN_IF_ERROR(s);
  for (const MuStats& s : world_stats) out->mu.MergeFrom(s);

  KBT_ASSIGN_OR_RETURN(Database extended,
                       kb.base()->ExtendTo(extended_schema));
  auto ext_base = std::make_shared<const Database>(std::move(extended));

  size_t total = 0;
  for (const Knowledgebase& r : results) total += r.size();
  std::vector<WorldOverlay> merged;
  merged.reserve(total);
  for (size_t i = 0; i < results.size(); ++i) {
    const Knowledgebase& r = results[i];
    if (r.empty()) continue;
    if (r.schema() != extended_schema) {
      return Status::InvalidArgument("knowledgebase union: schema mismatch");
    }
    // μ anchors its result at ctx.extended_base, i.e. this input world
    // extended — which is exactly the input overlay applied to the shared
    // extended base. When that holds (deep check, but touched relations
    // only), output overlays compose in O(delta); any other anchor falls
    // back to an explicit diff.
    const WorldOverlay& input_ov = kb.overlays()[i];
    bool rebased = r.base() != nullptr &&
                   input_ov.ApplyEquals(*ext_base, *r.base());
    for (size_t j = 0; j < r.size(); ++j) {
      merged.push_back(rebased
                           ? WorldOverlay::Compose(input_ov, r.overlays()[j])
                           : WorldOverlay::FromDiff(*ext_base, r.World(j)));
    }
  }
  if (merged.empty()) {
    out->output_databases = 0;
    return Knowledgebase(extended_schema);
  }
  KBT_ASSIGN_OR_RETURN(
      Knowledgebase out_kb,
      Knowledgebase::FromBaseAndOverlays(std::move(ext_base), std::move(merged),
                                         pmap));
  out->output_databases = out_kb.size();
  return out_kb;
}

}  // namespace

StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const TauOptions& options, TauStats* stats) {
  TauStats local;
  TauStats* out = stats != nullptr ? stats : &local;
  out->input_databases = kb.size();

  if (kb.empty()) {
    // Preserve the extended schema so downstream steps see σ(kb) ∪ σ(φ).
    Database probe(kb.schema());
    KBT_ASSIGN_OR_RETURN(UpdateContext ctx, MakeUpdateContext(sentence, probe));
    out->output_databases = 0;
    return Knowledgebase(ctx.schema);
  }

  // The extended schema σ(kb) ∪ σ(φ) depends only on the shared input schema,
  // so one probe context resolves it for the merge step up front.
  Schema extended_schema;
  {
    Database probe(kb.schema());
    KBT_ASSIGN_OR_RETURN(UpdateContext ctx, MakeUpdateContext(sentence, probe));
    extended_schema = std::move(ctx.schema);
  }

  // One cache pair per τ call — or the caller's persistent pair (a serving
  // loop re-querying one sentence across snapshots): the sentence is fixed, so
  // the key is the active domain alone. Worlds with equal domains ground once
  // (GroundingCache) and, on the SAT path, Tseitin-encode once (CnfCache —
  // per-world solvers fork from the frozen prefix).
  exec::GroundingCache local_ground_cache;
  exec::CnfCache local_cnf_cache;
  exec::GroundingCache* cache = options.ground_cache != nullptr
                                    ? options.ground_cache
                                    : &local_ground_cache;
  exec::CnfCache* cnf_cache =
      options.cnf_cache != nullptr ? options.cnf_cache : &local_cnf_cache;
  // Stats report this call's contribution: external caches arrive warm (and
  // may be advanced concurrently by sibling calls), so snapshot and diff.
  exec::GroundingCache::Stats ground_stats_before = cache->stats();
  exec::CnfCache::Stats cnf_stats_before = cnf_cache->stats();
  internal::MuExecContext base_exec;
  // The probe context above validated (φ, schema); per-world update contexts
  // reuse its schema and φ's constants instead of re-deriving both per world.
  std::vector<Value> formula_constants = ConstantsOf(sentence);
  base_exec.extended_schema = &extended_schema;
  base_exec.formula_constants = &formula_constants;
  if (options.use_ground_cache) base_exec.ground_cache = cache;
  // Freezing and forking only pays for itself when a prefix is reused: a
  // singleton kb would encode once either way but add a snapshot copy, so the
  // prefix path needs at least two worlds — unless the cache outlives this
  // call, where the fork amortizes across calls instead.
  if (options.use_cnf_prefix &&
      (kb.size() > 1 || options.cnf_cache != nullptr)) {
    base_exec.cnf_cache = cnf_cache;
  }

  // Strategy planning depends only on (φ, schema) and all worlds share one
  // schema: resolve the kAuto dispatch once here instead of once per world.
  internal::TauStrategyPlan plan;
  if (options.mu.strategy == MuStrategy::kAuto) {
    Database first_world = kb.World(0);
    KBT_ASSIGN_OR_RETURN(plan, internal::PlanTauStrategies(sentence, first_world));
    base_exec.plan = &plan;
  }

  std::vector<Status> statuses(kb.size());
  std::vector<Knowledgebase> results(kb.size());
  std::vector<MuStats> world_stats(kb.size());

  // After the first failure no further world starts a μ computation — the
  // error is going to be returned anyway, so the remaining work would be
  // discarded.
  std::atomic<bool> failed{false};
  auto run_world = [&](size_t i, internal::MuExecContext exec) {
    if (failed.load(std::memory_order_relaxed)) return;
    // Graceful degradation: one world failing — by Status or by throwing —
    // lands in its own result slot and fails the call, never the process.
    // Sibling worlds already running complete normally.
    StatusOr<Knowledgebase> r = [&]() -> StatusOr<Knowledgebase> {
      try {
        // The world is materialized transiently from the shared base — a
        // copy-on-write overlay application, never a stored flat copy.
        Database world = kb.World(i);
        return internal::MuExec(sentence, world, options.mu, &world_stats[i],
                                exec);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("world task threw: ") + e.what());
      } catch (...) {
        return Status::Internal("world task threw a non-standard exception");
      }
    }();
    if (r.ok()) {
      results[i] = std::move(*r);
    } else {
      statuses[i] = r.status();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  size_t threads = options.threads != 0
                       ? options.threads
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, kb.size());

  // The pool outlives the per-world loop: the merge step reuses it to hash
  // result overlays in parallel during canonicalization.
  exec::ThreadPool* pool = nullptr;
  std::unique_ptr<exec::ThreadPool> own_pool;

  if (threads <= 1) {
    // Sequential path: same per-world calls, same merge — the parallel path is
    // bit-identical because results land in per-world slots either way. A
    // session-pinned solver/scratch (serving reads) replaces the per-call
    // locals so arena capacity and enumerator buffers stay warm across calls.
    sat::Solver local_solver;
    exec::WorldScratch local_scratch;
    internal::MuExecContext exec = base_exec;
    exec.solver = options.solver != nullptr ? options.solver : &local_solver;
    exec.scratch = options.scratch != nullptr ? options.scratch : &local_scratch;
    for (size_t i = 0; i < kb.size() && !failed.load(std::memory_order_relaxed);
         ++i) {
      run_world(i, exec);
    }
    out->threads_used = 1;
  } else {
    // Each worker owns a Solver reused (via Reset or a frozen-prefix fork)
    // across every world it executes — the PR 2 incremental machinery
    // instantiated per thread — plus a WorldScratch holding the enumerator's
    // per-world tables, so small worlds stop paying per-world allocation. The
    // pool is the caller's persistent one when provided (a serving loop
    // re-entering Pipeline::Apply should not respawn threads per call),
    // otherwise spawned for this call.
    pool = options.pool;
    if (pool == nullptr) {
      own_pool = std::make_unique<exec::ThreadPool>(threads);
      pool = own_pool.get();
    }
    size_t workers = pool->workers();
    std::vector<std::unique_ptr<sat::Solver>> solvers;
    std::vector<std::unique_ptr<exec::WorldScratch>> scratches;
    solvers.reserve(workers);
    scratches.reserve(workers);
    for (size_t t = 0; t < workers; ++t) {
      solvers.push_back(std::make_unique<sat::Solver>());
      scratches.push_back(std::make_unique<exec::WorldScratch>());
    }
    Status pool_status =
        pool->ParallelFor(kb.size(), [&](size_t i, size_t worker) {
          internal::MuExecContext exec = base_exec;
          exec.solver = solvers[worker].get();
          exec.scratch = scratches[worker].get();
          run_world(i, exec);
        });
    // run_world contains exceptions in per-world slots, so a pool-level error
    // means the dispatch machinery itself failed; surface it unless a world
    // already recorded a more specific one.
    if (!pool_status.ok() &&
        std::all_of(statuses.begin(), statuses.end(),
                    [](const Status& s) { return s.ok(); })) {
      return pool_status;
    }
    out->threads_used = std::min(workers, kb.size());
  }

  exec::GroundingCache::Stats cache_stats = cache->stats();
  out->ground_cache_hits = cache_stats.hits - ground_stats_before.hits;
  out->ground_cache_misses = cache_stats.misses - ground_stats_before.misses;
  exec::CnfCache::Stats cnf_stats = cnf_cache->stats();
  out->cnf_cache_hits = cnf_stats.hits - cnf_stats_before.hits;
  out->cnf_cache_misses = cnf_stats.misses - cnf_stats_before.misses;

  Knowledgebase::ParallelMap pmap;
  if (pool != nullptr) {
    pmap = [pool](size_t n, const std::function<void(size_t)>& fn) {
      return pool->ParallelFor(n, [&fn](size_t i, size_t) { fn(i); });
    };
  }
  return MergeTauResults(kb, extended_schema, std::move(statuses),
                         std::move(results), std::move(world_stats),
                         pool != nullptr ? &pmap : nullptr, out);
}

StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const MuOptions& options, TauStats* stats) {
  TauOptions tau_options;
  tau_options.mu = options;
  return Tau(sentence, kb, tau_options, stats);
}

}  // namespace kbt
