#include "core/tau.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/mu_internal.h"
#include "exec/cnf_cache.h"
#include "exec/ground_cache.h"
#include "exec/pool.h"
#include "exec/scratch.h"
#include "logic/analysis.h"
#include "sat/solver.h"

namespace kbt {

namespace {

/// Merges per-world outcomes into the final kb and stats. On failure the
/// lowest-indexed recorded error wins; with threads=1 that is exactly the old
/// sequential first-failure behavior, with threads>1 it is the first failure
/// the executor observed (later worlds are skipped, not run-and-discarded).
StatusOr<Knowledgebase> FinishTau(std::vector<Status> statuses,
                                  std::vector<Knowledgebase> results,
                                  std::vector<MuStats> world_stats,
                                  TauStats* out) {
  for (const Status& s : statuses) KBT_RETURN_IF_ERROR(s);
  for (const MuStats& s : world_stats) out->mu.MergeFrom(s);
  KBT_ASSIGN_OR_RETURN(Knowledgebase merged,
                       Knowledgebase::UnionAll(std::move(results)));
  out->output_databases = merged.size();
  return merged;
}

}  // namespace

StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const TauOptions& options, TauStats* stats) {
  TauStats local;
  TauStats* out = stats != nullptr ? stats : &local;
  out->input_databases = kb.size();

  if (kb.empty()) {
    // Preserve the extended schema so downstream steps see σ(kb) ∪ σ(φ).
    Database probe(kb.schema());
    KBT_ASSIGN_OR_RETURN(UpdateContext ctx, MakeUpdateContext(sentence, probe));
    out->output_databases = 0;
    return Knowledgebase(ctx.schema);
  }

  const std::vector<Database>& worlds = kb.databases();
  // One cache pair per τ call: the sentence is fixed, so the key is the active
  // domain alone. Worlds with equal domains ground once (GroundingCache) and,
  // on the SAT path, Tseitin-encode once (CnfCache — per-world solvers fork
  // from the frozen prefix).
  exec::GroundingCache cache;
  exec::CnfCache cnf_cache;
  internal::MuExecContext base_exec;
  if (options.use_ground_cache) base_exec.ground_cache = &cache;
  // Freezing and forking only pays for itself when a prefix is reused: a
  // singleton kb would encode once either way but add a snapshot copy, so the
  // prefix path needs at least two worlds.
  if (options.use_cnf_prefix && worlds.size() > 1) {
    base_exec.cnf_cache = &cnf_cache;
  }

  // Strategy planning depends only on (φ, schema) and all worlds share one
  // schema: resolve the kAuto dispatch once here instead of once per world.
  internal::TauStrategyPlan plan;
  if (options.mu.strategy == MuStrategy::kAuto) {
    KBT_ASSIGN_OR_RETURN(plan, internal::PlanTauStrategies(sentence, worlds[0]));
    base_exec.plan = &plan;
  }

  std::vector<Status> statuses(worlds.size());
  std::vector<Knowledgebase> results(worlds.size());
  std::vector<MuStats> world_stats(worlds.size());

  // After the first failure no further world starts a μ computation — the
  // error is going to be returned anyway, so the remaining work would be
  // discarded.
  std::atomic<bool> failed{false};
  auto run_world = [&](size_t i, internal::MuExecContext exec) {
    if (failed.load(std::memory_order_relaxed)) return;
    // Graceful degradation: one world failing — by Status or by throwing —
    // lands in its own result slot and fails the call, never the process.
    // Sibling worlds already running complete normally.
    StatusOr<Knowledgebase> r = [&]() -> StatusOr<Knowledgebase> {
      try {
        return internal::MuExec(sentence, worlds[i], options.mu,
                                &world_stats[i], exec);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("world task threw: ") + e.what());
      } catch (...) {
        return Status::Internal("world task threw a non-standard exception");
      }
    }();
    if (r.ok()) {
      results[i] = std::move(*r);
    } else {
      statuses[i] = r.status();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  size_t threads = options.threads != 0
                       ? options.threads
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, worlds.size());

  if (threads <= 1) {
    // Sequential path: same per-world calls, same merge — the parallel path is
    // bit-identical because results land in per-world slots either way.
    sat::Solver solver;
    exec::WorldScratch scratch;
    internal::MuExecContext exec = base_exec;
    exec.solver = &solver;
    exec.scratch = &scratch;
    for (size_t i = 0; i < worlds.size() && !failed.load(std::memory_order_relaxed);
         ++i) {
      run_world(i, exec);
    }
    out->threads_used = 1;
  } else {
    // Each worker owns a Solver reused (via Reset or a frozen-prefix fork)
    // across every world it executes — the PR 2 incremental machinery
    // instantiated per thread — plus a WorldScratch holding the enumerator's
    // per-world tables, so small worlds stop paying per-world allocation. The
    // pool is the caller's persistent one when provided (a serving loop
    // re-entering Pipeline::Apply should not respawn threads per call),
    // otherwise spawned for this call.
    exec::ThreadPool* pool = options.pool;
    std::unique_ptr<exec::ThreadPool> own_pool;
    if (pool == nullptr) {
      own_pool = std::make_unique<exec::ThreadPool>(threads);
      pool = own_pool.get();
    }
    size_t workers = pool->workers();
    std::vector<std::unique_ptr<sat::Solver>> solvers;
    std::vector<std::unique_ptr<exec::WorldScratch>> scratches;
    solvers.reserve(workers);
    scratches.reserve(workers);
    for (size_t t = 0; t < workers; ++t) {
      solvers.push_back(std::make_unique<sat::Solver>());
      scratches.push_back(std::make_unique<exec::WorldScratch>());
    }
    Status pool_status =
        pool->ParallelFor(worlds.size(), [&](size_t i, size_t worker) {
          internal::MuExecContext exec = base_exec;
          exec.solver = solvers[worker].get();
          exec.scratch = scratches[worker].get();
          run_world(i, exec);
        });
    // run_world contains exceptions in per-world slots, so a pool-level error
    // means the dispatch machinery itself failed; surface it unless a world
    // already recorded a more specific one.
    if (!pool_status.ok() &&
        std::all_of(statuses.begin(), statuses.end(),
                    [](const Status& s) { return s.ok(); })) {
      return pool_status;
    }
    out->threads_used = std::min(workers, worlds.size());
  }

  exec::GroundingCache::Stats cache_stats = cache.stats();
  out->ground_cache_hits = cache_stats.hits;
  out->ground_cache_misses = cache_stats.misses;
  exec::CnfCache::Stats cnf_stats = cnf_cache.stats();
  out->cnf_cache_hits = cnf_stats.hits;
  out->cnf_cache_misses = cnf_stats.misses;
  return FinishTau(std::move(statuses), std::move(results),
                   std::move(world_stats), out);
}

StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const MuOptions& options, TauStats* stats) {
  TauOptions tau_options;
  tau_options.mu = options;
  return Tau(sentence, kb, tau_options, stats);
}

}  // namespace kbt
