#include "core/tau.h"

#include "logic/analysis.h"

namespace kbt {

StatusOr<Knowledgebase> Tau(const Formula& sentence, const Knowledgebase& kb,
                            const MuOptions& options, TauStats* stats) {
  TauStats local;
  TauStats* out = stats != nullptr ? stats : &local;
  out->input_databases = kb.size();

  if (kb.empty()) {
    // Preserve the extended schema so downstream steps see σ(kb) ∪ σ(φ).
    Database probe(kb.schema());
    KBT_ASSIGN_OR_RETURN(UpdateContext ctx, MakeUpdateContext(sentence, probe));
    out->output_databases = 0;
    return Knowledgebase(ctx.schema);
  }

  Knowledgebase result;
  bool first = true;
  for (const Database& db : kb) {
    MuStats mu_stats;
    KBT_ASSIGN_OR_RETURN(Knowledgebase models, Mu(sentence, db, options, &mu_stats));
    out->mu.MergeFrom(mu_stats);
    if (first) {
      result = std::move(models);
      first = false;
    } else {
      KBT_ASSIGN_OR_RETURN(result, result.UnionWith(models));
    }
  }
  out->output_databases = result.size();
  return result;
}

}  // namespace kbt
