#include "core/universe.h"

#include <algorithm>

#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt {

StatusOr<UpdateContext> MakeUpdateContext(const Formula& sentence,
                                          const Database& db) {
  if (!IsSentence(sentence)) {
    return Status::InvalidArgument("update requires a sentence (no free variables)");
  }
  UpdateContext ctx;
  KBT_ASSIGN_OR_RETURN(Schema formula_schema, SchemaOf(sentence));
  KBT_ASSIGN_OR_RETURN(ctx.schema, db.schema().Union(formula_schema));
  ctx.domain = ActiveDomain(db, sentence);
  KBT_ASSIGN_OR_RETURN(ctx.extended_base, db.ExtendTo(ctx.schema));
  return ctx;
}

StatusOr<UpdateContext> MakeUpdateContextOnSchema(
    const Schema& schema, const std::vector<Value>& constants,
    const Database& db) {
  UpdateContext ctx;
  ctx.schema = schema;
  // Same recipe as ActiveDomain(db, sentence) with ConstantsOf hoisted.
  ctx.domain = db.ActiveDomain();
  ctx.domain.insert(ctx.domain.end(), constants.begin(), constants.end());
  std::sort(ctx.domain.begin(), ctx.domain.end());
  ctx.domain.erase(std::unique(ctx.domain.begin(), ctx.domain.end()),
                   ctx.domain.end());
  KBT_ASSIGN_OR_RETURN(ctx.extended_base, db.ExtendTo(ctx.schema));
  return ctx;
}

}  // namespace kbt
