#include "core/universe.h"

#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt {

StatusOr<UpdateContext> MakeUpdateContext(const Formula& sentence,
                                          const Database& db) {
  if (!IsSentence(sentence)) {
    return Status::InvalidArgument("update requires a sentence (no free variables)");
  }
  UpdateContext ctx;
  KBT_ASSIGN_OR_RETURN(Schema formula_schema, SchemaOf(sentence));
  KBT_ASSIGN_OR_RETURN(ctx.schema, db.schema().Union(formula_schema));
  ctx.domain = ActiveDomain(db, sentence);
  KBT_ASSIGN_OR_RETURN(ctx.extended_base, db.ExtendTo(ctx.schema));
  return ctx;
}

}  // namespace kbt
