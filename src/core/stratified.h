#ifndef KBT_CORE_STRATIFIED_H_
#define KBT_CORE_STRATIFIED_H_

/// \file
/// Stratified-program insertion: the paper's §2.1 remark that "the iterative
/// fixpoint [ABW88] of a stratified program can be obtained in our language by
/// sequentially updating the database with the strata of the program in their
/// hierarchical order."
///
/// Each stratum's rules become one first-order sentence (datalog/to_fo.h) that is
/// inserted with τ. Purely positive strata ride the Theorem 4.8 Datalog fast
/// path; strata with negation refer only to already-materialized relations, so
/// their minimal models are the stratum's iterated fixpoint. The end result
/// matches bottom-up stratified evaluation — a property the tests check against
/// datalog::Evaluate.

#include "base/status.h"
#include "core/mu.h"
#include "datalog/ast.h"
#include "rel/knowledgebase.h"

namespace kbt {

/// Inserts `program` stratum by stratum. The program must be safe and
/// stratifiable, and its head predicates must be new w.r.t. σ(kb) (they are the
/// relations being defined).
StatusOr<Knowledgebase> InsertStratified(const datalog::Program& program,
                                         const Knowledgebase& kb,
                                         const MuOptions& options = MuOptions());

}  // namespace kbt

#endif  // KBT_CORE_STRATIFIED_H_
