#include "core/expr_parser.h"

#include <cctype>
#include <string>

#include "logic/parser.h"

namespace kbt {

namespace {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  StatusOr<Pipeline> Parse() {
    Pipeline pipeline;
    SkipSpace();
    bool first = true;
    while (pos_ < text_.size()) {
      if (!first && !EatWord(">>")) {
        return Error("expected '>>' between steps");
      }
      KBT_RETURN_IF_ERROR(ParseStep(&pipeline));
      first = false;
      SkipSpace();
    }
    if (first) return Error("empty transformation expression");
    return pipeline;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool EatWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " + std::to_string(pos_));
  }

  StatusOr<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Status ParseStep(Pipeline* pipeline) {
    KBT_ASSIGN_OR_RETURN(std::string word, ParseIdent());
    if (word == "tau" || word == "insert" || word == "filter") {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '{') {
        return Error("expected '{' after '" + word + "'");
      }
      size_t open = pos_++;
      int depth = 1;
      while (pos_ < text_.size() && depth > 0) {
        if (text_[pos_] == '{') ++depth;
        if (text_[pos_] == '}') --depth;
        ++pos_;
      }
      if (depth != 0) return Error("unterminated '{' opened");
      std::string_view body = text_.substr(open + 1, pos_ - open - 2);
      KBT_ASSIGN_OR_RETURN(Formula sentence, ParseSentence(body));
      if (word == "filter") {
        pipeline->Filter(std::move(sentence));
      } else {
        pipeline->Tau(std::move(sentence));
      }
      return Status::OK();
    }
    if (word == "glb" || word == "meet") {
      pipeline->Glb();
      return Status::OK();
    }
    if (word == "lub" || word == "join") {
      pipeline->Lub();
      return Status::OK();
    }
    if (word == "pi" || word == "project") {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '[') {
        return Error("expected '[' after '" + word + "'");
      }
      ++pos_;
      std::vector<std::string> names;
      while (true) {
        KBT_ASSIGN_OR_RETURN(std::string name, ParseIdent());
        names.push_back(std::move(name));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ']') {
        return Error("expected ']' after projection list");
      }
      ++pos_;
      pipeline->Project(std::move(names));
      return Status::OK();
    }
    return Error("unknown step '" + word + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Pipeline> ParsePipeline(std::string_view text) {
  ExprParser parser(text);
  return parser.Parse();
}

}  // namespace kbt
