#ifndef KBT_CORE_ENGINE_H_
#define KBT_CORE_ENGINE_H_

/// \file
/// Convenience facade over the transformation language: parse-and-apply with one
/// options object, plus helpers for building databases and knowledgebases from
/// string literals. Examples and benchmarks go through this API.

#include <memory>
#include <string_view>

#include "base/status.h"
#include "core/expr.h"
#include "core/expr_parser.h"
#include "core/mu.h"
#include "rel/knowledgebase.h"

namespace kbt::exec {
class ThreadPool;
}  // namespace kbt::exec

namespace kbt {

/// Commit hook for durable storage (implemented by store::DurableEngine).
/// When attached to an Engine, every successful text-form Apply hands the
/// expression and its result to Commit before the caller sees them — the
/// write-ahead discipline: a transformation whose log commit fails is not
/// acknowledged. Core stays storage-free; the store layer implements this.
class TransformLog {
 public:
  virtual ~TransformLog() = default;

  /// Makes one committed transformation durable. `expression` is the concrete
  /// pipeline syntax that produced `result`.
  virtual Status Commit(std::string_view expression,
                        const Knowledgebase& result) = 0;
};

struct EngineOptions {
  MuOptions mu;
  /// Worker threads for τ's world fan-out (see TauOptions::threads):
  /// 1 = sequential, 0 = one per hardware thread.
  size_t tau_threads = 1;
  /// Share groundings across same-domain worlds in τ.
  bool tau_ground_cache = true;
  /// Share frozen CNF prefixes (fork per-world solvers) across same-domain
  /// worlds in τ (see TauOptions::use_cnf_prefix).
  bool tau_cnf_prefix = true;
  /// Collect per-step traces into Engine::last_trace().
  bool trace = false;
};

/// High-level entry point: owns options, parses expressions, applies them.
/// When tau_threads resolves to more than one worker, the engine starts one
/// persistent exec::ThreadPool on the first such Apply (restarted only when
/// the setting changes) and lends it to every τ step — a serving loop calling
/// Apply repeatedly pays the thread spawn once, not per call. The workers
/// park idle when a step runs sequentially (e.g. singleton kbs). Engine is
/// single-caller like before; the pool's workers are internal.
class Engine {
 public:
  explicit Engine(EngineOptions options = EngineOptions());
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and applies a transformation expression to `kb`. With a log
  /// attached, the result is committed to it before being returned; a failed
  /// commit fails the Apply.
  StatusOr<Knowledgebase> Apply(std::string_view expression,
                                const Knowledgebase& kb);

  /// Applies a pre-built pipeline to `kb`. With a log attached, the pipeline's
  /// canonical concrete rendering (Pipeline::ToString, which round-trips
  /// through ParsePipeline) is committed — pre-built and text-form applies are
  /// equally durable.
  StatusOr<Knowledgebase> Apply(const Pipeline& pipeline, const Knowledgebase& kb);

  /// Shorthand for a single τ step with the sentence in concrete syntax.
  StatusOr<Knowledgebase> Insert(std::string_view sentence, const Knowledgebase& kb);

  const EngineOptions& options() const { return options_; }
  EngineOptions& options() { return options_; }

  /// Traces from the most recent Apply/Insert (when options().trace is set).
  const PipelineStats& last_trace() const { return last_trace_; }

  /// Attaches a durability log (borrowed; nullptr detaches). Both Apply
  /// overloads commit: text-form applies log their input verbatim, pre-built
  /// pipelines log their canonical rendering.
  void AttachLog(TransformLog* log) { log_ = log; }
  TransformLog* log() const { return log_; }

  /// The persistent τ worker pool for the current tau_threads setting, started
  /// on first call (nullptr when the setting resolves to one thread). Exposed
  /// so the serving layer's read path fans counterfactual chains out on the
  /// same workers the write path uses (TauOptions::pool) instead of spawning
  /// its own; exec::ThreadPool::ParallelFor is safe for concurrent callers.
  exec::ThreadPool* SharedPool();

 private:
  /// The persistent pool for the current tau_threads setting (started on first
  /// need, restarted if the setting changes), or nullptr when sequential.
  exec::ThreadPool* PoolFor(size_t threads);

  /// Runs the pipeline's steps (shared by both Apply overloads); commits are
  /// the overloads' business, so each logs exactly once.
  StatusOr<Knowledgebase> ApplySteps(const Pipeline& pipeline,
                                     const Knowledgebase& kb);

  EngineOptions options_;
  PipelineStats last_trace_;
  std::unique_ptr<exec::ThreadPool> pool_;
  TransformLog* log_ = nullptr;
};

/// Builds a relation of the given arity from tuples of constant names, e.g.
/// MakeRelation(2, {{"a", "b"}, {"b", "c"}}).
Relation MakeRelation(size_t arity,
                      std::initializer_list<std::initializer_list<std::string_view>>
                          tuples);

/// Builds a database over the given schema, e.g.
///   MakeDatabase({{"R1", 2}}, {{"R1", {{"a","b"},{"b","c"}}}}).
/// Relations not listed stay empty.
StatusOr<Database> MakeDatabase(
    std::initializer_list<std::pair<std::string_view, size_t>> schema_decls,
    std::initializer_list<
        std::pair<std::string_view,
                  std::initializer_list<std::initializer_list<std::string_view>>>>
        relations);

/// Builds a single-database knowledgebase over the given schema, e.g.
///   MakeSingletonKb({{"R1", 2}}, {{"R1", {{"a","b"},{"b","c"}}}}).
StatusOr<Knowledgebase> MakeSingletonKb(
    std::initializer_list<std::pair<std::string_view, size_t>> schema_decls,
    std::initializer_list<
        std::pair<std::string_view,
                  std::initializer_list<std::initializer_list<std::string_view>>>>
        relations);

}  // namespace kbt

#endif  // KBT_CORE_ENGINE_H_
