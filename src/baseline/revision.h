#ifndef KBT_BASELINE_REVISION_H_
#define KBT_BASELINE_REVISION_H_

/// \file
/// An AGM-style *revision* operator, for contrast with the paper's *update*.
///
/// Katsuno and Mendelzon distinguish updating (the world changed) from revising
/// (new information about a static world). The AGM postulate the paper's
/// Example 1.1 turns on says: when the new sentence φ is consistent with the
/// knowledgebase, revision is logical conjunction — keep exactly the worlds that
/// already satisfy φ. This operator implements that consistent case, falling back
/// to the update τ when no member satisfies φ.
///
/// On the Venus-robots knowledgebase kb = {{v}, {w}} with φ = "V has landed":
///   Revise(φ, kb) = {{v}}        — concludes W is still orbiting (wrong for
///                                  a changing world),
///   Tau(φ, kb)    = {{v}, {v,w}} — leaves W's status open (the paper's answer).

#include "base/status.h"
#include "core/mu.h"
#include "logic/formula.h"
#include "rel/knowledgebase.h"

namespace kbt::baseline {

/// Revises `kb` by `sentence` (see file comment). The result keeps σ(kb) in the
/// consistent case and σ(kb) ∪ σ(φ) when falling back to update.
StatusOr<Knowledgebase> Revise(const Formula& sentence, const Knowledgebase& kb,
                               const MuOptions& options = MuOptions());

}  // namespace kbt::baseline

#endif  // KBT_BASELINE_REVISION_H_
