#ifndef KBT_BASELINE_FUV_UPDATE_H_
#define KBT_BASELINE_FUV_UPDATE_H_

/// \file
/// The Fagin–Ullman–Vardi update [FUV83, FKUV86], discussed and critiqued in §2.1
/// of the paper: a *theory-based* update that keeps every maximal subset of the
/// stored sentences consistent with the inserted sentence (a "flock" of theories).
///
/// The paper rejects this operator because it violates the principle of the
/// irrelevance of syntax: logically equivalent theories can update to inequivalent
/// results (see tests/baseline_test.cc for the classic {A, B} vs {A ∧ B} witness).
/// It is implemented here as a comparison baseline, restricted to ground sentences
/// (boolean combinations of ground atoms), with consistency decided by the SAT
/// substrate.

#include <vector>

#include "base/status.h"
#include "logic/formula.h"

namespace kbt::baseline {

/// Result of a flock update: each element is one maximal consistent subset of the
/// original theory, with the inserted sentence appended.
struct FuvResult {
  std::vector<std::vector<Formula>> flock;
};

/// True iff the conjunction of the given ground sentences is satisfiable.
StatusOr<bool> GroundConsistent(const std::vector<Formula>& sentences);

/// Updates `theory` (ground sentences) with `insertion` per [FUV83]: every maximal
/// S ⊆ theory with S ∪ {insertion} consistent. If the insertion itself is
/// inconsistent the flock is empty. Theory sizes beyond 20 sentences are rejected
/// (the subset enumeration is exponential — this is a baseline, not the engine).
StatusOr<FuvResult> FuvUpdate(const std::vector<Formula>& theory,
                              const Formula& insertion);

}  // namespace kbt::baseline

#endif  // KBT_BASELINE_FUV_UPDATE_H_
