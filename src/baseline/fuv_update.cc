#include "baseline/fuv_update.h"

#include "logic/analysis.h"
#include "logic/grounder.h"
#include "sat/solver.h"
#include "sat/tseitin.h"

namespace kbt::baseline {

namespace {

/// Builds one circuit conjoining the sentences; all share an atom index.
StatusOr<Grounding> GroundAll(const std::vector<Formula>& sentences) {
  for (const Formula& f : sentences) {
    if (!IsGround(f)) {
      return Status::InvalidArgument(
          "FUV baseline handles ground sentences only; got: non-ground input");
    }
  }
  return GroundSentence(And(sentences), /*domain=*/{});
}

}  // namespace

StatusOr<bool> GroundConsistent(const std::vector<Formula>& sentences) {
  KBT_ASSIGN_OR_RETURN(Grounding g, GroundAll(sentences));
  if (g.root == g.circuit.FalseNode()) return false;
  if (g.root == g.circuit.TrueNode()) return true;
  sat::Solver solver;
  sat::TseitinEncoder encoder(&g.circuit, &solver);
  encoder.Assert(g.root);
  return solver.Solve() == sat::SolveResult::kSat;
}

StatusOr<FuvResult> FuvUpdate(const std::vector<Formula>& theory,
                              const Formula& insertion) {
  if (theory.size() > 20) {
    return Status::ResourceExhausted("FUV baseline limited to 20 sentences");
  }
  KBT_ASSIGN_OR_RETURN(bool insertion_ok, GroundConsistent({insertion}));
  FuvResult result;
  if (!insertion_ok) return result;

  const size_t n = theory.size();
  std::vector<uint32_t> consistent_masks;
  for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
    std::vector<Formula> subset{insertion};
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) subset.push_back(theory[i]);
    }
    KBT_ASSIGN_OR_RETURN(bool ok, GroundConsistent(subset));
    if (ok) consistent_masks.push_back(mask);
  }
  // Keep the inclusion-maximal masks.
  for (uint32_t m : consistent_masks) {
    bool maximal = true;
    for (uint32_t other : consistent_masks) {
      if (other != m && (other & m) == m) {
        maximal = false;
        break;
      }
    }
    if (!maximal) continue;
    std::vector<Formula> kept;
    for (size_t i = 0; i < n; ++i) {
      if ((m >> i) & 1) kept.push_back(theory[i]);
    }
    kept.push_back(insertion);
    result.flock.push_back(std::move(kept));
  }
  return result;
}

}  // namespace kbt::baseline
