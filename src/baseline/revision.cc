#include "baseline/revision.h"

#include "core/tau.h"
#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt::baseline {

StatusOr<Knowledgebase> Revise(const Formula& sentence, const Knowledgebase& kb,
                               const MuOptions& options) {
  // Consistent case: members already satisfying φ.
  std::vector<Database> satisfying;
  KBT_ASSIGN_OR_RETURN(Schema formula_schema, SchemaOf(sentence));
  if (kb.schema().Includes(formula_schema)) {
    for (const Database& db : kb) {
      KBT_ASSIGN_OR_RETURN(bool sat, Satisfies(db, sentence));
      if (sat) satisfying.push_back(db);
    }
  }
  if (!satisfying.empty()) {
    return Knowledgebase::FromDatabases(std::move(satisfying));
  }
  // Inconsistent case: fall back to minimal change, i.e. the update.
  return Tau(sentence, kb, options);
}

}  // namespace kbt::baseline
