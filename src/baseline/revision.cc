#include "baseline/revision.h"

#include "core/tau.h"
#include "eval/model_check.h"
#include "logic/analysis.h"

namespace kbt::baseline {

StatusOr<Knowledgebase> Revise(const Formula& sentence, const Knowledgebase& kb,
                               const MuOptions& options) {
  // Consistent case: members already satisfying φ, kept by index so the
  // surviving worlds stay overlays of the shared base (no copies, no re-sort).
  std::vector<size_t> satisfying;
  KBT_ASSIGN_OR_RETURN(Schema formula_schema, SchemaOf(sentence));
  if (kb.schema().Includes(formula_schema)) {
    for (size_t i = 0; i < kb.size(); ++i) {
      Database db = kb.World(i);
      KBT_ASSIGN_OR_RETURN(bool sat, Satisfies(db, sentence));
      if (sat) satisfying.push_back(i);
    }
  }
  if (!satisfying.empty()) {
    return kb.SelectWorlds(satisfying);
  }
  // Inconsistent case: fall back to minimal change, i.e. the update.
  return Tau(sentence, kb, options);
}

}  // namespace kbt::baseline
