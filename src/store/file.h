#ifndef KBT_STORE_FILE_H_
#define KBT_STORE_FILE_H_

/// \file
/// The store's I/O boundary: a File handle for sequential appends and an Env
/// for filesystem metadata, in the LevelDB/RocksDB Env tradition.
///
/// Everything the durable store does to the outside world goes through these
/// two interfaces — which is exactly what makes the crash-recovery property
/// test possible: FaultInjectionEnv (store/fault_env.h) implements the same
/// surface over in-memory state and can fail, short-write, or "crash" the
/// process model at every syscall boundary, while PosixEnv is the production
/// implementation.
///
/// Durability contract (both implementations):
///  * File::Append buffers in the OS; bytes are guaranteed to survive a crash
///    only after a successful File::Sync.
///  * Directory metadata (created files, renames, removals) survives a crash
///    only after Env::SyncDir on the containing directory. RenameFile is
///    atomic either way — after a crash the old or the new name is visible,
///    never a mix.

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace kbt::store {

/// A sequential-append file handle. Not thread-safe; the store serializes
/// access itself.
class File {
 public:
  virtual ~File() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces appended bytes to durable storage (fsync/fdatasync).
  virtual Status Sync() = 0;

  /// Closes the handle. Append/Sync after Close are errors. Called implicitly
  /// (best-effort, errors swallowed) by the destructor; call explicitly when
  /// the close status matters.
  virtual Status Close() = 0;
};

/// Filesystem operations the store needs, virtualized for fault injection.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it (empty) when missing.
  virtual StatusOr<std::unique_ptr<File>> NewAppendableFile(
      const std::string& path) = 0;

  /// Opens `path` truncated to empty, creating it when missing.
  virtual StatusOr<std::unique_ptr<File>> NewTruncatedFile(
      const std::string& path) = 0;

  /// Reads the entire file into a string.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (used to drop a torn WAL tail before
  /// appending fresh records after recovery).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Atomically renames `from` to `to`, replacing `to` when it exists.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Removes a file.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Names (not paths) of the entries in `dir`, unsorted.
  virtual StatusOr<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Creates `dir`; succeeds when it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Makes `dir`'s metadata (creations, renames, removals) durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

}  // namespace kbt::store

#endif  // KBT_STORE_FILE_H_
