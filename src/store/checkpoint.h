#ifndef KBT_STORE_CHECKPOINT_H_
#define KBT_STORE_CHECKPOINT_H_

/// \file
/// Binary checkpoint files: a durable snapshot of a whole knowledgebase at a
/// known log position, so recovery replays a WAL suffix instead of the full
/// history.
///
/// File layout:
///
///   magic "KBTCKPT" (7 bytes), u8 version, u64 lsn,
///   u32 crc32c(payload), u32 payload_len, payload
///
/// (integers little-endian). The version-2 payload mirrors the in-memory
/// delta-structured representation (rel/overlay.h) — the shared base database
/// is written once and each world as its sparse overlay:
///
///   u32 world_count,
///   u32 base_len, base (rel/binary_io.h SerializeDatabase),
///   per world: u32 delta_count, per delta two length-prefixed blocks
///              (u32 len, block) for adds then dels, each in the WAL's
///              EncodeTupleDelta wire shape (store/wal.h)
///
/// so checkpoint size is O(base + Σ deltas) instead of O(worlds × database).
/// Decoding validates every overlay's canonical invariants against the base
/// (WorldOverlay::Validate) before accepting the file. Version-1 files —
/// payload = SerializeKnowledgebase of the flat member list — still decode,
/// so stores written before the overlay representation recover unchanged.
/// Unlike the WAL, a checkpoint is all-or-nothing: any truncation or
/// corruption makes the file invalid (recovery falls back to an older
/// checkpoint).
///
/// WriteCheckpoint is atomic under crashes: the bytes go to a temporary name,
/// are synced, then renamed into place and the directory synced — a crash at
/// any point leaves either the old state or the complete new file, never a
/// half-written checkpoint under the real name.

#include <cstdint>
#include <string>
#include <utility>

#include "base/status.h"
#include "rel/knowledgebase.h"
#include "store/file.h"
#include "store/wal.h"

namespace kbt::store {

inline constexpr char kCheckpointMagic[7] = {'K', 'B', 'T', 'C', 'K', 'P', 'T'};
/// Version written by EncodeCheckpoint; DecodeCheckpoint also accepts 1.
inline constexpr uint8_t kCheckpointVersion = 2;

/// The checkpoint file image for `kb` at log position `lsn`.
std::string EncodeCheckpoint(const Knowledgebase& kb, uint64_t lsn);

struct CheckpointContents {
  uint64_t lsn = 0;
  Knowledgebase kb{Schema()};
};

/// Parses a checkpoint file image. Any defect — bad magic, bad version, bad
/// CRC, truncation, trailing bytes, malformed payload — is kDataLoss.
StatusOr<CheckpointContents> DecodeCheckpoint(std::string_view bytes);

/// Durably writes `kb` as `path` via tmp-file + sync + rename + dir sync.
/// `dir` must be the directory containing `path`.
Status WriteCheckpoint(Env* env, const std::string& dir,
                       const std::string& path, const Knowledgebase& kb,
                       uint64_t lsn);

/// Reads and decodes the checkpoint at `path`.
StatusOr<CheckpointContents> ReadCheckpoint(Env* env, const std::string& path);

/// Resolves a decoded tuple delta against `schema`: interns the rows into a
/// Relation and returns it with its schema position. kDataLoss on an
/// undeclared relation, arity mismatch, or ragged rows. Shared by the
/// checkpoint decoder and WAL replay.
StatusOr<std::pair<size_t, Relation>> ResolveTupleDelta(const TupleDelta& delta,
                                                        const Schema& schema);

}  // namespace kbt::store

#endif  // KBT_STORE_CHECKPOINT_H_
