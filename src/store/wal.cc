#include "store/wal.h"

#include <algorithm>
#include <cstring>

#include "store/crc32.h"

namespace kbt::store {

namespace {

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

bool ValidKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(WalRecordKind::kTransform) &&
         kind <= static_cast<uint8_t>(WalRecordKind::kDelete);
}

std::string EncodeRecord(const WalRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.kind));
  body += record.payload;
  std::string out;
  PutU32(out, Crc32c(body));
  PutU32(out, static_cast<uint32_t>(record.payload.size()));
  out += body;
  return out;
}

/// Bounds-checked cursor over a delta payload.
class DeltaReader {
 public:
  explicit DeltaReader(std::string_view bytes) : bytes_(bytes) {}

  StatusOr<uint32_t> ReadU32(const char* what) {
    if (bytes_.size() - pos_ < 4) return Truncated(what);
    uint32_t v = GetU32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  StatusOr<std::string_view> ReadBytes(size_t n, const char* what) {
    if (bytes_.size() - pos_ < n) return Truncated(what);
    std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Truncated(const char* what) {
    return Status::DataLoss(std::string("truncated tuple delta reading ") +
                            what);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeTupleDelta(
    std::string_view relation, size_t arity,
    const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(relation.size()));
  out += relation;
  PutU32(out, static_cast<uint32_t>(arity));
  // A zero-ary relation holds at most the empty tuple, so duplicate empty rows
  // carry no information; canonicalize them away so the decoder can enforce
  // the matching rows <= 1 bound (binary_io's ReadRelation rule).
  const size_t row_count =
      arity == 0 ? std::min<size_t>(rows.size(), 1) : rows.size();
  PutU32(out, static_cast<uint32_t>(row_count));
  for (const auto& row : rows) {
    for (const auto& value : row) {
      PutU32(out, static_cast<uint32_t>(value.size()));
      out += value;
    }
  }
  return out;
}

StatusOr<TupleDelta> DecodeTupleDelta(std::string_view payload) {
  DeltaReader reader(payload);
  TupleDelta delta;
  KBT_ASSIGN_OR_RETURN(uint32_t name_len, reader.ReadU32("relation name size"));
  if (name_len > reader.remaining()) {
    return Status::DataLoss("truncated tuple delta reading relation name");
  }
  KBT_ASSIGN_OR_RETURN(std::string_view name,
                       reader.ReadBytes(name_len, "relation name"));
  delta.relation = std::string(name);
  KBT_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32("arity"));
  if (arity > 1'000'000) return Status::DataLoss("tuple delta arity too large");
  delta.arity = arity;
  KBT_ASSIGN_OR_RETURN(uint32_t rows, reader.ReadU32("row count"));
  // Each value costs at least 4 length bytes, so bound rows before reserving.
  // A zero-ary relation holds at most the empty tuple (binary_io's rule), so
  // its row count needs its own bound — no per-value bytes back it.
  if (arity == 0 && rows > 1) {
    return Status::DataLoss("tuple delta row count exceeds payload size");
  }
  if (arity > 0 && static_cast<uint64_t>(rows) * arity > reader.remaining() / 4) {
    return Status::DataLoss("tuple delta row count exceeds payload size");
  }
  delta.rows.reserve(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    row.reserve(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      KBT_ASSIGN_OR_RETURN(uint32_t len, reader.ReadU32("value size"));
      if (len > reader.remaining()) {
        return Status::DataLoss("truncated tuple delta reading value");
      }
      KBT_ASSIGN_OR_RETURN(std::string_view value,
                           reader.ReadBytes(len, "value"));
      row.emplace_back(value);
    }
    delta.rows.push_back(std::move(row));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("trailing bytes after tuple delta");
  }
  return delta;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    std::unique_ptr<File> file, uint64_t file_size, uint64_t start_lsn) {
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
  if (file_size == 0) {
    std::string header(kWalMagic, sizeof(kWalMagic));
    PutU16(header, kWalVersion);
    PutU64(header, start_lsn);
    KBT_RETURN_IF_ERROR(writer->file_->Append(header));
  }
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  return file_->Append(EncodeRecord(record));
}

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Close() { return file_->Close(); }

StatusOr<WalContents> ReadWal(std::string_view bytes) {
  if (bytes.size() < kWalHeaderSize) {
    return Status::DataLoss("wal file shorter than its header");
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss("wal file has wrong magic");
  }
  uint16_t version = GetU16(bytes.data() + sizeof(kWalMagic));
  if (version != kWalVersion) {
    return Status::DataLoss("unsupported wal version " +
                            std::to_string(version));
  }
  WalContents contents;
  contents.start_lsn = GetU64(bytes.data() + sizeof(kWalMagic) + 2);

  size_t pos = kWalHeaderSize;
  while (true) {
    // Anything that fails from here down is a torn or corrupt tail: stop and
    // report the valid prefix rather than erroring out.
    if (bytes.size() - pos < kWalRecordHeadSize) break;
    uint32_t crc = GetU32(bytes.data() + pos);
    uint32_t payload_len = GetU32(bytes.data() + pos + 4);
    uint8_t kind = static_cast<uint8_t>(bytes[pos + 8]);
    if (payload_len > bytes.size() - pos - kWalRecordHeadSize) break;
    std::string_view body = bytes.substr(pos + 8, 1 + payload_len);
    if (Crc32c(body) != crc || !ValidKind(kind)) break;
    WalRecord record;
    record.kind = static_cast<WalRecordKind>(kind);
    record.payload = std::string(body.substr(1));
    contents.records.push_back(std::move(record));
    pos += kWalRecordHeadSize + payload_len;
  }
  contents.valid_bytes = pos;
  return contents;
}

}  // namespace kbt::store
