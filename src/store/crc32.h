#ifndef KBT_STORE_CRC32_H_
#define KBT_STORE_CRC32_H_

/// \file
/// CRC-32C (Castagnoli) for guarding stored bytes: WAL records and checkpoint
/// payloads. Software table implementation — the store's record sizes are
/// dominated by serialization cost, not checksumming.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kbt::store {

/// CRC-32C of `data`, optionally extending a previous crc (pass the previous
/// return value to checksum a logical stream in pieces).
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t crc = 0) {
  return Crc32c(data.data(), data.size(), crc);
}

}  // namespace kbt::store

#endif  // KBT_STORE_CRC32_H_
