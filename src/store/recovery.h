#ifndef KBT_STORE_RECOVERY_H_
#define KBT_STORE_RECOVERY_H_

/// \file
/// Crash recovery: rebuild the knowledgebase a durable store last committed.
///
/// A store directory holds `checkpoint-<lsn>` snapshots and `wal-<lsn>` logs,
/// where `wal-C` carries the records committed *after* the checkpoint at lsn C
/// (the lsn is the count of committed records since the store was created).
/// Recovery:
///
///   1. scan the directory, try checkpoints from the highest lsn down, and
///      take the first one that decodes cleanly (older ones are the fallback
///      when a crash corrupted the newest);
///   2. read `wal-C` for the chosen checkpoint, accept its valid prefix
///      (ReadWal stops at a torn or corrupt tail), and replay each record
///      through the engine — μ/τ are deterministic, so replay reproduces the
///      committed state bit for bit;
///   3. report the valid byte count so the caller can truncate the torn tail
///      before appending new records.
///
/// A missing `wal-C` is normal (a crash between writing a checkpoint and
/// starting its log); recovery then lands exactly on the checkpoint.

#include <cstdint>
#include <optional>
#include <string>

#include "base/status.h"
#include "core/engine.h"
#include "rel/knowledgebase.h"
#include "store/file.h"
#include "store/wal.h"

namespace kbt::store {

/// File name of the checkpoint at `lsn` ("checkpoint-<lsn>").
std::string CheckpointFileName(uint64_t lsn);
/// File name of the log holding records after lsn `lsn` ("wal-<lsn>").
std::string WalFileName(uint64_t lsn);
/// Extracts the lsn of a "<prefix>-<decimal>" store file name; nullopt for
/// anything else (used by recovery's directory scan and checkpoint GC).
std::optional<uint64_t> ParseStoreLsnSuffix(std::string_view name,
                                            std::string_view prefix);

/// Applies one WAL record to `kb`: kTransform replays the expression through
/// `engine`, kInsert/kDelete fold the tuple delta into the shared base and
/// repair each world's overlay in place (O(worlds × delta), not × database).
StatusOr<Knowledgebase> ApplyWalRecord(Engine& engine, const WalRecord& record,
                                       const Knowledgebase& kb);

struct RecoveredStore {
  Knowledgebase kb;
  /// lsn of the checkpoint recovery started from.
  uint64_t checkpoint_lsn = 0;
  /// checkpoint_lsn + replayed records: the next record's lsn.
  uint64_t lsn = 0;
  /// True when `wal-<checkpoint_lsn>` existed.
  bool wal_exists = false;
  /// Size of that wal file as read.
  uint64_t wal_file_size = 0;
  /// Bytes of its valid prefix; less than wal_file_size means a torn tail
  /// that must be truncated before appending.
  uint64_t wal_valid_bytes = 0;
};

/// Recovers the store in `dir`. kNotFound when the directory holds no
/// checkpoint at all (a fresh store); kDataLoss when checkpoints exist but
/// none decodes, or replay of a committed record fails.
StatusOr<RecoveredStore> RecoverStore(Env* env, const std::string& dir,
                                      Engine& engine);

}  // namespace kbt::store

#endif  // KBT_STORE_RECOVERY_H_
