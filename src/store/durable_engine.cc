#include "store/durable_engine.h"

#include <utility>

#include "base/interner.h"
#include "store/checkpoint.h"
#include "store/recovery.h"

namespace kbt::store {

DurableEngine::DurableEngine(std::string dir, StoreOptions store_options,
                             EngineOptions engine_options)
    : dir_(std::move(dir)),
      store_options_(store_options),
      env_(store_options.env != nullptr ? store_options.env : Env::Default()),
      engine_(std::move(engine_options)) {}

DurableEngine::~DurableEngine() {
  engine_.AttachLog(nullptr);
  if (wal_ != nullptr) {
    Status ignored = wal_->Close();
    (void)ignored;
  }
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& dir, const Knowledgebase& initial,
    StoreOptions store_options, EngineOptions engine_options) {
  auto store = std::unique_ptr<DurableEngine>(
      new DurableEngine(dir, store_options, std::move(engine_options)));
  Env* env = store->env_;
  KBT_RETURN_IF_ERROR(env->CreateDir(dir));

  // Recovery runs before the log hook is attached, so replay does not re-log.
  StatusOr<RecoveredStore> recovered = RecoverStore(env, dir, store->engine_);
  if (recovered.ok()) {
    store->kb_ = std::move(recovered->kb);
    store->lsn_ = recovered->lsn;
    store->checkpoint_lsn_ = recovered->checkpoint_lsn;
    uint64_t existing = 0;
    if (recovered->wal_exists) {
      if (recovered->wal_valid_bytes < recovered->wal_file_size) {
        // Cut the torn tail a crash left behind before appending after it.
        KBT_RETURN_IF_ERROR(env->TruncateFile(
            dir + "/" + WalFileName(store->checkpoint_lsn_),
            recovered->wal_valid_bytes));
      }
      existing = recovered->wal_valid_bytes;
    }
    KBT_RETURN_IF_ERROR(store->OpenWal(existing));
  } else if (recovered.status().code() == StatusCode::kNotFound) {
    // Fresh store: `initial` becomes checkpoint 0, then its log starts.
    KBT_RETURN_IF_ERROR(WriteCheckpoint(
        env, dir, dir + "/" + CheckpointFileName(0), initial, 0));
    store->kb_ = initial;
    KBT_RETURN_IF_ERROR(store->OpenWal(0));
  } else {
    return recovered.status();
  }

  store->engine_.AttachLog(store.get());
  return store;
}

Status DurableEngine::OpenWal(uint64_t existing_bytes) {
  const std::string path = dir_ + "/" + WalFileName(checkpoint_lsn_);
  // A "fresh" log must really start empty: wal-<lsn> can already exist with a
  // header — an idle checkpoint (lsn_ == checkpoint_lsn_) reuses its own log
  // name, and a fallback recovery can leave a stale one behind. Appending a
  // second header there would read as a corrupt tail on the next recovery.
  KBT_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       existing_bytes == 0 ? env_->NewTruncatedFile(path)
                                           : env_->NewAppendableFile(path));
  KBT_ASSIGN_OR_RETURN(
      wal_, WalWriter::Create(std::move(file), existing_bytes, checkpoint_lsn_));
  last_good_wal_bytes_ =
      existing_bytes == 0 ? kWalHeaderSize : existing_bytes;
  return Status::OK();
}

StatusOr<Knowledgebase> DurableEngine::Apply(std::string_view expression) {
  // engine_.Apply calls back into Commit (the TransformLog hook) on success,
  // which appends to the WAL and advances kb_/lsn_ before this returns.
  return engine_.Apply(expression, kb_);
}

StatusOr<Knowledgebase> DurableEngine::Apply(const Pipeline& pipeline) {
  // Same hook as the text path; engine_ commits the canonical rendering.
  return engine_.Apply(pipeline, kb_);
}

Status DurableEngine::Commit(std::string_view expression,
                             const Knowledgebase& result) {
  if (replicated_apply_) {
    // ApplyReplicated is replaying a primary's kTransform record through the
    // engine; it commits the original record bytes itself. Logging the
    // re-rendering here would double-commit (and could differ byte-wise).
    return Status::OK();
  }
  WalRecord record;
  record.kind = WalRecordKind::kTransform;
  record.payload = std::string(expression);
  return CommitRecord(record, result);
}

Status DurableEngine::ApplyReplicated(const WalRecord& record) {
  if (broken_) {
    return Status::IOError("store at " + dir_ +
                           " is broken; reopen to recover");
  }
  replicated_apply_ = true;
  StatusOr<Knowledgebase> next = ApplyWalRecord(engine_, record, kb_);
  replicated_apply_ = false;
  KBT_RETURN_IF_ERROR(next.status());
  return CommitRecord(record, *next);
}

Status DurableEngine::CommitRecord(const WalRecord& record,
                                   const Knowledgebase& next) {
  if (broken_) {
    return Status::IOError("store at " + dir_ +
                           " is broken; reopen to recover");
  }
  Status s = wal_->Append(record);
  bool synced = false;
  if (s.ok()) {
    synced = store_options_.sync_mode == SyncMode::kEveryCommit ||
             (store_options_.sync_mode == SyncMode::kGroupCommit &&
              unsynced_commits_ + 1 >= store_options_.group_commit_interval);
    if (synced) s = wal_->Sync();
  }
  if (!s.ok()) {
    // The record is torn or of unknown durability, and the in-memory state
    // will not adopt it — cut it back out so the log matches the state.
    SelfHeal();
    return s;
  }
  last_good_wal_bytes_ += kWalRecordHeadSize + record.payload.size();
  kb_ = next;
  ++lsn_;
  unsynced_commits_ = synced ? 0 : unsynced_commits_ + 1;
  if (commit_listener_ != nullptr) commit_listener_(lsn_, record);
  return Status::OK();
}

void DurableEngine::SelfHeal() {
  if (wal_ != nullptr) {
    Status ignored = wal_->Close();
    (void)ignored;
    wal_.reset();
  }
  const std::string path = dir_ + "/" + WalFileName(checkpoint_lsn_);
  if (env_->TruncateFile(path, last_good_wal_bytes_).ok()) {
    StatusOr<std::unique_ptr<File>> file = env_->NewAppendableFile(path);
    if (file.ok()) {
      StatusOr<std::unique_ptr<WalWriter>> writer = WalWriter::Create(
          std::move(*file), last_good_wal_bytes_, checkpoint_lsn_);
      if (writer.ok()) {
        wal_ = std::move(*writer);
        return;
      }
    }
  }
  broken_ = true;
}

Status DurableEngine::CommitDelta(
    WalRecordKind kind, std::string_view relation,
    const std::vector<std::vector<std::string>>& rows) {
  // Validate against the schema up front so a bad call never reaches the log.
  Symbol symbol = Name(relation);
  std::optional<size_t> pos = kb_.schema().PositionOf(symbol);
  if (!pos.has_value()) {
    return Status::NotFound("no relation " + std::string(relation) +
                            " in the store's schema");
  }
  const size_t arity = kb_.schema().decl(*pos).arity;
  for (const auto& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument("tuple of width " +
                                     std::to_string(row.size()) + " for " +
                                     std::string(relation) + "/" +
                                     std::to_string(arity));
    }
  }
  WalRecord record;
  record.kind = kind;
  record.payload = EncodeTupleDelta(relation, arity, rows);
  // Apply through the same code path recovery replays, so replay is
  // bit-identical by construction.
  KBT_ASSIGN_OR_RETURN(Knowledgebase next,
                       ApplyWalRecord(engine_, record, kb_));
  return CommitRecord(record, next);
}

Status DurableEngine::InsertTuples(
    std::string_view relation,
    const std::vector<std::vector<std::string>>& rows) {
  return CommitDelta(WalRecordKind::kInsert, relation, rows);
}

Status DurableEngine::DeleteTuples(
    std::string_view relation,
    const std::vector<std::vector<std::string>>& rows) {
  return CommitDelta(WalRecordKind::kDelete, relation, rows);
}

Status DurableEngine::Sync() {
  if (broken_) {
    return Status::IOError("store at " + dir_ +
                           " is broken; reopen to recover");
  }
  Status s = wal_->Sync();
  if (!s.ok()) {
    // Nothing was torn (all appended records are whole), but the handle may
    // be wedged; reopen it on the intact log.
    SelfHeal();
    return s;
  }
  unsynced_commits_ = 0;
  return Status::OK();
}

Status DurableEngine::Checkpoint() {
  if (broken_) {
    return Status::IOError("store at " + dir_ +
                           " is broken; reopen to recover");
  }
  const uint64_t lsn = lsn_;
  KBT_RETURN_IF_ERROR(WriteCheckpoint(
      env_, dir_, dir_ + "/" + CheckpointFileName(lsn), kb_, lsn));

  // The checkpoint is durable; switch to its (empty) log. A crash between the
  // two leaves checkpoint-<lsn> without wal-<lsn>, which recovery accepts.
  if (wal_ != nullptr) {
    Status ignored = wal_->Close();
    (void)ignored;
    wal_.reset();
  }
  checkpoint_lsn_ = lsn;
  Status opened = OpenWal(0);
  if (!opened.ok()) {
    // Committed state is safe in the checkpoint, but there is no log to
    // append to: refuse further commits until reopened.
    broken_ = true;
    return opened;
  }
  unsynced_commits_ = 0;

  // Garbage-collect superseded files (best effort — leftovers are ignored by
  // recovery and retried on the next checkpoint).
  StatusOr<std::vector<std::string>> names = env_->ListDir(dir_);
  if (names.ok()) {
    // Retention pin: a subscribed follower acked only up to `pin` must still
    // be able to fetch records pin+1… (or re-seed). Those live in the files
    // at the pin's *floor checkpoint* — the largest checkpoint lsn ≤ pin:
    // wal-<floor> holds the records and checkpoint-<floor> is the snapshot a
    // re-seeding follower at that horizon would pull. Everything from the
    // floor up survives; without a pin the floor is the fresh checkpoint.
    uint64_t keep_from = lsn;
    if (retain_lsn_hook_ != nullptr) {
      std::optional<uint64_t> pin = retain_lsn_hook_();
      if (pin.has_value() && *pin < lsn) {
        uint64_t floor = 0;
        for (const std::string& name : *names) {
          std::optional<uint64_t> c = ParseStoreLsnSuffix(name, "checkpoint");
          if (c.has_value() && *c <= *pin && *c >= floor) floor = *c;
        }
        keep_from = floor;
      }
    }
    for (const std::string& name : *names) {
      std::optional<uint64_t> checkpoint_of =
          ParseStoreLsnSuffix(name, "checkpoint");
      std::optional<uint64_t> wal_of = ParseStoreLsnSuffix(name, "wal");
      bool stale = (checkpoint_of.has_value() && *checkpoint_of < keep_from) ||
                   (wal_of.has_value() && *wal_of < keep_from) ||
                   name.ends_with(".tmp");
      if (stale) {
        Status ignored = env_->RemoveFile(dir_ + "/" + name);
        (void)ignored;
      }
    }
    Status ignored = env_->SyncDir(dir_);
    (void)ignored;
  }
  return Status::OK();
}

}  // namespace kbt::store
