#ifndef KBT_STORE_FAULT_ENV_H_
#define KBT_STORE_FAULT_ENV_H_

/// \file
/// An in-memory Env with syscall-level fault injection — the engine of the
/// crash-recovery property tests.
///
/// The environment keeps two views of every file, connected through a shared
/// inode the way a real filesystem is:
///
///  * the *live* view: what syscalls observe while the process runs;
///  * the *durable* view: what would survive a crash right now.
///
/// Append changes only the live content; File::Sync copies live → durable (and
/// makes a new file's existence durable — the fsync approximation LevelDB's
/// fault tests use). Renames and removals move live namespace entries
/// immediately but reach the durable namespace only at Env::SyncDir, so a
/// crash can resurrect a deleted file or undo an un-synced rename — exactly
/// the states a recovery path must tolerate. Rename is atomic in both views.
///
/// Fault injection is a one-shot failpoint counting write-side syscalls
/// (open/append/sync/truncate/rename/remove/syncdir). When the counter hits
/// the armed operation the env either returns an injected kIOError (with or
/// without a partial short write) or "crashes": the live view is frozen, every
/// subsequent call fails, and RecoverFromCrash() restarts the world from the
/// durable view — the moral equivalent of kill -9 plus remount.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "store/file.h"

namespace kbt::store {

/// What the armed failpoint does when the counter reaches it.
enum class FaultKind {
  /// The operation fails with kIOError and is not applied (transient error;
  /// later operations succeed).
  kFail,
  /// An Append applies a prefix of its bytes, then fails with kIOError
  /// (transient). Non-append operations behave like kFail.
  kShortWrite,
  /// The process model crashes *before* the operation takes effect.
  kCrashBefore,
  /// The operation takes full effect, then the crash hits — the caller never
  /// learns the outcome (the timed-out-commit case).
  kCrashAfter,
  /// An Append applies a prefix of its bytes, then the crash hits — the torn
  /// tail record recovery must detect and truncate. Non-appends crash before.
  kCrashTorn,
};

class FaultInjectionEnv final : public Env {
 public:
  FaultInjectionEnv() = default;

  // --- Fault control (test interface) ------------------------------------

  /// Arms the one-shot failpoint: the `op`-th write-side syscall from now
  /// (1-based) misbehaves per `kind`.
  void FailAt(uint64_t op, FaultKind kind);
  /// Disarms a pending failpoint.
  void ClearFault();
  /// Total write-side syscalls observed so far (sizes the crash matrix).
  uint64_t op_count() const;
  /// Crashes immediately, as if kCrashBefore fired on the next operation.
  void Crash();
  /// True while crashed: every Env/File call fails with kIOError.
  bool crashed() const;
  /// Leaves the crashed state, resetting the live view to the durable view —
  /// the state a restarted process would find on disk.
  void RecoverFromCrash();

  // --- Env ----------------------------------------------------------------

  StatusOr<std::unique_ptr<File>> NewAppendableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<File>> NewTruncatedFile(
      const std::string& path) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultFile;

  struct Inode {
    std::string live;
    std::string durable;
    bool synced_once = false;
  };
  using InodePtr = std::shared_ptr<Inode>;

  /// Outcome of consulting the failpoint for one syscall.
  enum class Injected { kNone, kFail, kShortWrite, kCrashBefore, kCrashAfter,
                        kCrashTorn };

  /// Counts one write-side syscall and reports what to inject. Caller holds
  /// mu_.
  Injected Account();
  Status CrashedError() const;
  /// Applies Sync semantics for one inode+path. Caller holds mu_.
  void SyncLocked(const std::string& path, const InodePtr& inode);

  mutable std::mutex mu_;
  std::map<std::string, InodePtr> live_;
  std::map<std::string, InodePtr> durable_;
  std::set<std::string> dirs_;
  bool crashed_ = false;
  uint64_t ops_ = 0;
  uint64_t fail_at_ = 0;  // 0 = disarmed; counts ops_ values.
  FaultKind fault_kind_ = FaultKind::kFail;
};

}  // namespace kbt::store

#endif  // KBT_STORE_FAULT_ENV_H_
