#include "store/fsck.h"

#include <algorithm>
#include <optional>

#include "core/engine.h"
#include "repl/meta.h"
#include "store/checkpoint.h"
#include "store/recovery.h"
#include "store/wal.h"

namespace kbt::store {

namespace {

struct NamedLsn {
  uint64_t lsn = 0;
  std::string name;
};

}  // namespace

StatusOr<FsckReport> CheckStore(Env* env, const std::string& dir,
                                const FsckOptions& options) {
  KBT_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));

  FsckReport report;
  std::vector<NamedLsn> checkpoints;
  std::vector<NamedLsn> wals;
  bool saw_repl_meta = false;
  for (const std::string& name : names) {
    std::optional<uint64_t> ckpt = ParseStoreLsnSuffix(name, "checkpoint");
    if (ckpt.has_value()) {
      checkpoints.push_back({*ckpt, name});
      continue;
    }
    std::optional<uint64_t> wal = ParseStoreLsnSuffix(name, "wal");
    if (wal.has_value()) {
      wals.push_back({*wal, name});
      continue;
    }
    if (name == repl::kReplMetaFileName) {
      saw_repl_meta = true;
      continue;
    }
    if (name.ends_with(".tmp")) {
      report.warnings.push_back("leftover temp file " + name +
                                " (an interrupted atomic write; ignored by "
                                "recovery, removed by the next checkpoint)");
      continue;
    }
    report.warnings.push_back("unrecognized file " + name);
  }
  if (checkpoints.empty() && wals.empty() && !saw_repl_meta) {
    return Status::NotFound(dir + " holds no store files");
  }

  // Checkpoints: every one must decode, but only the newest is load-bearing —
  // a corrupt older one is shadowed (recovery would never reach it when a
  // newer good one exists).
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const NamedLsn& a, const NamedLsn& b) { return a.lsn > b.lsn; });
  report.checkpoints_seen = checkpoints.size();
  bool best_found = false;
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const NamedLsn& c = checkpoints[i];
    StatusOr<std::string> bytes = env->ReadFile(dir + "/" + c.name);
    Status decode_status = Status::OK();
    if (bytes.ok()) {
      StatusOr<CheckpointContents> contents = DecodeCheckpoint(*bytes);
      if (contents.ok()) {
        if (contents->lsn != c.lsn) {
          report.errors.push_back(c.name + " decodes to lsn " +
                                  std::to_string(contents->lsn) +
                                  " (name/content mismatch)");
          continue;
        }
        ++report.checkpoints_valid;
        if (!best_found) {
          report.best_checkpoint_lsn = c.lsn;
          best_found = true;
        }
        continue;
      }
      decode_status = contents.status();
    } else {
      decode_status = bytes.status();
    }
    const std::string finding =
        c.name + ": " + std::string(decode_status.message());
    if (i == 0) {
      // The newest checkpoint is what recovery wants; losing it forfeits
      // every record since the previous one.
      report.errors.push_back(finding + " (newest checkpoint)");
    } else {
      report.warnings.push_back(finding + " (shadowed by a newer checkpoint)");
    }
  }
  if (checkpoints.empty()) {
    report.errors.push_back("no checkpoint file at all; nothing to recover");
  } else if (!best_found) {
    report.errors.push_back("no checkpoint decodes; recovery would fail");
  }

  // WAL files: valid header, whole-record prefix, name/header agreement.
  std::sort(wals.begin(), wals.end(),
            [](const NamedLsn& a, const NamedLsn& b) { return a.lsn < b.lsn; });
  report.wal_files_seen = wals.size();
  for (const NamedLsn& w : wals) {
    StatusOr<std::string> bytes = env->ReadFile(dir + "/" + w.name);
    if (!bytes.ok()) {
      report.errors.push_back(w.name + ": " +
                              std::string(bytes.status().message()));
      continue;
    }
    StatusOr<WalContents> contents = ReadWal(*bytes);
    if (!contents.ok()) {
      report.errors.push_back(w.name + ": " +
                              std::string(contents.status().message()));
      continue;
    }
    if (contents->start_lsn != w.lsn) {
      report.errors.push_back(w.name + " header claims start lsn " +
                              std::to_string(contents->start_lsn) +
                              " (name/content mismatch)");
      continue;
    }
    report.wal_records += contents->records.size();
    if (contents->valid_bytes < bytes->size()) {
      const uint64_t torn = bytes->size() - contents->valid_bytes;
      report.torn_tail_bytes += torn;
      const std::string finding =
          w.name + ": " + std::to_string(torn) +
          " byte(s) past the last whole record (torn tail; recovery "
          "truncates it)";
      if (options.strict_tail) {
        report.errors.push_back(finding);
      } else {
        report.warnings.push_back(finding);
      }
    }
    const bool paired = std::any_of(
        checkpoints.begin(), checkpoints.end(),
        [&](const NamedLsn& c) { return c.lsn == w.lsn; });
    if (!paired) {
      report.warnings.push_back(
          w.name + " has no checkpoint-" + std::to_string(w.lsn) +
          " to hang off; its records are unreachable to recovery");
    }
  }

  if (saw_repl_meta) {
    StatusOr<repl::ReplMeta> meta = repl::ReadReplMeta(env, dir);
    if (meta.ok()) {
      report.has_repl_meta = true;
      report.repl_epoch = meta->epoch();
    } else {
      report.errors.push_back("replmeta: " +
                              std::string(meta.status().message()));
    }
  }

  if (options.deep) {
    // The strongest statement: run the real recovery path. Deterministic
    // replay means success here is success at the next open.
    Engine engine;
    StatusOr<RecoveredStore> recovered = RecoverStore(env, dir, engine);
    if (recovered.ok()) {
      report.recovered_lsn = recovered->lsn;
    } else {
      report.errors.push_back("deep replay: " +
                              std::string(recovered.status().message()));
    }
  }
  return report;
}

std::string FormatFsckReport(const FsckReport& report) {
  std::string out;
  for (const std::string& e : report.errors) out += "error: " + e + "\n";
  for (const std::string& w : report.warnings) out += "warning: " + w + "\n";
  out += "checkpoints: " + std::to_string(report.checkpoints_valid) + "/" +
         std::to_string(report.checkpoints_seen) + " valid";
  if (report.checkpoints_valid > 0) {
    out += ", best lsn " + std::to_string(report.best_checkpoint_lsn);
  }
  out += "\nwal: " + std::to_string(report.wal_files_seen) + " file(s), " +
         std::to_string(report.wal_records) + " record(s), " +
         std::to_string(report.torn_tail_bytes) + " torn byte(s)\n";
  if (report.has_repl_meta) {
    out += "replication: epoch " + std::to_string(report.repl_epoch) + "\n";
  }
  if (report.recovered_lsn != 0 || report.clean()) {
    if (report.recovered_lsn != 0) {
      out += "deep replay: recovered to lsn " +
             std::to_string(report.recovered_lsn) + "\n";
    }
  }
  out += report.clean() ? "clean\n" : "CORRUPT\n";
  return out;
}

}  // namespace kbt::store
