#ifndef KBT_STORE_WAL_H_
#define KBT_STORE_WAL_H_

/// \file
/// The semantic write-ahead log: an append-only file of committed
/// *transformations*, not page images. The paper makes μ/τ/insert/delete
/// expressions the first-class objects and their results deterministic
/// (knowledgebases are canonical values), so logging the expression is enough
/// to reproduce the state — recovery replays the suffix through the engine and
/// lands on a bit-identical knowledgebase.
///
/// File layout:
///
///   header:  magic "KBTWAL" (6 bytes), u16 version, u64 start_lsn
///   record:  u32 crc32c(kind ‖ payload), u32 payload_len, u8 kind, payload
///
/// (integers little-endian). Records are length-prefixed and CRC-guarded; a
/// torn or partial tail record — the signature of a crash mid-append — is
/// detected and logically truncated by the reader, which reports the number of
/// bytes that form the valid prefix so the writer can physically truncate
/// before appending again.
///
/// Record kinds:
///   kTransform — payload is a transformation expression in the concrete
///                syntax of core/expr_parser.h ("tau{...} >> glb >> pi[R]").
///   kInsert /
///   kDelete    — an explicit tuple delta against one relation: cheap bulk
///                loads and deletions that skip the μ machinery on replay.
///                Payload: u32 name_len, name, u32 arity, u32 rows, then
///                rows × arity × (u32 len, bytes) constant names.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "store/file.h"

namespace kbt::store {

inline constexpr char kWalMagic[6] = {'K', 'B', 'T', 'W', 'A', 'L'};
inline constexpr uint16_t kWalVersion = 1;
/// Bytes of the file header (magic + version + start_lsn).
inline constexpr size_t kWalHeaderSize = 6 + 2 + 8;
/// Bytes each record adds on top of its payload (crc + payload_len + kind).
inline constexpr size_t kWalRecordHeadSize = 4 + 4 + 1;

enum class WalRecordKind : uint8_t {
  kTransform = 1,
  kInsert = 2,
  kDelete = 3,
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kTransform;
  std::string payload;

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.kind == b.kind && a.payload == b.payload;
  }
};

/// Builds the payload of a kInsert/kDelete record.
std::string EncodeTupleDelta(std::string_view relation, size_t arity,
                             const std::vector<std::vector<std::string>>& rows);

/// Decoded form of a kInsert/kDelete payload.
struct TupleDelta {
  std::string relation;
  size_t arity = 0;
  std::vector<std::vector<std::string>> rows;
};

/// Parses a kInsert/kDelete payload (bounds-checked; clean errors).
StatusOr<TupleDelta> DecodeTupleDelta(std::string_view payload);

/// Appends records to a WAL file. The caller owns commit policy: Append just
/// buffers into the OS, Sync makes everything appended so far durable.
class WalWriter {
 public:
  /// Wraps an open handle positioned at the end of a valid WAL (or an empty
  /// file). `file_size` is the current size; when 0 a fresh header carrying
  /// `start_lsn` is appended first.
  static StatusOr<std::unique_ptr<WalWriter>> Create(
      std::unique_ptr<File> file, uint64_t file_size, uint64_t start_lsn);

  Status Append(const WalRecord& record);
  Status Sync();
  Status Close();

 private:
  explicit WalWriter(std::unique_ptr<File> file) : file_(std::move(file)) {}

  std::unique_ptr<File> file_;
};

/// Result of scanning a WAL file's contents.
struct WalContents {
  uint64_t start_lsn = 0;
  std::vector<WalRecord> records;
  /// Bytes forming the valid prefix (header + whole records). When less than
  /// the input size, the tail was torn or corrupt and must be truncated before
  /// appending.
  uint64_t valid_bytes = 0;
};

/// Parses a WAL file image. A bad header is an error (kDataLoss); a torn or
/// CRC-corrupt tail is NOT — the scan stops there and reports the valid
/// prefix, which is exactly the crash-recovery contract.
StatusOr<WalContents> ReadWal(std::string_view bytes);

}  // namespace kbt::store

#endif  // KBT_STORE_WAL_H_
