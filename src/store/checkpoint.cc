#include "store/checkpoint.h"

#include <cstring>
#include <optional>
#include <vector>

#include "base/interner.h"
#include "rel/binary_io.h"
#include "rel/overlay.h"
#include "store/crc32.h"

namespace kbt::store {

namespace {

constexpr size_t kHeaderSize = 7 + 1 + 8 + 4 + 4;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

/// One relation's tuples as rows of constant names, the shape EncodeTupleDelta
/// consumes.
std::vector<std::vector<std::string>> RelationRows(const Relation& rel) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(rel.size());
  if (rel.arity() == 0) {
    rows.resize(rel.size());
  } else {
    for (TupleView t : rel) {
      std::vector<std::string> row;
      row.reserve(rel.arity());
      for (size_t i = 0; i < rel.arity(); ++i) row.push_back(NameOf(t[i]));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

/// Appends a length-prefixed EncodeTupleDelta block for `rel` to `out`.
void AppendDeltaBlock(std::string& out, std::string_view name,
                      const Relation& rel) {
  std::string block = EncodeTupleDelta(name, rel.arity(), RelationRows(rel));
  PutU32(out, static_cast<uint32_t>(block.size()));
  out += block;
}

/// Bounds-checked cursor over the v2 payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  StatusOr<uint32_t> ReadU32(const char* what) {
    if (bytes_.size() - pos_ < 4) return Truncated(what);
    uint32_t v = GetU32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  StatusOr<std::string_view> ReadBlock(const char* what) {
    KBT_ASSIGN_OR_RETURN(uint32_t len, ReadU32(what));
    if (bytes_.size() - pos_ < len) return Truncated(what);
    std::string_view v = bytes_.substr(pos_, len);
    pos_ += len;
    return v;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Truncated(const char* what) {
    return Status::DataLoss(std::string("truncated checkpoint reading ") +
                            what);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Reads one adds/dels block and resolves it against `schema`.
StatusOr<std::pair<size_t, Relation>> ReadDeltaBlock(PayloadReader& reader,
                                                     const Schema& schema,
                                                     const char* what) {
  KBT_ASSIGN_OR_RETURN(std::string_view block, reader.ReadBlock(what));
  KBT_ASSIGN_OR_RETURN(TupleDelta delta, DecodeTupleDelta(block));
  return ResolveTupleDelta(delta, schema);
}

/// Parses the version-2 payload: base database once, then per-world overlays.
StatusOr<Knowledgebase> DecodeOverlayPayload(std::string_view payload) {
  PayloadReader reader(payload);
  KBT_ASSIGN_OR_RETURN(uint32_t world_count, reader.ReadU32("world count"));
  KBT_ASSIGN_OR_RETURN(std::string_view base_bytes,
                       reader.ReadBlock("base database"));
  KBT_ASSIGN_OR_RETURN(Database base, ParseBinaryDatabase(base_bytes));
  // Each world costs at least its 4-byte delta count; bound before reserving.
  if (world_count > reader.remaining() / 4 + 1) {
    return Status::DataLoss("checkpoint world count exceeds payload size");
  }
  auto shared_base = std::make_shared<const Database>(std::move(base));
  std::vector<WorldOverlay> overlays;
  overlays.reserve(world_count);
  for (uint32_t w = 0; w < world_count; ++w) {
    KBT_ASSIGN_OR_RETURN(uint32_t delta_count, reader.ReadU32("delta count"));
    // Each delta costs at least two 4-byte block lengths.
    if (delta_count > reader.remaining() / 8 + 1) {
      return Status::DataLoss("checkpoint delta count exceeds payload size");
    }
    std::vector<RelationDelta> deltas;
    deltas.reserve(delta_count);
    for (uint32_t i = 0; i < delta_count; ++i) {
      KBT_ASSIGN_OR_RETURN(auto adds, ReadDeltaBlock(reader,
                                                     shared_base->schema(),
                                                     "overlay adds"));
      KBT_ASSIGN_OR_RETURN(auto dels, ReadDeltaBlock(reader,
                                                     shared_base->schema(),
                                                     "overlay dels"));
      if (adds.first != dels.first) {
        return Status::DataLoss(
            "checkpoint overlay adds/dels name different relations");
      }
      RelationDelta d;
      d.pos = static_cast<uint32_t>(adds.first);
      d.adds = std::move(adds.second);
      d.dels = std::move(dels.second);
      deltas.push_back(std::move(d));
    }
    WorldOverlay overlay = WorldOverlay::FromDeltas(std::move(deltas));
    // Reject any payload whose overlay is not canonical relative to the base
    // (overlapping adds, dels outside the base, duplicate positions, ...):
    // such a file was not produced by EncodeCheckpoint.
    KBT_RETURN_IF_ERROR(overlay.Validate(*shared_base));
    overlays.push_back(std::move(overlay));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("trailing bytes after checkpoint payload");
  }
  if (world_count == 0) return Knowledgebase(shared_base->schema());
  return Knowledgebase::FromBaseAndOverlays(std::move(shared_base),
                                            std::move(overlays));
}

}  // namespace

StatusOr<std::pair<size_t, Relation>> ResolveTupleDelta(const TupleDelta& delta,
                                                        const Schema& schema) {
  Symbol symbol = Name(delta.relation);
  std::optional<size_t> pos = schema.PositionOf(symbol);
  if (!pos.has_value()) {
    return Status::DataLoss("tuple delta names undeclared relation " +
                            delta.relation);
  }
  if (schema.decl(*pos).arity != delta.arity) {
    return Status::DataLoss("tuple delta arity mismatch for " + delta.relation);
  }
  Relation::Builder builder(delta.arity);
  builder.Reserve(delta.rows.size());
  for (const auto& row : delta.rows) {
    if (row.size() != delta.arity) {
      return Status::DataLoss("tuple delta row width mismatch for " +
                              delta.relation);
    }
    if (delta.arity == 0) {
      // A present zero-ary row is the single empty tuple.
      builder.Append(std::initializer_list<Value>{});
      continue;
    }
    Value* out = builder.AppendRow();
    for (size_t i = 0; i < delta.arity; ++i) out[i] = Name(row[i]);
  }
  return std::pair<size_t, Relation>(*pos, builder.Build());
}

std::string EncodeCheckpoint(const Knowledgebase& kb, uint64_t lsn) {
  // Version-2 payload: the shared base once, each world as its sparse overlay.
  std::string payload;
  PutU32(payload, static_cast<uint32_t>(kb.size()));
  const Database empty_base(kb.schema());
  const Database& base = kb.base() != nullptr ? *kb.base() : empty_base;
  std::string base_bytes = SerializeDatabase(base);
  PutU32(payload, static_cast<uint32_t>(base_bytes.size()));
  payload += base_bytes;
  for (const WorldOverlay& overlay : kb.overlays()) {
    PutU32(payload, static_cast<uint32_t>(overlay.deltas().size()));
    for (const RelationDelta& d : overlay.deltas()) {
      const std::string name = NameOf(kb.schema().decl(d.pos).symbol);
      AppendDeltaBlock(payload, name, d.adds);
      AppendDeltaBlock(payload, name, d.dels);
    }
  }
  std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
  out.push_back(static_cast<char>(kCheckpointVersion));
  PutU64(out, lsn);
  PutU32(out, Crc32c(payload));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

StatusOr<CheckpointContents> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("checkpoint shorter than its header");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::DataLoss("checkpoint has wrong magic");
  }
  uint8_t version = static_cast<uint8_t>(bytes[7]);
  if (version != 1 && version != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version));
  }
  uint64_t lsn = GetU64(bytes.data() + 8);
  uint32_t crc = GetU32(bytes.data() + 16);
  uint32_t payload_len = GetU32(bytes.data() + 20);
  std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_len) {
    return Status::DataLoss("checkpoint payload size mismatch");
  }
  if (Crc32c(payload) != crc) {
    return Status::DataLoss("checkpoint payload fails crc check");
  }
  CheckpointContents contents;
  contents.lsn = lsn;
  if (version == 1) {
    // Legacy flat payload: the whole member list serialized.
    KBT_ASSIGN_OR_RETURN(contents.kb, ParseBinaryKnowledgebase(payload));
  } else {
    KBT_ASSIGN_OR_RETURN(contents.kb, DecodeOverlayPayload(payload));
  }
  return contents;
}

Status WriteCheckpoint(Env* env, const std::string& dir,
                       const std::string& path, const Knowledgebase& kb,
                       uint64_t lsn) {
  const std::string tmp = path + ".tmp";
  {
    KBT_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                         env->NewTruncatedFile(tmp));
    KBT_RETURN_IF_ERROR(file->Append(EncodeCheckpoint(kb, lsn)));
    KBT_RETURN_IF_ERROR(file->Sync());
    KBT_RETURN_IF_ERROR(file->Close());
  }
  KBT_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  return env->SyncDir(dir);
}

StatusOr<CheckpointContents> ReadCheckpoint(Env* env, const std::string& path) {
  KBT_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  return DecodeCheckpoint(bytes);
}

}  // namespace kbt::store
