#include "store/checkpoint.h"

#include <cstring>

#include "rel/binary_io.h"
#include "store/crc32.h"

namespace kbt::store {

namespace {

constexpr size_t kHeaderSize = 7 + 1 + 8 + 4 + 4;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

}  // namespace

std::string EncodeCheckpoint(const Knowledgebase& kb, uint64_t lsn) {
  std::string payload = SerializeKnowledgebase(kb);
  std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
  out.push_back(static_cast<char>(kCheckpointVersion));
  PutU64(out, lsn);
  PutU32(out, Crc32c(payload));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

StatusOr<CheckpointContents> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("checkpoint shorter than its header");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::DataLoss("checkpoint has wrong magic");
  }
  uint8_t version = static_cast<uint8_t>(bytes[7]);
  if (version != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version));
  }
  uint64_t lsn = GetU64(bytes.data() + 8);
  uint32_t crc = GetU32(bytes.data() + 16);
  uint32_t payload_len = GetU32(bytes.data() + 20);
  std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_len) {
    return Status::DataLoss("checkpoint payload size mismatch");
  }
  if (Crc32c(payload) != crc) {
    return Status::DataLoss("checkpoint payload fails crc check");
  }
  KBT_ASSIGN_OR_RETURN(Knowledgebase kb, ParseBinaryKnowledgebase(payload));
  CheckpointContents contents;
  contents.lsn = lsn;
  contents.kb = std::move(kb);
  return contents;
}

Status WriteCheckpoint(Env* env, const std::string& dir,
                       const std::string& path, const Knowledgebase& kb,
                       uint64_t lsn) {
  const std::string tmp = path + ".tmp";
  {
    KBT_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                         env->NewTruncatedFile(tmp));
    KBT_RETURN_IF_ERROR(file->Append(EncodeCheckpoint(kb, lsn)));
    KBT_RETURN_IF_ERROR(file->Sync());
    KBT_RETURN_IF_ERROR(file->Close());
  }
  KBT_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  return env->SyncDir(dir);
}

StatusOr<CheckpointContents> ReadCheckpoint(Env* env, const std::string& path) {
  KBT_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  return DecodeCheckpoint(bytes);
}

}  // namespace kbt::store
