#ifndef KBT_STORE_DURABLE_ENGINE_H_
#define KBT_STORE_DURABLE_ENGINE_H_

/// \file
/// A knowledgebase engine whose state survives crashes.
///
/// DurableEngine wraps a core Engine, keeps the current knowledgebase in
/// memory, and implements the Engine's TransformLog hook: every successful
/// transformation is appended to the semantic WAL (and synced per the
/// configured durability mode) *before* the caller is told it succeeded.
/// Recovery on Open loads the newest valid checkpoint and replays the WAL's
/// valid prefix through the same deterministic engine, so the recovered state
/// is bit-identical to what was committed.
///
/// Commit protocol (Apply):
///   1. engine applies the expression to the in-memory kb;
///   2. the WAL record is appended; in kEveryCommit mode the file is fsynced
///      (kGroupCommit fsyncs every group_commit_interval commits, kManual only
///      on Sync()/Checkpoint());
///   3. only then do the in-memory kb and lsn advance.
/// A failed append or sync leaves the in-memory state unchanged and the
/// transformation unacknowledged; the writer self-heals by truncating the WAL
/// back to its last good byte and reopening, so a *transient* I/O error does
/// not poison the log for later commits. If the self-heal itself fails the
/// store is marked broken and every later commit is refused — reopening (a
/// fresh Open, which re-runs recovery) is the only way back.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/engine.h"
#include "rel/knowledgebase.h"
#include "store/file.h"
#include "store/wal.h"

namespace kbt::store {

/// When WAL appends become durable.
enum class SyncMode {
  /// fsync on every commit: an acknowledged commit survives any crash.
  kEveryCommit,
  /// fsync every group_commit_interval commits: bounded-loss group commit.
  kGroupCommit,
  /// fsync only on explicit Sync()/Checkpoint() calls.
  kManual,
};

struct StoreOptions {
  SyncMode sync_mode = SyncMode::kEveryCommit;
  /// Commits between fsyncs in kGroupCommit mode (≥ 1).
  size_t group_commit_interval = 8;
  /// Storage backend; nullptr means Env::Default() (the real filesystem).
  Env* env = nullptr;
};

class DurableEngine final : private TransformLog {
 public:
  /// Opens (or creates) the store in `dir`. An empty directory is initialized
  /// with `initial` as checkpoint 0; an existing store recovers its committed
  /// state and `initial` is ignored.
  static StatusOr<std::unique_ptr<DurableEngine>> Open(
      const std::string& dir, const Knowledgebase& initial,
      StoreOptions store_options = StoreOptions(),
      EngineOptions engine_options = EngineOptions());

  ~DurableEngine() override;
  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  /// Applies a transformation expression to the current kb, committing it to
  /// the WAL. On success the durable and in-memory states advanced together;
  /// on error neither did (the expression is not acknowledged).
  StatusOr<Knowledgebase> Apply(std::string_view expression);

  /// Applies a pre-built pipeline to the current kb. The WAL records the
  /// pipeline's canonical concrete rendering (which round-trips through
  /// ParsePipeline), so recovery replays the identical transformation — the
  /// pre-built path is as durable as the text path.
  StatusOr<Knowledgebase> Apply(const Pipeline& pipeline);

  /// Replication: applies a record shipped from a primary through the exact
  /// replay path recovery uses (ApplyWalRecord) and commits the *primary's*
  /// record bytes — not a re-rendering — to this store's own WAL. The
  /// TransformLog hook is suppressed for the duration so the record is logged
  /// once, verbatim; follower state is therefore bit-identical to the
  /// primary's at every lsn by construction.
  Status ApplyReplicated(const WalRecord& record);

  /// Replication: called after every successful commit with the new lsn and
  /// the record just made durable (under the caller's write serialization —
  /// commits are already single-threaded). A primary's feed hook.
  void SetCommitListener(
      std::function<void(uint64_t lsn, const WalRecord& record)> listener) {
    commit_listener_ = std::move(listener);
  }

  /// Replication: GC retention pin. When set, Checkpoint()'s garbage
  /// collection keeps every checkpoint/wal file needed to serve records after
  /// the returned lsn (the minimum acked lsn over subscribed followers):
  /// files at or above the pin's floor checkpoint survive. nullopt = no pin.
  void SetRetainLsnHook(std::function<std::optional<uint64_t>()> hook) {
    retain_lsn_hook_ = std::move(hook);
  }

  /// Commits an explicit tuple insertion (bulk load) into `relation`.
  Status InsertTuples(std::string_view relation,
                      const std::vector<std::vector<std::string>>& rows);
  /// Commits an explicit tuple deletion from `relation`.
  Status DeleteTuples(std::string_view relation,
                      const std::vector<std::vector<std::string>>& rows);

  /// Forces everything committed so far to durable storage (a group-commit /
  /// manual-mode barrier; a no-op after kEveryCommit commits).
  Status Sync();

  /// Writes a checkpoint of the current state, starts a fresh WAL, and
  /// garbage-collects superseded checkpoint/wal files.
  Status Checkpoint();

  /// The current committed knowledgebase.
  const Knowledgebase& kb() const { return kb_; }
  /// Committed records since the store was created.
  uint64_t lsn() const { return lsn_; }
  /// lsn of the checkpoint the current WAL hangs off.
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  /// The store directory (for replication's log/checkpoint file reads).
  const std::string& dir() const { return dir_; }
  /// The storage backend (never nullptr).
  Env* env() const { return env_; }
  /// True once a failed self-heal left the log unusable (see file comment).
  bool broken() const { return broken_; }
  /// The wrapped engine — exposed for options tweaks between commits. Note
  /// text-form Apply calls made directly on it also commit to the store (it
  /// has this object attached as its TransformLog); go through
  /// DurableEngine::Apply so the committed expression is applied to the
  /// store's own kb.
  Engine& engine() { return engine_; }

 private:
  DurableEngine(std::string dir, StoreOptions store_options,
                EngineOptions engine_options);

  // TransformLog: called by engine_ inside Apply, after the transformation
  // succeeded and before the caller sees the result.
  Status Commit(std::string_view expression,
                const Knowledgebase& result) override;

  /// Appends `record` and applies the sync policy; on success adopts `next`
  /// as the committed state.
  Status CommitRecord(const WalRecord& record, const Knowledgebase& next);
  /// Validates, applies, and commits an explicit tuple delta.
  Status CommitDelta(WalRecordKind kind, std::string_view relation,
                     const std::vector<std::vector<std::string>>& rows);
  /// After a failed append/sync: truncate the WAL to last_good_wal_bytes_ and
  /// reopen it, or mark the store broken.
  void SelfHeal();
  /// Opens wal-<checkpoint_lsn_> for append, writing the header if fresh.
  Status OpenWal(uint64_t existing_bytes);

  const std::string dir_;
  const StoreOptions store_options_;
  Env* const env_;
  Engine engine_;

  Knowledgebase kb_;
  uint64_t lsn_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  std::unique_ptr<WalWriter> wal_;
  /// Bytes of wal-<checkpoint_lsn_> known to hold whole records (the truncate
  /// target for self-healing).
  uint64_t last_good_wal_bytes_ = 0;
  size_t unsynced_commits_ = 0;
  bool broken_ = false;
  /// True while ApplyReplicated replays through the engine; suppresses the
  /// TransformLog hook so the replicated record is committed once, verbatim.
  bool replicated_apply_ = false;
  std::function<void(uint64_t, const WalRecord&)> commit_listener_;
  std::function<std::optional<uint64_t>()> retain_lsn_hook_;
};

}  // namespace kbt::store

#endif  // KBT_STORE_DURABLE_ENGINE_H_
