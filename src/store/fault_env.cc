#include "store/fault_env.h"

#include <algorithm>

namespace kbt::store {

namespace {

Status InjectedError(const char* what) {
  return Status::IOError(std::string("injected fault: ") + what);
}

}  // namespace

/// A handle into the fault env: shares the env's mutex, failpoint counter and
/// crash state. Valid only while the env lives (tests own the env).
class FaultFile final : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::string path,
            FaultInjectionEnv::InodePtr inode)
      : env_(env), path_(std::move(path)), inode_(std::move(inode)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->crashed_) return env_->CrashedError();
    if (closed_) return Status::IOError("append to closed file " + path_);
    switch (env_->Account()) {
      case FaultInjectionEnv::Injected::kNone:
        inode_->live.append(data);
        return Status::OK();
      case FaultInjectionEnv::Injected::kFail:
        return InjectedError("append failed");
      case FaultInjectionEnv::Injected::kShortWrite:
        inode_->live.append(data.substr(0, data.size() / 2));
        return InjectedError("short write");
      case FaultInjectionEnv::Injected::kCrashBefore:
        env_->crashed_ = true;
        return env_->CrashedError();
      case FaultInjectionEnv::Injected::kCrashAfter:
        inode_->live.append(data);
        env_->crashed_ = true;
        return env_->CrashedError();
      case FaultInjectionEnv::Injected::kCrashTorn:
        inode_->live.append(data.substr(0, data.size() / 2));
        env_->crashed_ = true;
        return env_->CrashedError();
    }
    return Status::Internal("unreachable");
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->crashed_) return env_->CrashedError();
    if (closed_) return Status::IOError("sync of closed file " + path_);
    switch (env_->Account()) {
      case FaultInjectionEnv::Injected::kNone:
        env_->SyncLocked(path_, inode_);
        return Status::OK();
      case FaultInjectionEnv::Injected::kFail:
      case FaultInjectionEnv::Injected::kShortWrite:
        return InjectedError("fsync failed");
      case FaultInjectionEnv::Injected::kCrashBefore:
      case FaultInjectionEnv::Injected::kCrashTorn:
        env_->crashed_ = true;
        return env_->CrashedError();
      case FaultInjectionEnv::Injected::kCrashAfter:
        env_->SyncLocked(path_, inode_);
        env_->crashed_ = true;
        return env_->CrashedError();
    }
    return Status::Internal("unreachable");
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    closed_ = true;
    return Status::OK();
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  FaultInjectionEnv::InodePtr inode_;
  bool closed_ = false;
};

void FaultInjectionEnv::FailAt(uint64_t op, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = ops_ + op;
  fault_kind_ = kind;
}

void FaultInjectionEnv::ClearFault() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = 0;
}

uint64_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

void FaultInjectionEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void FaultInjectionEnv::RecoverFromCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  // The restarted world sees exactly the durable view: fresh inodes whose live
  // content is the old durable content.
  std::map<std::string, InodePtr> reborn;
  for (const auto& [path, inode] : durable_) {
    auto fresh = std::make_shared<Inode>();
    fresh->live = inode->durable;
    fresh->durable = inode->durable;
    fresh->synced_once = true;
    reborn[path] = fresh;
  }
  live_ = reborn;
  durable_ = std::move(reborn);
  crashed_ = false;
  fail_at_ = 0;
}

FaultInjectionEnv::Injected FaultInjectionEnv::Account() {
  ++ops_;
  if (fail_at_ == 0 || ops_ != fail_at_) return Injected::kNone;
  fail_at_ = 0;  // One-shot.
  switch (fault_kind_) {
    case FaultKind::kFail:
      return Injected::kFail;
    case FaultKind::kShortWrite:
      return Injected::kShortWrite;
    case FaultKind::kCrashBefore:
      return Injected::kCrashBefore;
    case FaultKind::kCrashAfter:
      return Injected::kCrashAfter;
    case FaultKind::kCrashTorn:
      return Injected::kCrashTorn;
  }
  return Injected::kFail;
}

Status FaultInjectionEnv::CrashedError() const {
  return Status::IOError("injected fault: simulated crash");
}

void FaultInjectionEnv::SyncLocked(const std::string& path,
                                   const InodePtr& inode) {
  inode->durable = inode->live;
  inode->synced_once = true;
  // fsync-of-a-new-file approximation: syncing the handle also makes the
  // file's existence durable (see the header comment).
  durable_[path] = inode;
}

StatusOr<std::unique_ptr<File>> FaultInjectionEnv::NewAppendableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  Injected injected = Account();
  if (injected == Injected::kCrashBefore || injected == Injected::kCrashAfter ||
      injected == Injected::kCrashTorn) {
    crashed_ = true;
    return CrashedError();
  }
  if (injected != Injected::kNone) return InjectedError("open failed");
  auto it = live_.find(path);
  InodePtr inode;
  if (it != live_.end()) {
    inode = it->second;
  } else {
    inode = std::make_shared<Inode>();
    live_[path] = inode;
  }
  return std::unique_ptr<File>(new FaultFile(this, path, std::move(inode)));
}

StatusOr<std::unique_ptr<File>> FaultInjectionEnv::NewTruncatedFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  Injected injected = Account();
  if (injected == Injected::kCrashBefore || injected == Injected::kCrashAfter ||
      injected == Injected::kCrashTorn) {
    crashed_ = true;
    return CrashedError();
  }
  if (injected != Injected::kNone) return InjectedError("open failed");
  // A fresh inode: the durable namespace keeps pointing at the old one, so a
  // crash still shows the pre-truncation file.
  auto inode = std::make_shared<Inode>();
  live_[path] = inode;
  return std::unique_ptr<File>(new FaultFile(this, path, std::move(inode)));
}

StatusOr<std::string> FaultInjectionEnv::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  auto it = live_.find(path);
  if (it == live_.end()) return Status::NotFound("no such file: " + path);
  return it->second->live;
}

Status FaultInjectionEnv::TruncateFile(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  auto it = live_.find(path);
  if (it == live_.end()) return Status::NotFound("no such file: " + path);
  Injected injected = Account();
  if (injected == Injected::kCrashBefore || injected == Injected::kShortWrite ||
      injected == Injected::kCrashTorn) {
    if (injected != Injected::kShortWrite) {
      crashed_ = true;
      return CrashedError();
    }
    return InjectedError("truncate failed");
  }
  if (injected == Injected::kFail) return InjectedError("truncate failed");
  it->second->live.resize(size, '\0');
  if (injected == Injected::kCrashAfter) {
    crashed_ = true;
    return CrashedError();
  }
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  auto it = live_.find(from);
  if (it == live_.end()) return Status::NotFound("no such file: " + from);
  Injected injected = Account();
  if (injected == Injected::kFail || injected == Injected::kShortWrite) {
    return InjectedError("rename failed");
  }
  if (injected == Injected::kCrashBefore || injected == Injected::kCrashTorn) {
    crashed_ = true;
    return CrashedError();
  }
  InodePtr inode = it->second;
  live_.erase(it);
  live_[to] = std::move(inode);
  if (injected == Injected::kCrashAfter) {
    crashed_ = true;
    return CrashedError();
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  auto it = live_.find(path);
  if (it == live_.end()) return Status::NotFound("no such file: " + path);
  Injected injected = Account();
  if (injected == Injected::kFail || injected == Injected::kShortWrite) {
    return InjectedError("remove failed");
  }
  if (injected == Injected::kCrashBefore || injected == Injected::kCrashTorn) {
    crashed_ = true;
    return CrashedError();
  }
  live_.erase(it);
  if (injected == Injected::kCrashAfter) {
    crashed_ = true;
    return CrashedError();
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, inode] : live_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(std::move(rest));
  }
  return names;
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return false;
  return live_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultInjectionEnv::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  Injected injected = Account();
  if (injected == Injected::kFail || injected == Injected::kShortWrite) {
    return InjectedError("mkdir failed");
  }
  if (injected == Injected::kCrashBefore || injected == Injected::kCrashTorn) {
    crashed_ = true;
    return CrashedError();
  }
  dirs_.insert(dir);
  if (injected == Injected::kCrashAfter) {
    crashed_ = true;
    return CrashedError();
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedError();
  Injected injected = Account();
  if (injected == Injected::kFail || injected == Injected::kShortWrite) {
    return InjectedError("fsync dir failed");
  }
  if (injected == Injected::kCrashBefore || injected == Injected::kCrashTorn) {
    crashed_ = true;
    return CrashedError();
  }
  // The durable namespace under `dir` now mirrors the live namespace: pending
  // creations, renames and removals become crash-proof. Content durability is
  // still per-inode (what the last File::Sync captured).
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  auto under = [&prefix](const std::string& path) {
    return path.size() > prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0 &&
           path.find('/', prefix.size()) == std::string::npos;
  };
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (under(it->first) && live_.count(it->first) == 0) {
      it = durable_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_) {
    if (under(path)) durable_[path] = inode;
  }
  if (injected == Injected::kCrashAfter) {
    crashed_ = true;
    return CrashedError();
  }
  return Status::OK();
}

}  // namespace kbt::store
