#include "store/recovery.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "rel/overlay.h"
#include "rel/relation.h"
#include "store/checkpoint.h"

namespace kbt::store {

namespace {

StatusOr<Knowledgebase> ApplyTupleDelta(const Knowledgebase& kb,
                                        WalRecordKind kind,
                                        const TupleDelta& delta) {
  KBT_ASSIGN_OR_RETURN(auto resolved, ResolveTupleDelta(delta, kb.schema()));
  const size_t pos = resolved.first;
  const Relation& change = resolved.second;
  if (kb.empty()) return Knowledgebase(kb.schema());

  // The edit applies to every world W uniformly: W' = W ∪ C (insert) or
  // W \ C (delete). Fold C into the shared base once — B' = B ∪ C / B \ C —
  // and the repaired overlay of each world relative to B' is, in both cases,
  //   adds' = adds \ C,  dels' = dels \ C
  // (an inserted tuple leaves per-world adds and is no longer a deletable
  // base tuple; a deleted tuple leaves the base, so neither side may mention
  // it). O(base relation + worlds × delta) instead of O(worlds × database).
  Database base = *kb.base();
  const Relation& old = base.relation_at(pos);
  base.ReplaceRelation(pos, kind == WalRecordKind::kInsert
                                ? old.Union(change)
                                : old.Difference(change));
  std::vector<WorldOverlay> overlays;
  overlays.reserve(kb.size());
  for (const WorldOverlay& overlay : kb.overlays()) {
    std::vector<RelationDelta> deltas = overlay.deltas();
    for (RelationDelta& d : deltas) {
      if (d.pos != pos) continue;
      d.adds = d.adds.Difference(change);
      d.dels = d.dels.Difference(change);
    }
    overlays.push_back(WorldOverlay::FromDeltas(std::move(deltas)));
  }
  // FromBaseAndOverlays re-canonicalizes: a delete can collapse worlds that
  // now coincide, exactly the possible-worlds semantics.
  return Knowledgebase::FromBaseAndOverlays(
      std::make_shared<const Database>(std::move(base)), std::move(overlays));
}

}  // namespace

std::string CheckpointFileName(uint64_t lsn) {
  return "checkpoint-" + std::to_string(lsn);
}

std::string WalFileName(uint64_t lsn) { return "wal-" + std::to_string(lsn); }

std::optional<uint64_t> ParseStoreLsnSuffix(std::string_view name,
                                            std::string_view prefix) {
  if (name.size() <= prefix.size() + 1 ||
      name.substr(0, prefix.size()) != prefix || name[prefix.size()] != '-') {
    return std::nullopt;
  }
  std::string_view digits = name.substr(prefix.size() + 1);
  uint64_t lsn = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    if (lsn > (UINT64_MAX - 9) / 10) return std::nullopt;
    lsn = lsn * 10 + static_cast<uint64_t>(c - '0');
  }
  return lsn;
}

StatusOr<Knowledgebase> ApplyWalRecord(Engine& engine, const WalRecord& record,
                                       const Knowledgebase& kb) {
  switch (record.kind) {
    case WalRecordKind::kTransform:
      return engine.Apply(record.payload, kb);
    case WalRecordKind::kInsert:
    case WalRecordKind::kDelete: {
      KBT_ASSIGN_OR_RETURN(TupleDelta delta, DecodeTupleDelta(record.payload));
      return ApplyTupleDelta(kb, record.kind, delta);
    }
  }
  return Status::Internal("unreachable wal record kind");
}

StatusOr<RecoveredStore> RecoverStore(Env* env, const std::string& dir,
                                      Engine& engine) {
  KBT_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<uint64_t> checkpoint_lsns;
  for (const std::string& name : names) {
    if (auto lsn = ParseStoreLsnSuffix(name, "checkpoint")) {
      checkpoint_lsns.push_back(*lsn);
    }
  }
  if (checkpoint_lsns.empty()) {
    return Status::NotFound("no checkpoint in store directory " + dir);
  }
  std::sort(checkpoint_lsns.rbegin(), checkpoint_lsns.rend());

  RecoveredStore recovered;
  bool have_checkpoint = false;
  std::string first_error;
  for (uint64_t lsn : checkpoint_lsns) {
    StatusOr<CheckpointContents> contents =
        ReadCheckpoint(env, dir + "/" + CheckpointFileName(lsn));
    if (contents.ok()) {
      if (contents->lsn != lsn) {
        // The name and header disagree — treat like any other corruption.
        if (first_error.empty()) first_error = "checkpoint lsn mismatch";
        continue;
      }
      recovered.kb = std::move(contents->kb);
      recovered.checkpoint_lsn = lsn;
      have_checkpoint = true;
      break;
    }
    if (first_error.empty()) first_error = contents.status().message();
  }
  if (!have_checkpoint) {
    return Status::DataLoss("no valid checkpoint in " + dir + " (" +
                            first_error + ")");
  }

  const std::string wal_path =
      dir + "/" + WalFileName(recovered.checkpoint_lsn);
  StatusOr<std::string> wal_bytes = env->ReadFile(wal_path);
  if (!wal_bytes.ok()) {
    if (wal_bytes.status().code() == StatusCode::kNotFound) {
      // Crash between checkpoint and the creation of its log: the checkpoint
      // is the whole committed state.
      recovered.lsn = recovered.checkpoint_lsn;
      return recovered;
    }
    return wal_bytes.status();
  }
  recovered.wal_exists = true;
  recovered.wal_file_size = wal_bytes->size();

  if (wal_bytes->size() < kWalHeaderSize) {
    // Empty or torn mid-header-append: no record was ever committed to this
    // log. The caller truncates to zero and reopens it as a fresh file.
    recovered.wal_valid_bytes = 0;
    recovered.lsn = recovered.checkpoint_lsn;
    return recovered;
  }
  KBT_ASSIGN_OR_RETURN(WalContents contents, ReadWal(*wal_bytes));
  if (contents.start_lsn != recovered.checkpoint_lsn) {
    return Status::DataLoss("wal start lsn disagrees with checkpoint lsn");
  }
  recovered.wal_valid_bytes = contents.valid_bytes;
  for (const WalRecord& record : contents.records) {
    KBT_ASSIGN_OR_RETURN(recovered.kb,
                         ApplyWalRecord(engine, record, recovered.kb));
  }
  recovered.lsn = recovered.checkpoint_lsn + contents.records.size();
  return recovered;
}

}  // namespace kbt::store
