#ifndef KBT_STORE_FSCK_H_
#define KBT_STORE_FSCK_H_

/// \file
/// Offline store integrity verification (the `kbt_fsck` tool's core).
///
/// CheckStore walks a store directory the way recovery would — checkpoints,
/// WAL headers, record CRCs, file continuity, the replication meta file —
/// and reports *every* problem it finds instead of stopping at the first, so
/// an operator sees the whole damage picture before deciding to restore or
/// accept data loss. Findings are split into:
///
///   * errors   — recovery would lose acknowledged commits or fail outright
///                (no decodable checkpoint, corrupt newest checkpoint, a
///                corrupt record *before* the WAL tail, lsn mismatches);
///   * warnings — conditions recovery handles by design (a torn tail from a
///                crash mid-append, leftover .tmp files, an older corrupt
///                checkpoint shadowed by a newer good one).
///
/// Deep mode additionally replays recovery end to end (checkpoint + WAL
/// through the deterministic engine) and reports the recovered lsn — the
/// strongest offline statement: "this store opens, to exactly lsn N".
///
/// Pure read-only: CheckStore never writes, truncates, or repairs.

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "store/file.h"

namespace kbt::store {

struct FsckOptions {
  /// Replay recovery through the engine and report the recovered lsn.
  bool deep = false;
  /// Treat a torn WAL tail as an error instead of a warning (for stores that
  /// were closed cleanly, where a torn tail is unexpected).
  bool strict_tail = false;
};

struct FsckReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  uint64_t checkpoints_seen = 0;
  uint64_t checkpoints_valid = 0;
  /// The newest valid checkpoint's lsn (recovery's starting point).
  uint64_t best_checkpoint_lsn = 0;
  uint64_t wal_files_seen = 0;
  uint64_t wal_records = 0;     ///< Valid records across all WAL files.
  uint64_t torn_tail_bytes = 0; ///< Bytes past the last whole record.
  bool has_repl_meta = false;
  uint64_t repl_epoch = 0;      ///< Current epoch when has_repl_meta.
  /// Deep mode: the lsn recovery lands on (0 unless deep && clean enough).
  uint64_t recovered_lsn = 0;

  bool clean() const { return errors.empty(); }
};

/// Verifies the store in `dir`. Returns the report — problems live in
/// report.errors/warnings, not the Status; only an unreadable directory (or
/// a directory that is not a store at all) fails the call itself.
StatusOr<FsckReport> CheckStore(Env* env, const std::string& dir,
                                const FsckOptions& options = FsckOptions());

/// Renders the report as human-readable lines ("ok" / numbered findings).
std::string FormatFsckReport(const FsckReport& report);

}  // namespace kbt::store

#endif  // KBT_STORE_FSCK_H_
