#include "store/crc32.h"

#include <array>

namespace kbt::store {

namespace {

/// The CRC-32C (iSCSI) polynomial, reflected.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  static const std::array<uint32_t, 256> table = MakeTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace kbt::store
