#include "store/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace kbt::store {

namespace {

class PosixFile final : public File {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("append to closed file " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOErrorFromErrno("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync of closed file " + path_);
    if (::fsync(fd_) != 0) {
      return Status::IOErrorFromErrno("fsync " + path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOErrorFromErrno("close " + path_, errno);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<File>> NewAppendableFile(
      const std::string& path) override {
    return OpenFile(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  StatusOr<std::unique_ptr<File>> NewTruncatedFile(
      const std::string& path) override {
    return OpenFile(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  StatusOr<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IOErrorFromErrno("open " + path, errno);
    }
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int saved = errno;
        ::close(fd);
        return Status::IOErrorFromErrno("read " + path, saved);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IOErrorFromErrno("truncate " + path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOErrorFromErrno("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOErrorFromErrno("unlink " + path, errno);
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return Status::IOErrorFromErrno("opendir " + dir, errno);
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOErrorFromErrno("mkdir " + dir, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IOErrorFromErrno("open dir " + dir, errno);
    Status s;
    if (::fsync(fd) != 0) {
      s = Status::IOErrorFromErrno("fsync dir " + dir, errno);
    }
    ::close(fd);
    return s;
  }

 private:
  StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path, int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::IOErrorFromErrno("open " + path, errno);
    return std::unique_ptr<File>(new PosixFile(path, fd));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace kbt::store
