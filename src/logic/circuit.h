#ifndef KBT_LOGIC_CIRCUIT_H_
#define KBT_LOGIC_CIRCUIT_H_

/// \file
/// Hash-consed boolean circuits (AND/OR/NOT/VAR/CONST DAGs) over a flat node
/// arena.
///
/// The grounder lowers a first-order sentence over a finite domain into a circuit
/// whose variables are ground-atom ids; the Tseitin encoder then lowers the circuit
/// to CNF. Hash-consing keeps repeated subformulas (ubiquitous after quantifier
/// expansion) shared, and constructors fold constants, flatten nested same-kind
/// gates, and collapse double negation.
///
/// Storage is arena-based: node records live in one contiguous array and the child
/// lists of n-ary And/Or gates are ranges of a single shared child buffer, so
/// building and walking a million-node grounding performs no per-node heap
/// allocation. The hash-consing table is open-addressed (linear probing over a
/// power-of-two id table) — no `unordered_map` node allocation on the grounding
/// hot path.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "base/hash.h"

namespace kbt {

/// Child → parent adjacency of a finished circuit, CSR-packed. Built once per
/// circuit (Circuit::BuildUsers) and read concurrently by ReevaluateInto —
/// the incremental form of EvaluateAllInto.
struct CircuitUsers {
  std::vector<uint32_t> offset;  ///< Node id → first user index (size()+1 long).
  std::vector<int32_t> data;     ///< Concatenated parent node ids.
};

/// A boolean circuit with structural sharing. Node ids are dense ints; ids 0 and 1
/// are reserved for the constants false and true.
class Circuit {
 public:
  enum class NodeKind : uint8_t { kConst, kVar, kNot, kAnd, kOr };

  /// A read-only view of one node. `children` points into the circuit's shared
  /// child buffer: the view stays valid until the next node is created, so read
  /// what you need before interning further nodes (walks that only inspect an
  /// already-built circuit — Tseitin encoding, evaluation, printing — are safe
  /// throughout).
  struct Node {
    NodeKind kind;
    /// kVar: external variable id. kConst: 0 or 1.
    int var = 0;
    /// kNot: one child; kAnd/kOr: two or more children (sorted, deduplicated).
    std::span<const int> children;
  };

  Circuit();

  /// Constant nodes.
  int FalseNode() const { return 0; }
  int TrueNode() const { return 1; }

  /// Variable node for external variable `var_id` (hash-consed; ids are expected
  /// to be small and dense, as produced by AtomIndex).
  int VarNode(int var_id);

  /// Negation; folds constants and double negation.
  int NotNode(int child);

  /// Conjunction; folds constants, flattens nested ANDs, dedups children,
  /// short-circuits complementary literals to false.
  int AndNode(std::vector<int> children);

  /// Disjunction (dual simplifications).
  int OrNode(std::vector<int> children);

  /// a → b as ¬a ∨ b.
  int ImpliesNode(int a, int b) { return OrNode({NotNode(a), b}); }
  /// a ↔ b as (a → b) ∧ (b → a); children are shared, not re-expanded.
  int IffNode(int a, int b) {
    return AndNode({ImpliesNode(a, b), ImpliesNode(b, a)});
  }

  /// View of node `id` (see the Node lifetime note above).
  Node node(int id) const {
    const NodeData& n = nodes_[static_cast<size_t>(id)];
    return Node{n.kind, n.var,
                std::span<const int>(child_arena_.data() + n.child_begin,
                                     n.child_count)};
  }
  /// Total number of nodes (monotone over the circuit's lifetime).
  size_t size() const { return nodes_.size(); }

  /// Evaluates the subcircuit rooted at `root` under `var_value` (memoized).
  bool Evaluate(int root, const std::function<bool(int)>& var_value) const;

  /// Evaluates *every* node reachable from `root` under `var_value` — no
  /// gate short-circuiting — into `memo` (resized to size(); 0 = unreached,
  /// 1 = false, 2 = true). The SAT enumerator uses this to seed branching
  /// phases for the Tseitin gate variables with their value under a world's
  /// default assignment, so the first model search walks toward the nearest
  /// candidate instead of wandering through unconstrained gate decisions.
  void EvaluateAllInto(int root, const std::function<bool(int)>& var_value,
                       std::vector<int8_t>* memo) const;

  /// Child → parent adjacency for ReevaluateInto; O(nodes + edges).
  CircuitUsers BuildUsers() const;

  /// Patches a previous EvaluateAllInto result in place after some external
  /// variables changed value, re-walking only the affected cone. `memo` must
  /// hold an unmodified EvaluateAllInto result for this circuit, `users` a
  /// BuildUsers adjacency, and `var_value` the *new* assignment; `heap` is
  /// caller-owned worklist scratch (kept warm across calls). The result is
  /// bit-identical to a fresh EvaluateAllInto under the new assignment —
  /// worlds sharing a grounding pay O(|changed cone|), not O(circuit).
  void ReevaluateInto(std::span<const int> changed_vars,
                      const std::function<bool(int)>& var_value,
                      const CircuitUsers& users, std::vector<int8_t>* memo,
                      std::vector<int>* heap) const;

  /// External variable ids reachable from `root`, sorted and deduplicated.
  std::vector<int> CollectVars(int root) const;

  /// Debug rendering of the subcircuit at `root` (s-expression).
  std::string ToString(int root) const;

 private:
  /// Flat node record: children live in child_arena_[child_begin, +child_count).
  struct NodeData {
    NodeKind kind;
    int32_t var = 0;
    uint32_t child_begin = 0;
    uint32_t child_count = 0;
  };

  static uint64_t NodeHash(NodeKind kind, int var, std::span<const int> children);
  bool NodeEquals(int id, NodeKind kind, int var,
                  std::span<const int> children) const;
  /// Returns the id of the structurally identical node, interning a new one if
  /// absent. `children` is copied into the shared child buffer on insert.
  int Intern(NodeKind kind, int var, std::span<const int> children);
  void GrowTable();
  /// Shared gate-simplification body for AndNode/OrNode.
  int GateNode(NodeKind kind, const std::vector<int>& children,
               int absorbing_const, int identity_const);

  std::vector<NodeData> nodes_;
  std::vector<int> child_arena_;
  std::vector<uint64_t> hashes_;  ///< Parallel to nodes_ (rehash without recompute).
  /// Open-addressed hash-cons table: node ids, kEmptySlot when free. Power-of-two
  /// size, linear probing, grown at ~70% load.
  std::vector<int32_t> table_;
  size_t table_mask_ = 0;
  /// Dense var-id → node-id map (ground atom ids are dense by construction).
  std::vector<int> var_nodes_;
  std::vector<int> gate_scratch_;  ///< Flatten/dedup buffer for GateNode.

  static constexpr int32_t kEmptySlot = -1;
};

}  // namespace kbt

#endif  // KBT_LOGIC_CIRCUIT_H_
