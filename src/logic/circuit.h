#ifndef KBT_LOGIC_CIRCUIT_H_
#define KBT_LOGIC_CIRCUIT_H_

/// \file
/// Hash-consed boolean circuits (AND/OR/NOT/VAR/CONST DAGs).
///
/// The grounder lowers a first-order sentence over a finite domain into a circuit
/// whose variables are ground-atom ids; the Tseitin encoder then lowers the circuit
/// to CNF. Hash-consing keeps repeated subformulas (ubiquitous after quantifier
/// expansion) shared, and constructors fold constants, flatten nested same-kind
/// gates, and collapse double negation.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"

namespace kbt {

/// A boolean circuit with structural sharing. Node ids are dense ints; ids 0 and 1
/// are reserved for the constants false and true.
class Circuit {
 public:
  enum class NodeKind : uint8_t { kConst, kVar, kNot, kAnd, kOr };

  struct Node {
    NodeKind kind;
    /// kVar: external variable id. kConst: 0 or 1.
    int var = 0;
    /// kNot: one child; kAnd/kOr: two or more children (sorted, deduplicated).
    std::vector<int> children;
  };

  Circuit();

  /// Constant nodes.
  int FalseNode() const { return 0; }
  int TrueNode() const { return 1; }

  /// Variable node for external variable `var_id` (hash-consed).
  int VarNode(int var_id);

  /// Negation; folds constants and double negation.
  int NotNode(int child);

  /// Conjunction; folds constants, flattens nested ANDs, dedups children,
  /// short-circuits complementary literals to false.
  int AndNode(std::vector<int> children);

  /// Disjunction (dual simplifications).
  int OrNode(std::vector<int> children);

  /// a → b as ¬a ∨ b.
  int ImpliesNode(int a, int b) { return OrNode({NotNode(a), b}); }
  /// a ↔ b as (a → b) ∧ (b → a); children are shared, not re-expanded.
  int IffNode(int a, int b) {
    return AndNode({ImpliesNode(a, b), ImpliesNode(b, a)});
  }

  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  /// Total number of nodes (monotone over the circuit's lifetime).
  size_t size() const { return nodes_.size(); }

  /// Evaluates the subcircuit rooted at `root` under `var_value` (memoized).
  bool Evaluate(int root, const std::function<bool(int)>& var_value) const;

  /// External variable ids reachable from `root`, sorted and deduplicated.
  std::vector<int> CollectVars(int root) const;

  /// Debug rendering of the subcircuit at `root` (s-expression).
  std::string ToString(int root) const;

 private:
  int Intern(Node node);

  struct NodeKey {
    NodeKind kind;
    int var;
    std::vector<int> children;
    friend bool operator==(const NodeKey& a, const NodeKey& b) {
      return a.kind == b.kind && a.var == b.var && a.children == b.children;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      size_t seed = HashCombine(static_cast<size_t>(k.kind), k.var);
      for (int c : k.children) seed = HashCombine(seed, static_cast<size_t>(c));
      return seed;
    }
  };

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, int, NodeKeyHash> cache_;
  std::unordered_map<int, int> var_nodes_;
};

}  // namespace kbt

#endif  // KBT_LOGIC_CIRCUIT_H_
