#ifndef KBT_LOGIC_GROUND_ATOM_H_
#define KBT_LOGIC_GROUND_ATOM_H_

/// \file
/// Ground atoms R(a1, ..., ak) and a dense index over them.
///
/// Grounding a sentence over the active domain B turns it into a propositional
/// formula whose variables are ground atoms; the update engine then works with
/// dense atom ids.

#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "rel/tuple.h"

namespace kbt {

/// A relation symbol applied to a ground tuple.
struct GroundAtom {
  Symbol relation;
  Tuple tuple;

  friend bool operator==(const GroundAtom& a, const GroundAtom& b) {
    return a.relation == b.relation && a.tuple == b.tuple;
  }

  std::string ToString() const { return NameOf(relation) + tuple.ToString(); }
};

/// A non-owning (relation, tuple view) probe key for AtomIndex lookups that
/// avoids materializing a GroundAtom on the hot grounding path.
struct GroundAtomRef {
  Symbol relation;
  TupleView tuple;
};

struct GroundAtomHash {
  using is_transparent = void;
  size_t operator()(const GroundAtom& a) const {
    return HashCombine(a.tuple.Hash(), a.relation);
  }
  size_t operator()(const GroundAtomRef& a) const {
    return HashCombine(a.tuple.Hash(), a.relation);
  }
};

struct GroundAtomEq {
  using is_transparent = void;
  bool operator()(const GroundAtom& a, const GroundAtom& b) const {
    return a.relation == b.relation && a.tuple == b.tuple;
  }
  bool operator()(const GroundAtomRef& a, const GroundAtom& b) const {
    return a.relation == b.relation && a.tuple == TupleView(b.tuple);
  }
  bool operator()(const GroundAtom& a, const GroundAtomRef& b) const {
    return (*this)(b, a);
  }
};

/// Interns ground atoms into dense ids [0, size).
class AtomIndex {
 public:
  /// Returns the id of `atom`, interning it on first use.
  int IdOf(const GroundAtom& atom) {
    auto it = index_.find(atom);
    if (it != index_.end()) return it->second;
    int id = static_cast<int>(atoms_.size());
    atoms_.push_back(atom);
    index_.emplace(atom, id);
    return id;
  }

  /// Id of the atom `relation(values...)`, interning it on first use. Existing
  /// atoms are found without constructing an owning GroundAtom.
  int IdOf(Symbol relation, TupleView values) {
    auto it = index_.find(GroundAtomRef{relation, values});
    if (it != index_.end()) return it->second;
    return IdOf(GroundAtom{relation, values.ToTuple()});
  }

  /// Returns the id of `atom` if interned, else -1.
  int Find(const GroundAtom& atom) const {
    auto it = index_.find(atom);
    return it == index_.end() ? -1 : it->second;
  }

  /// The atom with dense id `id` (must be < size()).
  const GroundAtom& AtomOf(int id) const { return atoms_[static_cast<size_t>(id)]; }

  /// Number of interned atoms.
  size_t size() const { return atoms_.size(); }

 private:
  std::unordered_map<GroundAtom, int, GroundAtomHash, GroundAtomEq> index_;
  std::vector<GroundAtom> atoms_;
};

}  // namespace kbt

#endif  // KBT_LOGIC_GROUND_ATOM_H_
