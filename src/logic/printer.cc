#include "logic/printer.h"

#include <cassert>

namespace kbt {

namespace {

// Binding strength, loosest to tightest. Quantifier bodies extend maximally to the
// right, so a quantifier itself is the loosest construct.
enum Precedence {
  kPrecQuantifier = 0,
  kPrecIff = 1,
  kPrecImplies = 2,
  kPrecOr = 3,
  kPrecAnd = 4,
  kPrecNot = 5,
  kPrecAtomic = 6,
};

int PrecedenceOf(const Formula& f) {
  switch (f->kind()) {
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return kPrecQuantifier;
    case FormulaKind::kIff:
      return kPrecIff;
    case FormulaKind::kImplies:
      return kPrecImplies;
    case FormulaKind::kOr:
      return kPrecOr;
    case FormulaKind::kAnd:
      return kPrecAnd;
    case FormulaKind::kNot:
      return kPrecNot;
    default:
      return kPrecAtomic;
  }
}

void Print(const Formula& f, int parent_prec, std::string* out) {
  int prec = PrecedenceOf(f);
  bool parens = prec < parent_prec;
  if (parens) *out += "(";
  switch (f->kind()) {
    case FormulaKind::kTrue:
      *out += "true";
      break;
    case FormulaKind::kFalse:
      *out += "false";
      break;
    case FormulaKind::kAtom: {
      *out += NameOf(f->relation());
      *out += "(";
      for (size_t i = 0; i < f->terms().size(); ++i) {
        if (i > 0) *out += ", ";
        *out += ToString(f->terms()[i]);
      }
      *out += ")";
      break;
    }
    case FormulaKind::kEquals:
      *out += ToString(f->terms()[0]);
      *out += " = ";
      *out += ToString(f->terms()[1]);
      break;
    case FormulaKind::kNot: {
      // Print "t1 != t2" for ¬(t1 = t2).
      const Formula& inner = f->children()[0];
      if (inner->kind() == FormulaKind::kEquals) {
        *out += ToString(inner->terms()[0]);
        *out += " != ";
        *out += ToString(inner->terms()[1]);
      } else {
        *out += "!";
        Print(inner, kPrecNot, out);
      }
      break;
    }
    case FormulaKind::kAnd: {
      for (size_t i = 0; i < f->children().size(); ++i) {
        if (i > 0) *out += " & ";
        Print(f->children()[i], kPrecAnd + 1, out);
      }
      break;
    }
    case FormulaKind::kOr: {
      for (size_t i = 0; i < f->children().size(); ++i) {
        if (i > 0) *out += " | ";
        Print(f->children()[i], kPrecOr + 1, out);
      }
      break;
    }
    case FormulaKind::kImplies:
      // Right-associative: a -> b -> c is a -> (b -> c).
      Print(f->children()[0], kPrecImplies + 1, out);
      *out += " -> ";
      Print(f->children()[1], kPrecImplies, out);
      break;
    case FormulaKind::kIff:
      Print(f->children()[0], kPrecIff + 1, out);
      *out += " <-> ";
      Print(f->children()[1], kPrecIff + 1, out);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Merge runs of like quantifiers: "forall x, y: ...".
      FormulaKind kind = f->kind();
      *out += (kind == FormulaKind::kExists) ? "exists " : "forall ";
      Formula body = f;
      bool first = true;
      while (body->kind() == kind) {
        if (!first) *out += ", ";
        *out += NameOf(body->variable());
        first = false;
        body = body->children()[0];
      }
      *out += ": ";
      Print(body, kPrecQuantifier, out);
      break;
    }
  }
  if (parens) *out += ")";
}

}  // namespace

std::string ToString(const Term& term) { return NameOf(term.symbol); }

std::string ToString(const Formula& f) {
  assert(f != nullptr);
  std::string out;
  Print(f, kPrecQuantifier, &out);
  return out;
}

}  // namespace kbt
