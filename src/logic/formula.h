#ifndef KBT_LOGIC_FORMULA_H_
#define KBT_LOGIC_FORMULA_H_

/// \file
/// The paper's first-order language L: function-free formulas over relation symbols,
/// variables, domain constants, ∧, ¬, ∃ and equality (§2). We additionally provide
/// ∨, →, ↔ and ∀ as first-class connectives (all definable from the paper's base) so
/// that the §3 example transformations can be written exactly as printed.
///
/// Formulas are immutable, shared (shallow-copied) trees: `Formula` is a
/// `shared_ptr<const FormulaNode>`. Subformulas may therefore be reused freely, and
/// all analyses treat formulas as DAGs.

#include <memory>
#include <string>
#include <vector>

#include "base/interner.h"
#include "rel/tuple.h"

namespace kbt {

/// A term of L: a variable or a domain constant. Function symbols do not exist.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind;
  /// Interned variable name (kVariable) or domain element (kConstant).
  Symbol symbol;

  /// A variable term.
  static Term Var(Symbol name) { return Term{Kind::kVariable, name}; }
  static Term Var(std::string_view name) { return Var(Name(name)); }
  /// A constant term.
  static Term Const(Value value) { return Term{Kind::kConstant, value}; }
  static Term Const(std::string_view name) { return Const(Name(name)); }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.symbol == b.symbol;
  }
};

enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,     ///< R(t1, ..., tk)
  kEquals,   ///< t1 = t2
  kNot,      ///< ¬φ
  kAnd,      ///< φ1 ∧ ... ∧ φn (n-ary, n ≥ 1)
  kOr,       ///< φ1 ∨ ... ∨ φn (n-ary, n ≥ 1)
  kImplies,  ///< φ → ψ
  kIff,      ///< φ ↔ ψ
  kExists,   ///< ∃x φ
  kForall,   ///< ∀x φ
};

class FormulaNode;
/// Shared immutable formula handle.
using Formula = std::shared_ptr<const FormulaNode>;

/// One node of a formula tree. Construct via the factory functions below.
class FormulaNode {
 public:
  FormulaKind kind() const { return kind_; }

  /// Relation symbol; kind() must be kAtom.
  Symbol relation() const { return relation_; }
  /// Atom arguments (kAtom) or the two equality sides (kEquals).
  const std::vector<Term>& terms() const { return terms_; }
  /// Child formulas (connectives and quantifier bodies).
  const std::vector<Formula>& children() const { return children_; }
  /// Bound variable; kind() must be kExists or kForall.
  Symbol variable() const { return variable_; }

  // Internal constructor; use the factories.
  FormulaNode(FormulaKind kind, Symbol relation, std::vector<Term> terms,
              std::vector<Formula> children, Symbol variable)
      : kind_(kind),
        relation_(relation),
        terms_(std::move(terms)),
        children_(std::move(children)),
        variable_(variable) {}

 private:
  FormulaKind kind_;
  Symbol relation_ = 0;
  std::vector<Term> terms_;
  std::vector<Formula> children_;
  Symbol variable_ = 0;
};

/// The constant ⊤.
Formula True();
/// The constant ⊥.
Formula False();
/// Atom R(args...).
Formula Atom(Symbol relation, std::vector<Term> args);
Formula Atom(std::string_view relation, std::vector<Term> args);
/// Equality t1 = t2.
Formula Equals(Term lhs, Term rhs);
/// Inequality t1 ≠ t2 (sugar for ¬(t1 = t2)).
Formula NotEquals(Term lhs, Term rhs);
/// Negation ¬φ.
Formula Not(Formula f);
/// Conjunction. Empty input yields ⊤; singleton input yields its element.
Formula And(std::vector<Formula> fs);
Formula And(Formula a, Formula b);
/// Disjunction. Empty input yields ⊥; singleton input yields its element.
Formula Or(std::vector<Formula> fs);
Formula Or(Formula a, Formula b);
/// Implication a → b.
Formula Implies(Formula a, Formula b);
/// Biconditional a ↔ b.
Formula Iff(Formula a, Formula b);
/// Existential quantification ∃x φ.
Formula Exists(Symbol var, Formula body);
Formula Exists(std::string_view var, Formula body);
/// Existential closure over several variables, left to right.
Formula Exists(std::vector<Symbol> vars, Formula body);
/// Universal quantification ∀x φ.
Formula Forall(Symbol var, Formula body);
Formula Forall(std::string_view var, Formula body);
/// Universal closure over several variables, left to right.
Formula Forall(std::vector<Symbol> vars, Formula body);

/// Structural equality (same tree shape; bound variable names compared verbatim).
bool StructurallyEqual(const Formula& a, const Formula& b);

}  // namespace kbt

#endif  // KBT_LOGIC_FORMULA_H_
