#include "logic/grounder.h"

#include <unordered_map>

#include "logic/analysis.h"
#include "logic/printer.h"

namespace kbt {

namespace {

class GrounderImpl {
 public:
  GrounderImpl(const std::vector<Value>& domain, const GrounderOptions& options,
               Grounding* out)
      : domain_(domain), options_(options), out_(out) {}

  StatusOr<int> Ground(const Formula& f) {
    if (out_->circuit.size() > options_.max_nodes) {
      return Status::ResourceExhausted(
          "grounding exceeded node budget of " + std::to_string(options_.max_nodes));
    }
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return out_->circuit.TrueNode();
      case FormulaKind::kFalse:
        return out_->circuit.FalseNode();
      case FormulaKind::kAtom: {
        scratch_.clear();
        scratch_.reserve(f->terms().size());
        for (const Term& t : f->terms()) {
          KBT_ASSIGN_OR_RETURN(Value v, Resolve(t));
          scratch_.push_back(v);
        }
        int id = out_->atoms.IdOf(f->relation(),
                                  TupleView(scratch_.data(), scratch_.size()));
        return out_->circuit.VarNode(id);
      }
      case FormulaKind::kEquals: {
        KBT_ASSIGN_OR_RETURN(Value lhs, Resolve(f->terms()[0]));
        KBT_ASSIGN_OR_RETURN(Value rhs, Resolve(f->terms()[1]));
        return lhs == rhs ? out_->circuit.TrueNode() : out_->circuit.FalseNode();
      }
      case FormulaKind::kNot: {
        KBT_ASSIGN_OR_RETURN(int child, Ground(f->children()[0]));
        return out_->circuit.NotNode(child);
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        std::vector<int> children;
        children.reserve(f->children().size());
        for (const Formula& c : f->children()) {
          KBT_ASSIGN_OR_RETURN(int gc, Ground(c));
          children.push_back(gc);
        }
        return f->kind() == FormulaKind::kAnd
                   ? out_->circuit.AndNode(std::move(children))
                   : out_->circuit.OrNode(std::move(children));
      }
      case FormulaKind::kImplies: {
        KBT_ASSIGN_OR_RETURN(int a, Ground(f->children()[0]));
        KBT_ASSIGN_OR_RETURN(int b, Ground(f->children()[1]));
        return out_->circuit.ImpliesNode(a, b);
      }
      case FormulaKind::kIff: {
        KBT_ASSIGN_OR_RETURN(int a, Ground(f->children()[0]));
        KBT_ASSIGN_OR_RETURN(int b, Ground(f->children()[1]));
        return out_->circuit.IffNode(a, b);
      }
      case FormulaKind::kForall:
      case FormulaKind::kExists: {
        std::vector<int> children;
        children.reserve(domain_.size());
        Symbol var = f->variable();
        // Save any outer binding of the same name (shadowing).
        auto saved = env_.find(var);
        std::optional<Value> outer;
        if (saved != env_.end()) outer = saved->second;
        for (Value v : domain_) {
          env_[var] = v;
          KBT_ASSIGN_OR_RETURN(int gc, Ground(f->children()[0]));
          children.push_back(gc);
        }
        if (outer) {
          env_[var] = *outer;
        } else {
          env_.erase(var);
        }
        return f->kind() == FormulaKind::kForall
                   ? out_->circuit.AndNode(std::move(children))
                   : out_->circuit.OrNode(std::move(children));
      }
    }
    return Status::Internal("unknown formula kind");
  }

 private:
  StatusOr<Value> Resolve(const Term& t) {
    if (t.is_constant()) return t.symbol;
    auto it = env_.find(t.symbol);
    if (it == env_.end()) {
      return Status::InvalidArgument("free variable in sentence: " + NameOf(t.symbol));
    }
    return it->second;
  }

  const std::vector<Value>& domain_;
  const GrounderOptions& options_;
  Grounding* out_;
  std::unordered_map<Symbol, Value> env_;
  std::vector<Value> scratch_;  // Atom-argument buffer; no alloc per atom.
};

}  // namespace

StatusOr<Grounding> GroundSentence(const Formula& f, const std::vector<Value>& domain,
                                   const GrounderOptions& options) {
  Grounding g;
  GrounderImpl impl(domain, options, &g);
  KBT_ASSIGN_OR_RETURN(g.root, impl.Ground(f));
  return g;
}

}  // namespace kbt
