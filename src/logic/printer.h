#ifndef KBT_LOGIC_PRINTER_H_
#define KBT_LOGIC_PRINTER_H_

/// \file
/// Rendering formulas back to the concrete syntax accepted by logic/parser.h, so that
/// `Parse(ToString(f))` round-trips (up to insignificant parentheses).

#include <string>

#include "logic/formula.h"

namespace kbt {

/// Renders a term: variable and constant names print verbatim.
std::string ToString(const Term& term);

/// Renders a formula with minimal parentheses, e.g.
/// "forall x, y: R1(x, y) & !(x = y) -> R2(x, y)".
std::string ToString(const Formula& f);

}  // namespace kbt

#endif  // KBT_LOGIC_PRINTER_H_
