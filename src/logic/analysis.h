#ifndef KBT_LOGIC_ANALYSIS_H_
#define KBT_LOGIC_ANALYSIS_H_

/// \file
/// Static analyses over formulas: free variables, constants, the schema σ(φ),
/// substitution φ(x/a), and the syntactic classifications the complexity results of
/// §4.3 key on (quantifier-free, ground).

#include <set>
#include <vector>

#include "base/status.h"
#include "logic/formula.h"
#include "rel/schema.h"

namespace kbt {

/// The set of variables occurring free in φ.
std::set<Symbol> FreeVariables(const Formula& f);

/// True iff φ has no free variables (φ ∈ 8, a sentence).
bool IsSentence(const Formula& f);

/// All constants (domain elements) occurring in φ, sorted and deduplicated. These
/// join the values of db to form the active domain B of eq. (9).
std::vector<Value> ConstantsOf(const Formula& f);

/// The schema σ(φ): every relation symbol of φ with its arity. Fails with
/// kInvalidArgument if a symbol is used at two different arities.
StatusOr<Schema> SchemaOf(const Formula& f);

/// φ with every *free* occurrence of `var` replaced by the constant `value` —
/// the paper's φ(x_i / a_j). Substituting a constant cannot capture.
Formula Substitute(const Formula& f, Symbol var, Value value);

/// True iff φ contains no quantifiers (the Θ0 fragment of §4.3).
bool IsQuantifierFree(const Formula& f);

/// True iff φ contains no variables at all: a boolean combination of ground atoms
/// ("quantifier-free transformations" in Theorem 4.7 are over these).
bool IsGround(const Formula& f);

/// Counts nodes of the formula tree (|φ| up to constants; used by expression
/// complexity benchmarks and resource guards).
size_t FormulaSize(const Formula& f);

/// Maximum quantifier nesting depth (drives grounding size O(|φ|·|B|^depth)).
size_t QuantifierDepth(const Formula& f);

}  // namespace kbt

#endif  // KBT_LOGIC_ANALYSIS_H_
