#include "logic/transform.h"

#include <cassert>

namespace kbt {

namespace {

Formula Nnf(const Formula& f, bool negated);

Formula NnfChildren(const Formula& f, bool negated, bool conjunction) {
  std::vector<Formula> children;
  children.reserve(f->children().size());
  for (const Formula& c : f->children()) children.push_back(Nnf(c, negated));
  return conjunction ? And(std::move(children)) : Or(std::move(children));
}

Formula Nnf(const Formula& f, bool negated) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return negated ? False() : True();
    case FormulaKind::kFalse:
      return negated ? True() : False();
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return negated ? Not(f) : f;
    case FormulaKind::kNot:
      return Nnf(f->children()[0], !negated);
    case FormulaKind::kAnd:
      // ¬(⋀ φi) = ⋁ ¬φi.
      return NnfChildren(f, negated, /*conjunction=*/!negated);
    case FormulaKind::kOr:
      return NnfChildren(f, negated, /*conjunction=*/negated);
    case FormulaKind::kImplies: {
      // a → b = ¬a ∨ b; negated: a ∧ ¬b.
      Formula na = Nnf(f->children()[0], !negated);
      Formula b = Nnf(f->children()[1], negated);
      return negated ? And(std::move(na), std::move(b))
                     : Or(std::move(na), std::move(b));
    }
    case FormulaKind::kIff: {
      // a ↔ b = (a ∧ b) ∨ (¬a ∧ ¬b); negated: (a ∧ ¬b) ∨ (¬a ∧ b).
      Formula a_pos = Nnf(f->children()[0], false);
      Formula a_neg = Nnf(f->children()[0], true);
      Formula b_pos = Nnf(f->children()[1], false);
      Formula b_neg = Nnf(f->children()[1], true);
      if (negated) {
        return Or(And(a_pos, b_neg), And(a_neg, b_pos));
      }
      return Or(And(a_pos, b_pos), And(a_neg, b_neg));
    }
    case FormulaKind::kExists: {
      Formula body = Nnf(f->children()[0], negated);
      return negated ? Forall(f->variable(), std::move(body))
                     : Exists(f->variable(), std::move(body));
    }
    case FormulaKind::kForall: {
      Formula body = Nnf(f->children()[0], negated);
      return negated ? Exists(f->variable(), std::move(body))
                     : Forall(f->variable(), std::move(body));
    }
  }
  assert(false && "unreachable");
  return f;
}

}  // namespace

Formula ToNnf(const Formula& f) { return Nnf(f, /*negated=*/false); }

bool IsNnf(const Formula& f) {
  switch (f->kind()) {
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return false;
    case FormulaKind::kNot: {
      FormulaKind inner = f->children()[0]->kind();
      return inner == FormulaKind::kAtom || inner == FormulaKind::kEquals;
    }
    default:
      for (const Formula& c : f->children()) {
        if (!IsNnf(c)) return false;
      }
      return true;
  }
}

Formula Simplify(const Formula& f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return f;
    case FormulaKind::kEquals: {
      const Term& lhs = f->terms()[0];
      const Term& rhs = f->terms()[1];
      if (lhs == rhs) return True();
      if (lhs.is_constant() && rhs.is_constant()) {
        return lhs.symbol == rhs.symbol ? True() : False();
      }
      return f;
    }
    case FormulaKind::kNot: {
      Formula inner = Simplify(f->children()[0]);
      if (inner->kind() == FormulaKind::kTrue) return False();
      if (inner->kind() == FormulaKind::kFalse) return True();
      if (inner->kind() == FormulaKind::kNot) return inner->children()[0];
      return inner == f->children()[0] ? f : Not(std::move(inner));
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      bool conjunction = f->kind() == FormulaKind::kAnd;
      std::vector<Formula> children;
      for (const Formula& c : f->children()) {
        Formula sc = Simplify(c);
        if (sc->kind() == (conjunction ? FormulaKind::kTrue : FormulaKind::kFalse)) {
          continue;  // Neutral element.
        }
        if (sc->kind() == (conjunction ? FormulaKind::kFalse : FormulaKind::kTrue)) {
          return conjunction ? False() : True();  // Absorbing element.
        }
        if (sc->kind() == f->kind()) {
          // Flatten nested same-kind connectives.
          children.insert(children.end(), sc->children().begin(),
                          sc->children().end());
        } else {
          children.push_back(std::move(sc));
        }
      }
      return conjunction ? And(std::move(children)) : Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      Formula a = Simplify(f->children()[0]);
      Formula b = Simplify(f->children()[1]);
      if (a->kind() == FormulaKind::kFalse) return True();
      if (a->kind() == FormulaKind::kTrue) return b;
      if (b->kind() == FormulaKind::kTrue) return True();
      if (b->kind() == FormulaKind::kFalse) return Simplify(Not(a));
      return Implies(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      Formula a = Simplify(f->children()[0]);
      Formula b = Simplify(f->children()[1]);
      if (a->kind() == FormulaKind::kTrue) return b;
      if (b->kind() == FormulaKind::kTrue) return a;
      if (a->kind() == FormulaKind::kFalse) return Simplify(Not(b));
      if (b->kind() == FormulaKind::kFalse) return Simplify(Not(a));
      return Iff(std::move(a), std::move(b));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      Formula body = Simplify(f->children()[0]);
      // Quantifiers over constants stay (their truth depends on the domain being
      // nonempty), except when the body is itself constant over a *used* var...
      // We keep it simple and sound: only rebuild.
      if (body == f->children()[0]) return f;
      return f->kind() == FormulaKind::kExists
                 ? Exists(f->variable(), std::move(body))
                 : Forall(f->variable(), std::move(body));
    }
  }
  assert(false && "unreachable");
  return f;
}

}  // namespace kbt
