#ifndef KBT_LOGIC_PARSER_H_
#define KBT_LOGIC_PARSER_H_

/// \file
/// Recursive-descent parser for the concrete formula syntax.
///
/// Grammar (loosest to tightest; quantifier bodies extend maximally right):
///
///   formula    := iff
///   iff        := implies ( "<->" implies )*
///   implies    := or ( "->" implies )?                 -- right associative
///   or         := and ( "|" and )*
///   and        := unary ( "&" unary )*
///   unary      := "!" unary | quantifier | primary
///   quantifier := ("forall" | "exists") ident ("," ident)* (":" | ".") formula
///   primary    := "(" formula ")" | "true" | "false"
///               | ident "(" [ term ("," term)* ] ")"   -- atom (0-ary: "R()")
///               | term ("=" | "!=") term
///   term       := ident | number
///   ident      := [A-Za-z_][A-Za-z0-9_']*
///
/// Variable/constant disambiguation is purely syntactic, as in the paper: an
/// identifier in term position names a *variable* iff an enclosing quantifier binds
/// it; otherwise it names a domain constant. Numbers are constants.

#include <string_view>

#include "base/status.h"
#include "logic/formula.h"

namespace kbt {

/// Parses one formula; trailing input is an error. Returns kParseError with a
/// position-annotated message on malformed input.
StatusOr<Formula> ParseFormula(std::string_view text);

/// Parses a formula and additionally checks it is a sentence (no free variables),
/// as required by the τ operator's signature τ: Φ × KB → KB.
StatusOr<Formula> ParseSentence(std::string_view text);

}  // namespace kbt

#endif  // KBT_LOGIC_PARSER_H_
