#include "logic/parser.h"

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "logic/analysis.h"

namespace kbt {

namespace {

enum class TokenKind {
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kColon,   // ":" or "." after a quantifier's variable list
  kAnd,     // &
  kOr,      // |
  kNot,     // !
  kArrow,   // ->
  kDArrow,  // <->
  kEquals,  // =
  kNotEquals,  // !=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          std::isdigit(static_cast<unsigned char>(c))) {
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '\'')) {
          ++i;
        }
        out.push_back({TokenKind::kIdent, std::string(text_.substr(start, i - start)),
                       start});
        continue;
      }
      switch (c) {
        case '(':
          out.push_back({TokenKind::kLParen, "(", start});
          ++i;
          break;
        case ')':
          out.push_back({TokenKind::kRParen, ")", start});
          ++i;
          break;
        case ',':
          out.push_back({TokenKind::kComma, ",", start});
          ++i;
          break;
        case ':':
        case '.':
          out.push_back({TokenKind::kColon, std::string(1, c), start});
          ++i;
          break;
        case '&':
          out.push_back({TokenKind::kAnd, "&", start});
          ++i;
          break;
        case '|':
          out.push_back({TokenKind::kOr, "|", start});
          ++i;
          break;
        case '!':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            out.push_back({TokenKind::kNotEquals, "!=", start});
            i += 2;
          } else {
            out.push_back({TokenKind::kNot, "!", start});
            ++i;
          }
          break;
        case '-':
          if (i + 1 < text_.size() && text_[i + 1] == '>') {
            out.push_back({TokenKind::kArrow, "->", start});
            i += 2;
          } else {
            return Error(start, "expected '->' after '-'");
          }
          break;
        case '<':
          if (i + 2 < text_.size() && text_[i + 1] == '-' && text_[i + 2] == '>') {
            out.push_back({TokenKind::kDArrow, "<->", start});
            i += 3;
          } else {
            return Error(start, "expected '<->' after '<'");
          }
          break;
        case '=':
          out.push_back({TokenKind::kEquals, "=", start});
          ++i;
          break;
        default:
          return Error(start, std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back({TokenKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  Status Error(size_t pos, const std::string& message) {
    return Status::ParseError(message + " at position " + std::to_string(pos));
  }

  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Formula> Parse() {
    KBT_ASSIGN_OR_RETURN(Formula f, ParseIff());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    return f;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Next() { return tokens_[pos_++]; }
  bool Eat(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " +
                              std::to_string(Peek().pos) +
                              (Peek().text.empty() ? "" : " ('" + Peek().text + "')"));
  }

  StatusOr<Formula> ParseIff() {
    KBT_ASSIGN_OR_RETURN(Formula lhs, ParseImplies());
    while (Eat(TokenKind::kDArrow)) {
      KBT_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());
      lhs = Iff(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<Formula> ParseImplies() {
    KBT_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (Eat(TokenKind::kArrow)) {
      KBT_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());  // Right associative.
      return Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<Formula> ParseOr() {
    KBT_ASSIGN_OR_RETURN(Formula first, ParseAnd());
    std::vector<Formula> parts{std::move(first)};
    while (Eat(TokenKind::kOr)) {
      KBT_ASSIGN_OR_RETURN(Formula next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Or(std::move(parts));
  }

  StatusOr<Formula> ParseAnd() {
    KBT_ASSIGN_OR_RETURN(Formula first, ParseUnary());
    std::vector<Formula> parts{std::move(first)};
    while (Eat(TokenKind::kAnd)) {
      KBT_ASSIGN_OR_RETURN(Formula next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return And(std::move(parts));
  }

  StatusOr<Formula> ParseUnary() {
    if (Eat(TokenKind::kNot)) {
      KBT_ASSIGN_OR_RETURN(Formula inner, ParseUnary());
      return Not(std::move(inner));
    }
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "forall" || Peek().text == "exists")) {
      return ParseQuantifier();
    }
    return ParsePrimary();
  }

  StatusOr<Formula> ParseQuantifier() {
    bool universal = Next().text == "forall";
    std::vector<Symbol> vars;
    do {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected variable name after quantifier");
      }
      vars.push_back(Name(Next().text));
    } while (Eat(TokenKind::kComma));
    if (!Eat(TokenKind::kColon)) {
      return Error("expected ':' or '.' after quantified variables");
    }
    for (Symbol v : vars) scopes_.push_back(v);
    StatusOr<Formula> body = ParseIff();
    scopes_.resize(scopes_.size() - vars.size());
    if (!body.ok()) return body.status();
    return universal ? Forall(vars, std::move(*body)) : Exists(vars, std::move(*body));
  }

  StatusOr<Formula> ParsePrimary() {
    if (Eat(TokenKind::kLParen)) {
      KBT_ASSIGN_OR_RETURN(Formula inner, ParseIff());
      if (!Eat(TokenKind::kRParen)) return Error("expected ')'");
      return inner;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected formula");
    }
    if (Peek().text == "true") {
      Next();
      return True();
    }
    if (Peek().text == "false") {
      Next();
      return False();
    }
    // Atom: ident '(' ... ')'.
    if (Peek(1).kind == TokenKind::kLParen) {
      std::string relation = Next().text;
      Next();  // '('
      std::vector<Term> args;
      if (!Eat(TokenKind::kRParen)) {
        do {
          KBT_ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(t);
        } while (Eat(TokenKind::kComma));
        if (!Eat(TokenKind::kRParen)) return Error("expected ')' after atom arguments");
      }
      return Atom(relation, std::move(args));
    }
    // Equality / inequality between two terms.
    KBT_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Eat(TokenKind::kEquals)) {
      KBT_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return Equals(lhs, rhs);
    }
    if (Eat(TokenKind::kNotEquals)) {
      KBT_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return NotEquals(lhs, rhs);
    }
    return Error("expected '=' or '!=' after term");
  }

  StatusOr<Term> ParseTerm() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected term");
    }
    std::string name = Next().text;
    Symbol sym = Name(name);
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (*it == sym) return Term::Var(sym);
    }
    return Term::Const(sym);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<Symbol> scopes_;  // Stack of bound variables.
};

}  // namespace

StatusOr<Formula> ParseFormula(std::string_view text) {
  Lexer lexer(text);
  KBT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

StatusOr<Formula> ParseSentence(std::string_view text) {
  KBT_ASSIGN_OR_RETURN(Formula f, ParseFormula(text));
  std::set<Symbol> free = FreeVariables(f);
  if (!free.empty()) {
    std::string names;
    for (Symbol v : free) {
      if (!names.empty()) names += ", ";
      names += NameOf(v);
    }
    return Status::ParseError("formula is not a sentence; free variables: " + names);
  }
  return f;
}

}  // namespace kbt
