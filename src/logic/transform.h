#ifndef KBT_LOGIC_TRANSFORM_H_
#define KBT_LOGIC_TRANSFORM_H_

/// \file
/// Semantics-preserving formula rewrites.
///
/// * ToNnf — negation normal form: eliminates → and ↔ and pushes ¬ down to atoms
///   and equalities. Useful as a preprocessing step and as a test oracle (NNF must
///   preserve satisfaction under every database and domain).
/// * Simplify — constant folding and structural cleanup: ⊤/⊥ absorption, double
///   negation, flattening of nested conjunctions/disjunctions, trivial equalities
///   (t = t becomes ⊤; distinct-constant equalities become ⊥).

#include "logic/formula.h"

namespace kbt {

/// Negation normal form. The result contains only kAtom, kEquals, kAnd, kOr,
/// kExists, kForall, kTrue, kFalse and kNot-applied-to-atoms/equalities.
Formula ToNnf(const Formula& f);

/// True iff `f` is in negation normal form.
bool IsNnf(const Formula& f);

/// Constant folding and flattening; preserves models over every domain.
Formula Simplify(const Formula& f);

}  // namespace kbt

#endif  // KBT_LOGIC_TRANSFORM_H_
