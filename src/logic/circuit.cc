#include "logic/circuit.h"

#include <algorithm>
#include <cassert>

namespace kbt {

Circuit::Circuit() {
  table_.assign(256, kEmptySlot);
  table_mask_ = table_.size() - 1;
  nodes_.push_back(NodeData{NodeKind::kConst, 0, 0, 0});  // id 0: false
  nodes_.push_back(NodeData{NodeKind::kConst, 1, 0, 0});  // id 1: true
  hashes_.push_back(0);  // Constants are never looked up through the table.
  hashes_.push_back(0);
}

uint64_t Circuit::NodeHash(NodeKind kind, int var, std::span<const int> children) {
  uint64_t seed = HashCombine(static_cast<size_t>(kind) * 0x9e3779b97f4a7c15ULL,
                              static_cast<size_t>(var));
  for (int c : children) seed = HashCombine(seed, static_cast<size_t>(c));
  return Mix64(seed);
}

bool Circuit::NodeEquals(int id, NodeKind kind, int var,
                         std::span<const int> children) const {
  const NodeData& n = nodes_[static_cast<size_t>(id)];
  if (n.kind != kind || n.var != var || n.child_count != children.size()) {
    return false;
  }
  return std::equal(children.begin(), children.end(),
                    child_arena_.data() + n.child_begin);
}

void Circuit::GrowTable() {
  std::vector<int32_t> grown(table_.size() * 2, kEmptySlot);
  size_t mask = grown.size() - 1;
  for (int32_t id : table_) {
    if (id == kEmptySlot) continue;
    size_t slot = hashes_[static_cast<size_t>(id)] & mask;
    while (grown[slot] != kEmptySlot) slot = (slot + 1) & mask;
    grown[slot] = id;
  }
  table_ = std::move(grown);
  table_mask_ = mask;
}

int Circuit::Intern(NodeKind kind, int var, std::span<const int> children) {
  uint64_t hash = NodeHash(kind, var, children);
  size_t slot = hash & table_mask_;
  while (table_[slot] != kEmptySlot) {
    int32_t id = table_[slot];
    if (hashes_[static_cast<size_t>(id)] == hash &&
        NodeEquals(id, kind, var, children)) {
      return id;
    }
    slot = (slot + 1) & table_mask_;
  }
  int id = static_cast<int>(nodes_.size());
  NodeData n;
  n.kind = kind;
  n.var = var;
  n.child_begin = static_cast<uint32_t>(child_arena_.size());
  n.child_count = static_cast<uint32_t>(children.size());
  child_arena_.insert(child_arena_.end(), children.begin(), children.end());
  nodes_.push_back(n);
  hashes_.push_back(hash);
  table_[slot] = static_cast<int32_t>(id);
  // Keep the load factor below ~0.7 (constants never enter the table).
  if ((nodes_.size() * 10) > (table_.size() * 7)) GrowTable();
  return id;
}

int Circuit::VarNode(int var_id) {
  assert(var_id >= 0);
  size_t idx = static_cast<size_t>(var_id);
  if (idx >= var_nodes_.size()) var_nodes_.resize(idx + 1, -1);
  if (var_nodes_[idx] >= 0) return var_nodes_[idx];
  int id = Intern(NodeKind::kVar, var_id, {});
  var_nodes_[idx] = id;
  return id;
}

int Circuit::NotNode(int child) {
  if (child == FalseNode()) return TrueNode();
  if (child == TrueNode()) return FalseNode();
  const NodeData& n = nodes_[static_cast<size_t>(child)];
  if (n.kind == NodeKind::kNot) return child_arena_[n.child_begin];
  int c = child;
  return Intern(NodeKind::kNot, 0, std::span<const int>(&c, 1));
}

int Circuit::GateNode(NodeKind kind, const std::vector<int>& children,
                      int absorbing_const, int identity_const) {
  // Nested gate calls always complete before the enclosing call starts its own
  // body, so one scratch buffer suffices (no recursion through here).
  std::vector<int>& flat = gate_scratch_;
  flat.clear();
  for (int c : children) {
    if (c == identity_const) continue;
    if (c == absorbing_const) return absorbing_const;
    const NodeData& n = nodes_[static_cast<size_t>(c)];
    if (n.kind == kind) {
      flat.insert(flat.end(), child_arena_.begin() + n.child_begin,
                  child_arena_.begin() + n.child_begin + n.child_count);
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // x ∧ ¬x → false; x ∨ ¬x → true.
  for (int c : flat) {
    const NodeData& n = nodes_[static_cast<size_t>(c)];
    if (n.kind == NodeKind::kNot &&
        std::binary_search(flat.begin(), flat.end(),
                           child_arena_[n.child_begin])) {
      return absorbing_const;
    }
  }
  if (flat.empty()) return identity_const;
  if (flat.size() == 1) return flat[0];
  return Intern(kind, 0, flat);
}

int Circuit::AndNode(std::vector<int> children) {
  return GateNode(NodeKind::kAnd, children, FalseNode(), TrueNode());
}

int Circuit::OrNode(std::vector<int> children) {
  return GateNode(NodeKind::kOr, children, TrueNode(), FalseNode());
}

bool Circuit::Evaluate(int root, const std::function<bool(int)>& var_value) const {
  // Iterative DFS with a dense memo (0 = unknown, 1 = false, 2 = true): no
  // recursion and no hash-map allocation on the hot path. Each gate frame keeps
  // a child cursor so a revisit resumes where the last scan stopped — wide
  // quantifier-expansion gates stay O(children), not O(children²).
  std::vector<int8_t> memo(nodes_.size(), 0);
  struct Frame {
    int id;
    uint32_t next_child;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    int id = stack.back().id;
    size_t idx = static_cast<size_t>(id);
    if (memo[idx] != 0) {
      stack.pop_back();
      continue;
    }
    const NodeData& n = nodes_[idx];
    switch (n.kind) {
      case NodeKind::kConst:
        memo[idx] = n.var == 1 ? 2 : 1;
        stack.pop_back();
        break;
      case NodeKind::kVar:
        memo[idx] = var_value(n.var) ? 2 : 1;
        stack.pop_back();
        break;
      case NodeKind::kNot: {
        int c = child_arena_[n.child_begin];
        int8_t cv = memo[static_cast<size_t>(c)];
        if (cv == 0) {
          stack.push_back({c, 0});
        } else {
          memo[idx] = cv == 2 ? 1 : 2;
          stack.pop_back();
        }
        break;
      }
      case NodeKind::kAnd:
      case NodeKind::kOr: {
        // And: a false child is decisive; Or: a true child is (short-circuit).
        int8_t decisive = n.kind == NodeKind::kAnd ? 1 : 2;
        bool decided = false;
        int pending = -1;
        uint32_t i = stack.back().next_child;
        for (; i < n.child_count; ++i) {
          int c = child_arena_[n.child_begin + i];
          int8_t cv = memo[static_cast<size_t>(c)];
          if (cv == decisive) {
            decided = true;
            break;
          }
          if (cv == 0) {
            pending = c;  // Cursor stays here; re-read after the child resolves.
            break;
          }
        }
        stack.back().next_child = i;
        if (decided) {
          memo[idx] = decisive;
          stack.pop_back();
        } else if (pending >= 0) {
          stack.push_back({pending, 0});
        } else {
          memo[idx] = decisive == 1 ? 2 : 1;  // All children neutral.
          stack.pop_back();
        }
        break;
      }
    }
  }
  return memo[static_cast<size_t>(root)] == 2;
}

void Circuit::EvaluateAllInto(int root, const std::function<bool(int)>& var_value,
                              std::vector<int8_t>* memo) const {
  // Same DFS as Evaluate, but gates never short-circuit: every reachable node
  // gets a value, which is what phase seeding needs (the Tseitin encoder gave
  // every reachable node a literal).
  memo->assign(nodes_.size(), 0);
  struct Frame {
    int id;
    uint32_t next_child;
    /// Whether a decisive child (false for And, true for Or) was seen among
    /// children already scanned. Lives in the frame: the scan suspends and
    /// resumes across child evaluations, and the cursor never re-reads
    /// children it already passed.
    bool saw_decisive;
  };
  std::vector<Frame> stack{{root, 0, false}};
  while (!stack.empty()) {
    int id = stack.back().id;
    size_t idx = static_cast<size_t>(id);
    if ((*memo)[idx] != 0) {
      stack.pop_back();
      continue;
    }
    const NodeData& n = nodes_[idx];
    switch (n.kind) {
      case NodeKind::kConst:
        (*memo)[idx] = n.var == 1 ? 2 : 1;
        stack.pop_back();
        break;
      case NodeKind::kVar:
        (*memo)[idx] = var_value(n.var) ? 2 : 1;
        stack.pop_back();
        break;
      case NodeKind::kNot: {
        int c = child_arena_[n.child_begin];
        int8_t cv = (*memo)[static_cast<size_t>(c)];
        if (cv == 0) {
          stack.push_back({c, 0, false});
        } else {
          (*memo)[idx] = cv == 2 ? 1 : 2;
          stack.pop_back();
        }
        break;
      }
      case NodeKind::kAnd:
      case NodeKind::kOr: {
        int8_t decisive = n.kind == NodeKind::kAnd ? 1 : 2;
        int pending = -1;
        uint32_t i = stack.back().next_child;
        for (; i < n.child_count; ++i) {
          int c = child_arena_[n.child_begin + i];
          int8_t cv = (*memo)[static_cast<size_t>(c)];
          if (cv == 0) {
            pending = c;  // Cursor stays here; re-read after the child resolves.
            break;
          }
          if (cv == decisive) stack.back().saw_decisive = true;  // No skip.
        }
        stack.back().next_child = i;
        if (pending >= 0) {
          stack.push_back({pending, 0, false});
        } else {
          (*memo)[idx] =
              stack.back().saw_decisive ? decisive : (decisive == 1 ? 2 : 1);
          stack.pop_back();
        }
        break;
      }
    }
  }
}

CircuitUsers Circuit::BuildUsers() const {
  CircuitUsers u;
  u.offset.assign(nodes_.size() + 1, 0);
  for (const NodeData& n : nodes_) {
    for (uint32_t i = 0; i < n.child_count; ++i) {
      ++u.offset[static_cast<size_t>(child_arena_[n.child_begin + i]) + 1];
    }
  }
  for (size_t i = 1; i < u.offset.size(); ++i) u.offset[i] += u.offset[i - 1];
  u.data.resize(u.offset.back());
  std::vector<uint32_t> cursor(u.offset.begin(), u.offset.end() - 1);
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NodeData& n = nodes_[id];
    for (uint32_t i = 0; i < n.child_count; ++i) {
      size_t c = static_cast<size_t>(child_arena_[n.child_begin + i]);
      u.data[cursor[c]++] = static_cast<int32_t>(id);
    }
  }
  return u;
}

void Circuit::ReevaluateInto(std::span<const int> changed_vars,
                             const std::function<bool(int)>& var_value,
                             const CircuitUsers& users,
                             std::vector<int8_t>* memo,
                             std::vector<int>* heap) const {
  // Children are always interned before their parents, so node ids are a
  // topological order: draining the worklist smallest-id-first guarantees a
  // node recomputes only after every child below it has settled. Duplicate
  // entries are harmless — a later pop of an already-updated node finds its
  // value unchanged and the wave stops there.
  auto by_min = std::greater<int>();
  heap->clear();
  auto push_users = [&](size_t id) {
    for (uint32_t k = users.offset[id]; k < users.offset[id + 1]; ++k) {
      heap->push_back(users.data[k]);
      std::push_heap(heap->begin(), heap->end(), by_min);
    }
  };
  for (int var_id : changed_vars) {
    if (static_cast<size_t>(var_id) >= var_nodes_.size()) continue;
    int id = var_nodes_[static_cast<size_t>(var_id)];
    if (id < 0) continue;  // Variable never interned.
    size_t idx = static_cast<size_t>(id);
    if ((*memo)[idx] == 0) continue;  // Outside the evaluated cone.
    int8_t next = var_value(var_id) ? 2 : 1;
    if ((*memo)[idx] == next) continue;
    (*memo)[idx] = next;
    push_users(idx);
  }
  while (!heap->empty()) {
    std::pop_heap(heap->begin(), heap->end(), by_min);
    int id = heap->back();
    heap->pop_back();
    size_t idx = static_cast<size_t>(id);
    int8_t old = (*memo)[idx];
    if (old == 0) continue;  // A parent outside the evaluated cone.
    const NodeData& n = nodes_[idx];
    int8_t next;
    if (n.kind == NodeKind::kNot) {
      next =
          (*memo)[static_cast<size_t>(child_arena_[n.child_begin])] == 2 ? 1
                                                                         : 2;
    } else {
      // kAnd / kOr; every child of a reached gate holds a value (the full
      // evaluation never short-circuits), so the gate recomputes locally.
      int8_t decisive = n.kind == NodeKind::kAnd ? 1 : 2;
      next = decisive == 1 ? 2 : 1;
      for (uint32_t i = 0; i < n.child_count; ++i) {
        if ((*memo)[static_cast<size_t>(child_arena_[n.child_begin + i])] ==
            decisive) {
          next = decisive;
          break;
        }
      }
    }
    if (next == old) continue;
    (*memo)[idx] = next;
    push_users(idx);
  }
}

std::vector<int> Circuit::CollectVars(int root) const {
  std::vector<int> out;
  std::vector<int> stack{root};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(id)]) continue;
    seen[static_cast<size_t>(id)] = true;
    const NodeData& n = nodes_[static_cast<size_t>(id)];
    if (n.kind == NodeKind::kVar) out.push_back(n.var);
    for (uint32_t i = 0; i < n.child_count; ++i) {
      stack.push_back(child_arena_[n.child_begin + i]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Circuit::ToString(int root) const {
  Node n = node(root);
  switch (n.kind) {
    case NodeKind::kConst:
      return n.var == 1 ? "true" : "false";
    case NodeKind::kVar:
      return "v" + std::to_string(n.var);
    case NodeKind::kNot:
      return "(not " + ToString(n.children[0]) + ")";
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::string out = n.kind == NodeKind::kAnd ? "(and" : "(or";
      // Copy the child range first: the span into child_arena_ stays valid (no
      // interning here), but recursion re-reads nodes_, so keep it simple.
      std::vector<int> children(n.children.begin(), n.children.end());
      for (int c : children) {
        out += " ";
        out += ToString(c);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace kbt
