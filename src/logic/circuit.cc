#include "logic/circuit.h"

#include <algorithm>
#include <cassert>

namespace kbt {

Circuit::Circuit() {
  nodes_.push_back(Node{NodeKind::kConst, 0, {}});  // id 0: false
  nodes_.push_back(Node{NodeKind::kConst, 1, {}});  // id 1: true
}

int Circuit::Intern(Node node) {
  NodeKey key{node.kind, node.var, node.children};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  cache_.emplace(std::move(key), id);
  return id;
}

int Circuit::VarNode(int var_id) {
  auto it = var_nodes_.find(var_id);
  if (it != var_nodes_.end()) return it->second;
  int id = Intern(Node{NodeKind::kVar, var_id, {}});
  var_nodes_.emplace(var_id, id);
  return id;
}

int Circuit::NotNode(int child) {
  if (child == FalseNode()) return TrueNode();
  if (child == TrueNode()) return FalseNode();
  const Node& n = node(child);
  if (n.kind == NodeKind::kNot) return n.children[0];
  return Intern(Node{NodeKind::kNot, 0, {child}});
}

int Circuit::AndNode(std::vector<int> children) {
  std::vector<int> flat;
  for (int c : children) {
    if (c == TrueNode()) continue;
    if (c == FalseNode()) return FalseNode();
    if (node(c).kind == NodeKind::kAnd) {
      const std::vector<int>& sub = node(c).children;
      flat.insert(flat.end(), sub.begin(), sub.end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // x ∧ ¬x → false.
  for (int c : flat) {
    const Node& n = node(c);
    if (n.kind == NodeKind::kNot &&
        std::binary_search(flat.begin(), flat.end(), n.children[0])) {
      return FalseNode();
    }
  }
  if (flat.empty()) return TrueNode();
  if (flat.size() == 1) return flat[0];
  return Intern(Node{NodeKind::kAnd, 0, std::move(flat)});
}

int Circuit::OrNode(std::vector<int> children) {
  std::vector<int> flat;
  for (int c : children) {
    if (c == FalseNode()) continue;
    if (c == TrueNode()) return TrueNode();
    if (node(c).kind == NodeKind::kOr) {
      const std::vector<int>& sub = node(c).children;
      flat.insert(flat.end(), sub.begin(), sub.end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // x ∨ ¬x → true.
  for (int c : flat) {
    const Node& n = node(c);
    if (n.kind == NodeKind::kNot &&
        std::binary_search(flat.begin(), flat.end(), n.children[0])) {
      return TrueNode();
    }
  }
  if (flat.empty()) return FalseNode();
  if (flat.size() == 1) return flat[0];
  return Intern(Node{NodeKind::kOr, 0, std::move(flat)});
}

bool Circuit::Evaluate(int root, const std::function<bool(int)>& var_value) const {
  std::unordered_map<int, bool> memo;
  // Explicit stack to avoid deep recursion on wide/deep circuits.
  std::function<bool(int)> eval = [&](int id) -> bool {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const Node& n = node(id);
    bool result = false;
    switch (n.kind) {
      case NodeKind::kConst:
        result = (n.var == 1);
        break;
      case NodeKind::kVar:
        result = var_value(n.var);
        break;
      case NodeKind::kNot:
        result = !eval(n.children[0]);
        break;
      case NodeKind::kAnd:
        result = true;
        for (int c : n.children) {
          if (!eval(c)) {
            result = false;
            break;
          }
        }
        break;
      case NodeKind::kOr:
        result = false;
        for (int c : n.children) {
          if (eval(c)) {
            result = true;
            break;
          }
        }
        break;
    }
    memo.emplace(id, result);
    return result;
  };
  return eval(root);
}

std::vector<int> Circuit::CollectVars(int root) const {
  std::vector<int> out;
  std::vector<int> stack{root};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(id)]) continue;
    seen[static_cast<size_t>(id)] = true;
    const Node& n = node(id);
    if (n.kind == NodeKind::kVar) out.push_back(n.var);
    for (int c : n.children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Circuit::ToString(int root) const {
  const Node& n = node(root);
  switch (n.kind) {
    case NodeKind::kConst:
      return n.var == 1 ? "true" : "false";
    case NodeKind::kVar:
      return "v" + std::to_string(n.var);
    case NodeKind::kNot:
      return "(not " + ToString(n.children[0]) + ")";
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::string out = n.kind == NodeKind::kAnd ? "(and" : "(or";
      for (int c : n.children) {
        out += " ";
        out += ToString(c);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace kbt
