#include "logic/formula.h"

#include <cassert>

namespace kbt {

namespace {

Formula Make(FormulaKind kind, Symbol relation, std::vector<Term> terms,
             std::vector<Formula> children, Symbol variable) {
  return std::make_shared<const FormulaNode>(kind, relation, std::move(terms),
                                             std::move(children), variable);
}

}  // namespace

Formula True() {
  static const Formula t = Make(FormulaKind::kTrue, 0, {}, {}, 0);
  return t;
}

Formula False() {
  static const Formula f = Make(FormulaKind::kFalse, 0, {}, {}, 0);
  return f;
}

Formula Atom(Symbol relation, std::vector<Term> args) {
  return Make(FormulaKind::kAtom, relation, std::move(args), {}, 0);
}

Formula Atom(std::string_view relation, std::vector<Term> args) {
  return Atom(Name(relation), std::move(args));
}

Formula Equals(Term lhs, Term rhs) {
  return Make(FormulaKind::kEquals, 0, {lhs, rhs}, {}, 0);
}

Formula NotEquals(Term lhs, Term rhs) { return Not(Equals(lhs, rhs)); }

Formula Not(Formula f) {
  assert(f != nullptr);
  return Make(FormulaKind::kNot, 0, {}, {std::move(f)}, 0);
}

Formula And(std::vector<Formula> fs) {
  if (fs.empty()) return True();
  if (fs.size() == 1) return fs.front();
  return Make(FormulaKind::kAnd, 0, {}, std::move(fs), 0);
}

Formula And(Formula a, Formula b) { return And(std::vector<Formula>{a, b}); }

Formula Or(std::vector<Formula> fs) {
  if (fs.empty()) return False();
  if (fs.size() == 1) return fs.front();
  return Make(FormulaKind::kOr, 0, {}, std::move(fs), 0);
}

Formula Or(Formula a, Formula b) { return Or(std::vector<Formula>{a, b}); }

Formula Implies(Formula a, Formula b) {
  return Make(FormulaKind::kImplies, 0, {}, {std::move(a), std::move(b)}, 0);
}

Formula Iff(Formula a, Formula b) {
  return Make(FormulaKind::kIff, 0, {}, {std::move(a), std::move(b)}, 0);
}

Formula Exists(Symbol var, Formula body) {
  return Make(FormulaKind::kExists, 0, {}, {std::move(body)}, var);
}

Formula Exists(std::string_view var, Formula body) {
  return Exists(Name(var), std::move(body));
}

Formula Exists(std::vector<Symbol> vars, Formula body) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = Exists(*it, std::move(body));
  }
  return body;
}

Formula Forall(Symbol var, Formula body) {
  return Make(FormulaKind::kForall, 0, {}, {std::move(body)}, var);
}

Formula Forall(std::string_view var, Formula body) {
  return Forall(Name(var), std::move(body));
}

Formula Forall(std::vector<Symbol> vars, Formula body) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = Forall(*it, std::move(body));
  }
  return body;
}

bool StructurallyEqual(const Formula& a, const Formula& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  if (a->relation() != b->relation()) return false;
  if (a->variable() != b->variable()) return false;
  if (!(a->terms() == b->terms())) return false;
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

}  // namespace kbt
