#include "logic/analysis.h"

#include <algorithm>
#include <cassert>

namespace kbt {

namespace {

void CollectFree(const Formula& f, std::set<Symbol>* bound, std::set<Symbol>* free) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      for (const Term& t : f->terms()) {
        if (t.is_variable() && bound->count(t.symbol) == 0) free->insert(t.symbol);
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      bool was_bound = bound->count(f->variable()) > 0;
      bound->insert(f->variable());
      CollectFree(f->children()[0], bound, free);
      if (!was_bound) bound->erase(f->variable());
      return;
    }
    default:
      for (const Formula& c : f->children()) CollectFree(c, bound, free);
      return;
  }
}

void CollectConstants(const Formula& f, std::vector<Value>* out) {
  for (const Term& t : f->terms()) {
    if (t.is_constant()) out->push_back(t.symbol);
  }
  for (const Formula& c : f->children()) CollectConstants(c, out);
}

Status CollectSchema(const Formula& f, Schema* schema) {
  if (f->kind() == FormulaKind::kAtom) {
    std::optional<size_t> arity = schema->ArityOf(f->relation());
    if (arity) {
      if (*arity != f->terms().size()) {
        return Status::InvalidArgument("relation " + NameOf(f->relation()) +
                                       " used at arities " + std::to_string(*arity) +
                                       " and " + std::to_string(f->terms().size()));
      }
    } else {
      KBT_RETURN_IF_ERROR(
          schema->Append(RelationDecl{f->relation(), f->terms().size()}));
    }
  }
  for (const Formula& c : f->children()) {
    KBT_RETURN_IF_ERROR(CollectSchema(c, schema));
  }
  return Status::OK();
}

}  // namespace

std::set<Symbol> FreeVariables(const Formula& f) {
  std::set<Symbol> bound, free;
  CollectFree(f, &bound, &free);
  return free;
}

bool IsSentence(const Formula& f) { return FreeVariables(f).empty(); }

std::vector<Value> ConstantsOf(const Formula& f) {
  std::vector<Value> out;
  CollectConstants(f, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StatusOr<Schema> SchemaOf(const Formula& f) {
  Schema schema;
  KBT_RETURN_IF_ERROR(CollectSchema(f, &schema));
  return schema;
}

Formula Substitute(const Formula& f, Symbol var, Value value) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kAtom:
    case FormulaKind::kEquals: {
      bool hit = false;
      for (const Term& t : f->terms()) {
        if (t.is_variable() && t.symbol == var) hit = true;
      }
      if (!hit) return f;
      std::vector<Term> terms = f->terms();
      for (Term& t : terms) {
        if (t.is_variable() && t.symbol == var) t = Term::Const(value);
      }
      if (f->kind() == FormulaKind::kAtom) return Atom(f->relation(), std::move(terms));
      return Equals(terms[0], terms[1]);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      if (f->variable() == var) return f;  // Occurrences below are bound.
      Formula body = Substitute(f->children()[0], var, value);
      if (body == f->children()[0]) return f;
      return f->kind() == FormulaKind::kExists ? Exists(f->variable(), std::move(body))
                                               : Forall(f->variable(), std::move(body));
    }
    default: {
      std::vector<Formula> children;
      children.reserve(f->children().size());
      bool changed = false;
      for (const Formula& c : f->children()) {
        Formula nc = Substitute(c, var, value);
        changed |= (nc != c);
        children.push_back(std::move(nc));
      }
      if (!changed) return f;
      switch (f->kind()) {
        case FormulaKind::kNot:
          return Not(children[0]);
        case FormulaKind::kAnd:
          return And(std::move(children));
        case FormulaKind::kOr:
          return Or(std::move(children));
        case FormulaKind::kImplies:
          return Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Iff(children[0], children[1]);
        default:
          assert(false && "unreachable");
          return f;
      }
    }
  }
}

bool IsQuantifierFree(const Formula& f) {
  if (f->kind() == FormulaKind::kExists || f->kind() == FormulaKind::kForall) {
    return false;
  }
  for (const Formula& c : f->children()) {
    if (!IsQuantifierFree(c)) return false;
  }
  return true;
}

bool IsGround(const Formula& f) {
  for (const Term& t : f->terms()) {
    if (t.is_variable()) return false;
  }
  for (const Formula& c : f->children()) {
    if (!IsGround(c)) return false;
  }
  return true;
}

size_t FormulaSize(const Formula& f) {
  size_t n = 1;
  for (const Formula& c : f->children()) n += FormulaSize(c);
  return n;
}

size_t QuantifierDepth(const Formula& f) {
  size_t child_max = 0;
  for (const Formula& c : f->children()) {
    child_max = std::max(child_max, QuantifierDepth(c));
  }
  if (f->kind() == FormulaKind::kExists || f->kind() == FormulaKind::kForall) {
    return child_max + 1;
  }
  return child_max;
}

}  // namespace kbt
