#ifndef KBT_LOGIC_GROUNDER_H_
#define KBT_LOGIC_GROUNDER_H_

/// \file
/// Grounding: lowering a first-order sentence over a finite domain B into a boolean
/// circuit over ground atoms.
///
/// Following the proof of Theorem 4.1, quantified variables range over B (the values
/// of the database plus the constants of the sentence). ∀ expands to a conjunction
/// and ∃ to a disjunction over B; equalities between resolved values fold to
/// constants. The result size is O(|φ| · |B|^q) for quantifier depth q, so a
/// configurable node budget guards against runaway instances.

#include <vector>

#include "base/status.h"
#include "logic/circuit.h"
#include "logic/formula.h"
#include "logic/ground_atom.h"

namespace kbt {

struct GrounderOptions {
  /// Maximum circuit nodes before the grounder aborts with kResourceExhausted.
  size_t max_nodes = 5'000'000;
};

/// A grounded sentence: a circuit plus the table mapping circuit variables to
/// ground atoms (circuit variable i is `atoms.AtomOf(i)`).
struct Grounding {
  Circuit circuit;
  int root = 0;
  AtomIndex atoms;
};

/// Grounds sentence `f` over `domain`. Fails with kInvalidArgument when `f` has free
/// variables, and with kResourceExhausted when the node budget is exceeded.
/// An empty domain is allowed: ∀ formulas ground to true, ∃ to false.
StatusOr<Grounding> GroundSentence(const Formula& f, const std::vector<Value>& domain,
                                   const GrounderOptions& options = GrounderOptions());

}  // namespace kbt

#endif  // KBT_LOGIC_GROUNDER_H_
