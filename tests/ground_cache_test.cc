/// \file
/// Tests for the domain-keyed grounding cache: hit/miss accounting, value
/// sharing (one grounding per distinct domain), agreement with a direct
/// GroundSentence call, error caching, and concurrent access through the pool.

#include "exec/ground_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "exec/pool.h"
#include "logic/parser.h"

namespace kbt::exec {
namespace {

std::vector<Value> Domain(std::initializer_list<std::string_view> names) {
  std::vector<Value> out;
  for (std::string_view n : names) out.push_back(Name(n));
  return out;
}

TEST(GroundCacheTest, HitMissAccounting) {
  Formula phi = *ParseSentence("forall x: R(x) -> S(x)");
  GroundingCache cache;
  GrounderOptions opts;

  auto a1 = cache.GetOrGround(phi, Domain({"a", "b"}), opts);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  auto a2 = cache.GetOrGround(phi, Domain({"a", "b"}), opts);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Same domain → the same shared grounding, not an equal copy.
  EXPECT_EQ(a1->get(), a2->get());

  auto b = cache.GetOrGround(phi, Domain({"a", "c"}), opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(a1->get(), b->get());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(GroundCacheTest, MatchesDirectGrounding) {
  Formula phi = *ParseSentence("forall x, y: R(x, y) -> (S(x) | S(y))");
  std::vector<Value> domain = Domain({"a", "b", "c"});
  GroundingCache cache;
  GrounderOptions opts;

  auto cached = cache.GetOrGround(phi, domain, opts);
  ASSERT_TRUE(cached.ok());
  StatusOr<Grounding> direct = GroundSentence(phi, domain, opts);
  ASSERT_TRUE(direct.ok());

  // Grounding is deterministic in (φ, domain): identical circuit shape, root
  // and atom table, and the cached mentioned set is CollectVars of the root.
  EXPECT_EQ((*cached)->grounding.circuit.size(), direct->circuit.size());
  EXPECT_EQ((*cached)->grounding.root, direct->root);
  EXPECT_EQ((*cached)->grounding.atoms.size(), direct->atoms.size());
  EXPECT_EQ((*cached)->mentioned, direct->circuit.CollectVars(direct->root));
  for (size_t i = 0; i < direct->atoms.size(); ++i) {
    EXPECT_EQ((*cached)->grounding.atoms.AtomOf(static_cast<int>(i)),
              direct->atoms.AtomOf(static_cast<int>(i)));
  }
}

TEST(GroundCacheTest, BudgetErrorIsCachedPerDomain) {
  // A quantifier-deep sentence over a 3-value domain blows a tiny node budget.
  Formula phi = *ParseSentence(
      "forall x, y, z: (R(x, y) & R(y, z)) -> (R(x, z) | S(x))");
  GroundingCache cache;
  GrounderOptions opts;
  opts.max_nodes = 4;

  auto r1 = cache.GetOrGround(phi, Domain({"a", "b", "c"}), opts);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kResourceExhausted);
  // The error is remembered: a repeat lookup is a hit, not a re-grounding.
  auto r2 = cache.GetOrGround(phi, Domain({"a", "b", "c"}), opts);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(GroundCacheTest, ConcurrentLookupsGroundOnce) {
  Formula phi = *ParseSentence("forall x, y: R(x, y) -> S(y, x)");
  GroundingCache cache;
  GrounderOptions opts;
  std::vector<Value> domain = Domain({"a", "b", "c", "d"});

  constexpr size_t kLookups = 64;
  std::vector<std::shared_ptr<const CachedGrounding>> seen(kLookups);
  std::atomic<int> failures{0};
  {
    ThreadPool pool(4);
    pool.ParallelFor(kLookups, [&](size_t i, size_t) {
      auto r = cache.GetOrGround(phi, domain, opts);
      if (r.ok()) {
        seen[i] = *r;
      } else {
        ++failures;
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, kLookups - 1);
  for (size_t i = 1; i < kLookups; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
}

}  // namespace
}  // namespace kbt::exec
