#include "logic/circuit.h"

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(CircuitTest, ConstantsAndVars) {
  Circuit c;
  EXPECT_EQ(c.FalseNode(), 0);
  EXPECT_EQ(c.TrueNode(), 1);
  int v0 = c.VarNode(0);
  EXPECT_EQ(c.VarNode(0), v0);  // Hash-consed.
  EXPECT_NE(c.VarNode(1), v0);
}

TEST(CircuitTest, NotFoldsConstantsAndDoubleNegation) {
  Circuit c;
  EXPECT_EQ(c.NotNode(c.TrueNode()), c.FalseNode());
  EXPECT_EQ(c.NotNode(c.FalseNode()), c.TrueNode());
  int v = c.VarNode(0);
  EXPECT_EQ(c.NotNode(c.NotNode(v)), v);
}

TEST(CircuitTest, AndSimplifications) {
  Circuit c;
  int v0 = c.VarNode(0);
  int v1 = c.VarNode(1);
  EXPECT_EQ(c.AndNode({}), c.TrueNode());
  EXPECT_EQ(c.AndNode({v0}), v0);
  EXPECT_EQ(c.AndNode({v0, c.TrueNode()}), v0);
  EXPECT_EQ(c.AndNode({v0, c.FalseNode()}), c.FalseNode());
  EXPECT_EQ(c.AndNode({v0, v0}), v0);
  EXPECT_EQ(c.AndNode({v0, c.NotNode(v0)}), c.FalseNode());
  // Flattening: and(and(v0,v1), v0) == and(v0, v1).
  EXPECT_EQ(c.AndNode({c.AndNode({v0, v1}), v0}), c.AndNode({v0, v1}));
}

TEST(CircuitTest, OrSimplifications) {
  Circuit c;
  int v0 = c.VarNode(0);
  int v1 = c.VarNode(1);
  EXPECT_EQ(c.OrNode({}), c.FalseNode());
  EXPECT_EQ(c.OrNode({v0, c.FalseNode()}), v0);
  EXPECT_EQ(c.OrNode({v0, c.TrueNode()}), c.TrueNode());
  EXPECT_EQ(c.OrNode({v0, c.NotNode(v0)}), c.TrueNode());
  EXPECT_EQ(c.OrNode({c.OrNode({v0, v1}), v1}), c.OrNode({v0, v1}));
}

TEST(CircuitTest, HashConsingSharesStructure) {
  Circuit c;
  int a = c.AndNode({c.VarNode(0), c.VarNode(1)});
  int b = c.AndNode({c.VarNode(1), c.VarNode(0)});  // Children sorted: same node.
  EXPECT_EQ(a, b);
}

TEST(CircuitTest, EvaluateAndCollectVars) {
  Circuit c;
  // (v0 ∧ ¬v1) ∨ v2
  int f = c.OrNode({c.AndNode({c.VarNode(0), c.NotNode(c.VarNode(1))}),
                    c.VarNode(2)});
  auto val = [](bool a, bool b, bool d) {
    return [=](int v) { return v == 0 ? a : (v == 1 ? b : d); };
  };
  EXPECT_TRUE(c.Evaluate(f, val(true, false, false)));
  EXPECT_FALSE(c.Evaluate(f, val(true, true, false)));
  EXPECT_TRUE(c.Evaluate(f, val(false, true, true)));
  std::vector<int> vars = c.CollectVars(f);
  EXPECT_EQ(vars, (std::vector<int>{0, 1, 2}));
}

TEST(CircuitTest, ImpliesAndIffHelpers) {
  Circuit c;
  int v0 = c.VarNode(0);
  int v1 = c.VarNode(1);
  int imp = c.ImpliesNode(v0, v1);
  EXPECT_FALSE(c.Evaluate(imp, [](int v) { return v == 0; }));
  EXPECT_TRUE(c.Evaluate(imp, [](int) { return true; }));
  int iff = c.IffNode(v0, v1);
  EXPECT_TRUE(c.Evaluate(iff, [](int) { return false; }));
  EXPECT_FALSE(c.Evaluate(iff, [](int v) { return v == 1; }));
}

}  // namespace
}  // namespace kbt
